"""Reproduction of "Optimizing JPEG2000 Still Image Encoding on the Cell
Broadband Engine" (Kang & Bader, ICPP 2008): a complete JPEG2000 Part-1
codec, a Cell/B.E. performance simulator, and an encode service."""

__version__ = "1.0.0"
