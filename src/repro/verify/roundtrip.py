"""Decode-every-encode round-trip verification.

The optimization PRs (vectorized Tier-1, fused DWT, shared-memory
dispatch, incremental Tier-2) all claim byte-identical codestreams — but
byte identity among encoder variants says nothing unless the bytes also
*decode* back to the image.  This module closes that loop:

* lossless encodes must reconstruct **bit exactly**;
* lossy encodes must reconstruct above a **per-rate PSNR floor** and the
  floors must be **monotone**: spending more bytes may never decode worse.

Three entry points, one check:

* ``EncoderParams(self_check=True)`` — :func:`repro.jpeg2000.encoder.encode`
  calls :func:`verify_encode` on its own output before returning;
* ``python -m repro verify`` — :func:`run_corpus` sweeps the synthetic
  corpus across rates, Tier-1 backends, and worker counts (the CI gate);
* ``POST /encode?verify=1`` — the service verifies the served bytes and
  returns 422 with a structured body on failure.

Failures raise :class:`VerificationError`, which carries a ``details``
dict (kind, measured PSNR, floor, rate, shape) for structured reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.jpeg2000.errors import CodestreamError
from repro.jpeg2000.params import EncoderParams
from repro.verify.corpus import CorpusEntry, base_corpus

#: Minimum acceptable PSNR (dB) per rate for photographic content (the
#: synthetic watch face / gradient corpus).  Values are calibrated ~6 dB
#: under what the current encoder achieves, so they catch real regressions
#: (a broken pass, a mis-signalled step size) without flaking on platform
#: float noise.  Keys must be ascending; lookups take the floor of the
#: largest key <= the requested rate.
PSNR_RATE_FLOORS: tuple[tuple[float, float], ...] = (
    (0.05, 20.0),
    (0.1, 28.0),
    (0.25, 38.0),
    (0.5, 38.0),
    (1.0, 38.0),
)

#: Floor for lossy encodes without rate control (quantization only, at the
#: default ``base_quant_step``).
LOSSY_DEFAULT_FLOOR = 34.0


class VerificationError(Exception):
    """A round-trip check failed; ``details`` is JSON-ready context."""

    def __init__(self, message: str, details: dict | None = None) -> None:
        self.details = dict(details or {})
        super().__init__(message)


@dataclass
class RoundTripReport:
    """Outcome of one verified encode."""

    kind: str                # "lossless" or "lossy"
    exact: bool              # bit-exact reconstruction
    psnr: float              # dB; inf when exact
    floor: float | None      # applied floor (None for lossless)
    rate: float | None
    shape: tuple[int, ...]
    codestream_bytes: int


@dataclass
class CorpusCheck:
    """One named check inside a :class:`CorpusReport`."""

    name: str
    ok: bool
    detail: str


@dataclass
class CorpusReport:
    """Everything ``python -m repro verify`` ran, with per-check outcomes."""

    checks: list[CorpusCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[CorpusCheck]:
        return [c for c in self.checks if not c.ok]

    def summary(self) -> str:
        n_fail = len(self.failures)
        status = "OK" if n_fail == 0 else f"{n_fail} FAILED"
        return f"{len(self.checks)} round-trip checks: {status}"


def psnr(reference: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical arrays."""
    ref = np.asarray(reference)
    rec = np.asarray(reconstructed)
    if ref.shape != rec.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {rec.shape}")
    peak = 65535.0 if ref.dtype.itemsize > 1 else 255.0
    mse = float(np.mean((ref.astype(np.float64) - rec.astype(np.float64)) ** 2))
    if mse == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / mse)


def psnr_floor(rate: float | None) -> float:
    """The PSNR floor applied at ``rate`` (None = lossy without rate)."""
    if rate is None:
        return LOSSY_DEFAULT_FLOOR
    floor = PSNR_RATE_FLOORS[0][1]
    for r, f in PSNR_RATE_FLOORS:
        if rate >= r:
            floor = f
    return floor


def _reconcile_shapes(image: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Fold a trailing singleton channel so (h, w, 1) compares to (h, w)."""
    if image.ndim == 3 and image.shape[2] == 1 and out.ndim == 2:
        return out[:, :, None]
    return out


def verify_roundtrip(
    image: np.ndarray,
    codestream: bytes,
    params: EncoderParams | None = None,
    floor: float | None = None,
) -> RoundTripReport:
    """Decode ``codestream`` and verify it reconstructs ``image``.

    Lossless parameters demand bit-exact reconstruction; lossy parameters
    demand PSNR at or above ``floor`` (default: :func:`psnr_floor` of the
    rate).  Raises :class:`VerificationError` on any failure, including a
    codestream that does not decode at all.

    Decoding goes through :func:`repro.jpeg2000.decoder.decode` with the
    default (``auto`` -> batched) backend, so verification rides the fast
    decoder — the check costs a fraction of the encode it guards instead
    of dominating it; the fast backends are themselves differentially
    pinned to the scalar reference, so this loses no rigor.
    """
    if params is None:
        params = EncoderParams.lossless_default()
    from repro.jpeg2000.decoder import decode

    image = np.asarray(image)
    try:
        out = decode(codestream)
    except CodestreamError as exc:
        raise VerificationError(
            f"encode produced an undecodable codestream: {exc}",
            details={"kind": "undecodable", "error": str(exc)},
        ) from exc
    out = _reconcile_shapes(image, out)
    if out.shape != image.shape:
        raise VerificationError(
            f"decoded shape {out.shape} does not match input {image.shape}",
            details={
                "kind": "shape", "decoded": list(out.shape),
                "expected": list(image.shape),
            },
        )

    if params.lossless:
        exact = bool(np.array_equal(out, image))
        if not exact:
            ndiff = int(np.count_nonzero(out != image))
            raise VerificationError(
                f"lossless round trip is not bit-exact: {ndiff} of "
                f"{image.size} samples differ (PSNR {psnr(image, out):.2f} dB)",
                details={
                    "kind": "lossless", "differing_samples": ndiff,
                    "psnr_db": psnr(image, out),
                },
            )
        return RoundTripReport(
            kind="lossless", exact=True, psnr=math.inf, floor=None,
            rate=None, shape=tuple(image.shape),
            codestream_bytes=len(codestream),
        )

    applied_floor = psnr_floor(params.rate) if floor is None else floor
    measured = psnr(image, out)
    if measured < applied_floor:
        raise VerificationError(
            f"lossy round trip at rate {params.rate} reached only "
            f"{measured:.2f} dB, below the {applied_floor:.2f} dB floor",
            details={
                "kind": "lossy", "psnr_db": measured,
                "floor_db": applied_floor, "rate": params.rate,
            },
        )
    return RoundTripReport(
        kind="lossy", exact=bool(math.isinf(measured)), psnr=measured,
        floor=applied_floor, rate=params.rate, shape=tuple(image.shape),
        codestream_bytes=len(codestream),
    )


def verify_encode(image: np.ndarray, result) -> RoundTripReport:
    """Self-check hook for ``EncoderParams(self_check=True)``.

    ``result`` is the :class:`repro.jpeg2000.encoder.EncodeResult` about to
    be returned; raises :class:`VerificationError` if its codestream does
    not round-trip.
    """
    return verify_roundtrip(image, result.codestream, result.params)


def run_corpus(
    rates: tuple[float, ...] = (0.1, 0.25, 1.0),
    backends: tuple[str, ...] = ("vectorized", "reference", "batched"),
    workers: tuple[int, ...] = (1, 2),
    quick: bool = False,
    progress=None,
) -> CorpusReport:
    """The full round-trip gate ``python -m repro verify`` runs.

    Three sweeps:

    1. every corpus entry encodes and round-trips (bit-exact or floored);
    2. the lossy reference image encodes at each of ``rates``; PSNR must
       clear the per-rate floor and be monotone in rate;
    3. every (backend, workers) combination re-encodes byte-identically,
       which transfers sweep 2's decode verdicts to all of them.

    ``quick`` trims sweep 3 to one non-default combination.  ``progress``
    (when given) is called with one line per finished check.
    """
    from repro.jpeg2000.encoder import encode
    from repro.image.synthetic import watch_face_image

    report = CorpusReport()

    def record(name: str, ok: bool, detail: str) -> None:
        report.checks.append(CorpusCheck(name=name, ok=ok, detail=detail))
        if progress is not None:
            progress(f"{'ok  ' if ok else 'FAIL'} {name}: {detail}")

    def run_entry(entry: CorpusEntry) -> None:
        try:
            result = encode(entry.image, entry.params)
            rt = verify_roundtrip(
                entry.image, result.codestream, entry.params,
                floor=entry.psnr_floor,
            )
        except VerificationError as exc:
            record(entry.name, False, str(exc))
            return
        detail = (
            "bit-exact" if rt.exact
            else f"{rt.psnr:.2f} dB (floor {rt.floor:.2f})"
        )
        record(entry.name, True, f"{rt.codestream_bytes} bytes, {detail}")

    for entry in base_corpus():
        run_entry(entry)

    # Sweep 2: per-rate PSNR floors + monotonicity on the reference image.
    ref_image = watch_face_image(96, 96, channels=3)
    base_streams: dict[float, bytes] = {}
    measured: list[tuple[float, float]] = []
    for rate in sorted(rates):
        params = EncoderParams(lossless=False, rate=rate, levels=5)
        name = f"lossy-psnr-floor@rate={rate}"
        try:
            result = encode(ref_image, params)
            rt = verify_roundtrip(ref_image, result.codestream, params)
        except VerificationError as exc:
            record(name, False, str(exc))
            continue
        base_streams[rate] = result.codestream
        measured.append((rate, rt.psnr))
        record(name, True,
               f"{rt.psnr:.2f} dB >= {rt.floor:.2f} dB, "
               f"{rt.codestream_bytes} bytes")
    for (r_lo, p_lo), (r_hi, p_hi) in zip(measured, measured[1:]):
        ok = p_hi >= p_lo - 0.01  # equality allowed: rate cap may not bind
        record(
            f"psnr-monotone@{r_lo}->{r_hi}", ok,
            f"{p_lo:.2f} dB -> {p_hi:.2f} dB",
        )

    # Sweep 3: backend x workers byte-identity (decode verdicts transfer).
    combos = [
        (backend, nworkers)
        for backend in backends for nworkers in workers
        if not (backend == backends[0] and nworkers == workers[0])
    ]
    if quick and combos:
        combos = combos[-1:]
    for backend, nworkers in combos:
        for rate, reference_cs in sorted(base_streams.items()):
            params = EncoderParams(
                lossless=False, rate=rate, levels=5,
                tier1_backend=backend, workers=nworkers,
            )
            name = f"byte-identity@{backend}/workers={nworkers}/rate={rate}"
            cs = encode(ref_image, params).codestream
            if cs == reference_cs:
                record(name, True, f"{len(cs)} bytes identical")
            else:
                record(name, False,
                       f"codestream differs ({len(cs)} vs "
                       f"{len(reference_cs)} bytes)")
    return report
