"""The synthetic verification corpus: small, diverse, deterministic.

Every entry pairs an image with coding parameters chosen to exercise a
different slice of the pipeline: gray vs. RGB (MCT on/off), lossless vs.
lossy, odd and non-square dimensions (ragged code-block grids and DWT
boundary handling), small code blocks (more packets, deeper tag trees),
and an incompressible noise image (rate control under stress).  The
round-trip gate (:mod:`repro.verify.roundtrip`) decodes every entry's
encode; the fuzzer (:mod:`repro.verify.fuzz`) mutates the entries'
codestreams as its base corpus.

Everything here is deterministic — same entries, same pixels, same
codestream bytes on every run — so CI failures reproduce locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.image.synthetic import gradient_image, noise_image, watch_face_image
from repro.jpeg2000.params import EncoderParams


@dataclass(frozen=True)
class CorpusEntry:
    """One verification case: an image plus its coding parameters.

    ``psnr_floor`` overrides the default per-rate floor for lossy entries
    whose content is atypical (pure noise compresses far worse than the
    photographic default floors assume).
    """

    name: str
    image: np.ndarray
    params: EncoderParams
    psnr_floor: float | None = None


def base_corpus() -> list[CorpusEntry]:
    """The corpus the round-trip gate and the fuzzer build on (6 entries)."""
    return list(_build_corpus())


@lru_cache(maxsize=1)
def _build_corpus() -> tuple[CorpusEntry, ...]:
    return (
        CorpusEntry(
            name="watch-gray-64-lossless",
            image=watch_face_image(64, 64, channels=1),
            params=EncoderParams(lossless=True, levels=3),
        ),
        CorpusEntry(
            name="watch-rgb-48-lossless",
            image=watch_face_image(48, 48, channels=3),
            params=EncoderParams(lossless=True, levels=2),
        ),
        CorpusEntry(
            name="gradient-rgb-40x56-lossless",
            image=gradient_image(40, 56, channels=3),
            params=EncoderParams(lossless=True, levels=2),
        ),
        CorpusEntry(
            name="watch-gray-64-lossy-rate",
            image=watch_face_image(64, 64, channels=1),
            params=EncoderParams(lossless=False, rate=0.25, levels=3),
            # 0.25 of a 4 KiB raw image is a ~1 KiB budget; measured
            # 28.6 dB, far under the photographic per-rate floor.
            psnr_floor=22.0,
        ),
        CorpusEntry(
            name="noise-gray-33x47-lossy",
            image=noise_image(33, 47, channels=1, seed=5),
            params=EncoderParams(lossless=False, rate=0.5, levels=2),
            psnr_floor=20.0,  # incompressible content; measured 26.2 dB
        ),
        CorpusEntry(
            name="watch-rgb-32-lossy-cb16",
            image=watch_face_image(32, 32, channels=3),
            params=EncoderParams(lossless=False, levels=1, codeblock_size=16),
        ),
    )


@lru_cache(maxsize=1)
def base_codestreams() -> tuple[tuple[str, bytes], ...]:
    """Encode every corpus entry once; the fuzzer's mutation bases."""
    from repro.jpeg2000.encoder import encode

    return tuple(
        (entry.name, encode(entry.image, entry.params).codestream)
        for entry in base_corpus()
    )
