"""Deterministic, seed-driven codestream mutation fuzzer.

The service north star — heavy traffic from untrusted clients — makes
malformed codestreams a certainty, and the decoder's contract under them
is exact: :func:`repro.jpeg2000.decoder.decode` either succeeds or raises
a :class:`repro.jpeg2000.errors.CodestreamError` subclass.  Anything else
(a raw ``IndexError``, a ``struct.error``, a multi-GiB allocation from a
corrupt SIZ field, an unbounded parse loop) is a bug.  This fuzzer hunts
exactly those: it mutates valid encodes of the verification corpus with
the corruption classes real traffic produces — bit flips, truncations,
length-field corruption, marker reordering, packet-header garbage — and
classifies every decode outcome.

Everything is derived from ``(seed, case_index)``, so any failure
reproduces from its case number alone, and the bundled reducer shrinks a
crashing input before it is reported or written as an artifact.

Run it as ``python -m repro fuzz --cases 10000`` (the CI job) or via
:func:`run_fuzz` directly.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field

from repro.jpeg2000.errors import CodestreamError, DecodeLimits

#: Limits applied while fuzzing: tight enough that a mutated header can
#: never make the decoder do noticeable work, roomy enough that every
#: corpus codestream still decodes.
FUZZ_LIMITS = DecodeLimits(
    max_dimension=4096,
    max_samples=1 << 18,
    max_components=8,
    max_levels=16,
    max_tiles=256,
)

#: Known markers whose 16-bit length fields the length-corruption mutator
#: targets (SIZ, COD, QCD, SOT).
_SEGMENT_MARKERS = (b"\xff\x51", b"\xff\x52", b"\xff\x5c", b"\xff\x90")


# ---------------------------------------------------------------------------
# Mutators.  Each takes (bytearray, random.Random) and returns bytes.
# ---------------------------------------------------------------------------

def _mut_bitflip(b: bytearray, rng: random.Random) -> bytes:
    """Flip 1-8 random bits anywhere in the stream."""
    for _ in range(rng.randint(1, 8)):
        i = rng.randrange(len(b))
        b[i] ^= 1 << rng.randrange(8)
    return bytes(b)


def _mut_byteset(b: bytearray, rng: random.Random) -> bytes:
    """Overwrite 1-4 random bytes with random values."""
    for _ in range(rng.randint(1, 4)):
        b[rng.randrange(len(b))] = rng.randrange(256)
    return bytes(b)


def _mut_truncate(b: bytearray, rng: random.Random) -> bytes:
    """Cut the stream at a random point (network truncation)."""
    return bytes(b[: rng.randrange(len(b))])


def _mut_extend(b: bytearray, rng: random.Random) -> bytes:
    """Append or insert random garbage."""
    garbage = bytes(rng.randrange(256) for _ in range(rng.randint(1, 16)))
    i = rng.randrange(len(b) + 1)
    b[i:i] = garbage
    return bytes(b)


def _mut_length_field(b: bytearray, rng: random.Random) -> bytes:
    """Corrupt a marker segment's 16-bit length (or a random 16-bit word)."""
    positions = []
    for marker in _SEGMENT_MARKERS:
        start = 0
        while True:
            i = bytes(b).find(marker, start)
            if i < 0 or i + 4 > len(b):
                break
            positions.append(i + 2)
            start = i + 2
    if positions and rng.random() < 0.8:
        i = rng.choice(positions)
    else:
        i = rng.randrange(max(1, len(b) - 1))
    value = rng.choice((0, 1, 2, 3, 0xFFFF, rng.randrange(65536)))
    b[i : i + 2] = value.to_bytes(2, "big")
    return bytes(b)


def _mut_marker_shuffle(b: bytearray, rng: random.Random) -> bytes:
    """Reorder, duplicate, or delete whole marker segments."""
    segments = _split_segments(bytes(b))
    if len(segments) < 3:
        return _mut_byteset(b, rng)
    op = rng.randrange(3)
    i = rng.randrange(1, len(segments) - 1)  # keep SOC at the front
    if op == 0:                              # swap two interior segments
        j = rng.randrange(1, len(segments) - 1)
        segments[i], segments[j] = segments[j], segments[i]
    elif op == 1:                            # duplicate one
        segments.insert(i, segments[i])
    else:                                    # delete one
        del segments[i]
    return b"".join(segments)


def _mut_tile_garbage(b: bytearray, rng: random.Random) -> bytes:
    """Overwrite a window inside the tile data (packet headers/bodies)."""
    sod = bytes(b).find(b"\xff\x93")
    lo = sod + 2 if 0 <= sod < len(b) - 3 else 0
    i = rng.randrange(lo, len(b))
    n = rng.randint(1, min(24, len(b) - i))
    fill = rng.choice((0x00, 0xFF, None))
    for k in range(n):
        b[i + k] = rng.randrange(256) if fill is None else fill
    return bytes(b)


def _mut_psot_zero(b: bytearray, rng: random.Random) -> bytes:
    """Zero one SOT segment's Psot (spec-legal: "extends to next SOT/EOC").

    T.800 A.4.2 allows Psot=0 in the last tile-part; this mutator also
    hits interior tile-parts, where the scan-forward recovery must still
    terminate with either a decode or a typed error.
    """
    positions = []
    start = 0
    while True:
        i = bytes(b).find(b"\xff\x90", start)
        if i < 0 or i + 10 > len(b):
            break
        positions.append(i)
        start = i + 2
    if not positions:
        return _mut_byteset(b, rng)
    i = rng.choice(positions)
    b[i + 6 : i + 10] = b"\x00\x00\x00\x00"
    return bytes(b)


def _mut_splice(b: bytearray, rng: random.Random) -> bytes:
    """Copy one region of the stream over another (tag-tree garbage)."""
    n = rng.randint(1, min(16, len(b)))
    src = rng.randrange(len(b) - n + 1)
    dst = rng.randrange(len(b) - n + 1)
    b[dst : dst + n] = b[src : src + n]
    return bytes(b)


#: All mutation strategies, by name (the crash report records which ran).
MUTATORS: tuple[tuple[str, object], ...] = (
    ("bitflip", _mut_bitflip),
    ("byteset", _mut_byteset),
    ("truncate", _mut_truncate),
    ("extend", _mut_extend),
    ("length_field", _mut_length_field),
    ("marker_shuffle", _mut_marker_shuffle),
    ("tile_garbage", _mut_tile_garbage),
    ("psot_zero", _mut_psot_zero),
    ("splice", _mut_splice),
)


def _split_segments(data: bytes) -> list[bytes]:
    """Best-effort split into marker segments (no validation, fuzzing aid)."""
    segments = []
    pos = 0
    while pos + 2 <= len(data):
        code = int.from_bytes(data[pos : pos + 2], "big")
        if code >> 8 != 0xFF:
            break
        if code in (0xFF4F, 0xFF93, 0xFFD9):  # SOC / SOD / EOC: no length
            segments.append(data[pos : pos + 2])
            pos += 2
            if code == 0xFF93:   # everything after SOD is tile data
                break
        else:
            if pos + 4 > len(data):
                break
            length = int.from_bytes(data[pos + 2 : pos + 4], "big")
            end = min(len(data), pos + 2 + max(2, length))
            segments.append(data[pos:end])
            pos = end
    if pos < len(data):
        segments.append(data[pos:])
    return segments


def case_rng(seed: int, case: int) -> random.Random:
    """The case's deterministic RNG; integers only (hash-stable)."""
    return random.Random(seed * 1_000_003 + case)


def mutate(base: bytes, rng: random.Random) -> tuple[bytes, tuple[str, ...]]:
    """Apply 1-3 random mutators; returns (mutated, mutator names)."""
    if not base:
        raise ValueError("cannot mutate an empty codestream")
    data = base
    names = []
    for _ in range(rng.randint(1, 3)):
        name, fn = MUTATORS[rng.randrange(len(MUTATORS))]
        if len(data) < 4:
            break
        data = fn(bytearray(data), rng)
        names.append(name)
        if not data:
            break
    return data, tuple(names)


# ---------------------------------------------------------------------------
# Outcome classification and reporting.
# ---------------------------------------------------------------------------

@dataclass
class FuzzCrash:
    """One input that broke the typed-error contract."""

    case: int
    base_name: str
    mutators: tuple[str, ...]
    exc_type: str
    message: str
    data: bytes
    minimized: bytes


@dataclass
class FuzzReport:
    """Outcome histogram plus every (minimized) contract violation."""

    cases: int
    seed: int
    outcomes: dict[str, int] = field(default_factory=dict)
    crashes: list[FuzzCrash] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.crashes

    def summary(self) -> str:
        parts = [f"{self.cases} cases (seed {self.seed})"]
        for name in sorted(self.outcomes):
            parts.append(f"{name}={self.outcomes[name]}")
        parts.append(f"crashes={len(self.crashes)}")
        return ", ".join(parts)

    def write_artifacts(self, directory: str) -> list[str]:
        """Write each crashing input (original + minimized) plus an index."""
        os.makedirs(directory, exist_ok=True)
        written = []
        index = []
        for crash in self.crashes:
            stem = f"crash_{crash.case:06d}_{crash.exc_type}"
            for suffix, blob in (
                (".j2c", crash.minimized), (".orig.j2c", crash.data)
            ):
                path = os.path.join(directory, stem + suffix)
                with open(path, "wb") as fh:
                    fh.write(blob)
                written.append(path)
            index.append({
                "case": crash.case, "base": crash.base_name,
                "mutators": list(crash.mutators),
                "exception": crash.exc_type, "message": crash.message,
                "bytes": len(crash.data), "minimized_bytes": len(crash.minimized),
            })
        path = os.path.join(directory, "index.json")
        with open(path, "w") as fh:
            json.dump({"seed": self.seed, "cases": self.cases,
                       "crashes": index}, fh, indent=2, sort_keys=True)
        written.append(path)
        return written


def classify(
    data: bytes,
    limits: DecodeLimits | None = None,
    backend: str | None = None,
) -> tuple[str, Exception | None]:
    """Decode ``data`` and classify: ("decoded"|error class name, exception).

    The exception is returned only for contract violations (non-typed
    errors); typed :class:`CodestreamError` raises are the expected
    rejection path.  ``backend`` selects the decoder implementation — the
    fuzz-parity tests assert every backend classifies every case the same
    way, so the robustness contract is one contract, not one per path.
    """
    from repro.jpeg2000.decoder import decode

    try:
        decode(data, limits=limits or FUZZ_LIMITS, backend=backend)
        return "decoded", None
    except CodestreamError as exc:
        return type(exc).__name__, None
    except Exception as exc:  # noqa: BLE001 - the whole point of the fuzzer
        return type(exc).__name__, exc


def minimize(
    data: bytes, predicate, max_steps: int = 600
) -> bytes:
    """Shrink ``data`` while ``predicate`` (e.g. "still crashes") holds.

    ddmin-style: repeatedly try removing chunks of halving sizes, keeping
    any removal that preserves the predicate, bounded by ``max_steps``
    predicate evaluations.  Deterministic.
    """
    best = bytes(data)
    if not predicate(best):
        return best
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        size = max(1, len(best) // 2)
        while size >= 1 and steps < max_steps:
            i = 0
            while i < len(best) and steps < max_steps:
                candidate = best[:i] + best[i + size:]
                steps += 1
                if len(candidate) < len(best) and predicate(candidate):
                    best = candidate
                    improved = True
                else:
                    i += size
            if size == 1:
                break
            size //= 2
    return best


def run_fuzz(
    cases: int = 1000,
    seed: int = 2008,
    bases: list[tuple[str, bytes]] | None = None,
    limits: DecodeLimits | None = None,
    minimize_crashes: bool = True,
    progress=None,
    progress_every: int = 2000,
) -> FuzzReport:
    """Fuzz ``decode()`` with ``cases`` seeded mutations of ``bases``.

    ``bases`` defaults to the verification corpus' encodes (>= 5 diverse
    codestreams).  Returns a :class:`FuzzReport`; ``report.ok`` is False
    iff any input produced a non-:class:`CodestreamError` exception.
    """
    if bases is None:
        from repro.verify.corpus import base_codestreams

        bases = list(base_codestreams())
    if not bases:
        raise ValueError("need at least one base codestream")
    limits = limits or FUZZ_LIMITS
    report = FuzzReport(cases=cases, seed=seed)
    for case in range(cases):
        rng = case_rng(seed, case)
        base_name, base = bases[case % len(bases)]
        mutated, mutators = mutate(base, rng)
        outcome, exc = classify(mutated, limits)
        report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
        if exc is not None:
            exc_type = type(exc).__name__
            small = mutated
            if minimize_crashes:
                small = minimize(
                    mutated,
                    lambda d: type(classify(d, limits)[1]).__name__ == exc_type,
                )
            report.crashes.append(FuzzCrash(
                case=case, base_name=base_name, mutators=mutators,
                exc_type=exc_type, message=str(exc),
                data=mutated, minimized=small,
            ))
            if progress is not None:
                progress(f"CRASH case {case} [{'+'.join(mutators)}] "
                         f"{exc_type}: {exc}")
        if progress is not None and (case + 1) % progress_every == 0:
            progress(f"{case + 1}/{cases} cases, "
                     f"{len(report.crashes)} crashes")
    return report
