"""Verification subsystem: round-trip checking and codestream fuzzing.

Two halves, one contract:

* :mod:`repro.verify.roundtrip` proves every encode decodes back —
  bit-exact for lossless, above per-rate PSNR floors for lossy;
* :mod:`repro.verify.fuzz` proves the decoder rejects malformed input
  with typed :class:`repro.jpeg2000.errors.CodestreamError`\\ s instead
  of crashing or over-allocating.

``python -m repro verify`` and ``python -m repro fuzz`` run both as CI
gates; ``EncoderParams(self_check=True)`` and ``POST /encode?verify=1``
apply the round-trip check inline.
"""

from repro.verify.corpus import CorpusEntry, base_codestreams, base_corpus
from repro.verify.fuzz import (
    FUZZ_LIMITS,
    FuzzCrash,
    FuzzReport,
    MUTATORS,
    minimize,
    mutate,
    run_fuzz,
)
from repro.verify.roundtrip import (
    CorpusCheck,
    CorpusReport,
    LOSSY_DEFAULT_FLOOR,
    PSNR_RATE_FLOORS,
    RoundTripReport,
    VerificationError,
    psnr,
    psnr_floor,
    run_corpus,
    verify_encode,
    verify_roundtrip,
)

__all__ = [
    "CorpusCheck",
    "CorpusEntry",
    "CorpusReport",
    "FUZZ_LIMITS",
    "FuzzCrash",
    "FuzzReport",
    "LOSSY_DEFAULT_FLOOR",
    "MUTATORS",
    "PSNR_RATE_FLOORS",
    "RoundTripReport",
    "VerificationError",
    "base_codestreams",
    "base_corpus",
    "minimize",
    "mutate",
    "psnr",
    "psnr_floor",
    "run_corpus",
    "run_fuzz",
    "verify_encode",
    "verify_roundtrip",
]
