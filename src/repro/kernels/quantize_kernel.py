"""Deadzone quantization kernel (lossy path only)."""

from __future__ import annotations

from repro.cell.isa import InstrClass, InstructionMix
from repro.core.calibration import Calibration, DEFAULT_CALIBRATION


def quantize_mix(calibration: Calibration = DEFAULT_CALIBRATION) -> InstructionMix:
    """Per coefficient: multiply by 1/step, truncate toward zero, restore
    sign — all branch-free select operations on the SPE."""
    return InstructionMix(
        ops={
            InstrClass.FM: 1.0,
            InstrClass.CVT: 1.0,
            InstrClass.ADD: 2.0,   # abs + sign select
            InstrClass.LOAD: 1.0,
            InstrClass.STORE: 1.0,
        },
        vectorizable=True,
        simd_efficiency=calibration.pixel_simd_efficiency,
        branches=0.03,
        branch_miss_rate=0.5,
    )
