"""Merged level-shift + inter-component-transform kernel.

Paper Section 3.2: "The level shift and inter-component transform stages
are merged to minimize the data transfer" — one read and one write of each
pixel instead of two.
"""

from __future__ import annotations

from repro.cell.isa import InstrClass, InstructionMix
from repro.core.calibration import Calibration, DEFAULT_CALIBRATION


def levelshift_mct_mix(
    lossless: bool,
    num_components: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> InstructionMix:
    """Per component-sample mix of the merged stage.

    RCT (lossless): ``y=(r+2g+b)>>2, u=b-g, v=r-g`` is 4 adds + 1 shift per
    pixel = ~1.7 ops per component-sample, plus the level-shift subtract.
    ICT (lossy): a 3x3 float matrix = 3 multiplies + 2 adds per output
    component, plus int->float conversion and the shift.
    """
    if num_components not in (1, 3):
        raise ValueError(f"num_components must be 1 or 3, got {num_components}")
    if num_components == 1:
        ops = {
            InstrClass.ADD: 1.0,   # level shift
            InstrClass.LOAD: 1.0,
            InstrClass.STORE: 1.0,
        }
        if not lossless:
            ops[InstrClass.CVT] = 1.0
    elif lossless:
        ops = {
            InstrClass.ADD: 1.0 + 5.0 / 3.0,  # shift + RCT share
            InstrClass.SHIFT: 1.0 / 3.0,
            InstrClass.LOAD: 1.0,
            InstrClass.STORE: 1.0,
        }
    else:
        ops = {
            InstrClass.ADD: 1.0,
            InstrClass.CVT: 1.0,
            InstrClass.FM: 3.0,
            InstrClass.FA: 2.0,
            InstrClass.LOAD: 1.0,
            InstrClass.STORE: 1.0,
        }
    return InstructionMix(
        ops=ops,
        vectorizable=True,
        simd_efficiency=calibration.pixel_simd_efficiency,
        branches=0.03,
        branch_miss_rate=0.5,
    )
