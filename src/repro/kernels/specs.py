"""Kernel specification: instruction mix + memory traffic per element."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.isa import InstructionMix


@dataclass(frozen=True)
class KernelSpec:
    """One kernel variant's per-element cost description.

    ``bytes_in``/``bytes_out`` are main-memory payload bytes per element
    (what must cross the DMA interface on an SPE, or the cache interface on
    a conventional core).
    """

    name: str
    mix: InstructionMix
    bytes_in: float
    bytes_out: float

    def __post_init__(self) -> None:
        if self.bytes_in < 0 or self.bytes_out < 0:
            raise ValueError(f"negative traffic on kernel {self.name!r}")

    @property
    def bytes_total(self) -> float:
        return self.bytes_in + self.bytes_out
