"""Read-component-data / type-conversion stage.

Paper Section 3.2: "The read component data stage, which includes type
conversion from the Jasper specific intermediate data type to four byte
integer data type, is partially parallelized."
"""

from __future__ import annotations

from repro.cell.isa import InstrClass, InstructionMix
from repro.core.calibration import Calibration, DEFAULT_CALIBRATION


def readconv_mix(calibration: Calibration = DEFAULT_CALIBRATION) -> InstructionMix:
    """Per sample: widen the packed stream sample to int32 and store."""
    return InstructionMix(
        ops={
            InstrClass.LOAD: 1.0,
            InstrClass.SHUFFLE: 1.0,  # byte unpack
            InstrClass.ADD: 0.5,
            InstrClass.STORE: 1.0,
        },
        vectorizable=True,
        simd_efficiency=calibration.pixel_simd_efficiency,
        branches=0.05,
        branch_miss_rate=0.5,
    )
