"""DWT kernel variants: lifting arithmetic and DMA traffic per variant.

Section 4 of the paper is entirely about this kernel:

* the *naive* vertical filter runs each lifting step (and the splitting
  step) as a separate sweep over the column group — 3 full-array DMA passes
  in lossless mode, 6 in lossy mode;
* *interleaving* fuses the lifting steps into one sweep (Algorithm 2);
* *merging* folds the splitting step into the interleaved sweep using a
  half-size auxiliary buffer, landing at ~1.5 passes for both modes (the
  lossy case additionally uses Kutil's single-loop fusion).

The fixed-point variant replaces each real multiply with the SPE's emulated
32-bit integer multiply (2 ``mpyh`` + 1 ``mpyu`` + 2 ``a``; Table 1), which
is the paper's argument for switching Jasper to floats.
"""

from __future__ import annotations

from enum import Enum

from repro.cell.isa import InstrClass, InstructionMix
from repro.core.calibration import Calibration, DEFAULT_CALIBRATION


class DwtVariant(str, Enum):
    NAIVE = "naive"                # separate split + lifting sweeps
    INTERLEAVED = "interleaved"    # lifting steps fused (Algorithm 2)
    MERGED = "merged"              # split folded in via auxiliary buffer


def vertical_dma_passes(variant: DwtVariant, lossless: bool) -> float:
    """Full column-group round trips (read+write = 1 pass) per level.

    Paper Section 4: "3 or 6 steps in the vertical filtering involve 3 or 6
    DMA data transfer of the entire column group data"; interleaving merges
    the two (lossless) or four (lossy) lifting steps; the auxiliary-buffer
    trick "halves the amount of data transfer for the splitting step",
    landing at 1.5 passes.
    """
    if variant is DwtVariant.NAIVE:
        return 3.0 if lossless else 6.0
    if variant is DwtVariant.INTERLEAVED:
        return 2.0 if lossless else 3.0  # split + one fused lifting sweep
    if variant is DwtVariant.MERGED:
        return 1.5
    raise ValueError(f"unknown variant {variant!r}")


def _lifting_ops_53() -> dict[InstrClass, float]:
    """5/3 lifting work per sample-visit (one filtering direction).

    Per low/high output pair: predict = add + shift + subtract, update =
    two adds + shift; plus one load, one store, and one lane-shuffle
    equivalent per sample for (de)interleaving.
    """
    return {
        InstrClass.ADD: 2.5,
        InstrClass.SHIFT: 1.0,
        InstrClass.LOAD: 1.0,
        InstrClass.STORE: 1.0,
        InstrClass.SHUFFLE: 1.0,
    }


def _lifting_ops_97_float() -> dict[InstrClass, float]:
    """9/7 float lifting per sample-visit: 4 steps over each pair gives
    2 multiplies + 4 adds per sample, plus the K scaling multiply."""
    return {
        InstrClass.FM: 2.5,
        InstrClass.FA: 4.0,
        InstrClass.LOAD: 1.0,
        InstrClass.STORE: 1.0,
        InstrClass.SHUFFLE: 1.0,
    }


def _lifting_ops_97_fixed() -> dict[InstrClass, float]:
    """9/7 fixed-point lifting: each real multiply becomes the emulated
    32-bit integer multiply (2 mpyh + 1 mpyu + 2 a) plus the Q-format
    shift (paper Section 4 / Table 1)."""
    muls = 2.5
    return {
        InstrClass.MPYH: 2.0 * muls,
        InstrClass.MPYU: 1.0 * muls,
        InstrClass.ADD: 2.0 * muls + 4.0,  # emulation adds + lifting adds
        InstrClass.SHIFT: muls,            # Q13 renormalization
        InstrClass.LOAD: 1.0,
        InstrClass.STORE: 1.0,
        InstrClass.SHUFFLE: 1.0,
    }


def dwt_mix(
    lossless: bool,
    fixed_point: bool = False,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> InstructionMix:
    """Instruction mix of one DWT sample-visit (one filtering direction)."""
    if lossless:
        ops = _lifting_ops_53()
    elif fixed_point:
        ops = _lifting_ops_97_fixed()
    else:
        ops = _lifting_ops_97_float()
    return InstructionMix(
        ops=ops,
        vectorizable=True,
        simd_efficiency=calibration.dwt_simd_efficiency,
        dependency_factor=calibration.dwt_dependency_factor,
        branches=0.06,           # loop-end checks, amortized by unrolling
        branch_miss_rate=0.5,
    )


def sample_visits_per_pixel(levels: int) -> float:
    """DWT sample-visits per original pixel for a full decomposition.

    Each level filters its LL input twice (vertical + horizontal); the LL
    shrinks by 4x per level: ``2 * sum(4**-l for l in range(levels))``.
    """
    if levels < 0:
        raise ValueError(f"levels must be non-negative, got {levels}")
    return 2.0 * sum(0.25**lvl for lvl in range(levels))
