"""Kernel characterizations: instruction mixes + DMA traffic per stage.

Each kernel module declares what one element of work costs in dynamic
instructions (fed to the core models of :mod:`repro.cell`) and how many
bytes must cross the memory interface, for each implementation variant the
paper discusses (naive vs interleaved lifting, fixed vs floating point,
aligned vs naive decomposition).
"""

from repro.kernels.specs import KernelSpec
from repro.kernels.dwt_kernels import (
    DwtVariant,
    dwt_mix,
    vertical_dma_passes,
)
from repro.kernels.levelshift import levelshift_mct_mix
from repro.kernels.quantize_kernel import quantize_mix
from repro.kernels.readconv import readconv_mix
from repro.kernels.tier1_kernel import tier1_symbol_mix, tier1_block_cost_s

__all__ = [
    "DwtVariant",
    "KernelSpec",
    "dwt_mix",
    "levelshift_mct_mix",
    "quantize_mix",
    "readconv_mix",
    "tier1_block_cost_s",
    "tier1_symbol_mix",
    "vertical_dma_passes",
]
