"""Tier-1 (EBCOT bit-plane coding) kernel cost model.

"The EBCOT algorithm is branchy and integer based, [so] the PPE runs the
code faster than the SPE for Tier-1 encoding" (paper Section 5.1).  The
cost of a code block is proportional to the binary decisions it codes — a
data-dependent quantity taken from the *actual* Tier-1 encode of the image
(:class:`repro.jpeg2000.encoder.BlockStats`), which is what produces the
realistic load imbalance the paper's work queue exists to absorb.
"""

from __future__ import annotations

from repro.cell.isa import InstrClass, InstructionMix
from repro.cell.ppe import PPECore
from repro.cell.spe import SPECore
from repro.core.calibration import Calibration, DEFAULT_CALIBRATION


def tier1_symbol_mix(calibration: Calibration = DEFAULT_CALIBRATION) -> InstructionMix:
    """Instruction mix per coded binary decision.

    Context formation gathers eight neighbour states, indexes a LUT, and
    the MQ coder updates its interval registers — all scalar, serially
    dependent, and full of data-dependent branches; none of it vectorizes.
    """
    total = calibration.tier1_ops_per_symbol
    mem = total * calibration.tier1_mem_fraction
    alu = total - mem
    return InstructionMix(
        ops={
            InstrClass.ADD: alu * 0.8,
            InstrClass.SHIFT: alu * 0.2,
            InstrClass.LOAD: mem * 0.7,
            InstrClass.STORE: mem * 0.3,
        },
        vectorizable=False,
        dependency_limited=False,
        dependency_factor=calibration.tier1_dependency_factor,
        branches=calibration.tier1_branches_per_symbol,
        branch_miss_rate=calibration.tier1_branch_miss_rate,
    )


def tier1_block_cost_s(
    symbols: int,
    num_samples: int,
    core: SPECore | PPECore,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Seconds for one processing element to Tier-1 encode one code block.

    ``symbols`` is the block's total coded decisions; ``num_samples`` adds
    the per-sample state sweep cost (visit checks in each pass).
    """
    if symbols < 0 or num_samples < 0:
        raise ValueError("symbols and num_samples must be non-negative")
    mix = tier1_symbol_mix(calibration)
    per_symbol = core.seconds_per_element(mix)
    # Pass-membership scans touch each sample cheaply even when not coded:
    # roughly 15% of a symbol's work per sample per plane-pass, folded into
    # an effective 0.45 extra symbols per sample.
    effective = symbols + 0.45 * num_samples
    return effective * per_symbol + calibration.tier1_block_overhead_s
