"""Fair block-level scheduler multiplexing concurrent encodes onto one pool.

The paper's PPE keeps a single dynamic queue of code blocks that idle SPEs
pull from.  A server gets the same structure one level up: many requests
are in flight at once, each contributing an independent batch of code
blocks, and all of them share one :class:`PersistentWorkerPool`.  Simply
letting each request dump its whole batch into the pool would serialize
requests (multiprocessing's internal task queue is FIFO), so the first
large image would starve everything behind it.

Instead each request gets a *lane*; a dispatcher thread drains lanes one
block at a time — highest priority first, round-robin within a priority
class — and keeps only a small number of blocks in flight inside the pool
so the interleaving decision stays here, not in the pool's FIFO.  That is
block-level fair scheduling: an 8-block thumbnail overtakes a 3000-block
photograph instead of queueing behind it.

Determinism: results are keyed by their per-job sequence number and
reassembled in submission order by :class:`CodeBlockWorkQueue`, so the
codestream of every request is byte-identical to an offline
``encode()`` no matter how lanes interleave.
"""

from __future__ import annotations

import queue
import threading
from collections import deque

from repro.service.pool import PersistentWorkerPool


class SchedulerClosed(RuntimeError):
    """Raised to jobs still waiting when the scheduler shuts down."""


class _Lane:
    """Per-job pending deque + completion queue."""

    __slots__ = ("job_id", "priority", "pending", "results", "last_pick")

    def __init__(self, job_id: int, priority: int) -> None:
        self.job_id = job_id
        self.priority = priority
        self.pending: deque = deque()
        self.results: queue.Queue = queue.Queue()
        self.last_pick = 0  # dispatcher tick of the last block taken


class SchedulerJob:
    """One request's handle; doubles as an injectable pool.

    Implements the duck interface of
    :class:`repro.core.workpool.CodeBlockWorkQueue`'s ``pool`` argument
    (``workers`` + ``imap_unordered``), so the offline encoder routes its
    Tier-1 batch through the scheduler without knowing it exists.
    """

    def __init__(self, scheduler: "EncodeScheduler", lane: _Lane) -> None:
        self._scheduler = scheduler
        self._lane = lane

    @property
    def workers(self) -> int:
        return self._scheduler.pool.workers

    @property
    def priority(self) -> int:
        return self._lane.priority

    def imap_unordered(self, payloads):
        """Yield ``(seq, pid, result)`` for this job's blocks as they finish."""
        payloads = list(payloads)
        self._scheduler._enqueue(self._lane, payloads)
        for _ in range(len(payloads)):
            item = self._lane.results.get()
            if isinstance(item, BaseException):
                raise item
            yield item

    def close(self) -> None:
        self._scheduler._remove_lane(self._lane)

    def __enter__(self) -> "SchedulerJob":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class EncodeScheduler:
    """Bounded, priority-aware dispatcher over a shared persistent pool.

    Parameters
    ----------
    pool:
        The shared :class:`PersistentWorkerPool`.
    max_inflight:
        Maximum blocks handed to the pool but not yet completed.  Small
        values maximize fairness (the dispatcher re-decides after every
        block); the default ``2 * workers`` keeps every worker busy while
        leaving at most one block per worker queued inside the pool.
    """

    def __init__(
        self, pool: PersistentWorkerPool, max_inflight: int | None = None
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.pool = pool
        self.max_inflight = max_inflight or 2 * pool.workers
        self._cond = threading.Condition()
        self._lanes: dict[int, _Lane] = {}
        self._next_job_id = 0
        self._tick = 0
        self._inflight = 0
        self._peak_inflight = 0
        self._blocks_dispatched = 0
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="encode-scheduler", daemon=True
        )
        self._dispatcher.start()

    # -- job registration --------------------------------------------------

    def job(self, priority: int = 0) -> SchedulerJob:
        """Open a lane for one request.  Higher ``priority`` is served first."""
        with self._cond:
            if self._closed:
                raise SchedulerClosed("scheduler is closed")
            lane = _Lane(self._next_job_id, priority)
            self._next_job_id += 1
            self._lanes[lane.job_id] = lane
            return SchedulerJob(self, lane)

    def _enqueue(self, lane: _Lane, payloads) -> None:
        with self._cond:
            if self._closed:
                raise SchedulerClosed("scheduler is closed")
            lane.pending.extend(payloads)
            self._cond.notify_all()

    def _remove_lane(self, lane: _Lane) -> None:
        with self._cond:
            self._lanes.pop(lane.job_id, None)

    # -- dispatch ----------------------------------------------------------

    def _pick_lane(self) -> _Lane | None:
        """Highest priority wins; least-recently-picked breaks ties."""
        best = None
        for lane in self._lanes.values():
            if not lane.pending:
                continue
            if best is None or (-lane.priority, lane.last_pick) < (
                -best.priority, best.last_pick
            ):
                best = lane
        return best

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed:
                    if self._inflight < self.max_inflight and self._pick_lane():
                        break
                    self._cond.wait()
                if self._closed:
                    return
                lane = self._pick_lane()
                payload = lane.pending.popleft()
                self._tick += 1
                lane.last_pick = self._tick
                self._inflight += 1
                self._peak_inflight = max(self._peak_inflight, self._inflight)
                self._blocks_dispatched += 1
            try:
                self.pool.submit(
                    payload,
                    callback=lambda res, _lane=lane: self._on_done(_lane, res),
                    error_callback=lambda exc, _lane=lane: self._on_error(
                        _lane, exc
                    ),
                )
            except Exception as exc:  # pool closed/broken mid-dispatch
                self._on_error(lane, exc)

    def _on_done(self, lane: _Lane, res) -> None:
        # Runs on the pool's result-handler thread.
        seq, pid, result = res
        self.pool.record_completion(pid)
        lane.results.put((seq, pid, result))
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    def _on_error(self, lane: _Lane, exc: BaseException) -> None:
        lane.results.put(exc)
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    # -- lifecycle / observability ----------------------------------------

    def close(self) -> None:
        """Stop dispatching; fail any lane still waiting (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes.values())
            self._lanes.clear()
            self._cond.notify_all()
        for lane in lanes:
            lane.results.put(SchedulerClosed("scheduler shut down"))
        self._dispatcher.join(timeout=10.0)

    def snapshot(self) -> dict:
        """JSON-ready view for ``/stats``."""
        with self._cond:
            return {
                "open_lanes": len(self._lanes),
                "pending_blocks": sum(
                    len(l.pending) for l in self._lanes.values()
                ),
                "inflight_blocks": self._inflight,
                "peak_inflight_blocks": self._peak_inflight,
                "blocks_dispatched": self._blocks_dispatched,
                "max_inflight": self.max_inflight,
                "closed": self._closed,
            }
