"""Counters, gauges, and latency histograms for the encode service.

Deliberately tiny and stdlib-only: a metric is a named, thread-safe value
holder and the registry renders one JSON snapshot for ``GET /metrics``.
Histograms keep fixed cumulative buckets (Prometheus-style, so scrapers
can aggregate across processes) plus a bounded reservoir of recent
samples for exact p50/p95 over the recent window.

The sharded front end (:mod:`repro.service.sharding`) runs one registry
per shard process and needs cluster-wide numbers, so every metric can
export a :meth:`state` dict and histograms can :meth:`Histogram.merge`
another histogram's state — combining the underlying bucket counts and
reservoir samples, never averaging quantiles (the p95 of two shards is a
property of the combined sample set, not the mean of two p95s).
:func:`merge_metric_states` rolls whole per-shard registry dumps into one
aggregate snapshot.
"""

from __future__ import annotations

import threading
from collections import deque

#: Default latency buckets (seconds): 1 ms .. 60 s, roughly x2.5 spaced.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Samples kept for quantile estimates (per histogram).
RESERVOIR_SIZE = 2048


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time value that can go up and down."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Cumulative-bucket histogram plus a recent-sample reservoir."""

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        reservoir_size: int = RESERVOIR_SIZE,
    ) -> None:
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help = help
        self.bounds = tuple(buckets)
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # +inf tail
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._reservoir: deque[float] = deque(maxlen=reservoir_size)

    def observe(self, value: float) -> None:
        with self._lock:
            i = 0
            while i < len(self.bounds) and value > self.bounds[i]:
                i += 1
            self._bucket_counts[i] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            self._reservoir.append(value)

    def quantile(self, q: float) -> float:
        """Exact quantile over the recent-sample window (0 if empty)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._reservoir:
                return 0.0
            ordered = sorted(self._reservoir)
            idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
            return ordered[idx]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def state(self, max_samples: int | None = None) -> dict:
        """Mergeable dump: bounds, raw bucket counts, and reservoir samples.

        ``max_samples`` caps the exported reservoir (most recent kept) so
        per-shard publishes stay small; ``None`` exports the whole window.
        """
        with self._lock:
            samples = list(self._reservoir)
            if max_samples is not None and len(samples) > max_samples:
                samples = samples[-max_samples:]
            return {
                "bounds": list(self.bounds),
                "bucket_counts": list(self._bucket_counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "samples": samples,
            }

    def merge(self, other: "Histogram | dict") -> None:
        """Fold another histogram (or its :meth:`state` dict) into this one.

        Bucket counts, count, and sum add; min/max combine; reservoir
        samples are concatenated (bounded by this histogram's reservoir),
        so quantiles of the merged histogram are computed over the union
        of samples — *not* an average of per-shard quantiles, which is
        meaningless for tail latencies.
        """
        state = other.state() if isinstance(other, Histogram) else other
        if tuple(state["bounds"]) != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{state['bounds']} != {list(self.bounds)}"
            )
        with self._lock:
            for i, n in enumerate(state["bucket_counts"]):
                self._bucket_counts[i] += n
            self._count += state["count"]
            self._sum += state["sum"]
            if state["min"] is not None:
                self._min = min(self._min, state["min"])
            if state["max"] is not None:
                self._max = max(self._max, state["max"])
            self._reservoir.extend(state["samples"])

    def snapshot(self) -> dict:
        with self._lock:
            cumulative = []
            running = 0
            for bound, n in zip(self.bounds, self._bucket_counts):
                running += n
                cumulative.append({"le": bound, "count": running})
            cumulative.append(
                {"le": "inf", "count": running + self._bucket_counts[-1]}
            )
            out = {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "buckets": cumulative,
            }
        # quantile() takes the lock itself; compute outside the hold.
        out["p50"] = self.quantile(0.50)
        out["p95"] = self.quantile(0.95)
        out["p99"] = self.quantile(0.99)
        return out


class MetricsRegistry:
    """Named metrics with one JSON-ready snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _register(self, metric):
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(
        self, name: str, help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def snapshot(self) -> dict:
        with self._lock:
            metrics = dict(self._metrics)
        return {name: m.snapshot() for name, m in sorted(metrics.items())}

    def state(self, max_samples: int | None = None) -> dict:
        """Mergeable dump of every metric (histograms keep raw samples).

        This is what a shard publishes to the cache bus so any shard can
        answer ``GET /metrics`` with a cluster-wide aggregate; see
        :func:`merge_metric_states`.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, dict] = {}
        for name, m in sorted(metrics.items()):
            if isinstance(m, Histogram):
                out[name] = {"type": "histogram", **m.state(max_samples)}
            else:
                out[name] = m.snapshot()
        return out


def merge_metric_states(states: list[dict]) -> dict:
    """Combine per-shard registry :meth:`MetricsRegistry.state` dumps.

    Counters and gauges add (a cluster's in-flight jobs are the sum of
    each shard's); histograms are merged sample-for-sample and
    bucket-for-bucket via :meth:`Histogram.merge`, so the aggregate
    p50/p95/p99 are computed over the union of every shard's reservoir —
    never by averaging per-shard quantiles.  Returns a snapshot-shaped
    dict (the same shape :meth:`MetricsRegistry.snapshot` produces).
    """
    merged: dict[str, dict] = {}
    hists: dict[str, Histogram] = {}
    for state in states:
        for name, metric in state.items():
            kind = metric.get("type")
            if kind == "histogram":
                h = hists.get(name)
                if h is None:
                    total = sum(
                        len(s[name]["samples"])
                        for s in states
                        if name in s and s[name].get("type") == "histogram"
                    )
                    h = hists[name] = Histogram(
                        name,
                        buckets=tuple(metric["bounds"]),
                        reservoir_size=max(1, total),
                    )
                h.merge(metric)
            elif kind in ("counter", "gauge"):
                slot = merged.setdefault(name, {"type": kind, "value": 0})
                slot["value"] += metric["value"]
    for name, h in hists.items():
        merged[name] = h.snapshot()
    return dict(sorted(merged.items()))
