"""Persistent Tier-1 worker pool for the encode service.

The offline encoder spins up a fresh :class:`multiprocessing.Pool` inside
every :meth:`CodeBlockWorkQueue.encode_all` call and tears it down before
returning — fine for one-shot CLI encodes, pure overhead for a server
handling a stream of images.  This module lifts the pool out into a
long-lived object: one set of worker processes survives across images
(the serving analogue of the paper's SPEs, which are loaded once and then
pull work forever), with warm-up, liveness checks, and crashed-worker
respawn on top.

The pool speaks the same duck interface :class:`CodeBlockWorkQueue`
expects of an injected pool — ``workers`` plus ``imap_unordered(payloads)``
yielding ``(seq, pid, CodeBlockResult)`` — so the offline encoder can be
pointed at it with zero changes to the Tier-1 path, keeping codestreams
byte-identical to the per-image-pool path.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass, field

from repro.core.workpool import _encode_task, default_workers
from repro.jpeg2000.tier1 import resolve_backend

#: Seconds a liveness ping may take before the pool is declared dead.
PING_TIMEOUT_S = 10.0


def _ping_task(i: int) -> int:
    """Trivial worker task used for warm-up and health checks."""
    return os.getpid()


def _abandon(mp_pool) -> None:
    """Tear down a possibly-wedged ``multiprocessing.Pool`` without joining.

    A worker SIGKILLed mid-queue-operation leaves the pool's shared queue
    locks held forever, so ``Pool.terminate()`` (which puts a sentinel on
    those queues and joins helper threads) can deadlock — observed on
    CPython 3.11.  Kill the worker processes directly, then run the
    built-in teardown on a daemon thread: it cleans up when the locks are
    free and merely leaks one parked thread when they are not.
    """
    for proc in list(getattr(mp_pool, "_pool", None) or []):
        try:
            proc.kill()
        except Exception:
            pass
    threading.Thread(
        target=mp_pool.terminate, name="pool-reaper", daemon=True
    ).start()


@dataclass
class PoolStats:
    """Lifetime counters of one :class:`PersistentWorkerPool`."""

    tasks_done: int = 0
    images_served: int = 0
    respawns: int = 0
    #: Blocks completed per worker pid across the pool's whole lifetime.
    blocks_per_worker: dict[int, int] = field(default_factory=dict)


class PersistentWorkerPool:
    """A reusable multiprocessing pool of Tier-1 block encoders.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` means one per CPU core.
    backend:
        Tier-1 backend, resolved once here (as in the one-shot queue) so
        codestreams cannot depend on per-child environments.
    mp_context:
        Optional :func:`multiprocessing.get_context` name.
    warmup:
        When true (default), block until every worker has answered a ping
        so the first real request does not pay process start-up latency.
    """

    #: This pool's workers run :func:`repro.core.workpool._encode_task` on
    #: pickled ``(seq, coeffs, band, backend)`` payloads; they do not attach
    #: shared-memory planes, so plane dispatch must fall back to pickling.
    supports_shared_memory = False

    def __init__(
        self,
        workers: int | None = None,
        backend: str | None = None,
        mp_context: str | None = None,
        warmup: bool = True,
    ) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.backend: str = resolve_backend(backend)
        self._ctx = (
            multiprocessing.get_context(mp_context)
            if mp_context
            else multiprocessing.get_context()
        )
        self._lock = threading.Lock()
        self._pool = None
        self.stats = PoolStats()
        self._closed = False
        self._start(warmup=warmup)

    # -- lifecycle ---------------------------------------------------------

    def _start(self, warmup: bool) -> None:
        self._pool = self._ctx.Pool(processes=self.workers)
        if warmup:
            self.warm_up()

    def warm_up(self) -> list[int]:
        """Touch every worker once; returns the live worker pids."""
        # chunksize=1 over >= workers items guarantees each process runs at
        # least one task, forcing lazy imports (numpy, tier1) to happen now.
        pids = self._pool.map(_ping_task, range(self.workers * 2), chunksize=1)
        return sorted(set(pids))

    def ping(self, timeout: float = PING_TIMEOUT_S) -> bool:
        """True if the pool answers a trivial task within ``timeout``."""
        if self._pool is None or self._closed:
            return False
        try:
            self._pool.apply_async(_ping_task, (0,)).get(timeout=timeout)
            return True
        except Exception:
            return False

    def ensure_healthy(self, timeout: float = PING_TIMEOUT_S) -> bool:
        """Ping the pool; respawn it if dead.  Returns True if a respawn
        happened.  (``multiprocessing.Pool`` already replaces workers that
        die *between* tasks; this recovers from a wedged/broken pool.)"""
        if self.ping(timeout=timeout):
            return False
        self.respawn()
        return True

    def respawn(self) -> None:
        """Abandon the current worker set and start a fresh one.

        Called when the pool failed a health check, so the old pool must
        be presumed wedged and is never joined (see :func:`_abandon`).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            old = self._pool
            if old is not None:
                _abandon(old)
            self.stats.respawns += 1
            self._start(warmup=True)

    def close(self) -> None:
        """Drain outstanding tasks and stop the workers (idempotent).

        A wedged pool (e.g. a worker SIGKILLed while holding the shared
        task-queue lock) cannot drain; rather than hang the shutdown path,
        fall back to terminate when the pool no longer answers pings.
        """
        responsive = self.ping(timeout=PING_TIMEOUT_S)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._pool is not None:
                if responsive:
                    self._pool.close()
                    self._pool.join()
                else:
                    _abandon(self._pool)
                self._pool = None

    def terminate(self) -> None:
        """Kill the workers without draining (idempotent).

        Uses the abandon path unconditionally: terminate is the abort
        handler, and joining a pool that might be wedged trades a fast
        exit for a potential deadlock.
        """
        with self._lock:
            self._closed = True
            if self._pool is not None:
                _abandon(self._pool)
                self._pool = None

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()

    # -- work submission ---------------------------------------------------

    def submit(self, payload, callback=None, error_callback=None):
        """Submit one ``(seq, coeffs, band, backend)`` block asynchronously.

        Returns the ``AsyncResult``; used by the scheduler, whose callbacks
        run on the pool's result-handler thread.
        """
        if self._pool is None:
            raise RuntimeError("pool is closed")
        return self._pool.apply_async(
            _encode_task, (payload,),
            callback=callback, error_callback=error_callback,
        )

    def run_batch(self, payload, timeout: float | None = None):
        """Run one micro-batch of small encodes as a single pool dispatch.

        ``payload`` is whatever :func:`repro.service.sharding.batching.
        _encode_batch_task` accepts — a tuple of pickled small images plus
        parameters.  The whole batch is one task: one pickling trip, one
        queue operation, one worker wake-up, which is the point of
        micro-batching requests that sit below the auto-serial thresholds
        (each would otherwise pay per-request dispatch overhead for a few
        milliseconds of work).  Blocks until the batch returns.
        """
        from repro.service.sharding.batching import _encode_batch_task

        if self._pool is None:
            raise RuntimeError("pool is closed")
        self.stats.images_served += len(payload)
        async_result = self._pool.apply_async(_encode_batch_task, (payload,))
        return async_result.get(timeout=timeout)

    def imap_unordered(self, payloads):
        """Yield ``(seq, pid, result)`` as blocks finish, pool kept alive.

        This is the injected-pool interface of
        :class:`repro.core.workpool.CodeBlockWorkQueue`: identical
        semantics to the one-shot pool path minus the per-image spawn.
        """
        if self._pool is None:
            raise RuntimeError("pool is closed")
        self.stats.images_served += 1
        for seq, pid, res in self._pool.imap_unordered(
            _encode_task, payloads, chunksize=1
        ):
            self.record_completion(pid)
            yield seq, pid, res

    def record_completion(self, pid: int) -> None:
        """Count one finished block against worker ``pid`` (thread-safe)."""
        with self._lock:
            self.stats.tasks_done += 1
            self.stats.blocks_per_worker[pid] = (
                self.stats.blocks_per_worker.get(pid, 0) + 1
            )

    def snapshot(self) -> dict:
        """JSON-ready view for ``/stats``."""
        with self._lock:
            return {
                "workers": self.workers,
                "backend": self.backend,
                "closed": self._closed,
                "tasks_done": self.stats.tasks_done,
                "images_served": self.stats.images_served,
                "respawns": self.stats.respawns,
                "blocks_per_worker": {
                    str(k): v for k, v in sorted(self.stats.blocks_per_worker.items())
                },
            }
