"""Content-addressed codestream cache with an LRU byte budget.

Serving traffic repeats itself — thumbnails regenerated on every deploy,
hot images re-requested by many clients — and a JPEG2000 encode is
expensive enough (Tier-1 dominates, per the paper) that recomputing an
identical codestream is pure waste.  The key is content-addressed:
SHA-256 over the raw pixels (dtype, shape, bytes) plus the *canonical*
encoder parameters.  Only parameters that change the codestream
participate; ``workers`` and ``tier1_backend`` are deliberately excluded
because every backend/worker-count combination is bit-exact (the repo's
central invariant) — a hit computed with 1 worker serves a request asking
for 8.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.jpeg2000.params import EncoderParams

#: EncoderParams fields that affect emitted bytes.  ``tier1_backend``,
#: ``workers``, and ``mem_budget`` are execution strategy (batch sizing
#: never changes the codestream), not coding parameters.
_CODESTREAM_FIELDS = (
    "lossless", "rate", "levels", "codeblock_size", "guard_bits",
    "base_quant_step", "tile_size", "progression", "precinct_size",
)


def canonical_params(params: EncoderParams) -> str:
    """Stable string of the codestream-affecting parameters."""
    return "|".join(
        f"{name}={getattr(params, name)!r}" for name in _CODESTREAM_FIELDS
    )


def cache_key(image: np.ndarray, params: EncoderParams) -> str:
    """SHA-256 content address of (pixels, coding parameters)."""
    arr = np.ascontiguousarray(image)
    h = hashlib.sha256()
    h.update(f"{arr.dtype.str}|{arr.shape}|".encode())
    h.update(arr.tobytes())
    h.update(canonical_params(params).encode())
    return h.hexdigest()


#: Per-entry bookkeeping charge beyond the payload: the key string, the
#: OrderedDict node, and the bytes-object header.  Without this a cache
#: full of tiny codestreams blows its nominal budget by a large factor —
#: 10k one-byte entries under a "64 KiB" budget actually hold ~1.6 MB of
#: keys and dict nodes.
ENTRY_OVERHEAD_BYTES = 96


class ResultCache:
    """Thread-safe LRU cache of codestream bytes under a byte budget.

    The budget charges each entry its *resident* cost — payload plus key
    plus :data:`ENTRY_OVERHEAD_BYTES` of per-entry bookkeeping — so the
    configured ``max_bytes`` bounds what the process actually holds, not
    just the sum of codestream lengths.

    ``max_bytes=0`` disables the cache entirely (every ``get`` misses,
    ``put`` is a no-op) — used by benchmarks to isolate pool effects.
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0
        self._payload_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def entry_cost(key: str, data: bytes) -> int:
        """Bytes one entry charges against the budget."""
        return len(data) + len(key) + ENTRY_OVERHEAD_BYTES

    def get(self, key: str, record: bool = True) -> bytes | None:
        """Look up ``key``; ``record=False`` skips the hit/miss counters.

        The service's single-flight path re-probes the cache after waiting
        on an in-flight encode; those internal probes pass ``record=False``
        so the stats stay one-lookup-per-request.
        """
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                if record:
                    self.misses += 1
                return None
            self._entries.move_to_end(key)
            if record:
                self.hits += 1
            return data

    def put(self, key: str, data: bytes) -> bool:
        """Insert unless the single item's full cost exceeds the budget."""
        if self.entry_cost(key, data) > self.max_bytes:
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= self.entry_cost(key, old)
                self._payload_bytes -= len(old)
            self._entries[key] = data
            self._bytes += self.entry_cost(key, data)
            self._payload_bytes += len(data)
            while self._bytes > self.max_bytes:
                evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes -= self.entry_cost(evicted_key, evicted)
                self._payload_bytes -= len(evicted)
                self.evictions += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._payload_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def snapshot(self) -> dict:
        """JSON-ready view for ``/stats``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes_used": self._bytes,
                "payload_bytes": self._payload_bytes,
                "overhead_bytes": self._bytes - self._payload_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
