"""Admission control: bounded in-flight jobs with reject-or-block policy.

A bounded queue is what separates "slow under load" from "falls over
under load": past a certain depth, accepted work only adds latency for
everyone (the pool's throughput is fixed by the worker count, exactly as
the paper's throughput is fixed by the SPE count).  The controller caps
the number of admitted-but-unfinished encode jobs; past the cap it either
fails fast (``reject``, the default — callers get an immediate 503 and
can retry elsewhere) or applies backpressure by making the submitter wait
(``block``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

POLICIES = ("reject", "block")


class QueueFullError(RuntimeError):
    """Raised under the ``reject`` policy when the service is saturated."""

    def __init__(self, max_queue: int) -> None:
        super().__init__(
            f"encode queue full ({max_queue} jobs in flight); retry later"
        )
        self.max_queue = max_queue


class AdmissionController:
    """Counting gate over concurrently admitted encode jobs.

    Parameters
    ----------
    max_queue:
        Maximum jobs admitted but not yet finished (queued + encoding).
    policy:
        ``"reject"`` raises :class:`QueueFullError` when full;
        ``"block"`` waits for a slot (optionally up to ``block_timeout_s``).
    block_timeout_s:
        Under ``block``, how long to wait before giving up and raising
        :class:`QueueFullError` anyway.  ``None`` waits forever.
    """

    def __init__(
        self,
        max_queue: int,
        policy: str = "reject",
        block_timeout_s: float | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.max_queue = max_queue
        self.policy = policy
        self.block_timeout_s = block_timeout_s
        self._cond = threading.Condition()
        self._inflight = 0
        self.peak_inflight = 0
        self.admitted = 0
        self.rejected = 0

    def try_acquire(self) -> bool:
        """Non-blocking admission attempt (the ``reject`` fast path)."""
        with self._cond:
            if self._inflight >= self.max_queue:
                self.rejected += 1
                return False
            self._admit_locked()
            return True

    def acquire(self) -> None:
        """Admit one job according to the configured policy."""
        with self._cond:
            if self.policy == "reject":
                if self._inflight >= self.max_queue:
                    self.rejected += 1
                    raise QueueFullError(self.max_queue)
                self._admit_locked()
                return
            ok = self._cond.wait_for(
                lambda: self._inflight < self.max_queue,
                timeout=self.block_timeout_s,
            )
            if not ok:
                self.rejected += 1
                raise QueueFullError(self.max_queue)
            self._admit_locked()

    def _admit_locked(self) -> None:
        self._inflight += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)
        self.admitted += 1

    def release(self) -> None:
        with self._cond:
            if self._inflight <= 0:
                raise RuntimeError("release() without matching acquire()")
            self._inflight -= 1
            self._cond.notify()

    @contextmanager
    def admit(self):
        """``with admission.admit(): ...`` — acquire/release bracket."""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def shedding(self) -> bool:
        """True while at capacity (new ``reject``-policy work would shed)."""
        with self._cond:
            return self._inflight >= self.max_queue

    def snapshot(self) -> dict:
        """JSON-ready view for ``/stats``."""
        with self._cond:
            return {
                "max_queue": self.max_queue,
                "policy": self.policy,
                "inflight": self._inflight,
                "peak_inflight": self.peak_inflight,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shedding": self._inflight >= self.max_queue,
            }
