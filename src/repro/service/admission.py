"""Admission control: bounded in-flight jobs, reject-or-block, load shedding.

A bounded queue is what separates "slow under load" from "falls over
under load": past a certain depth, accepted work only adds latency for
everyone (the pool's throughput is fixed by the worker count, exactly as
the paper's throughput is fixed by the SPE count).  The controller caps
the number of admitted-but-unfinished encode jobs; past the cap it either
fails fast (``reject``, the default — callers get an immediate 503 and
can retry elsewhere) or applies backpressure by making the submitter wait
(``block``).

:class:`LoadShedder` sits in front of the queue and watches *latency*
rather than depth: when the observed p95 of request time exceeds a
configured target, it starts refusing a deterministic fraction of
uncached work (503 + ``Retry-After`` derived from the live p99) before
the queue fills, so overload degrades to fast rejections instead of a
pile-up where every accepted request times out.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager

POLICIES = ("reject", "block")


class QueueFullError(RuntimeError):
    """Raised under the ``reject`` policy when the service is saturated."""

    def __init__(self, max_queue: int) -> None:
        super().__init__(
            f"encode queue full ({max_queue} jobs in flight); retry later"
        )
        self.max_queue = max_queue


class ShedError(QueueFullError):
    """Raised when the latency-based shedder refuses a request.

    Subclasses :class:`QueueFullError` so every 503 path in the HTTP
    layer and clients' retry logic treats both kinds of overload alike;
    carries ``retry_after_s`` so the response can tell clients how long
    the current p99 suggests they back off.
    """

    def __init__(self, p95_s: float, target_s: float,
                 retry_after_s: float) -> None:
        RuntimeError.__init__(
            self,
            f"shedding load: p95 {p95_s * 1e3:.0f} ms over target "
            f"{target_s * 1e3:.0f} ms; retry in {retry_after_s:.0f}s"
        )
        self.max_queue = 0
        self.p95_s = p95_s
        self.target_s = target_s
        self.retry_after_s = retry_after_s


class LoadShedder:
    """Latency-driven admission valve over a request-time histogram.

    Parameters
    ----------
    histogram:
        A :class:`repro.service.metrics.Histogram` of per-request wall
        time (the service's ``request_seconds``) — the shedder reads its
        recent-window p95/p99, it never records into it.
    target_p95_s:
        The latency objective.  While observed p95 <= target, nothing is
        shed.  Above it, the shed fraction ramps linearly with the
        overshoot ratio (``gain`` per 100% overshoot), capped at
        ``max_shed_fraction`` so a trickle of requests always gets
        through to probe whether the overload has passed.
    min_samples:
        Quantiles over fewer recent samples than this are noise; the
        shedder stays open until the window fills.

    Shedding is deterministic, not random: an error-diffusion accumulator
    sheds exactly the computed fraction of consecutive requests, so tests
    and replayed traffic see reproducible behaviour.
    """

    def __init__(
        self,
        histogram,
        target_p95_s: float,
        min_samples: int = 32,
        gain: float = 1.0,
        max_shed_fraction: float = 0.95,
    ) -> None:
        if target_p95_s <= 0:
            raise ValueError(f"target_p95_s must be > 0, got {target_p95_s}")
        if not (0.0 < max_shed_fraction <= 1.0):
            raise ValueError("max_shed_fraction must be in (0, 1]")
        self.histogram = histogram
        self.target_p95_s = target_p95_s
        self.min_samples = min_samples
        self.gain = gain
        self.max_shed_fraction = max_shed_fraction
        self._lock = threading.Lock()
        self._acc = 0.0
        self.shed = 0
        self.checked = 0

    def shed_probability(self) -> float:
        """Current shed fraction in [0, max_shed_fraction]."""
        if self.histogram.count < self.min_samples:
            return 0.0
        p95 = self.histogram.quantile(0.95)
        if p95 <= self.target_p95_s:
            return 0.0
        overshoot = p95 / self.target_p95_s - 1.0
        return min(self.max_shed_fraction, self.gain * overshoot)

    def admit(self) -> None:
        """Pass the request through or raise :class:`ShedError`.

        Callers invoke this only for work that will actually reach the
        pool — cache hits bypass the shedder entirely, so cached traffic
        keeps flowing at full rate during an overload.
        """
        prob = self.shed_probability()
        with self._lock:
            self.checked += 1
            if prob <= 0.0:
                self._acc = 0.0
                return
            self._acc += prob
            if self._acc < 1.0:
                return
            self._acc -= 1.0
            self.shed += 1
        p99 = self.histogram.quantile(0.99)
        retry_after = max(1.0, math.ceil(p99))
        raise ShedError(self.histogram.quantile(0.95), self.target_p95_s,
                        retry_after)

    def snapshot(self) -> dict:
        """JSON-ready view for ``/stats``."""
        with self._lock:
            shed, checked, acc = self.shed, self.checked, self._acc
        return {
            "target_p95_s": self.target_p95_s,
            "observed_p95_s": self.histogram.quantile(0.95),
            "observed_p99_s": self.histogram.quantile(0.99),
            "shed_probability": self.shed_probability(),
            "checked": checked,
            "shed": shed,
        }


class AdmissionController:
    """Counting gate over concurrently admitted encode jobs.

    Parameters
    ----------
    max_queue:
        Maximum jobs admitted but not yet finished (queued + encoding).
    policy:
        ``"reject"`` raises :class:`QueueFullError` when full;
        ``"block"`` waits for a slot (optionally up to ``block_timeout_s``).
    block_timeout_s:
        Under ``block``, how long to wait before giving up and raising
        :class:`QueueFullError` anyway.  ``None`` waits forever.
    """

    def __init__(
        self,
        max_queue: int,
        policy: str = "reject",
        block_timeout_s: float | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.max_queue = max_queue
        self.policy = policy
        self.block_timeout_s = block_timeout_s
        self._cond = threading.Condition()
        self._inflight = 0
        self.peak_inflight = 0
        self.admitted = 0
        self.rejected = 0

    def try_acquire(self) -> bool:
        """Non-blocking admission attempt (the ``reject`` fast path)."""
        with self._cond:
            if self._inflight >= self.max_queue:
                self.rejected += 1
                return False
            self._admit_locked()
            return True

    def acquire(self) -> None:
        """Admit one job according to the configured policy."""
        with self._cond:
            if self.policy == "reject":
                if self._inflight >= self.max_queue:
                    self.rejected += 1
                    raise QueueFullError(self.max_queue)
                self._admit_locked()
                return
            ok = self._cond.wait_for(
                lambda: self._inflight < self.max_queue,
                timeout=self.block_timeout_s,
            )
            if not ok:
                self.rejected += 1
                raise QueueFullError(self.max_queue)
            self._admit_locked()

    def _admit_locked(self) -> None:
        self._inflight += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)
        self.admitted += 1

    def release(self) -> None:
        with self._cond:
            if self._inflight <= 0:
                raise RuntimeError("release() without matching acquire()")
            self._inflight -= 1
            self._cond.notify()

    @contextmanager
    def admit(self):
        """``with admission.admit(): ...`` — acquire/release bracket."""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def shedding(self) -> bool:
        """True while at capacity (new ``reject``-policy work would shed)."""
        with self._cond:
            return self._inflight >= self.max_queue

    def snapshot(self) -> dict:
        """JSON-ready view for ``/stats``."""
        with self._cond:
            return {
                "max_queue": self.max_queue,
                "policy": self.policy,
                "inflight": self._inflight,
                "peak_inflight": self.peak_inflight,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shedding": self._inflight >= self.max_queue,
            }
