"""Long-running encode service: the serving layer over the offline codec.

One-shot CLI encodes spin up a worker pool per image; a server cannot.
This package keeps a single :class:`PersistentWorkerPool` alive across
requests (the paper's SPEs, loaded once), multiplexes concurrent requests
onto it block-by-block through :class:`EncodeScheduler` (the paper's
PPE-side dynamic queue), short-circuits repeated work through a
content-addressed :class:`ResultCache`, bounds load with
:class:`AdmissionController`, and observes it all via
:class:`MetricsRegistry`.  :mod:`repro.service.http` puts a stdlib HTTP
front end on top (``python -m repro serve``).

Every codestream produced here is byte-identical to the offline
:func:`repro.jpeg2000.encoder.encode` — determinism survives the pool,
the scheduler interleaving, and the cache by construction, and is
enforced by tests.
"""

from __future__ import annotations

import hashlib
import io
import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.jpeg2000.dwt_fast import DecodeStageTimings, StageTimings
from repro.jpeg2000.encoder import EncodeResult, encode
from repro.jpeg2000.params import EncoderParams
from repro.service.admission import (
    AdmissionController,
    LoadShedder,
    QueueFullError,
    ShedError,
)
from repro.service.cache import ResultCache, cache_key
from repro.service.metrics import MetricsRegistry
from repro.service.pool import PersistentWorkerPool
from repro.service.scheduler import EncodeScheduler, SchedulerClosed

__all__ = [
    "AdmissionController",
    "DecodeResponse",
    "EncodeResponse",
    "EncodeScheduler",
    "EncodeService",
    "LoadShedder",
    "MetricsRegistry",
    "PersistentWorkerPool",
    "QueueFullError",
    "ResultCache",
    "SchedulerClosed",
    "ServiceConfig",
    "ShedError",
    "cache_key",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`EncodeService` (CLI ``serve`` flags)."""

    workers: int | None = None  # None = one per CPU core
    backend: str | None = None
    cache_bytes: int = 64 * 2**20
    max_queue: int = 32
    admission_policy: str = "reject"
    #: Blocks in flight inside the pool; None = 2 * workers (see scheduler).
    max_inflight_blocks: int | None = None
    #: Identity of this service inside a shard cluster; None = unsharded.
    shard_id: int | None = None
    #: Unix-socket path of the cross-shard cache bus; None = no bus.
    bus_path: str | None = None
    #: p95 latency objective for load shedding; None disables the shedder.
    shed_target_p95_s: float | None = None
    #: Micro-batch window: None = off, "auto" = size from live encode
    #: latency, or a fixed window in seconds.
    batch_window: str | float | None = None
    #: Flush a micro-batch early once this many requests are waiting.
    batch_max: int = 8
    #: ``"auto"`` consults the execution planner (:mod:`repro.plan`) for
    #: every uncached encode — backends, workers, chunking from the
    #: calibrated cost model, with live stage timings fed back as bounded
    #: corrections.  ``None`` (default) plans only requests that ask for
    #: it (``?plan=auto`` / ``params.plan``).
    plan: str | None = None


@dataclass
class EncodeResponse:
    """One served encode: the codestream plus how it was produced."""

    codestream: bytes
    cache_hit: bool
    queue_wait_s: float
    encode_s: float
    params: EncoderParams
    result: EncodeResult | None = field(default=None, repr=False)
    #: Where a hit came from: "local", "remote" (cross-shard bus), or None.
    cache_source: str | None = None
    #: True when the encode rode a micro-batch dispatch.
    batched: bool = False
    #: Planner decision (:class:`repro.plan.PlanDecision`) when this encode
    #: was planned; None for classic knob-driven or cached responses.
    plan: object = None


@dataclass
class DecodeResponse:
    """One served decode: the reconstructed image plus how it was produced."""

    image: np.ndarray = field(repr=False)
    cache_hit: bool
    decode_s: float
    backend: str


class EncodeService:
    """Thread-safe facade: many submitting threads, one shared pool."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.pool = PersistentWorkerPool(
            workers=self.config.workers, backend=self.config.backend
        )
        self.scheduler = EncodeScheduler(
            self.pool, max_inflight=self.config.max_inflight_blocks
        )
        self.cache = ResultCache(self.config.cache_bytes)
        self.admission = AdmissionController(
            self.config.max_queue, policy=self.config.admission_policy
        )
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._requests = m.counter("requests_total", "encode requests received")
        self._encoded = m.counter("images_encoded_total", "full encodes run")
        self._cache_hits = m.counter("cache_hits_total", "requests served from cache")
        self._coalesced = m.counter(
            "coalesced_total", "requests that waited on an identical in-flight encode"
        )
        self._rejected = m.counter("rejected_total", "requests shed by admission")
        self._errors = m.counter("errors_total", "requests failed with an error")
        self._verified = m.counter(
            "verified_total", "served codestreams round-trip verified"
        )
        self._verify_failures = m.counter(
            "verify_failures_total", "round-trip verifications that failed"
        )
        self._remote_hits = m.counter(
            "remote_cache_hits_total", "requests served from the cross-shard bus"
        )
        self._shed = m.counter(
            "shed_total", "requests refused by the latency shedder"
        )
        self._batched = m.counter(
            "batched_total", "requests encoded via a micro-batch dispatch"
        )
        self._hit_ratio_gauge = m.gauge(
            "cache_hit_ratio",
            "fraction of requests served from any cache (local or bus)",
        )
        self._inflight_gauge = m.gauge("inflight_jobs", "admitted unfinished jobs")
        self._queue_wait = m.histogram("queue_wait_seconds", "admission wait")
        self._encode_time = m.histogram("encode_seconds", "pool encode time")
        self._request_time = m.histogram("request_seconds", "total request time")
        # Per-pipeline-stage wall time (StageTimings from every full encode).
        self._stage_times = {
            stage: m.histogram(
                f"stage_{stage}_seconds", f"encode {stage} stage wall time"
            )
            for stage in StageTimings.STAGES
        }
        self._verify_time = m.histogram(
            "verify_seconds", "round-trip verification wall time"
        )
        self._dec_requests = m.counter(
            "decode_requests_total", "decode requests received"
        )
        self._decoded = m.counter("images_decoded_total", "full decodes run")
        self._dec_cache_hits = m.counter(
            "decode_cache_hits_total", "decode requests served from cache"
        )
        self._dec_errors = m.counter(
            "decode_errors_total", "decode requests failed with an error"
        )
        self._decode_time = m.histogram("decode_seconds", "decode wall time")
        self._dec_stage_times = {
            stage: m.histogram(
                f"decode_stage_{stage}_seconds",
                f"decode {stage} stage wall time",
            )
            for stage in DecodeStageTimings.STAGES
        }
        self._started = time.time()
        self._closed = False
        self._close_lock = threading.Lock()
        # Single-flight table: cache key -> Event set when the leading
        # encode for that key completes (successfully or not).
        self._singleflight: dict[str, threading.Event] = {}
        self._sf_lock = threading.Lock()
        # Sharding attachments (all optional; lazy imports keep the
        # sharding package out of unsharded deployments entirely).
        self.remote_cache = None
        if self.config.bus_path is not None:
            from repro.service.sharding.cachebus import CacheBusClient

            self.remote_cache = CacheBusClient(self.config.bus_path)
        self.shedder = None
        if self.config.shed_target_p95_s is not None:
            self.shedder = LoadShedder(
                self._request_time, self.config.shed_target_p95_s
            )
        # One planner per service process: owns the EWMA corrections the
        # live stage histograms feed, and the selection counters /stats
        # reports.  Constructing it never measures anything.
        from repro.plan import ServicePlanner

        self.planner = ServicePlanner()
        self.batcher = None
        if self.config.batch_window is not None:
            from repro.service.sharding.batching import MicroBatcher

            if self.config.batch_window == "auto":
                # Wait about half a typical pool encode: long enough to
                # collect a burst, short enough not to dominate latency.
                # Before the histogram has samples, the planner's cost
                # model seeds the window instead of a blind constant.
                self.batcher = MicroBatcher(
                    pool=self.pool,
                    window_provider=self._batch_window_suggestion,
                    max_batch=self.config.batch_max,
                )
            else:
                self.batcher = MicroBatcher(
                    pool=self.pool,
                    window_s=float(self.config.batch_window),
                    max_batch=self.config.batch_max,
                )

    # -- serving -----------------------------------------------------------

    def encode_image(
        self,
        image: np.ndarray,
        params: EncoderParams | None = None,
        priority: int = 0,
        verify: bool = False,
    ) -> EncodeResponse:
        """Encode one image through the shared pool (or the cache).

        Identical concurrent requests are coalesced (single-flight): one
        leader encodes while the rest wait and return the cached bytes, so
        a burst of duplicates costs one pool trip instead of N.

        ``verify`` round-trips the served bytes (cached or fresh) through
        the decoder before returning (see
        :func:`repro.verify.roundtrip.verify_roundtrip`); a failed check
        raises :class:`repro.verify.VerificationError` — the HTTP layer
        maps it to 422.

        Raises :class:`QueueFullError` when admission sheds the request and
        :class:`SchedulerClosed` if the service is shutting down.
        """
        if self._closed:
            raise SchedulerClosed("service is closed")
        if params is None:
            params = EncoderParams.lossless_default()
        self._requests.inc()
        t_start = time.perf_counter()

        key = cache_key(image, params)
        leader_key = None
        remote_lease = False
        first_probe = True
        try:
            while True:
                # Cache first: a hit never touches admission or the pool,
                # so cached traffic keeps flowing even while load-shedding.
                cached = self.cache.get(key, record=first_probe)
                first_probe = False
                if cached is not None:
                    self._cache_hits.inc()
                    if verify:
                        self._verify_codestream(image, cached, params)
                    self._request_time.observe(time.perf_counter() - t_start)
                    self._update_hit_ratio()
                    return EncodeResponse(
                        codestream=cached, cache_hit=True,
                        queue_wait_s=0.0, encode_s=0.0, params=params,
                        cache_source="local",
                    )
                if self.cache.max_bytes <= 0 or leader_key is not None:
                    break  # no cache to coalesce through, or we lead
                with self._sf_lock:
                    event = self._singleflight.get(key)
                    if event is None:
                        self._singleflight[key] = threading.Event()
                        leader_key = key
                if leader_key is None:
                    # A leader is already encoding these exact bytes+params;
                    # wait it out instead of re-encoding.
                    self._coalesced.inc()
                    event.wait()
                # Loop: re-check the cache — either the leader just finished,
                # or we took leadership and must confirm the cache is still
                # cold (a previous leader may have filled it in the gap).

            if leader_key is not None and self.remote_cache is not None:
                # Cross-shard single-flight: ask the bus for the value or
                # the lease.  "hit" means another shard already encoded
                # (or is just finishing) these exact bytes+params; "lead"
                # obliges us to publish or release.  Bus trouble fails
                # open into a plain local encode.
                status, data = self.remote_cache.lease(key)
                if status == "hit" and data is not None:
                    self.cache.put(key, data)
                    self._remote_hits.inc()
                    if verify:
                        self._verify_codestream(image, data, params)
                    self._request_time.observe(time.perf_counter() - t_start)
                    self._update_hit_ratio()
                    return EncodeResponse(
                        codestream=data, cache_hit=True,
                        queue_wait_s=0.0, encode_s=0.0, params=params,
                        cache_source="remote",
                    )
                remote_lease = status == "lead"

            if self.shedder is not None:
                # Only work that would reach the pool is sheddable; every
                # cached/coalesced return above bypassed this entirely.
                try:
                    self.shedder.admit()
                except ShedError:
                    self._shed.inc()
                    self._rejected.inc()
                    raise
            try:
                self.admission.acquire()
            except QueueFullError:
                self._rejected.inc()
                raise
            t_admitted = time.perf_counter()
            self._queue_wait.observe(t_admitted - t_start)
            self._inflight_gauge.inc()
            batched = False
            result = None
            # Execution planning: per-request opt-in (params.plan) or the
            # service-wide default (config.plan="auto").  Cached and
            # coalesced returns above never pay for it, and the cache key
            # deliberately ignores execution strategy, so planned and
            # unplanned requests share entries.
            plan_decision = None
            exec_params = params
            if params.plan is not None or self.config.plan == "auto":
                plan_params = (
                    params if params.plan is not None
                    else replace(params, plan="auto")
                )
                exec_params, plan_decision = self.planner.decide(
                    image.shape, plan_params
                )
            try:
                if self.batcher is not None and self._is_micro(image, params):
                    codestream = self.batcher.submit(
                        image, exec_params
                    ).codestream
                    batched = True
                    self._batched.inc()
                else:
                    with self.scheduler.job(priority=priority) as job:
                        result = encode(image, exec_params, pool=job)
                    codestream = result.codestream
            except Exception:
                self._errors.inc()
                raise
            finally:
                self._inflight_gauge.dec()
                self.admission.release()
            if verify:
                self._verify_codestream(image, codestream, params)
            t_done = time.perf_counter()
            self._encoded.inc()
            self._encode_time.observe(t_done - t_admitted)
            self._request_time.observe(t_done - t_start)
            if result is not None and result.timings is not None:
                for stage, hist in self._stage_times.items():
                    hist.observe(getattr(result.timings, stage))
                # Close the planner's loop: actual stage seconds nudge the
                # bounded EWMA corrections the next prediction uses.
                self.planner.observe(plan_decision, result.timings)
            self.cache.put(key, codestream)
            if remote_lease:
                # Publishing stores the value in the bus AND releases the
                # lease, waking every shard parked on this key.
                self.remote_cache.put(key, codestream)
                remote_lease = False
            self._update_hit_ratio()
            return EncodeResponse(
                codestream=codestream, cache_hit=False,
                queue_wait_s=t_admitted - t_start, encode_s=t_done - t_admitted,
                params=params, result=result, batched=batched,
                plan=plan_decision,
            )
        finally:
            if remote_lease:
                # Failed while holding the cross-shard lease: hand it back
                # so a waiting shard can take over instead of timing out.
                self.remote_cache.release(key)
            if leader_key is not None:
                with self._sf_lock:
                    pending = self._singleflight.pop(leader_key, None)
                if pending is not None:
                    pending.set()

    def decode_image(
        self,
        codestream: bytes,
        backend: str | None = None,
        workers: int | None = 1,
        plan: object = None,
    ) -> DecodeResponse:
        """Decode one codestream, with the same serving affordances as encode.

        Decodes run inline on the request thread (block fan-out happens
        inside :func:`repro.jpeg2000.decoder.decode` itself), but share the
        encode path's admission control — a decode burst cannot starve the
        pool queue unbounded — and a content-addressed cache keyed on the
        codestream bytes alone: every backend reconstructs identical
        samples, so a hit is valid regardless of which backend filled it.

        Raises :class:`repro.jpeg2000.errors.CodestreamError` for malformed
        input (HTTP 400), :class:`QueueFullError` when admission sheds the
        request (503), and :class:`SchedulerClosed` while shutting down.
        """
        from repro.jpeg2000.decoder import decode, resolve_dec_backend

        if self._closed:
            raise SchedulerClosed("service is closed")
        resolved = resolve_dec_backend(backend)
        self._dec_requests.inc()
        key = "dec:" + hashlib.sha256(codestream).hexdigest()
        cached = self.cache.get(key)
        if cached is not None:
            self._dec_cache_hits.inc()
            return DecodeResponse(
                image=_unpack_image(cached), cache_hit=True,
                decode_s=0.0, backend=resolved,
            )
        try:
            self.admission.acquire()
        except QueueFullError:
            self._rejected.inc()
            raise
        self._inflight_gauge.inc()
        timings = DecodeStageTimings()
        t0 = time.perf_counter()
        if plan is None and self.config.plan == "auto":
            plan = "auto"
        try:
            image = decode(
                codestream, backend=resolved, workers=workers, timings=timings,
                plan=plan,
            )
        except Exception:
            self._dec_errors.inc()
            self._errors.inc()
            raise
        finally:
            self._inflight_gauge.dec()
            self.admission.release()
        decode_s = time.perf_counter() - t0
        self._decoded.inc()
        self._decode_time.observe(decode_s)
        for stage, hist in self._dec_stage_times.items():
            hist.observe(getattr(timings, stage))
        self.cache.put(key, _pack_image(image))
        return DecodeResponse(
            image=image, cache_hit=False, decode_s=decode_s, backend=resolved,
        )

    @staticmethod
    def _is_micro(image, params) -> bool:
        from repro.service.sharding.batching import is_micro_request

        return is_micro_request(image.shape, params)

    def _batch_window_suggestion(self) -> float:
        """Micro-batch window: live p50 when available, else the model.

        Half a typical small pool encode.  Until the ``encode_seconds``
        histogram has samples (cold start), the planner's cost model
        predicts the encode time of a nominal micro request instead of
        falling back to a blind constant.
        """
        live = self._encode_time.quantile(0.5)
        if live > 0.0:
            return live / 2
        from repro.plan import RequestShape, predict_stage_seconds

        pred = predict_stage_seconds(
            RequestShape(128, 128, 1), "batched", "fused", 1,
            corrections=self.planner.corrections,
        )
        return sum(pred.values()) / 2

    def _update_hit_ratio(self) -> None:
        requests = self._requests.value
        if requests:
            hits = self._cache_hits.value + self._remote_hits.value
            self._hit_ratio_gauge.set(hits / requests)

    def _verify_codestream(self, image, codestream: bytes, params) -> None:
        """Round-trip the bytes about to be served; raises on failure."""
        # Lazy import: only ?verify=1 requests pay for the decoder stack.
        from repro.verify.roundtrip import VerificationError, verify_roundtrip

        t0 = time.perf_counter()
        try:
            verify_roundtrip(image, codestream, params)
        except VerificationError:
            self._verify_failures.inc()
            raise
        finally:
            self._verify_time.observe(time.perf_counter() - t0)
        self._verified.inc()

    # -- observability -----------------------------------------------------

    def healthy(self) -> bool:
        return not self._closed and self.pool.ping()

    def stats(self) -> dict:
        """JSON-ready rollup for ``GET /stats``."""
        out = {
            "uptime_s": time.time() - self._started,
            "closed": self._closed,
            "shard_id": self.config.shard_id,
            "pool": self.pool.snapshot(),
            "scheduler": self.scheduler.snapshot(),
            "cache": self.cache.snapshot(),
            "admission": self.admission.snapshot(),
            "tier1_geometry_cache": self._geometry_cache_stats(),
            "plan": self.planner.stats(),
        }
        if self.shedder is not None:
            out["shedder"] = self.shedder.snapshot()
        if self.batcher is not None:
            out["batcher"] = self.batcher.snapshot()
        if self.remote_cache is not None:
            out["bus_client"] = self.remote_cache.snapshot()
        return out

    @staticmethod
    def _geometry_cache_stats() -> dict:
        # Lazy import: the service front end must not pay for the Tier-1
        # stack until an encode (or stats probe) actually needs it.
        from repro.jpeg2000.tier1_stats import geometry_cache_stats

        return geometry_cache_stats()

    # -- lifecycle ---------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` wait for in-flight work (idempotent).

        New submissions fail immediately; in-flight jobs run to completion
        when draining (graceful SIGTERM path), or are killed otherwise.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            deadline = time.time() + 60.0
            while self.admission.inflight > 0 and time.time() < deadline:
                time.sleep(0.02)
        if self.batcher is not None:
            self.batcher.close()  # flushes queued micro-batches
        self.scheduler.close()
        if drain:
            self.pool.close()
        else:
            self.pool.terminate()

    def __enter__(self) -> "EncodeService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)


def _pack_image(image: np.ndarray) -> bytes:
    """Serialize a decoded image for the byte-valued result cache."""
    buf = io.BytesIO()
    np.save(buf, image, allow_pickle=False)
    return buf.getvalue()


def _unpack_image(data: bytes) -> np.ndarray:
    return np.load(io.BytesIO(data), allow_pickle=False)
