"""Long-running encode service: the serving layer over the offline codec.

One-shot CLI encodes spin up a worker pool per image; a server cannot.
This package keeps a single :class:`PersistentWorkerPool` alive across
requests (the paper's SPEs, loaded once), multiplexes concurrent requests
onto it block-by-block through :class:`EncodeScheduler` (the paper's
PPE-side dynamic queue), short-circuits repeated work through a
content-addressed :class:`ResultCache`, bounds load with
:class:`AdmissionController`, and observes it all via
:class:`MetricsRegistry`.  :mod:`repro.service.http` puts a stdlib HTTP
front end on top (``python -m repro serve``).

Every codestream produced here is byte-identical to the offline
:func:`repro.jpeg2000.encoder.encode` — determinism survives the pool,
the scheduler interleaving, and the cache by construction, and is
enforced by tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.jpeg2000.dwt_fast import StageTimings
from repro.jpeg2000.encoder import EncodeResult, encode
from repro.jpeg2000.params import EncoderParams
from repro.service.admission import AdmissionController, QueueFullError
from repro.service.cache import ResultCache, cache_key
from repro.service.metrics import MetricsRegistry
from repro.service.pool import PersistentWorkerPool
from repro.service.scheduler import EncodeScheduler, SchedulerClosed

__all__ = [
    "AdmissionController",
    "EncodeResponse",
    "EncodeScheduler",
    "EncodeService",
    "MetricsRegistry",
    "PersistentWorkerPool",
    "QueueFullError",
    "ResultCache",
    "SchedulerClosed",
    "ServiceConfig",
    "cache_key",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`EncodeService` (CLI ``serve`` flags)."""

    workers: int | None = None  # None = one per CPU core
    backend: str | None = None
    cache_bytes: int = 64 * 2**20
    max_queue: int = 32
    admission_policy: str = "reject"
    #: Blocks in flight inside the pool; None = 2 * workers (see scheduler).
    max_inflight_blocks: int | None = None


@dataclass
class EncodeResponse:
    """One served encode: the codestream plus how it was produced."""

    codestream: bytes
    cache_hit: bool
    queue_wait_s: float
    encode_s: float
    params: EncoderParams
    result: EncodeResult | None = field(default=None, repr=False)


class EncodeService:
    """Thread-safe facade: many submitting threads, one shared pool."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.pool = PersistentWorkerPool(
            workers=self.config.workers, backend=self.config.backend
        )
        self.scheduler = EncodeScheduler(
            self.pool, max_inflight=self.config.max_inflight_blocks
        )
        self.cache = ResultCache(self.config.cache_bytes)
        self.admission = AdmissionController(
            self.config.max_queue, policy=self.config.admission_policy
        )
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._requests = m.counter("requests_total", "encode requests received")
        self._encoded = m.counter("images_encoded_total", "full encodes run")
        self._cache_hits = m.counter("cache_hits_total", "requests served from cache")
        self._coalesced = m.counter(
            "coalesced_total", "requests that waited on an identical in-flight encode"
        )
        self._rejected = m.counter("rejected_total", "requests shed by admission")
        self._errors = m.counter("errors_total", "requests failed with an error")
        self._verified = m.counter(
            "verified_total", "served codestreams round-trip verified"
        )
        self._verify_failures = m.counter(
            "verify_failures_total", "round-trip verifications that failed"
        )
        self._inflight_gauge = m.gauge("inflight_jobs", "admitted unfinished jobs")
        self._queue_wait = m.histogram("queue_wait_seconds", "admission wait")
        self._encode_time = m.histogram("encode_seconds", "pool encode time")
        self._request_time = m.histogram("request_seconds", "total request time")
        # Per-pipeline-stage wall time (StageTimings from every full encode).
        self._stage_times = {
            stage: m.histogram(
                f"stage_{stage}_seconds", f"encode {stage} stage wall time"
            )
            for stage in StageTimings.STAGES
        }
        self._started = time.time()
        self._closed = False
        self._close_lock = threading.Lock()
        # Single-flight table: cache key -> Event set when the leading
        # encode for that key completes (successfully or not).
        self._singleflight: dict[str, threading.Event] = {}
        self._sf_lock = threading.Lock()

    # -- serving -----------------------------------------------------------

    def encode_image(
        self,
        image: np.ndarray,
        params: EncoderParams | None = None,
        priority: int = 0,
        verify: bool = False,
    ) -> EncodeResponse:
        """Encode one image through the shared pool (or the cache).

        Identical concurrent requests are coalesced (single-flight): one
        leader encodes while the rest wait and return the cached bytes, so
        a burst of duplicates costs one pool trip instead of N.

        ``verify`` round-trips the served bytes (cached or fresh) through
        the decoder before returning (see
        :func:`repro.verify.roundtrip.verify_roundtrip`); a failed check
        raises :class:`repro.verify.VerificationError` — the HTTP layer
        maps it to 422.

        Raises :class:`QueueFullError` when admission sheds the request and
        :class:`SchedulerClosed` if the service is shutting down.
        """
        if self._closed:
            raise SchedulerClosed("service is closed")
        if params is None:
            params = EncoderParams.lossless_default()
        self._requests.inc()
        t_start = time.perf_counter()

        key = cache_key(image, params)
        leader_key = None
        first_probe = True
        try:
            while True:
                # Cache first: a hit never touches admission or the pool,
                # so cached traffic keeps flowing even while load-shedding.
                cached = self.cache.get(key, record=first_probe)
                first_probe = False
                if cached is not None:
                    self._cache_hits.inc()
                    if verify:
                        self._verify_codestream(image, cached, params)
                    self._request_time.observe(time.perf_counter() - t_start)
                    return EncodeResponse(
                        codestream=cached, cache_hit=True,
                        queue_wait_s=0.0, encode_s=0.0, params=params,
                    )
                if self.cache.max_bytes <= 0 or leader_key is not None:
                    break  # no cache to coalesce through, or we lead
                with self._sf_lock:
                    event = self._singleflight.get(key)
                    if event is None:
                        self._singleflight[key] = threading.Event()
                        leader_key = key
                if leader_key is None:
                    # A leader is already encoding these exact bytes+params;
                    # wait it out instead of re-encoding.
                    self._coalesced.inc()
                    event.wait()
                # Loop: re-check the cache — either the leader just finished,
                # or we took leadership and must confirm the cache is still
                # cold (a previous leader may have filled it in the gap).

            try:
                self.admission.acquire()
            except QueueFullError:
                self._rejected.inc()
                raise
            t_admitted = time.perf_counter()
            self._queue_wait.observe(t_admitted - t_start)
            self._inflight_gauge.inc()
            try:
                with self.scheduler.job(priority=priority) as job:
                    result = encode(image, params, pool=job)
            except Exception:
                self._errors.inc()
                raise
            finally:
                self._inflight_gauge.dec()
                self.admission.release()
            if verify:
                self._verify_codestream(image, result.codestream, params)
            t_done = time.perf_counter()
            self._encoded.inc()
            self._encode_time.observe(t_done - t_admitted)
            self._request_time.observe(t_done - t_start)
            if result.timings is not None:
                for stage, hist in self._stage_times.items():
                    hist.observe(getattr(result.timings, stage))
            self.cache.put(key, result.codestream)
            return EncodeResponse(
                codestream=result.codestream, cache_hit=False,
                queue_wait_s=t_admitted - t_start, encode_s=t_done - t_admitted,
                params=params, result=result,
            )
        finally:
            if leader_key is not None:
                with self._sf_lock:
                    pending = self._singleflight.pop(leader_key, None)
                if pending is not None:
                    pending.set()

    def _verify_codestream(self, image, codestream: bytes, params) -> None:
        """Round-trip the bytes about to be served; raises on failure."""
        # Lazy import: only ?verify=1 requests pay for the decoder stack.
        from repro.verify.roundtrip import VerificationError, verify_roundtrip

        try:
            verify_roundtrip(image, codestream, params)
        except VerificationError:
            self._verify_failures.inc()
            raise
        self._verified.inc()

    # -- observability -----------------------------------------------------

    def healthy(self) -> bool:
        return not self._closed and self.pool.ping()

    def stats(self) -> dict:
        """JSON-ready rollup for ``GET /stats``."""
        return {
            "uptime_s": time.time() - self._started,
            "closed": self._closed,
            "pool": self.pool.snapshot(),
            "scheduler": self.scheduler.snapshot(),
            "cache": self.cache.snapshot(),
            "admission": self.admission.snapshot(),
            "tier1_geometry_cache": self._geometry_cache_stats(),
        }

    @staticmethod
    def _geometry_cache_stats() -> dict:
        # Lazy import: the service front end must not pay for the Tier-1
        # stack until an encode (or stats probe) actually needs it.
        from repro.jpeg2000.tier1_stats import geometry_cache_stats

        return geometry_cache_stats()

    # -- lifecycle ---------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` wait for in-flight work (idempotent).

        New submissions fail immediately; in-flight jobs run to completion
        when draining (graceful SIGTERM path), or are killed otherwise.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            deadline = time.time() + 60.0
            while self.admission.inflight > 0 and time.time() < deadline:
                time.sleep(0.02)
        self.scheduler.close()
        if drain:
            self.pool.close()
        else:
            self.pool.terminate()

    def __enter__(self) -> "EncodeService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)
