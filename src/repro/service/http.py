"""Stdlib-only threaded HTTP front end for the encode service.

    POST /encode     raw BMP or binary PGM/PPM body -> .j2c codestream
    POST /decode     raw .j2c codestream body -> binary PGM/PPM image
    GET  /healthz    liveness (pings the worker pool)
    GET  /metrics    JSON metrics snapshot (counters/gauges/histograms)
    GET  /stats      pool / scheduler / cache / admission rollup

Coding parameters ride on the ``/encode`` query string and mirror the CLI
flags: ``lossy=1``, ``rate=0.1``, ``levels=5``, ``codeblock=64``,
``tier1_backend=batched``, ``dwt_backend=fused``, ``dwt_chunk=64``,
``priority=5``.  ``verify=1``
round-trips the served bytes through the decoder first; a failed check
returns 422 with a structured JSON body instead of bad bytes.
``/decode`` takes ``backend=batched|vectorized|reference`` and
``workers=N|auto`` (every combination reconstructs identical samples) and
answers 400 with the typed error name for malformed codestreams.  Each connection is handled on its own thread
(``ThreadingHTTPServer``); actual Tier-1 work is interleaved block-by-block
onto the shared persistent pool by the scheduler, so one huge upload
cannot starve small ones.

``run_server`` (the ``python -m repro serve`` entry) installs SIGTERM /
SIGINT handlers that stop accepting connections, let in-flight requests
finish, drain the worker pool, and exit 0 — a clean drain that the CI
smoke job asserts.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.image import ImageFormatError, parse_image
from repro.jpeg2000.params import EncoderParams
from repro.service import EncodeService, ServiceConfig
from repro.service.admission import QueueFullError
from repro.service.scheduler import SchedulerClosed
from repro.verify.roundtrip import VerificationError

#: Largest accepted upload; a 3072x3072x3 BMP (the paper's image) is ~28 MB.
MAX_BODY_BYTES = 128 * 2**20


def params_from_query(query: str) -> tuple[EncoderParams, int]:
    """Translate an ``/encode`` query string into (params, priority)."""
    q = {k: v[-1] for k, v in parse_qs(query).items()}
    unknown = set(q) - {
        "lossy", "rate", "levels", "codeblock", "priority",
        "tier1_backend", "dwt_backend", "dwt_chunk", "verify", "plan",
        "tile", "precinct", "progression", "mem_budget",
    }
    if unknown:
        raise ValueError(f"unknown query parameters: {sorted(unknown)}")
    plan_q = q.get("plan", "fixed")
    if plan_q not in ("auto", "fixed"):
        raise ValueError(f"plan must be 'auto' or 'fixed', got {plan_q!r}")
    try:
        rate = float(q["rate"]) if "rate" in q else None
        lossy = q.get("lossy", "0").lower() in ("1", "true", "yes") or rate is not None
        params = EncoderParams(
            lossless=not lossy,
            rate=rate,
            levels=int(q.get("levels", 5)),
            codeblock_size=int(q.get("codeblock", 64)),
            tier1_backend=q.get("tier1_backend", "auto"),
            dwt_backend=q.get("dwt_backend", "auto"),
            dwt_chunk_cols=int(q["dwt_chunk"]) if "dwt_chunk" in q else None,
            tile_size=int(q["tile"]) if "tile" in q else None,
            precinct_size=int(q["precinct"]) if "precinct" in q else None,
            progression=q.get("progression", "LRCP").upper(),
            mem_budget=(
                int(q["mem_budget"]) * 2**20 if "mem_budget" in q else None
            ),
            plan="auto" if plan_q == "auto" else None,
        )
        priority = int(q.get("priority", 0))
    except ValueError:
        raise
    return params, priority


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded server bound to one :class:`EncodeService`.

    A shard front end (:mod:`repro.service.sharding.frontend`) overrides
    ``metrics_provider`` / ``stats_provider`` with cluster-wide
    aggregations and sets ``shard_id`` so every response says which shard
    served it; standalone servers keep the per-service defaults.
    """

    # Join handler threads in server_close(): that *is* the graceful drain.
    daemon_threads = False
    allow_reuse_address = True
    # The stdlib default backlog of 5 drops connections under a concurrent
    # burst (SYNs reset once the queue overflows); accepting is cheap.
    request_queue_size = 128

    #: Optional cluster hooks (set by the shard front end).
    metrics_provider = None
    stats_provider = None
    shard_id: int | None = None

    def __init__(self, address, service: EncodeService, quiet: bool = False,
                 bind_and_activate: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(
            address, ServiceRequestHandler,
            bind_and_activate=bind_and_activate,
        )


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _respond(self, status: int, body: bytes, content_type: str,
                 extra_headers: dict[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.server.shard_id is not None:
            self.send_header("X-Shard", str(self.server.shard_id))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload: dict,
              extra_headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode() + b"\n"
        self._respond(status, body, "application/json", extra_headers)

    def _error(self, status: int, message: str,
               extra_headers: dict[str, str] | None = None) -> None:
        self._json(status, {"error": message}, extra_headers)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:
        path = urlparse(self.path).path
        service = self.server.service
        if path == "/healthz":
            if service.healthy():
                self._json(200, {"status": "ok"})
            else:
                self._error(503, "worker pool unavailable")
        elif path == "/metrics":
            provider = self.server.metrics_provider
            self._json(
                200, provider() if provider else service.metrics.snapshot()
            )
        elif path == "/stats":
            provider = self.server.stats_provider
            self._json(200, provider() if provider else service.stats())
        else:
            self._error(404, f"no such endpoint: {path}")

    def do_POST(self) -> None:
        parsed = urlparse(self.path)
        if parsed.path == "/encode":
            handler = self._post_encode
            empty_hint = "empty body; POST raw BMP or binary PGM/PPM bytes"
        elif parsed.path == "/decode":
            handler = self._post_decode
            empty_hint = "empty body; POST raw .j2c codestream bytes"
        else:
            self._error(404, f"no such endpoint: {parsed.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length <= 0:
            self._error(400, empty_hint)
            return
        if length > MAX_BODY_BYTES:
            self._error(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            return
        handler(parsed, self.rfile.read(length))

    def _post_encode(self, parsed, body: bytes) -> None:
        service = self.server.service
        try:
            params, priority = params_from_query(parsed.query)
            q = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
            verify = q.get("verify", "0").lower() in ("1", "true", "yes")
            image = parse_image(body)
        except ImageFormatError as exc:
            # Typed rejection of unsupported upload bytes: structured 4xx
            # (reason slug + message), never a generic 500.
            self._json(400, {"error": str(exc), "reason": exc.reason})
            return
        except ValueError as exc:
            self._error(400, str(exc))
            return
        try:
            response = service.encode_image(
                image, params, priority=priority, verify=verify
            )
        except QueueFullError as exc:
            # ShedError carries a Retry-After derived from the live p99;
            # a plain full queue keeps the old fixed one-second hint.
            retry_after = getattr(exc, "retry_after_s", None)
            self._error(
                503, str(exc),
                {"Retry-After": str(int(retry_after)) if retry_after else "1"},
            )
            return
        except SchedulerClosed:
            self._error(503, "service is shutting down")
            return
        except VerificationError as exc:
            # The encode ran but its bytes failed the round-trip check:
            # the request was well-formed, the entity is not servable.
            self._json(422, {"error": str(exc), "verify": exc.details})
            return
        except ValueError as exc:
            self._error(400, str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"encode failed: {exc!r}")
            return
        headers = {
            "X-Cache": "HIT" if response.cache_hit else "MISS",
            "X-Queue-Wait-Seconds": f"{response.queue_wait_s:.6f}",
            "X-Encode-Seconds": f"{response.encode_s:.6f}",
        }
        if response.cache_source is not None:
            headers["X-Cache-Source"] = response.cache_source
        if response.batched:
            headers["X-Batched"] = "1"
        if response.plan is not None:
            headers["X-Plan"] = response.plan.plan.header_value()
        if verify:
            headers["X-Verified"] = "roundtrip"
        self._respond(
            200, response.codestream, "image/x-jpeg2000-codestream", headers
        )

    def _post_decode(self, parsed, body: bytes) -> None:
        # Local import: /encode-only deployments never touch the decoder.
        from repro.image.pnm import dump_pnm
        from repro.jpeg2000.errors import CodestreamError

        service = self.server.service
        try:
            q = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
            unknown = set(q) - {"backend", "workers", "plan"}
            if unknown:
                raise ValueError(f"unknown query parameters: {sorted(unknown)}")
            backend = q.get("backend", "auto")
            workers_q = q.get("workers", "1")
            workers = None if workers_q.lower() == "auto" else int(workers_q)
            plan_q = q.get("plan", "fixed")
            if plan_q not in ("auto", "fixed"):
                raise ValueError(
                    f"plan must be 'auto' or 'fixed', got {plan_q!r}"
                )
        except ValueError as exc:
            self._error(400, str(exc))
            return
        try:
            response = service.decode_image(
                body, backend=backend, workers=workers,
                plan="auto" if plan_q == "auto" else None,
            )
        except QueueFullError as exc:
            retry_after = getattr(exc, "retry_after_s", None)
            self._error(
                503, str(exc),
                {"Retry-After": str(int(retry_after)) if retry_after else "1"},
            )
            return
        except SchedulerClosed:
            self._error(503, "service is shutting down")
            return
        except CodestreamError as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
            return
        except ValueError as exc:
            self._error(400, str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"decode failed: {exc!r}")
            return
        image = response.image
        headers = {
            "X-Cache": "HIT" if response.cache_hit else "MISS",
            "X-Decode-Seconds": f"{response.decode_s:.6f}",
            "X-Backend": response.backend,
        }
        if image.dtype.itemsize > 2:
            # PNM tops out at 16-bit samples; the decode itself succeeded,
            # the entity just has no wire format.
            self._error(422, f"decoded image is {image.dtype}, larger than "
                             "the 16-bit PGM/PPM response format")
            return
        content_type = ("image/x-portable-graymap" if image.ndim == 2
                        else "image/x-portable-pixmap")
        self._respond(200, dump_pnm(image), content_type, headers)


def make_server(
    service: EncodeService, host: str = "127.0.0.1", port: int = 0,
    quiet: bool = False,
) -> ServiceHTTPServer:
    """Bind (but do not run) a server; ``port=0`` picks a free port."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)


def run_server(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    quiet: bool = False,
) -> int:
    """Run until SIGTERM/SIGINT, then drain gracefully.  Returns 0."""
    service = EncodeService(config)
    server = make_server(service, host, port, quiet=quiet)

    def _request_shutdown(signum, frame):
        # shutdown() blocks until serve_forever() exits, and the handler
        # runs on the main thread *inside* serve_forever — hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _request_shutdown)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    bound_port = server.server_address[1]
    print(
        f"repro encode service on http://{host}:{bound_port}  "
        f"(workers={service.pool.workers}, backend={service.pool.backend}, "
        f"cache={service.cache.max_bytes // 2**20} MiB, "
        f"max-queue={service.admission.max_queue})",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.server_close()  # joins in-flight request threads
        service.close(drain=True)
        print("repro encode service: drained cleanly", flush=True)
    return 0
