"""Sharded serving tier: shard-per-core front end over the encode service.

One :class:`~repro.service.EncodeService` process tops out at one core's
worth of Python — accept/parse, scheduling, and small serial encodes all
contend for a single GIL while the other cores idle.  This package scales
the service the way the paper scales Tier-1 across SPEs: N independent
shard *processes*, each a full service (scheduler + warm pool + local
cache), all accepting on one listening port.

The pieces:

* :mod:`frontend` — pre-fork supervisor: shard processes ``accept()`` on
  one port (``SO_REUSEPORT`` where the kernel load-balances listeners,
  inherited-FD fallback otherwise), crashed shards respawn, SIGTERM
  drains every shard gracefully.
* :mod:`cachebus` — cross-shard content-addressed result cache: a tiny
  cache-server thread owns codestream values in shared-memory segments
  (reusing :mod:`repro.core.workpool`'s shm plumbing) and extends
  single-flight coalescing across shard boundaries via leases, so a hit
  or in-flight encode on any shard serves all shards.
* :mod:`batching` — micro-batching of requests below the auto-serial
  thresholds into one pool dispatch per batch window, sized from the live
  ``encode_seconds`` histogram.

Load shedding lives with admission control
(:class:`repro.service.admission.LoadShedder`); per-shard p95/p99 drive
it, so overload degrades to fast 503 + ``Retry-After`` instead of
collapse.  Byte-identity across shard counts holds by construction —
every shard runs the same deterministic ``encode()`` — and is enforced by
tests and the existing verify gate.
"""

from repro.service.sharding.frontend import (  # noqa: F401
    ShardCluster,
    ShardClusterConfig,
    run_sharded_server,
)
