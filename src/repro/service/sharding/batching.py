"""Micro-batching of small encode requests into one pool dispatch.

The auto-serial cutovers (:func:`repro.jpeg2000.dwt_fast.dwt_serial_threshold`,
:func:`repro.core.workpool.tier1_serial_threshold`) exist because a
small image cannot amortize a pool trip — so the service encodes it
inline, on the request thread, under the shard's GIL.  A burst of such
requests then serializes behind one core while the warm worker pool sits
idle.  Micro-batching inverts that: requests below the auto-serial
thresholds are collected for one *batch window* and shipped to the pool
as a single task (:func:`_encode_batch_task`) — one pickling trip, one
queue operation, one worker wake-up for the whole batch, which is
exactly the per-task-overhead amortization the thresholds were guarding
against, recovered by raising the task size instead of going serial.

The window is sized from live latency: the service passes a provider
reading its ``encode_seconds`` histogram, and the batcher waits about
half a typical small encode — long enough to collect a burst, short
enough that batching never dominates latency.  Byte-identity is free:
``encode()`` is deterministic, so a batched codestream equals the inline
one bit for bit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import numpy as np

from repro.core.workpool import tier1_serial_threshold
from repro.jpeg2000.dwt_fast import dwt_serial_threshold
from repro.plan.model import estimate_code_blocks  # noqa: F401  (re-export)

#: Bounds on the adaptive batch window (seconds): never wait less than a
#: scheduler tick, never add more than 50 ms of latency to a request.
MIN_WINDOW_S = 0.002
MAX_WINDOW_S = 0.050

#: Fallback window when the histogram has no samples yet.
DEFAULT_WINDOW_S = 0.005


def is_micro_request(shape, params) -> bool:
    """True when an encode sits below *both* auto-serial cutovers.

    These are the requests that would run inline on the shard's request
    thread (the pool cannot win per-request) — precisely the population
    micro-batching is for.  Larger images go through the scheduler as
    before.  The cutovers come from the planner's model (env overrides
    still win), so what counts as "micro" tracks the calibrated machine.
    """
    samples = int(np.prod(shape))
    if samples >= dwt_serial_threshold():
        return False
    blocks = estimate_code_blocks(shape, params.levels, params.codeblock_size)
    return blocks < tier1_serial_threshold()


def _encode_batch_task(payload):
    """Worker entry point: encode a whole micro-batch in one task.

    ``payload`` is a tuple of ``(shape, dtype_str, raw_bytes, params)``
    items; returns the list of codestream bytes in item order.  Each
    image is encoded serially inside the worker (``workers=1`` — these
    are sub-threshold images by construction), and ``self_check`` is
    dropped because the service layer verifies served bytes itself when
    asked to.
    """
    from repro.jpeg2000.encoder import encode

    out = []
    for shape, dtype_str, raw, params in payload:
        image = np.frombuffer(raw, dtype=np.dtype(dtype_str)).reshape(shape)
        run_params = replace(params, workers=1, self_check=False)
        out.append(encode(image, run_params).codestream)
    return out


class _BatchItem:
    __slots__ = ("shape", "dtype", "raw", "params", "event", "codestream",
                 "exc", "enqueued_at", "batch_size")

    def __init__(self, image: np.ndarray, params) -> None:
        arr = np.ascontiguousarray(image)
        self.shape = arr.shape
        self.dtype = arr.dtype.str
        self.raw = arr.tobytes()
        self.params = params
        self.event = threading.Event()
        self.codestream: bytes | None = None
        self.exc: BaseException | None = None
        self.enqueued_at = time.monotonic()
        self.batch_size = 0


class MicroBatcher:
    """Collect sub-threshold encodes; flush each window as one dispatch.

    Parameters
    ----------
    pool:
        A :class:`repro.service.pool.PersistentWorkerPool` (its
        :meth:`run_batch`), or ``None`` to always encode inline in the
        flusher thread (used when the pool is unavailable).
    window_s:
        Fixed batch window in seconds, or ``None`` to size it from
        ``window_provider`` each flush.
    window_provider:
        Zero-argument callable returning a suggested window (seconds);
        the service wires this to half the live ``encode_seconds`` p50.
        Clamped to [:data:`MIN_WINDOW_S`, :data:`MAX_WINDOW_S`].
    max_batch:
        Flush early once this many requests are waiting.
    """

    def __init__(
        self,
        pool=None,
        window_s: float | None = None,
        window_provider=None,
        max_batch: int = 8,
        dispatch_timeout_s: float = 300.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window_s is not None and window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.pool = pool
        self.window_s = window_s
        self.window_provider = window_provider
        self.max_batch = max_batch
        self.dispatch_timeout_s = dispatch_timeout_s
        self._cond = threading.Condition()
        self._items: list[_BatchItem] = []
        self._closed = False
        self.flushes = 0
        self.batched = 0
        self.pool_dispatches = 0
        self.inline_fallbacks = 0
        self.last_window_s = self.window()
        self.last_batch_size = 0
        self._flusher = threading.Thread(
            target=self._flush_loop, name="micro-batcher", daemon=True
        )
        self._flusher.start()

    # -- submission --------------------------------------------------------

    def window(self) -> float:
        if self.window_s is not None:
            return min(MAX_WINDOW_S, max(MIN_WINDOW_S, self.window_s))
        if self.window_provider is not None:
            try:
                suggested = float(self.window_provider())
            except Exception:
                suggested = DEFAULT_WINDOW_S
            if suggested <= 0:
                suggested = DEFAULT_WINDOW_S
            return min(MAX_WINDOW_S, max(MIN_WINDOW_S, suggested))
        return DEFAULT_WINDOW_S

    def submit(self, image: np.ndarray, params,
               timeout: float | None = None) -> _BatchItem:
        """Queue one small encode; blocks until its batch completes.

        Returns the finished item (``codestream`` set) or raises whatever
        the encode raised.  Must not be called for images above the
        auto-serial thresholds — check :func:`is_micro_request` first.
        """
        item = _BatchItem(image, params)
        with self._cond:
            if self._closed:
                raise RuntimeError("micro-batcher is closed")
            self._items.append(item)
            self._cond.notify_all()
        if not item.event.wait(
            timeout if timeout is not None else self.dispatch_timeout_s + 60.0
        ):
            raise TimeoutError("micro-batch did not complete in time")
        if item.exc is not None:
            raise item.exc
        return item

    # -- flushing ----------------------------------------------------------

    def _flush_loop(self) -> None:
        while True:
            with self._cond:
                while not self._items and not self._closed:
                    self._cond.wait()
                if not self._items and self._closed:
                    return
                window = self.window()
                self.last_window_s = window
                deadline = self._items[0].enqueued_at + window
                while (len(self._items) < self.max_batch
                       and not self._closed):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = self._items[: self.max_batch]
                del self._items[: self.max_batch]
            self._dispatch(batch)

    def _dispatch(self, batch: list[_BatchItem]) -> None:
        self.flushes += 1
        self.batched += len(batch)
        self.last_batch_size = len(batch)
        payload = tuple(
            (item.shape, item.dtype, item.raw, item.params) for item in batch
        )
        results: list[bytes] | None = None
        if self.pool is not None:
            try:
                results = self.pool.run_batch(
                    payload, timeout=self.dispatch_timeout_s
                )
                self.pool_dispatches += 1
            except Exception:
                results = None  # pool closed/broken: encode inline below
        if results is None:
            self.inline_fallbacks += 1
            for item in batch:
                try:
                    item.codestream = _encode_batch_task(
                        ((item.shape, item.dtype, item.raw, item.params),)
                    )[0]
                except Exception as exc:  # per-item: one bad image
                    item.exc = exc
                item.batch_size = len(batch)
                item.event.set()
            return
        for item, codestream in zip(batch, results):
            item.codestream = codestream
            item.batch_size = len(batch)
            item.event.set()

    # -- lifecycle / observability ----------------------------------------

    def close(self) -> None:
        """Flush whatever is queued, then stop the flusher (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._flusher.join(timeout=self.dispatch_timeout_s + 60.0)

    def snapshot(self) -> dict:
        """JSON-ready view for ``/stats``."""
        with self._cond:
            pending = len(self._items)
        return {
            "max_batch": self.max_batch,
            "window_s": self.last_window_s,
            "pending": pending,
            "flushes": self.flushes,
            "batched_requests": self.batched,
            "pool_dispatches": self.pool_dispatches,
            "inline_fallbacks": self.inline_fallbacks,
            "last_batch_size": self.last_batch_size,
            "mean_batch_size": (
                self.batched / self.flushes if self.flushes else 0.0
            ),
        }
