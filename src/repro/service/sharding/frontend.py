"""Pre-fork shard supervisor: N service processes accept on one port.

One :class:`~repro.service.EncodeService` process is GIL-bound on its
front half — accept/parse, scheduling, small serial encodes.  The fix is
the classic pre-fork shape: a supervisor process owns the port and the
cross-shard cache bus, and forks N *shard* processes, each running a full
service (scheduler + warm worker pool + local cache + its own metrics).

Two listener strategies, picked at start-up:

``reuseport``
    Every shard binds its **own** listening socket to the same
    ``(host, port)`` with ``SO_REUSEPORT``; the kernel load-balances
    incoming connections across the listeners.  For ``port=0`` the
    supervisor first binds an *anchor* socket (``SO_REUSEPORT``, bound,
    never listening — a non-listening TCP socket receives no
    connections) to learn the kernel-assigned port and to keep it
    reserved for respawned shards.

``inherit``
    The supervisor binds and listens one socket; forked shards wrap the
    inherited FD and ``accept()`` on it concurrently (the kernel hands
    each connection to exactly one accepter).  Fallback for kernels
    without ``SO_REUSEPORT``.

The supervisor's monitor thread respawns any shard that dies outside an
orderly shutdown (same recovery posture as the worker pool's
``ensure_healthy``).  ``stop(graceful=True)`` SIGTERMs every shard; each
drains exactly like the single-process server — stop accepting, finish
in-flight requests, drain the pool — and the supervisor prints the same
``drained cleanly`` line the CI smoke jobs grep for.

Shards are forked, not spawned: the inherit strategy needs FD
inheritance, and fork keeps the shared-memory resource tracker common to
the whole family (the same reason :mod:`repro.core.workpool` prefers it).
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace

from repro.service import EncodeService, ServiceConfig
from repro.service.http import ServiceHTTPServer

LISTENER_STRATEGIES = ("auto", "reuseport", "inherit")

#: Seconds a SIGTERMed shard gets to drain before SIGKILL.
DRAIN_TIMEOUT_S = 90.0

#: Seconds between shard liveness checks in the monitor thread.
MONITOR_INTERVAL_S = 0.2

#: Seconds between a shard's metrics/stats publications to the bus.
HEARTBEAT_S = 1.0


def reuseport_available() -> bool:
    """True when this kernel exposes working ``SO_REUSEPORT``."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False


@dataclass(frozen=True)
class ShardClusterConfig:
    """Knobs of one :class:`ShardCluster` (CLI ``serve --shards`` flags)."""

    shards: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    service: ServiceConfig = field(default_factory=ServiceConfig)
    quiet: bool = False
    #: ``auto`` picks reuseport when the kernel has it, else inherit.
    listener: str = "auto"
    #: Cross-shard result-cache budget (bus-owned, shared by all shards).
    bus_cache_bytes: int = 64 * 2**20
    heartbeat_s: float = HEARTBEAT_S

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.listener not in LISTENER_STRATEGIES:
            raise ValueError(
                f"listener must be one of {LISTENER_STRATEGIES}, "
                f"got {self.listener!r}"
            )


# -- shard child process ------------------------------------------------------


def _shard_main(
    shard_id: int,
    cluster: ShardClusterConfig,
    strategy: str,
    port: int,
    listen_sock: socket.socket | None,
    bus_path: str,
) -> None:
    """Entry point of one forked shard: serve until SIGTERM, then drain."""
    from repro.service.sharding.cachebus import CacheBusClient

    service_cfg = replace(
        cluster.service, shard_id=shard_id, bus_path=bus_path
    )
    service = EncodeService(service_cfg)

    if strategy == "reuseport":
        server = _ReusePortHTTPServer(
            (cluster.host, port), service, quiet=cluster.quiet
        )
    else:
        server = _InheritedSocketHTTPServer(
            listen_sock, service, quiet=cluster.quiet
        )

    bus = CacheBusClient(bus_path)
    _install_aggregation(server, service, bus, shard_id)

    # Forked children inherit the supervisor's signal handlers; replace
    # them before serving so a cluster-wide SIGTERM drains this shard
    # instead of re-running the supervisor's shutdown logic per process.
    stop_publishing = threading.Event()

    def _publish_once() -> None:
        bus.publish_stats(str(shard_id), {
            "pid": os.getpid(),
            "metrics": service.metrics.state(),
            "stats": service.stats(),
        })

    def _heartbeat() -> None:
        # Publish-then-wait: the first publication lands immediately, so
        # cluster-wide /metrics counts every live shard from the start.
        while True:
            try:
                _publish_once()
            except Exception:
                pass  # bus gone during shutdown: nothing to report to
            if stop_publishing.wait(cluster.heartbeat_s):
                return

    publisher = threading.Thread(
        target=_heartbeat, name=f"shard-{shard_id}-heartbeat", daemon=True
    )
    publisher.start()

    def _request_shutdown(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, _request_shutdown)

    if not cluster.quiet:
        print(
            f"repro shard {shard_id} (pid {os.getpid()}) on "
            f"http://{cluster.host}:{port} via {strategy}",
            flush=True,
        )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()  # joins in-flight request threads
        service.close(drain=True)
        stop_publishing.set()
        try:
            _publish_once()  # final numbers survive in the bus
        except Exception:
            pass
        if not cluster.quiet:
            print(f"repro shard {shard_id}: drained cleanly", flush=True)


class _ReusePortHTTPServer(ServiceHTTPServer):
    """Shard-owned listener sharing the port via ``SO_REUSEPORT``."""

    def server_bind(self) -> None:
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class _InheritedSocketHTTPServer(ServiceHTTPServer):
    """Shard accepting on the supervisor's already-listening socket."""

    def __init__(self, listen_sock: socket.socket, service,
                 quiet: bool = False) -> None:
        super().__init__(
            listen_sock.getsockname(), service, quiet=quiet,
            bind_and_activate=False,
        )
        # Swap out the fresh unbound socket TCPServer made for the
        # inherited one; it is already bound and listening, so neither
        # server_bind nor server_activate runs.
        self.socket.close()
        self.socket = listen_sock
        self.server_address = listen_sock.getsockname()


def _install_aggregation(server, service, bus, shard_id: int) -> None:
    """Point the server's /metrics and /stats at cluster-wide views.

    Aggregation runs on-demand in whichever shard got the request: the
    shard merges its own *live* metric state with every other shard's
    last-published state from the bus (its own stale publication is
    replaced by the live one, never double-counted).
    """
    from repro.service.metrics import merge_metric_states

    def metrics_provider() -> dict:
        local_state = service.metrics.state()
        published = {}
        try:
            published = bus.fetch_stats().get("shards", {})
        except Exception:
            pass
        states = {str(shard_id): local_state}
        for sid, entry in published.items():
            if sid == str(shard_id):
                continue
            state = (entry.get("payload") or {}).get("metrics")
            if state:
                states[sid] = state
        aggregate = merge_metric_states(list(states.values()))
        # Summing gauges is right for depths but not for ratios: rebuild
        # the cluster hit ratio from the merged counters instead.
        if "cache_hit_ratio" in aggregate:
            requests = aggregate.get("requests_total", {}).get("value", 0)
            hits = (
                aggregate.get("cache_hits_total", {}).get("value", 0)
                + aggregate.get("remote_cache_hits_total", {}).get("value", 0)
            )
            aggregate["cache_hit_ratio"]["value"] = (
                hits / requests if requests else 0.0
            )
        return {
            "shard_id": shard_id,
            "shards_reporting": len(states),
            "shard": service.metrics.snapshot(),
            "aggregate": aggregate,
        }

    def stats_provider() -> dict:
        bus_stats: dict = {}
        shard_stats: dict = {}
        try:
            fetched = bus.fetch_stats()
            bus_stats = fetched.get("cache", {})
            for sid, entry in fetched.get("shards", {}).items():
                payload = entry.get("payload") or {}
                if "stats" in payload:
                    shard_stats[sid] = payload["stats"]
        except Exception:
            pass
        shard_stats[str(shard_id)] = service.stats()  # live beats published
        return {
            "shard_id": shard_id,
            "shard": shard_stats[str(shard_id)],
            "cluster": {
                "cache_bus": bus_stats,
                "bus_client": bus.snapshot(),
                "shards": shard_stats,
            },
        }

    server.metrics_provider = metrics_provider
    server.stats_provider = stats_provider
    server.shard_id = shard_id


# -- supervisor ---------------------------------------------------------------


class ShardCluster:
    """Supervisor owning the port, the cache bus, and N shard processes."""

    def __init__(self, config: ShardClusterConfig) -> None:
        self.config = config
        self.strategy = (
            config.listener
            if config.listener != "auto"
            else ("reuseport" if reuseport_available() else "inherit")
        )
        if self.strategy == "reuseport" and not reuseport_available():
            raise RuntimeError("SO_REUSEPORT requested but not available")
        self.port: int | None = None
        self._anchor: socket.socket | None = None
        self._listener: socket.socket | None = None
        self._bus = None
        self._bus_dir: tempfile.TemporaryDirectory | None = None
        self.bus_path: str | None = None
        self._procs: dict[int, object] = {}  # shard_id -> mp.Process
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self.respawns = 0
        import multiprocessing

        self._ctx = multiprocessing.get_context("fork")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardCluster":
        from repro.service.sharding.cachebus import CacheBusServer

        # Start the shared-memory resource tracker *before* forking: the
        # whole family then shares one tracker, so a shard attaching a
        # bus segment re-registers idempotently (set semantics) instead
        # of teaching its own private tracker to unlink, at shard exit, a
        # segment the bus still owns.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass  # no tracker on this platform: nothing to pre-start

        cfg = self.config
        self._bus_dir = tempfile.TemporaryDirectory(prefix="repro-shards-")
        self.bus_path = os.path.join(self._bus_dir.name, "cachebus.sock")
        self._bus = CacheBusServer(
            self.bus_path, max_bytes=cfg.bus_cache_bytes
        ).start()

        if self.strategy == "reuseport":
            # Anchor: reserves the (possibly kernel-assigned) port for the
            # cluster's lifetime without ever receiving a connection.
            self._anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._anchor.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._anchor.bind((cfg.host, cfg.port))
            self.port = self._anchor.getsockname()[1]
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._listener.bind((cfg.host, cfg.port))
            self._listener.listen(128)
            self.port = self._listener.getsockname()[1]

        for shard_id in range(cfg.shards):
            self._spawn(shard_id)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, shard_id: int) -> None:
        proc = self._ctx.Process(
            target=_shard_main,
            args=(
                shard_id,
                self.config,
                self.strategy,
                self.port,
                self._listener,  # fork: inherited by memory, not pickled
                self.bus_path,
            ),
            name=f"repro-shard-{shard_id}",
        )
        proc.start()
        self._procs[shard_id] = proc

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(MONITOR_INTERVAL_S):
            with self._lock:
                dead = [
                    (sid, proc)
                    for sid, proc in self._procs.items()
                    if not proc.is_alive()
                ]
                for sid, proc in dead:
                    if self._stopping.is_set():
                        return
                    code = proc.exitcode
                    print(
                        f"repro shard {sid} died (exit {code}); respawning",
                        file=sys.stderr, flush=True,
                    )
                    self.respawns += 1
                    self._spawn(sid)

    def stop(self, graceful: bool = True) -> None:
        """SIGTERM-drain (or SIGKILL) every shard, then release the port."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        with self._lock:
            procs = dict(self._procs)
        sig = signal.SIGTERM if graceful else signal.SIGKILL
        for proc in procs.values():
            if proc.is_alive():
                try:
                    os.kill(proc.pid, sig)
                except ProcessLookupError:
                    pass
        deadline = time.monotonic() + (DRAIN_TIMEOUT_S if graceful else 5.0)
        for proc in procs.values():
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in procs.values():
            if proc.is_alive():  # drain overran its budget: stop waiting
                proc.kill()
                proc.join(timeout=5.0)
        if self._anchor is not None:
            self._anchor.close()
            self._anchor = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._bus is not None:
            self._bus.stop()
            self._bus = None
        if self._bus_dir is not None:
            self._bus_dir.cleanup()
            self._bus_dir = None

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(graceful=exc_type is None)

    # -- observability -----------------------------------------------------

    def alive_pids(self) -> dict[int, int]:
        with self._lock:
            return {
                sid: proc.pid
                for sid, proc in self._procs.items()
                if proc.is_alive()
            }

    def snapshot(self) -> dict:
        return {
            "shards": self.config.shards,
            "strategy": self.strategy,
            "port": self.port,
            "alive": sorted(self.alive_pids()),
            "respawns": self.respawns,
            "bus": self._bus.snapshot() if self._bus is not None else None,
        }


def run_sharded_server(
    config: ShardClusterConfig | None = None,
) -> int:
    """Run a shard cluster until SIGTERM/SIGINT; drain; return 0."""
    cfg = config or ShardClusterConfig()
    cluster = ShardCluster(cfg)
    cluster.start()
    stop = threading.Event()

    def _request_shutdown(signum, frame):
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_shutdown)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    svc = cfg.service
    print(
        f"repro encode service on http://{cfg.host}:{cluster.port}  "
        f"(shards={cfg.shards}, listener={cluster.strategy}, "
        f"workers/shard={svc.workers or 'auto'}, "
        f"bus-cache={cfg.bus_cache_bytes // 2**20} MiB)",
        flush=True,
    )
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        cluster.stop(graceful=True)
        print("repro encode service: drained cleanly", flush=True)
    return 0
