"""Cross-shard result cache: a tiny cache server over shared memory.

Each shard process keeps its own in-process :class:`ResultCache`, but a
miss there used to mean a full re-encode even when a sibling shard had
just produced the identical codestream.  The bus closes that gap: one
cache-server thread (in the supervisor process) owns a content-addressed
LRU of codestream values, each stored in its own shared-memory segment
via :func:`repro.core.workpool.publish_shared_bytes` — the same plumbing
Tier-1 uses to publish coefficient planes.  Shards talk to it over a
Unix-domain socket with a one-line JSON header (plus a raw payload for
puts); a *hit* reply carries only the segment descriptor, so the bytes
cross process boundaries through the kernel's shared mappings, not the
socket.

Single-flight extends across shards through leases:

* ``lease(key)`` on a cold key marks the caller *leader* — it encodes and
  must either ``put`` the result (which also stores it) or ``release``.
* concurrent ``lease`` calls for the same key park server-side until the
  leader resolves, then return the stored bytes (or leadership, if the
  leader released without data).  A departed leader is covered by the
  waiter's timeout: the waiter is promoted and encodes itself —
  correctness never depends on the bus, only deduplication does.

Shards also publish their metrics/stats blobs here (``publish`` /
``stats``), which is how any shard can answer ``GET /metrics`` with a
cluster-wide aggregate.  Every client call fails open: a dead bus makes
shards independent again, never broken.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections import OrderedDict

from repro.core.workpool import (
    publish_shared_bytes,
    read_shared_bytes,
    shared_memory_available,
)
from repro.service.cache import ENTRY_OVERHEAD_BYTES

#: Default client-side I/O timeout per bus operation (seconds).
OP_TIMEOUT_S = 10.0

#: Default time a lease waiter parks before being promoted to leader.
LEASE_WAIT_S = 30.0

#: Leases older than this are presumed orphaned (leader crashed without
#: releasing) and may be stolen by the next lease() call.
LEASE_TTL_S = 120.0

_MAX_HEADER = 1 << 16


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n > 0:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise ConnectionError("bus peer closed mid-message")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_header(sock: socket.socket) -> dict:
    buf = bytearray()
    while not buf.endswith(b"\n"):
        if len(buf) > _MAX_HEADER:
            raise ConnectionError("bus header too large")
        chunk = sock.recv(1)
        if not chunk:
            raise ConnectionError("bus peer closed mid-header")
        buf += chunk
    return json.loads(buf.decode())


def _send(sock: socket.socket, header: dict, payload: bytes = b"") -> None:
    sock.sendall(json.dumps(header).encode() + b"\n" + payload)


class _Entry:
    """One cached value: either a shared segment or inline bytes."""

    __slots__ = ("seg", "desc", "data", "size", "cost")

    def __init__(self, key: str, data: bytes, use_shm: bool) -> None:
        self.size = len(data)
        self.cost = len(data) + len(key) + ENTRY_OVERHEAD_BYTES
        if use_shm:
            self.seg, self.desc = publish_shared_bytes(data)
            self.data = None
        else:
            self.seg, self.desc = None, None
            self.data = data

    def close(self) -> None:
        if self.seg is not None:
            try:
                self.seg.close()
            except OSError:
                pass
            try:
                self.seg.unlink()
            except (OSError, FileNotFoundError):
                pass
            self.seg = None


class CacheBusServer:
    """Threaded Unix-socket cache server; one per shard cluster.

    Runs as a thread in the supervisor process (it is I/O-bound
    bookkeeping, not encode work).  ``use_shm=None`` auto-detects:
    shared-memory value transport where available, inline bytes over the
    socket otherwise — the protocol supports both, byte-identically.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 64 * 2**20,
        use_shm: bool | None = None,
        lease_ttl_s: float = LEASE_TTL_S,
    ) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self.use_shm = (
            shared_memory_available() if use_shm is None else use_shm
        )
        self.lease_ttl_s = lease_ttl_s
        self._cond = threading.Condition()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._bytes = 0
        self._leases: dict[str, float] = {}  # key -> monotonic grant time
        self._shard_blobs: dict[int, dict] = {}  # shard id -> stats blob
        self._closed = False
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self.stats = {
            "hits": 0, "misses": 0, "puts": 0, "evictions": 0,
            "leases_granted": 0, "lease_waits": 0, "lease_steals": 0,
            "wait_timeouts": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "CacheBusServer":
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.path)
        listener.listen(128)
        self._listener = listener
        accept = threading.Thread(
            target=self._accept_loop, name="cachebus-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self

    def stop(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        try:
            os.unlink(self.path)
        except OSError:
            pass
        with self._cond:
            for entry in self._entries.values():
                entry.close()
            self._entries.clear()
            self._bytes = 0

    # -- request handling --------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            t = threading.Thread(
                target=self._handle, args=(conn,),
                name="cachebus-conn", daemon=True,
            )
            t.start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(OP_TIMEOUT_S + LEASE_WAIT_S)
            req = _recv_header(conn)
            op = req.get("op")
            if op == "ping":
                _send(conn, {"ok": True})
            elif op == "get":
                self._reply_value(conn, req["key"], record=True)
            elif op == "put":
                data = _recv_exact(conn, int(req["size"]))
                stored = self._store(req["key"], data)
                _send(conn, {"ok": True, "stored": stored})
            elif op == "lease":
                self._handle_lease(conn, req)
            elif op == "release":
                self._release(req["key"])
                _send(conn, {"ok": True})
            elif op == "publish":
                blob = json.loads(_recv_exact(conn, int(req["size"])))
                with self._cond:
                    self._shard_blobs[int(req["shard"])] = {
                        "time": time.time(), "payload": blob,
                    }
                _send(conn, {"ok": True})
            elif op == "stats":
                payload = json.dumps(self._stats_payload()).encode()
                _send(conn, {"ok": True, "size": len(payload)}, payload)
            else:
                _send(conn, {"error": f"unknown op: {op!r}"})
        except (OSError, ConnectionError, ValueError, KeyError):
            pass  # client went away or spoke garbage; drop the connection
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _reply_value(self, conn, key: str, record: bool) -> bool:
        """Reply with the cached value if present; returns hit?

        The socket write happens outside the lock — a stalled client must
        not be able to wedge every shard's bus operations.
        """
        header, payload = {"hit": False}, b""
        with self._cond:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                if record:
                    self.stats["hits"] += 1
                if entry.desc is not None:
                    header = {"hit": True, "shm": list(entry.desc)}
                else:
                    header, payload = {"hit": True, "inline": entry.size}, \
                        entry.data
            elif record:
                self.stats["misses"] += 1
        _send(conn, header, payload)
        return header["hit"]

    def _handle_lease(self, conn, req: dict) -> None:
        key = req["key"]
        timeout = float(req.get("timeout", LEASE_WAIT_S))
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                entry = self._entries.get(key)
                if entry is not None:
                    break  # hit — reply outside the loop
                # Lease ages must be measured on the same monotonic clock
                # as the wait deadline: stamping holders with wall-clock
                # time let an NTP step instantly expire (or immortalize)
                # every outstanding lease.
                now = time.monotonic()
                holder = self._leases.get(key)
                if holder is None:
                    self._leases[key] = now
                    self.stats["leases_granted"] += 1
                    _send(conn, {"lead": True})
                    return
                if now - holder > self.lease_ttl_s:
                    self._leases[key] = now
                    self.stats["lease_steals"] += 1
                    _send(conn, {"lead": True})
                    return
                self.stats["lease_waits"] += 1
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    self.stats["wait_timeouts"] += 1
                    _send(conn, {"timeout": True})
                    return
        self._reply_value(conn, key, record=True)

    # -- storage -----------------------------------------------------------

    def _store(self, key: str, data: bytes) -> bool:
        entry = _Entry(key, data, self.use_shm)
        with self._cond:
            self.stats["puts"] += 1
            self._leases.pop(key, None)  # the leader delivered
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.cost
                old.close()
            stored = entry.cost <= self.max_bytes
            if stored:
                self._entries[key] = entry
                self._bytes += entry.cost
                while self._bytes > self.max_bytes:
                    _, evicted = self._entries.popitem(last=False)
                    self._bytes -= evicted.cost
                    evicted.close()
                    self.stats["evictions"] += 1
            else:
                entry.close()
            self._cond.notify_all()
        return stored

    def _release(self, key: str) -> None:
        with self._cond:
            self._leases.pop(key, None)
            self._cond.notify_all()

    def _stats_payload(self) -> dict:
        with self._cond:
            return {
                "cache": {
                    "entries": len(self._entries),
                    "bytes_used": self._bytes,
                    "max_bytes": self.max_bytes,
                    "transport": "shared_memory" if self.use_shm else "inline",
                    "active_leases": len(self._leases),
                    **self.stats,
                },
                "shards": {
                    str(sid): blob for sid, blob in self._shard_blobs.items()
                },
            }


class CacheBusClient:
    """Per-shard client; one short-lived connection per operation.

    Every method fails open (returns a miss / ``False``) on any socket
    error, counting it in ``errors`` — the bus is an optimization, and a
    shard must keep serving if the supervisor's cache thread dies.
    """

    def __init__(self, path: str, timeout: float = OP_TIMEOUT_S) -> None:
        self.path = path
        self.timeout = timeout
        self._lock = threading.Lock()
        self.ops = 0
        self.errors = 0

    def _connect(self, timeout: float | None = None) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout if timeout is not None else self.timeout)
        sock.connect(self.path)
        return sock

    def _count(self, error: bool) -> None:
        with self._lock:
            self.ops += 1
            if error:
                self.errors += 1

    def _read_value_reply(self, sock: socket.socket, reply: dict):
        if not reply.get("hit"):
            return None
        if "shm" in reply:
            return read_shared_bytes(tuple(reply["shm"]))  # None if evicted
        return _recv_exact(sock, int(reply["inline"]))

    def ping(self) -> bool:
        try:
            with self._connect() as sock:
                _send(sock, {"op": "ping"})
                ok = bool(_recv_header(sock).get("ok"))
            self._count(error=False)
            return ok
        except (OSError, ConnectionError, ValueError):
            self._count(error=True)
            return False

    def get(self, key: str) -> bytes | None:
        try:
            with self._connect() as sock:
                _send(sock, {"op": "get", "key": key})
                value = self._read_value_reply(sock, _recv_header(sock))
            self._count(error=False)
            return value
        except (OSError, ConnectionError, ValueError):
            self._count(error=True)
            return None

    def lease(self, key: str, wait_timeout: float = LEASE_WAIT_S):
        """Returns ``("hit", bytes)``, ``("lead", None)``, or ``("miss", None)``.

        ``lead`` obliges the caller to eventually :meth:`put` or
        :meth:`release` the key.  ``miss`` (bus down, or the parked wait
        timed out) means: encode locally, publish best-effort.
        """
        try:
            with self._connect(self.timeout + wait_timeout) as sock:
                _send(sock, {"op": "lease", "key": key,
                             "timeout": wait_timeout})
                reply = _recv_header(sock)
                if reply.get("lead"):
                    self._count(error=False)
                    return "lead", None
                value = self._read_value_reply(sock, reply)
            self._count(error=False)
            if value is None:
                return "miss", None
            return "hit", value
        except (OSError, ConnectionError, ValueError):
            self._count(error=True)
            return "miss", None

    def put(self, key: str, data: bytes) -> bool:
        try:
            with self._connect() as sock:
                _send(sock, {"op": "put", "key": key, "size": len(data)},
                      data)
                stored = bool(_recv_header(sock).get("stored"))
            self._count(error=False)
            return stored
        except (OSError, ConnectionError, ValueError):
            self._count(error=True)
            return False

    def release(self, key: str) -> None:
        try:
            with self._connect() as sock:
                _send(sock, {"op": "release", "key": key})
                _recv_header(sock)
            self._count(error=False)
        except (OSError, ConnectionError, ValueError):
            self._count(error=True)

    def publish_stats(self, shard_id: int, payload: dict) -> bool:
        try:
            blob = json.dumps(payload).encode()
            with self._connect() as sock:
                _send(sock, {"op": "publish", "shard": shard_id,
                             "size": len(blob)}, blob)
                ok = bool(_recv_header(sock).get("ok"))
            self._count(error=False)
            return ok
        except (OSError, ConnectionError, ValueError):
            self._count(error=True)
            return False

    def fetch_stats(self) -> dict | None:
        try:
            with self._connect() as sock:
                _send(sock, {"op": "stats"})
                reply = _recv_header(sock)
                payload = _recv_exact(sock, int(reply["size"]))
            self._count(error=False)
            return json.loads(payload)
        except (OSError, ConnectionError, ValueError, KeyError):
            self._count(error=True)
            return None

    def snapshot(self) -> dict:
        with self._lock:
            return {"path": self.path, "ops": self.ops, "errors": self.errors}
