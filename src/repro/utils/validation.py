"""Small argument-validation helpers shared across the package."""

from __future__ import annotations

from typing import Any

import numpy as np


def require_2d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Validate that ``array`` is a 2-D ndarray and return it."""
    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def require_positive(value: int | float, name: str) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_in(value: Any, options: tuple, name: str) -> None:
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
