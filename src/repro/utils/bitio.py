"""MSB-first bit-level I/O used by Tier-2 packet headers.

JPEG2000 packet headers are bit streams with a *bit-stuffing* rule: after a
byte of 0xFF is emitted, the next byte may only carry 7 bits (its MSB must be
0) so that no 0xFF 0x90-0xFF marker sequence can appear inside packet data.
``BitWriter``/``BitReader`` implement both the raw and the stuffed modes.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits MSB-first into bytes.

    Parameters
    ----------
    stuffing:
        When True, applies the JPEG2000 packet-header stuffing rule: a byte
        following an emitted 0xFF holds only 7 payload bits.
    """

    def __init__(self, stuffing: bool = False) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nbits = 0
        self._stuffing = stuffing
        self._prev_ff = False

    def _byte_capacity(self) -> int:
        return 7 if (self._stuffing and self._prev_ff) else 8

    def write_bit(self, bit: int) -> None:
        """Append one bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        self._acc = (self._acc << 1) | bit
        self._nbits += 1
        if self._nbits == self._byte_capacity():
            self._flush_byte()

    def write_bits(self, value: int, count: int) -> None:
        """Append ``count`` bits of ``value``, MSB first."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if value < 0 or (count < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {count} bits")
        for i in range(count - 1, -1, -1):
            self.write_bit((value >> i) & 1)

    def _flush_byte(self) -> None:
        cap = self._byte_capacity()
        byte = self._acc & ((1 << cap) - 1)
        self._bytes.append(byte)
        self._prev_ff = byte == 0xFF
        self._acc = 0
        self._nbits = 0

    def align(self, pad_bit: int = 0) -> None:
        """Pad with ``pad_bit`` to the next byte boundary (a no-op if aligned)."""
        while self._nbits != 0:
            self.write_bit(pad_bit)

    def terminate_stuffed(self) -> None:
        """End a packet header: pad with 0 bits to the byte boundary, and if
        the final byte is 0xFF append the mandatory 0x00 stuffing byte so the
        following packet-body byte cannot complete a marker code."""
        self.align(pad_bit=0)
        if self._bytes and self._bytes[-1] == 0xFF:
            self._bytes.append(0x00)
            self._prev_ff = False

    @property
    def bit_length(self) -> int:
        """Total number of payload bits written so far."""
        # Payload bits inside completed bytes are not recoverable exactly under
        # stuffing (7 vs 8 per byte); track via byte scan.
        total = 0
        prev_ff = False
        for b in self._bytes:
            total += 7 if (self._stuffing and prev_ff) else 8
            prev_ff = b == 0xFF
        return total + self._nbits

    def getvalue(self) -> bytes:
        """Return the completed bytes; partial final bytes are *not* included."""
        return bytes(self._bytes)


class BitReader:
    """Reads bits MSB-first from bytes, mirroring :class:`BitWriter`."""

    def __init__(self, data: bytes, stuffing: bool = False) -> None:
        self._data = data
        self._pos = 0
        self._bitpos = 0  # bits consumed within current byte
        self._stuffing = stuffing
        self._prev_ff = False

    def _byte_capacity(self) -> int:
        return 7 if (self._stuffing and self._prev_ff) else 8

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    @property
    def byte_position(self) -> int:
        """Index of the next byte that has not been fully consumed."""
        return self._pos

    def read_bit(self) -> int:
        if self.exhausted:
            raise EOFError("bit stream exhausted")
        cap = self._byte_capacity()
        byte = self._data[self._pos]
        # With 7-bit capacity the MSB of the stored byte is the stuffed 0.
        shift = cap - 1 - self._bitpos
        bit = (byte >> shift) & 1
        self._bitpos += 1
        if self._bitpos == cap:
            self._prev_ff = byte == 0xFF
            self._pos += 1
            self._bitpos = 0
        return bit

    def read_bits(self, count: int) -> int:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    def align(self) -> None:
        """Skip to the next byte boundary."""
        if self._bitpos != 0:
            byte = self._data[self._pos]
            self._prev_ff = byte == 0xFF
            self._pos += 1
            self._bitpos = 0

    def finish_stuffed(self) -> None:
        """End a stuffed packet header: align and skip a 0x00 stuffed after
        a terminal 0xFF byte (mirror of :meth:`BitWriter.terminate_stuffed`)."""
        self.align()
        if self._prev_ff:
            if self.exhausted:
                raise EOFError("missing stuffed byte after 0xFF header end")
            self._pos += 1
            self._prev_ff = False
