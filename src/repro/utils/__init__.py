"""Shared low-level utilities: alignment arithmetic, bit I/O, validation."""

from repro.utils.alignment import (
    CACHE_LINE_BYTES,
    QUADWORD_BYTES,
    is_aligned,
    padded_width,
    round_down,
    round_up,
)
from repro.utils.bitio import BitReader, BitWriter

__all__ = [
    "CACHE_LINE_BYTES",
    "QUADWORD_BYTES",
    "BitReader",
    "BitWriter",
    "is_aligned",
    "padded_width",
    "round_down",
    "round_up",
]
