"""Alignment arithmetic shared by the data decomposition scheme and the DMA model.

The Cell/B.E. constants used throughout the package:

* The EIB / memory subsystem moves data in 128-byte cache lines; DMA is most
  efficient when both source and destination addresses are cache-line aligned
  and the size is a multiple of the cache line (Kistler et al., IEEE Micro
  2006; paper Section 2).
* SIMD loads and stores on the SPE require 16-byte (quad-word) alignment.
* A single DMA command moves at most 16 KB.
"""

from __future__ import annotations

CACHE_LINE_BYTES = 128
QUADWORD_BYTES = 16
DMA_MAX_TRANSFER_BYTES = 16 * 1024

#: Alignments for which the Cell DMA controller accepts a "small" transfer of
#: exactly that many bytes (paper Section 2: "1, 2, 4, 8 byte alignment to
#: transfer 1, 2, 4, 8 bytes of data").
SMALL_DMA_SIZES = (1, 2, 4, 8)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``.

    >>> round_up(100, 128)
    128
    >>> round_up(128, 128)
    128
    """
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return ((value + multiple - 1) // multiple) * multiple


def round_down(value: int, multiple: int) -> int:
    """Round ``value`` down to the nearest multiple of ``multiple``."""
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return (value // multiple) * multiple


def is_aligned(value: int, multiple: int) -> bool:
    """True if ``value`` is a multiple of ``multiple``."""
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    return value % multiple == 0


def padded_width(width: int, elem_bytes: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Padded row width in *elements* so each row spans whole cache lines.

    This is the row padding of the paper's data decomposition scheme
    (Section 2, Figure 1): every row is padded so the start address of every
    row is cache-line aligned, assuming the array base itself is aligned.

    >>> padded_width(1000, 4)   # 1000 int32 pixels -> 4000 B -> 4096 B
    1024
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if elem_bytes <= 0:
        raise ValueError(f"elem_bytes must be positive, got {elem_bytes}")
    if line_bytes % elem_bytes != 0:
        raise ValueError(
            f"cache line ({line_bytes} B) must be a multiple of the element "
            f"size ({elem_bytes} B) for row padding to be expressible in elements"
        )
    return round_up(width * elem_bytes, line_bytes) // elem_bytes
