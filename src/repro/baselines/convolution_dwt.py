"""Convolution-based DWT (the pre-lifting formulation).

Muta et al. parallelize a *convolution* DWT (paper Section 3.2: "In [10],
the authors parallelize convolution based DWT for the Cell/B.E."); the
paper adopts lifting instead, which needs roughly half the arithmetic
(Sweldens).  This module provides the functional convolution transform
(verified equivalent to the lifting transform) and its instruction mix for
the Muta cost model.
"""

from __future__ import annotations

import numpy as np

from repro.cell.isa import InstrClass, InstructionMix
from repro.core.calibration import Calibration, DEFAULT_CALIBRATION
from repro.jpeg2000.dwt import sym_indices

# CDF 9/7 analysis filters, normalized to match the lifting implementation
# (unit-DC lowpass; highpass scaled by K).
_H0_97 = np.array(
    [0.026748757410810, -0.016864118442875, -0.078223266528990,
     0.266864118442875, 0.602949018236360, 0.266864118442875,
     -0.078223266528990, -0.016864118442875, 0.026748757410810]
)
_H1_97_BASE = np.array(
    [0.045635881557124, -0.028771763114250, -0.295635881557124,
     0.557543526228500, -0.295635881557124, -0.028771763114250,
     0.045635881557124]
)

# 5/3 analysis filters (linearized; the reversible transform adds floors).
_H0_53 = np.array([-0.125, 0.25, 0.75, 0.25, -0.125])
_H1_53 = np.array([-0.5, 1.0, -0.5])


def _analyze(x: np.ndarray, h0: np.ndarray, h1: np.ndarray,
             high_scale: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """Convolve-and-downsample along axis 0 with symmetric extension."""
    n = x.shape[0]
    if n == 1:
        xf = x.astype(np.float64)
        return xf.copy(), xf[:0].copy()
    pad = max(len(h0), len(h1)) // 2 + 1
    idx = sym_indices(n, pad, pad)
    ext = x.astype(np.float64)[idx]
    c0 = len(h0) // 2
    c1 = len(h1) // 2
    ne, no = (n + 1) // 2, n // 2
    low = np.zeros((ne,) + x.shape[1:], dtype=np.float64)
    high = np.zeros((no,) + x.shape[1:], dtype=np.float64)
    for i in range(ne):
        p = pad + 2 * i
        seg = ext[p - c0 : p + c0 + 1]
        low[i] = np.tensordot(h0, seg, axes=(0, 0))
    for i in range(no):
        p = pad + 2 * i + 1
        seg = ext[p - c1 : p + c1 + 1]
        high[i] = np.tensordot(h1, seg, axes=(0, 0))
    return low, high * high_scale


def conv_forward_97_1d(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Convolution 9/7 analysis; equals the lifting transform to fp error."""
    # The halved base taps above times 2 give the standard CDF highpass,
    # which already carries the K normalization the lifting code applies.
    return _analyze(x, _H0_97, _H1_97_BASE, high_scale=2.0)


def conv_forward_53_1d(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Convolution 5/3 analysis (linearized: no integer floors)."""
    return _analyze(x, _H0_53, _H1_53)


def convolution_dwt_mix(
    lossless: bool, calibration: Calibration = DEFAULT_CALIBRATION
) -> InstructionMix:
    """Per sample-visit cost of the convolution formulation.

    Convolution evaluates the full filter at every output: the 9/7 averages
    (9 + 7) / 2 = 8 multiply-accumulates per sample where lifting needs ~2.5
    multiplies + 4 adds; the 5/3's shift-and-add taps average ~4 per sample
    (7 adds + 3 shifts counting the accumulations) vs lifting's ~3.5 ops.
    This is Sweldens' factor-of-two that the paper banks on.
    """
    if lossless:
        ops = {
            InstrClass.ADD: 7.0,
            InstrClass.SHIFT: 3.0,
            InstrClass.LOAD: 1.5,
            InstrClass.STORE: 1.0,
            InstrClass.SHUFFLE: 1.5,
        }
    else:
        ops = {
            InstrClass.FM: 8.0,
            InstrClass.FA: 7.0,
            InstrClass.LOAD: 1.5,
            InstrClass.STORE: 1.0,
            InstrClass.SHUFFLE: 1.5,
        }
    return InstructionMix(
        ops=ops,
        vectorizable=True,
        simd_efficiency=calibration.dwt_simd_efficiency,
        dependency_factor=calibration.dwt_dependency_factor,
        branches=0.06,
        branch_miss_rate=0.5,
    )
