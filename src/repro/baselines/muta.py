"""Model of Muta et al.'s Motion JPEG2000 encoder (ACM-MM 2007).

The design differences the paper documents (Sections 3.2, 5.2):

* convolution-based DWT over 128x128 tiles with overlap (net 112x112):
  redundant halo compute, and "their implementation does not satisfy the
  cache line alignment requirements for the most efficient DMA transfer
  due to the overlapped area";
* "their DWT implementation does not scale beyond a single SPE";
* 32x32 code blocks (4x the queue interactions of 64x64);
* Tier-1 on SPEs only; the PPE performs Tier-2 *overlapped* with Tier-1
  and distributes code blocks;
* level shift / inter-component transform / quantization stay on the PPE
  "to avoid the offloading overhead";
* lossless only, on 2.4 GHz Cell/B.E. chips.

``Muta0`` runs two encoder threads on two chips (reported per-frame time is
the two-frame throughput, i.e. half the real latency — the paper's caveat);
``Muta1`` runs one thread across both chips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cell.buffering import buffered_loop_time
from repro.cell.machine import CellMachine
from repro.cell.ppe import PPECore
from repro.cell.spe import SPECore
from repro.cell.timeline import StageTiming, Timeline
from repro.cell.workqueue import WorkerSpec, simulate_work_queue
from repro.baselines.convolution_dwt import convolution_dwt_mix
from repro.core.calibration import Calibration, DEFAULT_CALIBRATION
from repro.jpeg2000.encoder import BlockStats, WorkloadStats
from repro.kernels.levelshift import levelshift_mct_mix
from repro.kernels.readconv import readconv_mix
from repro.kernels.tier1_kernel import tier1_block_cost_s

#: Tile geometry: 128x128 gross, 112x112 net payload (paper Section 3.2).
_TILE_GROSS = 128
_TILE_NET = 112
#: Extra compute from re-filtering the halo.
_HALO_COMPUTE = (_TILE_GROSS / _TILE_NET) ** 2
#: Bus inflation: overlapped tiles start at arbitrary offsets, so each
#: 448-512 B row transfer straddles an extra 128 B line.
_HALO_BUS = 1.25


class MutaConfig(str, Enum):
    MUTA0 = "Muta0"   # two encoder threads, one chip each (throughput mode)
    MUTA1 = "Muta1"   # one encoder thread across two chips


def split_blocks_to_32(blocks: list[BlockStats]) -> list[BlockStats]:
    """Re-express 64x64-code-block statistics as 32x32 blocks.

    Each 64x64 block becomes (up to) four quarter blocks with a quarter of
    the coded symbols each — the load Muta's queue must distribute.
    """
    out = []
    for b in blocks:
        rows = max(1, (b.height + 31) // 32)
        cols = max(1, (b.width + 31) // 32)
        parts = rows * cols
        for k in range(parts):
            out.append(
                BlockStats(
                    comp=b.comp, band=b.band, dlevel=b.dlevel,
                    height=min(32, b.height), width=min(32, b.width),
                    msbs=b.msbs, num_passes=b.num_passes,
                    total_symbols=b.total_symbols // parts,
                    coded_bytes=b.coded_bytes // parts,
                )
            )
    return out


@dataclass
class MutaPipelineModel:
    """Prices one frame's encode under Muta et al.'s design."""

    stats: WorkloadStats
    config: MutaConfig = MutaConfig.MUTA0
    clock_hz: float = 2.4e9
    calibration: Calibration = DEFAULT_CALIBRATION
    machine: CellMachine = field(init=False)

    def __post_init__(self) -> None:
        if not self.stats.lossless:
            raise ValueError("Muta et al. support lossless encoding only")
        if self.config is MutaConfig.MUTA0:
            # One encoder thread's resources: one chip.
            self.machine = CellMachine(
                name="Muta (per thread)", clock_hz=self.clock_hz, chips=1,
                num_spes=8, num_ppe_threads=1,
            )
        else:
            self.machine = CellMachine(
                name="Muta (one thread)", clock_hz=self.clock_hz, chips=2,
                num_spes=16, num_ppe_threads=1,
            )

    @property
    def spe(self) -> SPECore:
        return SPECore(clock_hz=self.clock_hz)

    @property
    def ppe(self) -> PPECore:
        return PPECore(clock_hz=self.clock_hz)

    def stage_ppe_pixel_stages(self) -> StageTiming:
        """Level shift + MCT on the PPE (not offloaded)."""
        n = self.stats.num_pixels * self.stats.num_components
        mix = levelshift_mct_mix(True, self.stats.num_components, self.calibration)
        t = self.ppe.kernel_time(mix, n)
        t += self.ppe.kernel_time(readconv_mix(self.calibration), n)
        return StageTiming("ppe_pixel_stages", t, ppe_busy_s=t,
                           notes="level shift/MCT on PPE")

    def stage_dwt(self) -> StageTiming:
        """Convolution DWT on a single SPE over overlapped tiles."""
        mix = convolution_dwt_mix(True, self.calibration)
        spe_sec = self.spe.seconds_per_element(mix)
        h, w = self.stats.height, self.stats.width
        wall = 0.0
        bw = self.machine.memory.single_stream_bw  # sole DWT stream
        for _ in range(self.stats.levels):
            if h <= 1 and w <= 1:
                break
            n = h * w * self.stats.num_components
            visits = 2.0 * n * _HALO_COMPUTE          # vertical + horizontal
            compute = visits * spe_sec
            payload = 2.0 * 4.0 * n * _HALO_COMPUTE   # one read+write pass
            dma = payload * _HALO_BUS / bw
            tiles = max(1, (h // _TILE_NET + 1) * (w // _TILE_NET + 1))
            bt = buffered_loop_time(tiles, compute / tiles, dma / tiles, buffers=2)
            wall += bt.total_s
            h, w = (h + 1) // 2, (w + 1) // 2
        return StageTiming("dwt", wall, spe_busy_s=wall,
                           notes="convolution, 128x128 tiles, 1 SPE")

    def stage_tier1_tier2(self) -> StageTiming:
        """SPE-only Tier-1 through the queue; Tier-2 overlapped on the PPE."""
        cal = self.calibration
        blocks = split_blocks_to_32(self.stats.blocks)
        spe_costs = []
        bw = self.machine.per_spe_bandwidth()
        for b in blocks:
            c = tier1_block_cost_s(b.total_symbols, b.height * b.width,
                                   self.spe, cal)
            c += (b.height * b.width * 4 + b.coded_bytes) / bw
            spe_costs.append(c)
        workers = [
            WorkerSpec(f"SPE{s}", tuple(spe_costs),
                       dequeue_overhead_s=cal.queue_dequeue_s)
            for s in range(self.machine.num_spes)
        ]
        res = simulate_work_queue(len(blocks), workers)
        # The PPE both runs Tier-2 and centrally dispatches every block to
        # an SPE; this serial duty is the scalability ceiling the paper
        # attributes to this design.
        ppe_duty = len(blocks) * (cal.tier2_per_block_s + cal.muta_dispatch_s) \
            + self.stats.codestream_bytes * cal.stream_io_per_byte_s
        wall = max(res.makespan_s, ppe_duty)
        return StageTiming(
            "tier1+tier2", wall,
            spe_busy_s=sum(res.per_worker_busy_s.values()),
            ppe_busy_s=ppe_duty,
            notes=f"{len(blocks)} 32x32 blocks, SPE-only Tier-1",
        )

    def simulate(self) -> Timeline:
        tl = Timeline(machine_name=f"{self.config.value} @ {self.clock_hz/1e9:.1f} GHz")
        tl.add(self.stage_ppe_pixel_stages())
        tl.add(self.stage_dwt())
        tl.add(self.stage_tier1_tier2())
        tl.add(
            StageTiming(
                "stream_io",
                self.stats.codestream_bytes * self.calibration.stream_io_per_byte_s,
            )
        )
        return tl

    def reported_frame_time(self) -> float:
        """The number their paper reports (throughput per frame).

        Muta0 overlaps two frames on two chips, so the reported per-frame
        time is half the single-frame latency (the paper's caveat that "the
        encoding time for one frame can be up to two times higher than the
        reported number").
        """
        latency = self.simulate().total_s
        return latency / 2.0 if self.config is MutaConfig.MUTA0 else latency

    def dwt_reported_time(self) -> float:
        t = self.stage_dwt().wall_s
        return t / 2.0 if self.config is MutaConfig.MUTA0 else t

    def ebcot_reported_time(self) -> float:
        t = self.stage_tier1_tier2().wall_s
        return t / 2.0 if self.config is MutaConfig.MUTA0 else t
