"""Comparison systems the paper evaluates against.

* :mod:`repro.baselines.pentium4` — Intel Pentium IV 3.2 GHz running
  scalar, fixed-point Jasper (Figure 9).
* :mod:`repro.baselines.convolution_dwt` — convolution-based DWT, the
  pre-lifting formulation Muta et al. use (functional + cost model).
* :mod:`repro.baselines.muta` — the Motion JPEG2000 encoder of Muta et
  al. (ACM-MM 2007): 128x128 overlapped tiles, 32x32 code blocks,
  SPE-only Tier-1 (Figures 6-8).
* :mod:`repro.baselines.meerwald` — Meerwald et al.'s loop-level OpenMP
  parallelization: only DWT and Tier-1 parallel (Amdahl ceiling).
"""

from repro.baselines.pentium4 import P4Core, P4PipelineModel
from repro.baselines.muta import MutaConfig, MutaPipelineModel
from repro.baselines.meerwald import meerwald_speedup, meerwald_time

__all__ = [
    "MutaConfig",
    "MutaPipelineModel",
    "P4Core",
    "P4PipelineModel",
    "meerwald_speedup",
    "meerwald_time",
]
