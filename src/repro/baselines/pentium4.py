"""Intel Pentium IV 3.2 GHz baseline (Figure 9).

The paper's comparison conditions (Section 5.3):

* Jasper compiled with gcc -O5; *no vectorization* ("vectorization is not
  implemented in the Jasper code for the Pentium IV processor");
* the real-number path runs in *fixed point* on the P4 ("the Pentium IV
  processor emulates the floating point operations with the fixed point
  instructions") — but the P4 has a native 32-bit multiply, so the fixed
  path is merely scalar, not emulated;
* the non-Cell-specific optimizations (lifting, loop interleaving, column
  grouping) are applied to both architectures.

The core model is an out-of-order scalar machine: sustained IPC on
compiled code, a strong branch predictor, and a streaming memory system
with hardware prefetch whose exposed miss cost appears once the working
set exceeds the 2 MB L2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cell.isa import InstrClass, InstructionMix
from repro.cell.timeline import StageTiming, Timeline
from repro.core.calibration import Calibration, DEFAULT_CALIBRATION
from repro.jpeg2000.encoder import WorkloadStats
from repro.kernels.dwt_kernels import dwt_mix, sample_visits_per_pixel
from repro.kernels.levelshift import levelshift_mct_mix
from repro.kernels.quantize_kernel import quantize_mix
from repro.kernels.readconv import readconv_mix
from repro.kernels.tier1_kernel import tier1_symbol_mix

#: Approximate per-class costs folded into "one scalar op" accounting;
#: multiplies count as several slots to reflect their longer latency even
#: under out-of-order execution.
_P4_OP_WEIGHT = {
    InstrClass.ADD: 1.0,
    InstrClass.SHIFT: 1.0,
    InstrClass.MPYH: 3.0,
    InstrClass.MPYU: 3.0,
    InstrClass.FM: 2.0,
    InstrClass.FA: 1.5,
    InstrClass.FMA: 2.5,
    InstrClass.CVT: 2.0,
    InstrClass.LOAD: 1.0,
    InstrClass.STORE: 1.0,
    InstrClass.SHUFFLE: 1.0,
}



@dataclass(frozen=True)
class P4Core:
    """Pentium IV core: OoO scalar with dynamic branch prediction."""

    calibration: Calibration = DEFAULT_CALIBRATION

    @property
    def clock_hz(self) -> float:
        return self.calibration.p4_clock_hz

    def cycles_per_element(self, mix: InstructionMix) -> float:
        cal = self.calibration
        slots = sum(_P4_OP_WEIGHT[i] * c for i, c in mix.ops.items())
        core = slots / cal.p4_ipc
        effective_miss = mix.branch_miss_rate * (1.0 - cal.p4_predictor_hit_rate)
        core += mix.branches * (1.0 + effective_miss * cal.p4_branch_miss_penalty)
        return core

    def seconds_per_element(self, mix: InstructionMix) -> float:
        return self.cycles_per_element(mix) / self.clock_hz

    def stage_time(
        self, mix: InstructionMix, elements: int, bytes_per_elem: float,
        working_set_bytes: int,
    ) -> float:
        """Compute overlapped with streaming memory; misses exposed only
        when the working set spills the L2."""
        if elements < 0:
            raise ValueError("elements must be non-negative")
        compute = self.seconds_per_element(mix) * elements
        if working_set_bytes <= self.calibration.p4_l2_bytes:
            return compute
        mem = elements * bytes_per_elem / self.calibration.p4_stream_bw
        # Out-of-order + prefetch overlap most of the smaller term.
        return max(compute, mem) + 0.15 * min(compute, mem)


@dataclass
class P4PipelineModel:
    """Sequential Jasper on the Pentium IV, stage by stage."""

    stats: WorkloadStats
    calibration: Calibration = DEFAULT_CALIBRATION
    core: P4Core = field(init=False)

    def __post_init__(self) -> None:
        self.core = P4Core(self.calibration)

    def _ws(self) -> int:
        """Working set: the full int32 image (Jasper keeps planes resident)."""
        return self.stats.num_pixels * self.stats.num_components * 4

    def _dwt_mix_p4(self) -> InstructionMix:
        """P4 DWT mix: 5/3 integer lifting, or Jasper's fixed-point 9/7.

        Unlike the SPE, the P4 has a native 32-bit multiply, so the fixed
        path is scalar ``imul``s (weighted 3 slots each) plus Q-format
        shifts and rounding adds — not the mpyh/mpyu emulation sequence.
        """
        if self.stats.lossless:
            return dwt_mix(True, calibration=self.calibration)
        # Jasper's jas_fix_mul widens to a 64-bit intermediate before the
        # Q13 shift, so each fixed multiply is an imul pair plus a
        # double-width shift on 32-bit x86 — ~4 weighted multiply slots.
        return InstructionMix(
            ops={
                InstrClass.MPYH: 4.0,
                InstrClass.ADD: 10.0,   # lifting adds + rounding + carries
                InstrClass.SHIFT: 4.0,  # double-width Q13 renormalization
                InstrClass.LOAD: 3.0,
                InstrClass.STORE: 2.0,
            },
            vectorizable=False,
            branches=0.06,
            branch_miss_rate=0.5,
        )

    def stage_dwt(self) -> StageTiming:
        mix = self._dwt_mix_p4()
        visits = sample_visits_per_pixel(self.stats.levels)
        elements = int(self.stats.num_pixels * self.stats.num_components * visits)
        t = self.core.stage_time(mix, elements, 8.0, self._ws())
        return StageTiming("dwt", t, notes="scalar lifting, "
                           + ("5/3 int" if self.stats.lossless else "9/7 fixed-point"))

    def stage_tier1(self) -> StageTiming:
        mix = tier1_symbol_mix(self.calibration)
        per_symbol = self.core.seconds_per_element(mix)
        total = 0.0
        for b in self.stats.blocks:
            total += (b.total_symbols + 0.45 * b.height * b.width) * per_symbol
        return StageTiming("tier1", total, notes="sequential")

    def stage_other(self) -> list[StageTiming]:
        cal = self.calibration
        n = self.stats.num_pixels * self.stats.num_components
        out = [
            StageTiming(
                "read+convert",
                self.core.stage_time(readconv_mix(cal), n, 6.0, self._ws()),
            ),
            StageTiming(
                "levelshift+mct",
                self.core.stage_time(
                    levelshift_mct_mix(self.stats.lossless,
                                       self.stats.num_components, cal),
                    n, 8.0, self._ws(),
                ),
            ),
        ]
        if not self.stats.lossless:
            out.append(
                StageTiming(
                    "quantize",
                    self.core.stage_time(quantize_mix(cal), n, 8.0, self._ws()),
                )
            )
            passes = sum(b.num_passes for b in self.stats.blocks)
            out.append(
                StageTiming(
                    "rate_control",
                    passes * cal.rate_control_per_pass_s * cal.rate_control_sweeps,
                )
            )
        out.append(
            StageTiming(
                "tier2",
                len(self.stats.blocks) * cal.tier2_per_block_s
                + self.stats.codestream_bytes * cal.stream_io_per_byte_s,
            )
        )
        out.append(
            StageTiming(
                "stream_io",
                self.stats.codestream_bytes * cal.stream_io_per_byte_s,
            )
        )
        return out

    def simulate(self) -> Timeline:
        tl = Timeline(machine_name="Intel Pentium IV 3.2 GHz")
        others = self.stage_other()
        tl.add(others[0])             # read+convert
        tl.add(others[1])             # levelshift+mct
        tl.add(self.stage_dwt())
        for s in others[2:]:
            if s.name == "quantize":
                tl.add(s)
        tl.add(self.stage_tier1())
        for s in others[2:]:
            if s.name != "quantize":
                tl.add(s)
        return tl
