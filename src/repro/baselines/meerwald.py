"""Meerwald et al. loop-level OpenMP parallelization model (IPDPS 2002).

"the authors parallelize Tier-1 coding in the EBCOT and the DWT only to
minimize the code modification.  The maximum achievable speedup is limited
by the sequentialization in this loop-level parallelization approach"
(paper Section 1).  This is a plain Amdahl model over the stage breakdown
of a sequential baseline timeline.
"""

from __future__ import annotations

from repro.cell.timeline import StageTiming, Timeline

#: Stages Meerwald et al. parallelize.
_PARALLEL_STAGES = frozenset({"dwt", "tier1"})


def meerwald_time(sequential: Timeline, num_threads: int) -> Timeline:
    """Timeline with only DWT and Tier-1 sped up ``num_threads``-fold."""
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    tl = Timeline(machine_name=f"{sequential.machine_name} x{num_threads} (loop-level)")
    for s in sequential.stages:
        wall = s.wall_s / num_threads if s.name in _PARALLEL_STAGES else s.wall_s
        tl.add(StageTiming(s.name, wall, notes=s.notes))
    return tl


def meerwald_speedup(sequential: Timeline, num_threads: int) -> float:
    """Overall speedup of the loop-level approach (the Amdahl ceiling)."""
    par = meerwald_time(sequential, num_threads)
    return sequential.total_s / par.total_s
