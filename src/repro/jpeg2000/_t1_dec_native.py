"""Optional compiled kernel for whole-block Tier-1 decoding.

Tier-1 *decoding* is inherently serial: every decoded bit updates the MQ
coder's (A, C) registers and the significance state that contextualizes
the next bit, so unlike the encoder there is no whole-pass NumPy form.
:mod:`repro.jpeg2000.tier1_dec_vec` therefore runs tight scalar loops —
and this module, when a C compiler is present, compiles the *entire* pass
loop of one code block (SPP/MRP/CUP over all bit planes, MQ decoder
included) to native code at first use and drives it through :mod:`ctypes`.
One call decodes one block; Python only reconstructs the output samples
from the returned magnitude/precision/sign arrays (vectorized, batched
across blocks).

Design constraints mirror :mod:`repro.jpeg2000._mq_native`:

* **Bit-exact**: the C code is a transliteration of the scalar reference
  decoder (:func:`repro.jpeg2000.tier1.decode_codeblock`) with the same
  incremental context-key scheme as the Python fast path; the MQ state
  tables and context constants are generated from
  :mod:`repro.jpeg2000.mq` / :mod:`repro.jpeg2000.tier1` so there is one
  source of truth.  Differential tests pin all three implementations
  (reference, Python fast path, this kernel) to identical samples.
* **Optional**: if no compiler is available, compilation fails, or the
  environment sets ``REPRO_MQ_NATIVE=0``, :data:`native_decode_block` is
  ``None`` and callers fall back to the pure-Python fast path.
* **Cached**: the shared object is built once per source hash in a
  per-user cache directory.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

import numpy as np

from repro.jpeg2000.mq import STATE_TABLE
from repro.jpeg2000.tier1 import (
    CTX_RUNLEN,
    CTX_UNIFORM,
    INITIAL_STATES,
    NUM_CONTEXTS,
)
from repro.jpeg2000.tier1_geom import SIGN_LUT

_C_TEMPLATE = r"""
#include <stdint.h>
#include <string.h>

static const uint16_t QE[{nstates}] = {{{qe}}};
static const uint8_t NMPS[{nstates}] = {{{nmps}}};
static const uint8_t NLPS[{nstates}] = {{{nlps}}};
static const uint8_t SWITCH_[{nstates}] = {{{switch}}};
static const uint8_t SIGN_CTX[9] = {{{sign_ctx}}};
static const uint8_t SIGN_XOR[9] = {{{sign_xor}}};

#define NCX {ncx}
#define CTX_RUNLEN {ctx_runlen}
#define CTX_UNIFORM {ctx_uniform}
#define MAXN 4096

#define MQ_RENORM do {{ \
    do {{ \
        if (ct == 0) {{ \
            if (b == 0xFF) {{ \
                if (((bp + 1 < dlen) ? data[bp + 1] : 0xFFu) > 0x8Fu) {{ \
                    c += 0xFF00u; ct = 8; \
                }} else {{ \
                    bp += 1; b = data[bp]; \
                    c += ((uint32_t)b) << 9; ct = 7; \
                }} \
            }} else {{ \
                bp += 1; b = (bp < dlen) ? data[bp] : 0xFF; \
                c += ((uint32_t)b) << 8; ct = 8; \
            }} \
        }} \
        a = (a << 1) & 0xFFFFu; \
        c = c << 1; \
        ct -= 1; \
    }} while (!(a & 0x8000u)); \
}} while (0)

#define MQ_DECODE(cxe, dvar) do {{ \
    int _cx = (cxe); \
    int _idx = index_[_cx]; \
    uint32_t _qe = QE[_idx]; \
    a -= _qe; \
    if (((c >> 16) & 0xFFFFu) < _qe) {{ \
        if (a < _qe) {{ dvar = mps[_cx]; index_[_cx] = NMPS[_idx]; }} \
        else {{ \
            dvar = 1 - mps[_cx]; \
            if (SWITCH_[_idx]) mps[_cx] = dvar; \
            index_[_cx] = NLPS[_idx]; \
        }} \
        a = _qe; \
        MQ_RENORM; \
    }} else {{ \
        c -= _qe << 16; \
        if (a & 0x8000u) {{ dvar = mps[_cx]; }} \
        else {{ \
            if (a < _qe) {{ \
                dvar = 1 - mps[_cx]; \
                if (SWITCH_[_idx]) mps[_cx] = dvar; \
                index_[_cx] = NLPS[_idx]; \
            }} else {{ dvar = mps[_cx]; index_[_cx] = NMPS[_idx]; }} \
            MQ_RENORM; \
        }} \
    }} \
}} while (0)

/* Sample i just decoded significant at plane p: decode its sign, record
   it, and bump the eight neighbours' incremental context keys. */
#define BECOME_SIG(iexp) do {{ \
    long _i = (iexp); \
    const int32_t *_nb = nbr + _i * 8; \
    int _hc = (sig[_nb[0]] ? (1 - 2 * sgn[_nb[0]]) : 0) \
            + (sig[_nb[1]] ? (1 - 2 * sgn[_nb[1]]) : 0); \
    int _vc = (sig[_nb[2]] ? (1 - 2 * sgn[_nb[2]]) : 0) \
            + (sig[_nb[3]] ? (1 - 2 * sgn[_nb[3]]) : 0); \
    if (_hc > 1) _hc = 1; else if (_hc < -1) _hc = -1; \
    if (_vc > 1) _vc = 1; else if (_vc < -1) _vc = -1; \
    int _k9 = (_hc + 1) * 3 + (_vc + 1); \
    int _sd; \
    MQ_DECODE(SIGN_CTX[_k9], _sd); \
    sgn[_i] = (uint8_t)(_sd ^ SIGN_XOR[_k9]); \
    sig[_i] = 1; \
    mag[_i] = (int64_t)1 << p; \
    prec[_i] = p; \
    key[_nb[0]] += 15; key[_nb[1]] += 15; \
    key[_nb[2]] += 5;  key[_nb[3]] += 5; \
    key[_nb[4]] += 1;  key[_nb[5]] += 1; \
    key[_nb[6]] += 1;  key[_nb[7]] += 1; \
}} while (0)

int t1_decode_block(const uint8_t *data, long dlen,
                    int height, int width, int msbs, int num_passes,
                    const uint8_t *lut, const int32_t *nbr,
                    int64_t *mag, int64_t *prec, uint8_t *sgn)
{{
    long n = (long)height * width;
    int32_t sig[MAXN + 1];
    int32_t key[MAXN + 1];
    uint8_t visited[MAXN];
    uint8_t refined[MAXN];
    memset(sig, 0, (n + 1) * sizeof(int32_t));
    memset(key, 0, (n + 1) * sizeof(int32_t));
    memset(visited, 0, n);
    memset(refined, 0, n);

    int32_t index_[NCX];
    int32_t mps[NCX];
    memset(index_, 0, sizeof(index_));
    memset(mps, 0, sizeof(mps));
{init_states}

    /* MQ decoder INITDEC */
    long bp = 0;
    int b = dlen ? data[0] : 0xFF;
    uint32_t c = ((uint32_t)b) << 16;
    int ct = 0;
    if (b == 0xFF) {{
        if (((bp + 1 < dlen) ? data[bp + 1] : 0xFFu) > 0x8Fu) {{
            c += 0xFF00u; ct = 8;
        }} else {{
            bp += 1; b = data[bp];
            c += ((uint32_t)b) << 9; ct = 7;
        }}
    }} else {{
        bp += 1; b = (bp < dlen) ? data[bp] : 0xFF;
        c += ((uint32_t)b) << 8; ct = 8;
    }}
    c <<= 7;
    ct -= 7;
    uint32_t a = 0x8000;

    int passes_done = 0;
    for (int p = msbs - 1; p >= 0; p--) {{
        if (p != msbs - 1) {{
            /* Significance propagation pass */
            for (int top = 0; top < height; top += 4) {{
                int bot = (top + 4 < height) ? top + 4 : height;
                for (int col = 0; col < width; col++) {{
                    for (int r = top; r < bot; r++) {{
                        long i = (long)r * width + col;
                        if (sig[i]) {{ visited[i] = 0; continue; }}
                        int k = key[i];
                        if (!k) {{ visited[i] = 0; continue; }}
                        int d;
                        MQ_DECODE(lut[k], d);
                        if (d) BECOME_SIG(i);
                        visited[i] = 1;
                    }}
                }}
            }}
            passes_done += 1;
            if (passes_done >= num_passes) break;
            /* Magnitude refinement pass */
            for (int top = 0; top < height; top += 4) {{
                int bot = (top + 4 < height) ? top + 4 : height;
                for (int col = 0; col < width; col++) {{
                    for (int r = top; r < bot; r++) {{
                        long i = (long)r * width + col;
                        if (!sig[i] || visited[i]) continue;
                        int cx = refined[i] ? 16 : (key[i] ? 15 : 14);
                        int d;
                        MQ_DECODE(cx, d);
                        mag[i] |= ((int64_t)d) << p;
                        refined[i] = 1;
                        prec[i] = p;
                    }}
                }}
            }}
            passes_done += 1;
            if (passes_done >= num_passes) break;
        }}
        /* Cleanup pass */
        for (int top = 0; top < height; top += 4) {{
            int nrows = (height - top < 4) ? height - top : 4;
            for (int col = 0; col < width; col++) {{
                long i0 = (long)top * width + col;
                int start = 0;
                if (nrows == 4) {{
                    long ia = i0, ib = i0 + width;
                    long ic = ib + width, id_ = ic + width;
                    if (!(sig[ia] | visited[ia] | key[ia]
                          | sig[ib] | visited[ib] | key[ib]
                          | sig[ic] | visited[ic] | key[ic]
                          | sig[id_] | visited[id_] | key[id_])) {{
                        int d;
                        MQ_DECODE(CTX_RUNLEN, d);
                        if (!d) continue;
                        int b1, b2;
                        MQ_DECODE(CTX_UNIFORM, b1);
                        MQ_DECODE(CTX_UNIFORM, b2);
                        int first = (b1 << 1) | b2;
                        BECOME_SIG(i0 + (long)first * width);
                        start = first + 1;
                    }}
                }}
                for (int k = start; k < nrows; k++) {{
                    long i = i0 + (long)k * width;
                    if (sig[i] || visited[i]) continue;
                    int d;
                    MQ_DECODE(lut[key[i]], d);
                    if (d) BECOME_SIG(i);
                }}
            }}
        }}
        passes_done += 1;
        if (passes_done >= num_passes) break;
    }}
    return 0;
}}
"""


def _c_source() -> str:
    init_states = "\n".join(
        f"    index_[{cx}] = {state};"
        for cx, state in sorted(INITIAL_STATES.items())
    )
    return _C_TEMPLATE.format(
        nstates=len(STATE_TABLE),
        qe=", ".join(f"0x{q:04X}" for q, _, _, _ in STATE_TABLE),
        nmps=", ".join(str(v) for _, v, _, _ in STATE_TABLE),
        nlps=", ".join(str(v) for _, _, v, _ in STATE_TABLE),
        switch=", ".join(str(v) for _, _, _, v in STATE_TABLE),
        sign_ctx=", ".join(str(cx) for cx, _ in SIGN_LUT),
        sign_xor=", ".join(str(x) for _, x in SIGN_LUT),
        ncx=NUM_CONTEXTS,
        ctx_runlen=CTX_RUNLEN,
        ctx_uniform=CTX_UNIFORM,
        init_states=init_states,
    )


def _build_library():
    """Compile (or load the cached) shared object; None on any failure."""
    src = _c_source()
    tag = hashlib.sha256(src.encode()).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-mq-native-{os.getuid()}"
    )
    so_path = os.path.join(cache_dir, f"t1dec_{tag}.so")
    if not os.path.exists(so_path):
        os.makedirs(cache_dir, mode=0o700, exist_ok=True)
        c_path = os.path.join(cache_dir, f"t1dec_{tag}_{os.getpid()}.c")
        tmp_so = so_path + f".{os.getpid()}.tmp"
        try:
            with open(c_path, "w") as fh:
                fh.write(src)
            subprocess.run(
                ["cc", "-O2", "-shared", "-fPIC", "-o", tmp_so, c_path],
                check=True,
                capture_output=True,
                timeout=60,
            )
            os.replace(tmp_so, so_path)  # atomic vs. concurrent builders
        except (OSError, subprocess.SubprocessError):
            return None
        finally:
            for path in (c_path, tmp_so):
                try:
                    os.unlink(path)
                except OSError:
                    pass
    try:
        lib = ctypes.CDLL(so_path)
    except OSError:
        return None
    fn = lib.t1_decode_block
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_char_p,  # data
        ctypes.c_long,  # dlen
        ctypes.c_int,  # height
        ctypes.c_int,  # width
        ctypes.c_int,  # msbs
        ctypes.c_int,  # num_passes
        ctypes.c_char_p,  # lut
        ctypes.POINTER(ctypes.c_int32),  # nbr
        ctypes.POINTER(ctypes.c_int64),  # mag
        ctypes.POINTER(ctypes.c_int64),  # prec
        ctypes.POINTER(ctypes.c_uint8),  # sgn
    ]
    return fn


def _make_wrapper(fn):
    _i32p = ctypes.POINTER(ctypes.c_int32)
    _i64p = ctypes.POINTER(ctypes.c_int64)
    _u8p = ctypes.POINTER(ctypes.c_uint8)

    def native_decode_block(
        data: bytes, height: int, width: int, lut: np.ndarray,
        nbr: np.ndarray, msbs: int, num_passes: int,
    ):
        """Decode one block; returns flat ``(mag, prec, sgn)`` arrays."""
        n = height * width
        mag = np.zeros(n, dtype=np.int64)
        prec = np.zeros(n, dtype=np.int64)
        sgn = np.zeros(n, dtype=np.uint8)
        fn(
            bytes(data), len(data), height, width, msbs, num_passes,
            lut.tobytes(), nbr.ctypes.data_as(_i32p),
            mag.ctypes.data_as(_i64p), prec.ctypes.data_as(_i64p),
            sgn.ctypes.data_as(_u8p),
        )
        return mag, prec, sgn

    return native_decode_block


#: Callable ``(data, h, w, lut, nbr, msbs, num_passes) -> (mag, prec, sgn)``
#: or None when unavailable.
native_decode_block = None

if os.environ.get("REPRO_MQ_NATIVE", "1") != "0":
    _fn = _build_library()
    if _fn is not None:
        native_decode_block = _make_wrapper(_fn)
