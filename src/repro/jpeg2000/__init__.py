"""A functional JPEG2000 Part-1 encoder/decoder (the Jasper substitute).

This subpackage implements the complete still-image coding path the paper
optimizes: level shift, reversible/irreversible multi-component transform,
lifting-based 5/3 and 9/7 DWT, deadzone scalar quantization, EBCOT Tier-1
bit-plane coding with the MQ arithmetic coder, PCRD-opt rate control, tag
trees and Tier-2 packet headers, and Part-1 codestream markers.
"""
