"""High-level JPEG2000 encoder: image in, Part-1 codestream out.

Mirrors Jasper's encode path stage for stage (the paper's Figure 2): read
component data, level shift + inter-component transform (merged), DWT,
quantization, Tier-1, rate control (lossy), Tier-2 + stream output.  The
:class:`EncodeResult` additionally carries :class:`WorkloadStats`, the
per-stage element counts and per-code-block coding statistics that drive
the Cell/B.E. performance model in :mod:`repro.cell`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.jpeg2000.codeblocks import CodeBlockSpec, partition_subband
from repro.jpeg2000.codestream import (
    CodestreamInfo,
    SubbandQuantField,
    tile_grid,
    tlm_overhead,
    write_codestream,
    write_main_header,
)
from repro.jpeg2000.dwt import effective_levels, synthesis_gain_sq
from repro.jpeg2000.dwt_fast import StageTimings, run_frontend
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.quantize import SubbandQuant
from repro.jpeg2000.rate import RateModel, apportion_budget
from repro.jpeg2000.tier1 import CodeBlockResult, encode_codeblock
from repro.jpeg2000.tier2 import (
    BlockContribution,
    PacketBand,
    encode_packet,
    iter_packets,
    packet_length,
    precinct_band_window,
    precinct_cells,
    precinct_counts,
)


@dataclass
class BlockStats:
    """Tier-1 statistics of one code block (Cell work-queue payload)."""

    comp: int
    band: str
    dlevel: int
    height: int
    width: int
    msbs: int
    num_passes: int
    total_symbols: int
    coded_bytes: int
    pass_symbols: list[int] = field(default_factory=list)


@dataclass
class SubbandStats:
    """Geometry of one subband (drives DWT/quantize stage modelling)."""

    comp: int
    band: str
    dlevel: int
    height: int
    width: int


@dataclass
class WorkloadStats:
    """Everything the performance layer needs to know about an encode."""

    height: int
    width: int
    num_components: int
    bit_depth: int
    lossless: bool
    levels: int
    codeblock_size: int
    subbands: list[SubbandStats] = field(default_factory=list)
    blocks: list[BlockStats] = field(default_factory=list)
    codestream_bytes: int = 0
    raw_bytes: int = 0
    #: How Tier-1 blocks reached the workers: ``"serial"``, ``"pickle"``,
    #: ``"shared_memory"`` (per-block paths; see
    #: :class:`repro.core.workpool.QueueStats`), ``"batched"`` (whole-image
    #: in-process stacks), or ``"batched_shared_memory"``/
    #: ``"batched_pickle"`` (geometry groups sharded across workers).
    tier1_dispatch: str = "serial"
    #: Batched-backend occupancy: distinct geometry groups stacked and
    #: code blocks batched into them (0 when the batched path did not run).
    tier1_batch_groups: int = 0
    tier1_batch_blocks: int = 0
    #: SIZ tile-grid population (1 for the legacy single-tile layout).
    tiles: int = 1

    @property
    def num_pixels(self) -> int:
        return self.height * self.width

    @property
    def tier1_batch_occupancy(self) -> float:
        """Mean code blocks per stacked geometry group (0 when unbatched)."""
        if not self.tier1_batch_groups:
            return 0.0
        return self.tier1_batch_blocks / self.tier1_batch_groups


def scale_workload(stats: WorkloadStats, factor: int) -> WorkloadStats:
    """Scale a measured workload to a ``factor``-times larger image.

    Python cannot functionally encode the paper's 28.3 MB photograph in
    reasonable time, so benchmarks measure a smaller crop and tile its
    *statistics*: subband dimensions scale by ``factor`` per axis and the
    per-code-block cost distribution is replicated ``factor**2`` times,
    preserving the data-dependent load imbalance that drives the work
    queue.  (A 256x256 watch crop scaled by 12 is exactly the paper's
    3072x3072x3 = 28.3 MB.)
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return stats
    sq = factor * factor
    return WorkloadStats(
        height=stats.height * factor,
        width=stats.width * factor,
        num_components=stats.num_components,
        bit_depth=stats.bit_depth,
        lossless=stats.lossless,
        levels=stats.levels,
        codeblock_size=stats.codeblock_size,
        subbands=[
            SubbandStats(s.comp, s.band, s.dlevel,
                         s.height * factor, s.width * factor)
            for s in stats.subbands
        ],
        blocks=[b for b in stats.blocks for _ in range(sq)],
        codestream_bytes=stats.codestream_bytes * sq,
        raw_bytes=stats.raw_bytes * sq,
        tier1_dispatch=stats.tier1_dispatch,
        tier1_batch_groups=stats.tier1_batch_groups,
        tier1_batch_blocks=stats.tier1_batch_blocks * sq,
        tiles=stats.tiles,
    )


@dataclass
class EncodeResult:
    """Codestream plus everything observed while producing it."""

    codestream: bytes
    params: EncoderParams
    stats: WorkloadStats
    #: Per-stage wall times (see :class:`repro.jpeg2000.dwt_fast.StageTimings`).
    timings: StageTimings | None = None
    #: Planner decision (:class:`repro.plan.PlanDecision`) when the encode
    #: ran under ``params.plan``; ``None`` for classic knob-driven encodes.
    plan: object = None

    @property
    def compression_ratio(self) -> float:
        return self.stats.raw_bytes / max(1, len(self.codestream))


@dataclass
class _PlannedBlock:
    comp: int
    band: str
    dlevel: int
    spec: CodeBlockSpec
    quant: SubbandQuant
    result: CodeBlockResult
    included_passes: int = 0

    def included_length(self) -> int:
        if self.included_passes == 0:
            return 0
        return self.result.pass_lengths[self.included_passes - 1]


@dataclass
class _PlannedSubband:
    comp: int
    band: str
    dlevel: int
    height: int
    width: int
    quant: SubbandQuant
    grid_rows: int
    grid_cols: int
    blocks: list[_PlannedBlock] = field(default_factory=list)


def _normalize_image(image: np.ndarray) -> tuple[list[np.ndarray], int]:
    """Split an input array into components and infer the bit depth."""
    img = np.asarray(image)
    if img.dtype == np.uint8:
        depth = 8
    elif img.dtype == np.uint16:
        depth = 16
    else:
        raise ValueError(f"image dtype must be uint8 or uint16, got {img.dtype}")
    if img.ndim == 2:
        comps = [img]
    elif img.ndim == 3 and img.shape[2] in (1, 3):
        comps = [img[:, :, c] for c in range(img.shape[2])]
    else:
        raise ValueError(f"unsupported image shape {img.shape}")
    if img.shape[0] < 1 or img.shape[1] < 1:
        raise ValueError(f"image must be non-empty, got shape {img.shape}")
    return comps, depth


def encode(
    image: np.ndarray,
    params: EncoderParams | None = None,
    pool=None,
) -> EncodeResult:
    """Encode ``image`` (uint8/uint16, gray or RGB) to a JPEG2000 codestream.

    ``pool`` optionally injects a persistent block executor (see
    :class:`repro.core.workpool.CodeBlockWorkQueue`'s ``pool`` argument) —
    the encode service routes Tier-1 work through its shared worker pool
    this way.  The codestream is byte-identical with or without it.

    When ``params.plan`` is set (``"auto"`` or an
    :class:`repro.plan.ExecutionPlan`), the planner resolves the
    execution knobs first — explicit parameters and env overrides always
    win — and the decision is returned on ``EncodeResult.plan``.  Plans
    never change the codestream bytes.
    """
    if params is None:
        params = EncoderParams.lossless_default()
    plan_decision = None
    if params.plan is not None:
        from repro.plan import resolve_plan  # lazy: planner is optional

        params, plan_decision = resolve_plan(
            np.asarray(image).shape, params, pool_warm=pool is not None
        )
    t_start = time.perf_counter()
    comps, depth = _normalize_image(image)
    height, width = comps[0].shape
    ncomp = len(comps)
    use_mct = ncomp == 3
    itemsize = comps[0].dtype.itemsize

    grid = tile_grid(width, height, params.tile_size, params.tile_size)
    ntiles = len(grid)
    tiled = ntiles > 1

    stats = WorkloadStats(
        height=height, width=width, num_components=ncomp, bit_depth=depth,
        lossless=params.lossless, levels=params.levels,
        codeblock_size=params.codeblock_size,
        raw_bytes=int(np.asarray(image).nbytes),
        tiles=ntiles,
    )
    timings = StageTimings()

    # Every tile shares one COD: clamp the decomposition depth to what the
    # smallest tile supports so SIZ/COD/QCD describe all tiles at once.
    if tiled:
        actual_levels = min(
            effective_levels((t_h, t_w), params.levels)
            for (_r, _c, t_h, t_w) in grid
        )
        tile_params = replace(params, levels=actual_levels)
    else:
        actual_levels = effective_levels((height, width), params.levels)
        tile_params = params

    # Streaming batches: tiles are front-ended, Tier-1 coded, and reduced
    # to compressed bodies one batch at a time, so peak memory holds a few
    # tiles' working sets instead of the whole image's.  The default batch
    # is one tile row; an explicit ``mem_budget`` sizes the batch by the
    # measured per-sample working set (TILE_WORKSET_BYTES — dominated by
    # the batched Tier-1 coder's stacked block state, not the coefficient
    # planes).
    if tiled:
        if params.mem_budget is not None:
            from repro.jpeg2000.params import TILE_WORKSET_BYTES

            per_tile = (params.tile_size * params.tile_size * ncomp
                        * TILE_WORKSET_BYTES)
            tiles_per_batch = max(1, min(ntiles, params.mem_budget // per_tile))
        else:
            tiles_per_batch = (width + params.tile_size - 1) // params.tile_size
        batches = [
            list(range(i, min(i + tiles_per_batch, ntiles)))
            for i in range(0, ntiles, tiles_per_batch)
        ]
    else:
        batches = [[0]]

    # Multi-batch parallel encodes reuse one process pool across batches
    # instead of forking a fresh one per tile row.
    mp_pool = None
    if pool is None and len(batches) > 1:
        from repro.core.workpool import ReusableWorkerPool, default_workers

        eff = params.workers if params.workers is not None else default_workers()
        if eff > 1:
            mp_pool = ReusableWorkerPool(workers=eff)

    tile_bodies: list[bytes] = [b""] * ntiles
    info: CodestreamInfo | None = None
    tile_budgets: list[tuple[float, float]] | None = None
    try:
        for batch in batches:
            # Phase 1: collect the batch's independent Tier-1 work items.
            # Nothing is encoded yet — the blocks go through the work queue
            # as one batch so idle workers can steal from any subband of
            # any tile.  Each subband keeps its quantized plane whole in
            # ``planes``; pending items are (plane index, block spec)
            # descriptors, so the dispatch layer can publish a plane once
            # (shared memory) instead of shipping a copy per block.
            batch_planned: list[_PlannedSubband] = []
            planes: list[np.ndarray] = []
            pending: list[tuple[int, CodeBlockSpec]] = []
            tile_slices: list[tuple[int, int, int]] = []
            for t in batch:
                row0, col0, t_h, t_w = grid[t]
                tcomps = [c[row0 : row0 + t_h, col0 : col0 + t_w] for c in comps]
                frontend = run_frontend(tcomps, depth, tile_params,
                                        timings=timings)
                start = len(batch_planned)
                for ci, decomp in enumerate(frontend.decomps):
                    for sb in decomp.subbands():
                        quant = frontend.quants[(sb.band, sb.dlevel)]
                        q = sb.data  # already quantized int32
                        specs, grows, gcols = partition_subband(
                            sb.shape[0], sb.shape[1], params.codeblock_size
                        )
                        psb = _PlannedSubband(
                            comp=ci, band=sb.band, dlevel=sb.dlevel,
                            height=sb.shape[0], width=sb.shape[1], quant=quant,
                            grid_rows=grows, grid_cols=gcols,
                        )
                        stats.subbands.append(
                            SubbandStats(ci, sb.band, sb.dlevel,
                                         sb.shape[0], sb.shape[1])
                        )
                        plane_idx = len(planes)
                        planes.append(q)
                        for spec in specs:
                            pending.append((plane_idx, spec))
                        batch_planned.append(psb)
                tile_slices.append((t, start, len(batch_planned)))

            # Phase 2: Tier-1 encode the batch's blocks — serially or
            # through the multiprocessing work queue (the executable
            # analogue of the paper's SPE dynamic queue).  Results come
            # back in submission order, so everything downstream is
            # identical for any worker count.
            t0 = time.perf_counter()
            results = _encode_pending(batch_planned, planes, pending, params,
                                      pool, stats, mp_pool=mp_pool)
            timings.tier1 += time.perf_counter() - t0

            # Phase 3: reattach results in the original planning order.
            for (plane_idx, spec), res in zip(pending, results):
                psb = batch_planned[plane_idx]
                quant = psb.quant
                if res.msbs > quant.num_bitplanes:
                    raise RuntimeError(
                        f"code block needs {res.msbs} bit planes but subband "
                        f"{psb.band}{psb.dlevel} signals only "
                        f"{quant.num_bitplanes}; increase guard_bits"
                    )
                pb = _PlannedBlock(
                    comp=psb.comp, band=psb.band, dlevel=psb.dlevel, spec=spec,
                    quant=quant, result=res, included_passes=res.num_passes,
                )
                psb.blocks.append(pb)
                stats.blocks.append(
                    BlockStats(
                        comp=psb.comp, band=psb.band, dlevel=psb.dlevel,
                        height=spec.height, width=spec.width,
                        msbs=res.msbs, num_passes=res.num_passes,
                        total_symbols=res.total_symbols,
                        coded_bytes=len(res.data),
                        pass_symbols=list(res.pass_symbols),
                    )
                )

            if info is None:
                _t0, s0, e0 = tile_slices[0]
                info = CodestreamInfo(
                    width=width, height=height, num_components=ncomp,
                    bit_depth=depth, signed=False, levels=actual_levels,
                    codeblock_size=params.codeblock_size,
                    reversible=params.lossless, use_mct=use_mct, num_layers=1,
                    guard_bits=params.guard_bits,
                    quant_fields=_qcd_fields(batch_planned[s0:e0], ncomp),
                    tile_width=params.tile_size if tiled else None,
                    tile_height=params.tile_size if tiled else None,
                    progression=params.progression,
                    precinct_size=params.precinct_size,
                )
                if params.rate is not None:
                    header_len = len(write_main_header(info))
                    if tiled:
                        # Global PCRD budget, apportioned per tile by raw
                        # size; the fixed overhead (main header, TLM, one
                        # SOT+SOD per tile, EOC) splits the same way.
                        overhead = (header_len + tlm_overhead(ntiles)
                                    + ntiles * 14 + 2)
                        raws = [t_h * t_w * ncomp * itemsize
                                for (_r, _c, t_h, t_w) in grid]
                        shares = apportion_budget(float(overhead), raws)
                        tile_budgets = [
                            (params.rate * raws[i], shares[i])
                            for i in range(ntiles)
                        ]
                    else:
                        tile_budgets = [(
                            params.rate * stats.raw_bytes,
                            float(header_len + 14 + 2),  # + SOT + SOD + EOC
                        )]

            # Phase 4: per-tile rate control and packet assembly; the
            # batch's coefficient planes are released as soon as each
            # tile's compressed body exists.
            for (t, s, e) in tile_slices:
                tplan = batch_planned[s:e]
                if params.rate is not None and tile_budgets is not None:
                    t0 = time.perf_counter()
                    target_t, overhead_t = tile_budgets[t]
                    _apply_rate_control(tplan, params, ncomp, actual_levels,
                                        target_t, overhead_t)
                    timings.rate_control += time.perf_counter() - t0
                t0 = time.perf_counter()
                tile_bodies[t] = _assemble_packets(
                    tplan, ncomp, actual_levels, params.progression,
                    params.precinct_size, params.codeblock_size,
                )
                timings.tier2 += time.perf_counter() - t0
    except BaseException:
        if mp_pool is not None:
            mp_pool.terminate()
        raise
    else:
        if mp_pool is not None:
            mp_pool.close()

    assert info is not None
    t0 = time.perf_counter()
    if tiled:
        info.tiles = tile_bodies
    else:
        info.tile_data = tile_bodies[0]
    codestream = write_codestream(info)
    timings.tier2 += time.perf_counter() - t0
    timings.total = time.perf_counter() - t_start
    stats.codestream_bytes = len(codestream)
    result = EncodeResult(
        codestream=codestream, params=params, stats=stats, timings=timings,
        plan=plan_decision,
    )
    if params.self_check:
        # Lazy import: repro.verify depends on this module.
        from repro.verify.roundtrip import verify_encode

        verify_encode(image, result)
    return result


def _encode_pending(
    planned: list[_PlannedSubband],
    planes: list[np.ndarray],
    pending: list[tuple[int, CodeBlockSpec]],
    params: EncoderParams,
    pool=None,
    stats: WorkloadStats | None = None,
    mp_pool=None,
) -> list[CodeBlockResult]:
    """Tier-1 encode the collected blocks, honouring ``params.workers``.

    An injected ``pool`` overrides ``params.workers``: all blocks go
    through it (the service's persistent pool / scheduler lane).  The
    blocks are described as slices of whole subband planes so the work
    queue can publish each plane once via shared memory and send workers
    only ``(seq, plane, offsets, shape)`` descriptors.  ``mp_pool``
    optionally carries a :class:`repro.core.workpool.ReusableWorkerPool`
    so tiled encodes reuse one process pool across tile batches.
    """
    from repro.jpeg2000.tier1 import resolve_backend

    backend = resolve_backend(params.tier1_backend)
    nblocks = len(pending)
    # "auto" batches whole images: with more than one block in hand, the
    # stacked coder always beats per-block vectorized dispatch and is
    # byte-identical.  Explicit per-block backends are honoured verbatim.
    batched = backend == "batched" or (backend == "auto" and nblocks >= 2)

    def run_batched_inprocess() -> list[CodeBlockResult]:
        from repro.jpeg2000.tier1_batch import (
            BatchOccupancy,
            encode_codeblocks_batched,
        )

        occ = BatchOccupancy()
        results = encode_codeblocks_batched(
            [
                (
                    planes[pi][spec.row0 : spec.row0 + spec.height,
                               spec.col0 : spec.col0 + spec.width],
                    planned[pi].band,
                )
                for pi, spec in pending
            ],
            occ,
        )
        if stats is not None:
            stats.tier1_dispatch = "batched"
            stats.tier1_batch_groups = occ.groups
            stats.tier1_batch_blocks = occ.blocks
        return results

    if pool is not None:
        # Injected pool (the service's persistent workers / scheduler
        # lane).  An explicitly batched backend still runs in-process for
        # small images — the pool cannot amortize per-block pickling there
        # — and degrades to byte-identical per-block coding through the
        # pool above the threshold.
        if backend == "batched":
            from repro.core.workpool import tier1_serial_threshold

            if nblocks < tier1_serial_threshold():
                return run_batched_inprocess()
        return _encode_pending_queue(planned, planes, pending, params, pool,
                                     stats, params.workers, mp_pool)

    workers = params.workers
    if workers == 1 or nblocks < 2:
        eff_workers = 1
    else:
        # Lazily imported like the queue below: the serial path must not
        # pay the multiprocessing import.
        from repro.core.workpool import tier1_auto_workers

        eff_workers = tier1_auto_workers(workers, nblocks)

    if batched:
        if eff_workers == 1:
            return run_batched_inprocess()
        return _encode_pending_groups(planned, planes, pending, params,
                                      stats, eff_workers, mp_pool)
    if eff_workers == 1:
        if stats is not None:
            stats.tier1_dispatch = "serial"
        return [
            encode_codeblock(
                planes[pi][spec.row0 : spec.row0 + spec.height,
                           spec.col0 : spec.col0 + spec.width],
                planned[pi].band,
                backend=backend,
            )
            for pi, spec in pending
        ]
    return _encode_pending_queue(planned, planes, pending, params, None,
                                 stats, eff_workers, mp_pool)


def _encode_pending_queue(
    planned, planes, pending, params, pool, stats, workers, mp_pool=None
) -> list[CodeBlockResult]:
    """Per-block dispatch through :class:`CodeBlockWorkQueue`."""
    from repro.core.workpool import CodeBlockWorkQueue, PlaneBlockTask

    queue = CodeBlockWorkQueue(
        workers=workers, backend=params.tier1_backend, pool=pool,
        mp_pool=mp_pool,
    )
    tasks = [
        PlaneBlockTask(
            seq=i, plane=pi, row0=spec.row0, col0=spec.col0,
            height=spec.height, width=spec.width, band=planned[pi].band,
        )
        for i, (pi, spec) in enumerate(pending)
    ]
    results = queue.encode_plane_blocks(planes, tasks)
    if stats is not None and queue.last_stats is not None:
        stats.tier1_dispatch = queue.last_stats.dispatch
    return results


def _encode_pending_groups(
    planned, planes, pending, params, stats, workers, mp_pool=None
) -> list[CodeBlockResult]:
    """Batched dispatch: shard geometry *groups* across workers.

    Blocks are grouped by ``(height, width)`` and large groups split into
    shards (policy: :func:`repro.jpeg2000.tier1_batch.group_shard_count`),
    so every worker amortizes its NumPy overhead over a stack while the
    dynamic queue still balances load.
    """
    from repro.core.workpool import CodeBlockWorkQueue, PlaneGroupTask
    from repro.jpeg2000.tier1_batch import group_shard_count

    groups: dict[tuple[int, int], list[int]] = {}
    for i, (pi, spec) in enumerate(pending):
        groups.setdefault((spec.height, spec.width), []).append(i)
    nblocks = len(pending)
    shard = group_shard_count(nblocks, workers)
    tasks = []
    for idxs in groups.values():
        for o in range(0, len(idxs), shard):
            part = idxs[o : o + shard]
            tasks.append(
                PlaneGroupTask(
                    seqs=tuple(part),
                    blocks=tuple(
                        (
                            pending[i][0],
                            pending[i][1].row0,
                            pending[i][1].col0,
                            pending[i][1].height,
                            pending[i][1].width,
                            planned[pending[i][0]].band,
                        )
                        for i in part
                    ),
                )
            )
    queue = CodeBlockWorkQueue(workers=workers, backend="batched",
                               mp_pool=mp_pool)
    results = queue.encode_plane_groups(planes, tasks)
    if stats is not None:
        dispatch = (
            queue.last_stats.dispatch if queue.last_stats is not None
            else "shared_memory"
        )
        stats.tier1_dispatch = f"batched_{dispatch}"
        stats.tier1_batch_groups = len(groups)
        stats.tier1_batch_blocks = nblocks
    return results


def _qcd_fields(planned: list[_PlannedSubband], ncomp: int) -> list[SubbandQuantField]:
    """QCD subband fields, taken from component 0 (shared across comps)."""
    fields = []
    for psb in planned:
        if psb.comp != 0:
            continue
        fields.append(SubbandQuantField(psb.quant.exponent, psb.quant.mantissa))
    return fields


def _apply_rate_control(
    planned: list[_PlannedSubband],
    params: EncoderParams,
    ncomp: int,
    levels: int,
    target_total: float,
    overhead: float,
) -> None:
    """PCRD-opt truncation to hit ``target_total`` bytes for one tile.

    ``target_total`` is this tile's share of the global ``rate *
    raw_bytes`` budget (the whole budget on the single-tile path) and
    ``overhead`` its share of the fixed marker cost.  The loop converges
    on *lengths* alone: truncations come from one reusable
    :class:`RateModel` (hulls built once, bisection over flat arrays) and
    each candidate's codestream size is priced exactly by
    :func:`repro.jpeg2000.tier2.packet_length` without materializing packet
    bytes.  Only after the loop settles does :func:`_assemble_packets` run —
    once per tile — so the final codestream is byte-identical to the era
    that rebuilt every packet per iteration.
    """
    all_blocks = [b for psb in planned for b in psb.blocks]
    lengths_list = []
    dists_list = []
    for b in all_blocks:
        weight = b.quant.step**2 * synthesis_gain_sq(
            b.band, max(b.dlevel, 1), reversible=False
        )
        lengths_list.append([float(x) for x in b.result.pass_lengths])
        dists_list.append([d * weight for d in b.result.pass_dist])
    model = RateModel(lengths_list, dists_list)
    budget = max(0.0, target_total - overhead)
    for _ in range(6):
        trunc = model.choose(budget)
        for b, t in zip(all_blocks, trunc):
            b.included_passes = int(t)
        total = overhead + _packets_length(
            planned, ncomp, levels, params.progression, params.precinct_size,
            params.codeblock_size,
        )
        if total <= target_total or budget <= 0:
            break
        budget = max(0.0, budget - (total - target_total))


def _band_keys(res: int, ci: int, levels: int) -> list[tuple[int, str, int]]:
    """Subband lookup keys contributing to one (resolution, component)."""
    if res == 0:
        return [(ci, "LL", levels)]
    dl = levels - res + 1
    return [(ci, "HL", dl), (ci, "LH", dl), (ci, "HH", dl)]


def _iter_packet_bands(
    planned: list[_PlannedSubband],
    ncomp: int,
    levels: int,
    with_data: bool,
    progression: str = "LRCP",
    precinct_size: int | None = None,
    codeblock_size: int = 64,
):
    """Packets in ``progression`` order, one band list each.

    With maximal precincts and LRCP this is exactly the historical
    resolution-major, component-minor walk.  Precincts window each band's
    code-block grid; block coordinates inside a packet are local to the
    precinct.  ``with_data=False`` builds length-only contributions for
    the rate loop's pricing; ``with_data=True`` carries the truncated body
    bytes for the final assembly.  Both describe the identical packet.
    """
    by_key: dict[tuple[int, str, int], _PlannedSubband] = {
        (p.comp, p.band, p.dlevel): p for p in planned
    }
    nres = levels + 1
    pcb_by_res: list[int | None] = []
    pcols_by_res: list[int] = []
    nprec_by_res: list[int] = []
    for res in range(nres):
        pcb = precinct_cells(codeblock_size, precinct_size, res)
        grids = [
            (psb.grid_rows, psb.grid_cols)
            for key in _band_keys(res, 0, levels)
            if (psb := by_key.get(key)) is not None
        ]
        prows, pcols = precinct_counts(pcb, grids)
        pcb_by_res.append(pcb)
        pcols_by_res.append(pcols)
        nprec_by_res.append(prows * pcols)
    for res, ci, p in iter_packets(levels, ncomp, nprec_by_res, progression):
        pcb = pcb_by_res[res]
        pcols = pcols_by_res[res]
        bands = []
        for key in _band_keys(res, ci, levels):
            psb = by_key.get(key)
            if psb is None:
                continue
            (r_lo, r_hi, c_lo, c_hi), (lr, lc) = precinct_band_window(
                psb.grid_rows, psb.grid_cols, pcb, pcols, p
            )
            contribs = []
            for b in psb.blocks:
                gr, gc = b.spec.grid_row, b.spec.grid_col
                if not (r_lo <= gr < r_hi and c_lo <= gc < c_hi):
                    continue
                inc = b.included_passes > 0
                length = b.included_length()
                contribs.append(
                    BlockContribution(
                        grid_row=gr - r_lo,
                        grid_col=gc - c_lo,
                        included=inc,
                        zero_bitplanes=(
                            b.quant.num_bitplanes - b.result.msbs if inc else 0
                        ),
                        num_passes=b.included_passes,
                        data=b.result.data[:length] if with_data else b"",
                        length=length,
                    )
                )
            bands.append(PacketBand(lr, lc, contribs))
        yield bands


def _packets_length(
    planned: list[_PlannedSubband],
    ncomp: int,
    levels: int,
    progression: str = "LRCP",
    precinct_size: int | None = None,
    codeblock_size: int = 64,
) -> int:
    """Exact ``len(_assemble_packets(...))`` without building any bytes."""
    return sum(
        packet_length(bands)
        for bands in _iter_packet_bands(
            planned, ncomp, levels, False, progression, precinct_size,
            codeblock_size,
        )
    )


def _assemble_packets(
    planned: list[_PlannedSubband],
    ncomp: int,
    levels: int,
    progression: str = "LRCP",
    precinct_size: int | None = None,
    codeblock_size: int = 64,
) -> bytes:
    """Concatenate one tile's packets in ``progression`` order."""
    _assemble_packets.calls += 1
    out = bytearray()
    for bands in _iter_packet_bands(
        planned, ncomp, levels, True, progression, precinct_size,
        codeblock_size,
    ):
        out += encode_packet(bands)
    return bytes(out)


#: Invocation counter (test observability): rate control prices candidate
#: truncations via :func:`_packets_length`, so a lossy encode assembles
#: packet bytes exactly once per tile (once per encode when untiled).
_assemble_packets.calls = 0
