"""Lifting-based discrete wavelet transform (5/3 reversible, 9/7 irreversible).

Implements the two Part-1 filter banks with whole-sample symmetric extension
exactly as T.800 Annex F specifies, using the *lifting scheme* (Sweldens)
that the paper adopts over convolution (Section 3.2).  The 1-D transforms
work on an extended copy of the signal and perform each lifting step as one
vectorized slice update — the NumPy analogue of the SPE SIMD kernels.

Conventions
-----------
* Signal origin is even, so the low band holds ``ceil(n/2)`` samples.
* 5/3 operates on integers and is exactly invertible.
* 9/7 operates on floats; the final scaling is ``high *= K``,
  ``low *= 1/K`` (unit DC gain on the low band).
* Vertical filtering (axis 0) runs before horizontal (axis 1), matching the
  paper's stage order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

# T.800 Table F.4 lifting constants for the 9/7 filter bank.
LIFT_ALPHA = -1.586134342059924
LIFT_BETA = -0.052980118572961
LIFT_GAMMA = 0.882911075530934
LIFT_DELTA = 0.443506852043971
LIFT_K = 1.230174104914001

#: Number of guard samples added on each side before lifting.  Four covers
#: the four 9/7 lifting steps (each step invalidates one half-sample of
#: margin at each end); 5/3 needs only two but shares the same padding.
_PAD = 4


def sym_indices(n: int, pad_left: int, pad_right: int) -> np.ndarray:
    """Whole-sample symmetric (period ``2n-2``) source indices.

    Maps extended positions ``-pad_left .. n-1+pad_right`` onto ``0..n-1``.
    The returned array is cached and read-only — the same ``(n, pad_left,
    pad_right)`` triple recurs twice per level per component, so rebuilding
    it on every 1-D call was pure waste.

    >>> sym_indices(4, 2, 2).tolist()
    [2, 1, 0, 1, 2, 3, 2, 1]
    """
    if n <= 0:
        raise ValueError(f"signal length must be positive, got {n}")
    return _sym_indices_cached(n, pad_left, pad_right)


@lru_cache(maxsize=1024)
def _sym_indices_cached(n: int, pad_left: int, pad_right: int) -> np.ndarray:
    pos = np.arange(-pad_left, n + pad_right)
    if n == 1:
        idx = np.zeros_like(pos)
    else:
        period = 2 * (n - 1)
        pos = np.abs(pos) % period
        idx = np.where(pos < n, pos, period - pos)
    idx.setflags(write=False)
    return idx


def _extended(x: np.ndarray, n: int) -> tuple[np.ndarray, int]:
    """Symmetric-extended copy along axis 0 with odd extended length.

    Returns ``(E, pad_left)`` where ``E[pad_left + j] == x[j]``.  The extended
    length is forced odd so every odd position has two even neighbours and
    all lifting steps become full-length slice expressions.
    """
    pad_right = _PAD + (1 - (n + 2 * _PAD) % 2)
    idx = sym_indices(n, _PAD, pad_right)
    return x[idx], _PAD


def _split(E: np.ndarray, pad: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Extract the low (even positions) and high (odd) interior coefficients."""
    low = E[pad : pad + n : 2]
    high = E[pad + 1 : pad + n : 2]
    return low.copy(), high.copy()


#: Magnitude below which one 5/3 lifting level is overflow-safe in int32:
#: intermediate sums are bounded by ``4*M + 6``, so ``M < 2**27`` keeps them
#: under ``2**29``.  Samples up to 16 bits through 5 decomposition levels
#: (every paper workload) stay far below this; larger magnitudes fall back
#: to the historical int64 path automatically.
I32_SAFE_MAX = 1 << 27


def _lift_dtype(*arrays: np.ndarray) -> type:
    """int32 when every input provably fits the 5/3 headroom, else int64.

    Dropping the int64 upcast halves the memory traffic of the reversible
    path; the min/max scan that guards it is a single cheap pass.
    """
    for a in arrays:
        if a.size == 0:
            continue
        if a.dtype.kind not in "iu" or a.dtype.itemsize > 4:
            return np.int64
        if max(int(a.max()), -int(a.min())) >= I32_SAFE_MAX:
            return np.int64
    return np.int32


def forward_53_1d(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reversible 5/3 analysis along axis 0.  Returns ``(low, high)``."""
    n = x.shape[0]
    if n == 1:
        return x.astype(np.int32).copy(), x[:0].astype(np.int32).copy()
    dt = _lift_dtype(x)
    E, pad = _extended(x.astype(dt, copy=False), n)
    E[1::2] -= (E[0:-1:2] + E[2::2]) >> 1
    E[2:-1:2] += (E[1:-2:2] + E[3::2] + 2) >> 2
    low, high = _split(E, pad, n)
    return low.astype(np.int32), high.astype(np.int32)


def inverse_53_1d(low: np.ndarray, high: np.ndarray, n: int) -> np.ndarray:
    """Exact inverse of :func:`forward_53_1d`."""
    _check_band_sizes(low, high, n)
    if n == 1:
        return low.astype(np.int32).copy()
    dt = _lift_dtype(low, high)
    E = _interleave_extended(low.astype(dt, copy=False),
                             high.astype(dt, copy=False), n)
    E[2:-1:2] -= (E[1:-2:2] + E[3::2] + 2) >> 2
    E[1::2] += (E[0:-1:2] + E[2::2]) >> 1
    return E[_PAD : _PAD + n].astype(np.int32)


def forward_97_1d(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Irreversible 9/7 analysis along axis 0.  Returns float ``(low, high)``."""
    n = x.shape[0]
    if n == 1:
        return x.astype(np.float64).copy(), x[:0].astype(np.float64).copy()
    E, pad = _extended(x.astype(np.float64), n)
    E[1::2] += LIFT_ALPHA * (E[0:-1:2] + E[2::2])
    E[2:-1:2] += LIFT_BETA * (E[1:-2:2] + E[3::2])
    E[1::2] += LIFT_GAMMA * (E[0:-1:2] + E[2::2])
    E[2:-1:2] += LIFT_DELTA * (E[1:-2:2] + E[3::2])
    low, high = _split(E, pad, n)
    return low * (1.0 / LIFT_K), high * LIFT_K


def inverse_97_1d(low: np.ndarray, high: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`forward_97_1d` (floating point)."""
    _check_band_sizes(low, high, n)
    if n == 1:
        return low.astype(np.float64).copy()
    E = _interleave_extended(low.astype(np.float64) * LIFT_K,
                             high.astype(np.float64) * (1.0 / LIFT_K), n)
    E[2:-1:2] -= LIFT_DELTA * (E[1:-2:2] + E[3::2])
    E[1::2] -= LIFT_GAMMA * (E[0:-1:2] + E[2::2])
    E[2:-1:2] -= LIFT_BETA * (E[1:-2:2] + E[3::2])
    E[1::2] -= LIFT_ALPHA * (E[0:-1:2] + E[2::2])
    return E[_PAD : _PAD + n]


def _interleave_extended(low: np.ndarray, high: np.ndarray, n: int) -> np.ndarray:
    """Rebuild the extended interleaved coefficient signal for synthesis.

    The DWT of a whole-sample symmetric-extended signal is itself symmetric
    in the interleaved domain, so the extension of the coefficient signal is
    obtained by reflecting interleaved positions.
    """
    pad_right = _PAD + (1 - (n + 2 * _PAD) % 2)
    idx = sym_indices(n, _PAD, pad_right)
    interleaved_shape = (n,) + low.shape[1:]
    interleaved = np.empty(interleaved_shape, dtype=low.dtype)
    interleaved[0::2] = low
    interleaved[1::2] = high
    return interleaved[idx].copy()


def _check_band_sizes(low: np.ndarray, high: np.ndarray, n: int) -> None:
    ne, no = (n + 1) // 2, n // 2
    if low.shape[0] != ne or high.shape[0] != no:
        raise ValueError(
            f"band sizes ({low.shape[0]}, {high.shape[0]}) inconsistent with n={n}"
        )


# ---------------------------------------------------------------------------
# 2-D multilevel decomposition
# ---------------------------------------------------------------------------

#: Part-1 subband orientation codes (T.800 Table F.1 ordering within a packet).
BAND_LL = "LL"
BAND_HL = "HL"  # horizontally high-pass, vertically low-pass
BAND_LH = "LH"  # horizontally low-pass, vertically high-pass
BAND_HH = "HH"

#: log2 nominal dynamic-range gain of each orientation for the 5/3 filter
#: (T.800 Table E.1): one extra bit per high-pass direction.
GAIN_LOG2 = {BAND_LL: 0, BAND_HL: 1, BAND_LH: 1, BAND_HH: 2}


@dataclass
class Subband:
    """One subband of a decomposition.

    ``dlevel`` is the decomposition level (1 = finest).  ``data`` is int32
    for the reversible path and float64 for the irreversible path.
    """

    band: str
    dlevel: int
    data: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]


@dataclass
class Decomposition:
    """Full multilevel 2-D DWT of one component plane."""

    shape: tuple[int, int]
    levels: int
    reversible: bool
    ll: np.ndarray
    #: details[i] = (HL, LH, HH) arrays produced at decomposition level i+1.
    details: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = field(default_factory=list)

    def subbands(self) -> list[Subband]:
        """All subbands, coarsest first (packet progression order)."""
        out = [Subband(BAND_LL, self.levels, self.ll)]
        for i in range(self.levels - 1, -1, -1):
            hl, lh, hh = self.details[i]
            out.append(Subband(BAND_HL, i + 1, hl))
            out.append(Subband(BAND_LH, i + 1, lh))
            out.append(Subband(BAND_HH, i + 1, hh))
        return out


def _forward_2d_once(plane: np.ndarray, reversible: bool):
    fwd = forward_53_1d if reversible else forward_97_1d
    # Vertical filtering (columns), then horizontal (rows) — paper order.
    lo_v, hi_v = fwd(plane)
    ll, hl = (a.T for a in fwd(lo_v.T))
    lh, hh = (a.T for a in fwd(hi_v.T))
    return ll, hl, lh, hh


def _inverse_2d_once(ll, hl, lh, hh, shape: tuple[int, int], reversible: bool,
                     inv=None):
    if inv is None:
        inv = inverse_53_1d if reversible else inverse_97_1d
    h, w = shape
    lo_v = inv(ll.T, hl.T, w).T
    hi_v = inv(lh.T, hh.T, w).T
    return inv(lo_v, hi_v, h)


def effective_levels(shape: tuple[int, int], levels: int) -> int:
    """Levels :func:`forward_dwt2d` actually performs on ``shape``.

    Mirrors the 1x1 clamp in the decomposition loop so callers (the fused
    front end, quantizer derivation) can size outputs without running it.
    """
    if levels < 0:
        raise ValueError(f"levels must be non-negative, got {levels}")
    h, w = shape
    done = 0
    for _ in range(levels):
        if h == 1 and w == 1:
            break
        h, w = (h + 1) // 2, (w + 1) // 2
        done += 1
    return done


def forward_dwt2d(plane: np.ndarray, levels: int, reversible: bool) -> Decomposition:
    """Multilevel 2-D forward DWT of one component plane."""
    plane = np.asarray(plane)
    if plane.ndim != 2:
        raise ValueError(f"plane must be 2-D, got shape {plane.shape}")
    if levels < 0:
        raise ValueError(f"levels must be non-negative, got {levels}")
    ll = plane.astype(np.int32) if reversible else plane.astype(np.float64)
    details = []
    for _ in range(levels):
        if ll.shape[0] == 1 and ll.shape[1] == 1:
            break  # nothing left to split; standard allows it but it is inert
        ll, hl, lh, hh = _forward_2d_once(ll, reversible)
        details.append((hl, lh, hh))
    return Decomposition(
        shape=plane.shape, levels=len(details), reversible=reversible,
        ll=ll, details=details,
    )


def inverse_dwt2d(decomp: Decomposition) -> np.ndarray:
    """Reconstruct the component plane from a :class:`Decomposition`."""
    ll = decomp.ll
    shapes = _level_shapes(decomp.shape, decomp.levels)
    for i in range(decomp.levels - 1, -1, -1):
        hl, lh, hh = decomp.details[i]
        ll = _inverse_2d_once(ll, hl, lh, hh, shapes[i], decomp.reversible)
    return ll


def _level_shapes(shape: tuple[int, int], levels: int) -> list[tuple[int, int]]:
    """Shape reconstructed at each decomposition level (index 0 = original)."""
    shapes = [shape]
    h, w = shape
    for _ in range(levels):
        h, w = (h + 1) // 2, (w + 1) // 2
        shapes.append((h, w))
    return shapes[:-1] + ([shapes[-1]] if levels == 0 else [])


def _inverse_53_linear_1d(low: np.ndarray, high: np.ndarray, n: int) -> np.ndarray:
    """Linearized (no rounding) float 5/3 synthesis, for gain analysis only."""
    _check_band_sizes(low, high, n)
    if n == 1:
        return low.astype(np.float64).copy()
    E = _interleave_extended(low.astype(np.float64), high.astype(np.float64), n)
    E[2:-1:2] -= 0.25 * (E[1:-2:2] + E[3::2])
    E[1::2] += 0.5 * (E[0:-1:2] + E[2::2])
    return E[_PAD : _PAD + n]


@lru_cache(maxsize=256)
def synthesis_gain_sq(band: str, dlevel: int, reversible: bool) -> float:
    """Squared L2 norm of the synthesis basis for ``band`` at ``dlevel``.

    Computed empirically by pushing a unit impulse placed at the centre of
    the subband through the (linearized, for 5/3) synthesis filter bank —
    the energy weighting used by PCRD-opt rate control and quantizer step
    allocation.
    """
    if band not in GAIN_LOG2:
        raise ValueError(f"unknown band {band!r}")
    if dlevel < 1:
        raise ValueError(f"dlevel must be >= 1, got {dlevel}")
    size = 1 << (dlevel + 3)  # large enough that boundaries do not matter
    plane = np.zeros((size, size), dtype=np.float64)
    decomp = forward_dwt2d(plane, dlevel, reversible=False)
    if band == BAND_LL:
        target = decomp.ll
    else:
        hl, lh, hh = decomp.details[dlevel - 1]
        target = {BAND_HL: hl, BAND_LH: lh, BAND_HH: hh}[band]
    target[target.shape[0] // 2, target.shape[1] // 2] = 1.0
    inv = _inverse_53_linear_1d if reversible else inverse_97_1d
    ll = decomp.ll
    shapes = _level_shapes(decomp.shape, decomp.levels)
    for i in range(decomp.levels - 1, -1, -1):
        hl, lh, hh = decomp.details[i]
        ll = _inverse_2d_once(ll, hl, lh, hh, shapes[i], decomp.reversible, inv=inv)
    return float(np.sum(ll * ll))
