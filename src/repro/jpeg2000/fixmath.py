"""Jasper-style fixed-point real arithmetic and a fixed-point 9/7 DWT.

Jasper represents the real numbers of the irreversible path in a Q-format
fixed-point type (``jas_fix_t``) "to enhance the performance and the
portability" (Adams & Kossentini; paper Section 4).  The paper's point is
that this trade is *wrong on the SPE*: the SPE has no 32-bit integer
multiply (it is emulated with two 16-bit multiplies ``mpyh``/``mpyu`` plus
adds, Table 1) while single-precision ``fm`` costs 6 cycles — so the authors
replace fixed point with float.

This module provides the fixed-point representation so that (a) the
functional consequences (rounding error) and (b) the performance
consequences (instruction mix, fed to :mod:`repro.cell`) can both be
reproduced.  Values are Q(31-FRACBITS).FRACBITS in int32, matching Jasper's
default of 13 fractional bits for the DWT.
"""

from __future__ import annotations

import numpy as np

#: Fractional bits of the Q format (Jasper's jpc_fix_t uses 13 for the DWT).
FRAC_BITS = 13
ONE = 1 << FRAC_BITS

_INT32_MIN = -(1 << 31)
_INT32_MAX = (1 << 31) - 1


def to_fixed(x: np.ndarray | float) -> np.ndarray:
    """Convert float(s) to Q13 fixed point with round-to-nearest."""
    scaled = np.rint(np.asarray(x, dtype=np.float64) * ONE)
    if np.any(scaled < _INT32_MIN) or np.any(scaled > _INT32_MAX):
        raise OverflowError("value out of Q13 int32 range")
    return scaled.astype(np.int32)


def to_float(x: np.ndarray) -> np.ndarray:
    """Convert Q13 fixed point back to float64."""
    return np.asarray(x, dtype=np.float64) / ONE


def fix_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Q13 multiply: ``(a * b) >> FRAC_BITS`` with 64-bit intermediate.

    On the SPE this is the expensive operation: the 32x32 multiply must be
    emulated from 16-bit ``mpyh``/``mpyu`` halves (Table 1), which is what
    :mod:`repro.kernels` charges for it.
    """
    prod = a.astype(np.int64) * b.astype(np.int64)
    return (prod >> FRAC_BITS).astype(np.int32)


def fix_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Q13 add (plain integer add)."""
    return (a.astype(np.int64) + b.astype(np.int64)).astype(np.int32)


# Fixed-point lifting constants (Q13), as Jasper tabulates them.
FIX_ALPHA = int(np.rint(-1.586134342059924 * ONE))
FIX_BETA = int(np.rint(-0.052980118572961 * ONE))
FIX_GAMMA = int(np.rint(0.882911075530934 * ONE))
FIX_DELTA = int(np.rint(0.443506852043971 * ONE))
FIX_K = int(np.rint(1.230174104914001 * ONE))
FIX_INV_K = int(np.rint((1.0 / 1.230174104914001) * ONE))


def forward_97_fixed_1d(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """9/7 analysis computed entirely in Q13 fixed point.

    ``x`` holds *integer sample values* (not pre-scaled); the output is in
    Q13 (divide by :data:`ONE` for the real value).  Mirrors
    :func:`repro.jpeg2000.dwt.forward_97_1d` step for step.
    """
    from repro.jpeg2000.dwt import _extended  # local import avoids a cycle

    n = x.shape[0]
    q = (np.asarray(x, dtype=np.int64) << FRAC_BITS).astype(np.int32)
    if n == 1:
        return q.copy(), q[:0].copy()
    E, pad = _extended(q, n)
    E = E.astype(np.int32)
    for coeff, odd_step in ((FIX_ALPHA, True), (FIX_BETA, False),
                            (FIX_GAMMA, True), (FIX_DELTA, False)):
        c = np.int32(coeff)
        if odd_step:
            E[1::2] = fix_add(E[1::2], fix_mul(c, fix_add(E[0:-1:2], E[2::2])))
        else:
            E[2:-1:2] = fix_add(E[2:-1:2], fix_mul(c, fix_add(E[1:-2:2], E[3::2])))
    low = fix_mul(np.int32(FIX_INV_K), E[pad : pad + n : 2]).copy()
    high = fix_mul(np.int32(FIX_K), E[pad + 1 : pad + n : 2]).copy()
    return low, high


def max_fixed_error_vs_float(x: np.ndarray) -> float:
    """Worst-case |fixed - float| 9/7 coefficient error for signal ``x``.

    Used by tests and the ablation bench to quantify the numerical price of
    Jasper's fixed-point representation.
    """
    from repro.jpeg2000.dwt import forward_97_1d

    lo_f, hi_f = forward_97_1d(np.asarray(x, dtype=np.float64))
    lo_q, hi_q = forward_97_fixed_1d(x)
    err_lo = np.abs(to_float(lo_q) - lo_f).max() if lo_f.size else 0.0
    err_hi = np.abs(to_float(hi_q) - hi_f).max() if hi_f.size else 0.0
    return float(max(err_lo, err_hi))
