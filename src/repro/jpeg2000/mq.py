"""MQ arithmetic coder (ITU-T T.88 / JPEG2000 Annex C).

The adaptive binary arithmetic coder that EBCOT Tier-1 drives.  Contexts are
small integers owning an (index-into-state-table, MPS) pair.  The encoder
supports querying a *safe truncation length* after every coding pass — the
mechanism PCRD-opt rate control relies on — and the decoder tolerates
truncated codeword segments by feeding 1-bits past the end, exactly the
behaviour the standard mandates after a marker byte.
"""

from __future__ import annotations

#: T.88 Table E.1: (Qe, NMPS, NLPS, SWITCH) per state index.
STATE_TABLE: tuple[tuple[int, int, int, int], ...] = (
    (0x5601, 1, 1, 1), (0x3401, 2, 6, 0), (0x1801, 3, 9, 0), (0x0AC1, 4, 12, 0),
    (0x0521, 5, 29, 0), (0x0221, 38, 33, 0), (0x5601, 7, 6, 1), (0x5401, 8, 14, 0),
    (0x4801, 9, 14, 0), (0x3801, 10, 14, 0), (0x3001, 11, 17, 0), (0x2401, 12, 18, 0),
    (0x1C01, 13, 20, 0), (0x1601, 29, 21, 0), (0x5601, 15, 14, 1), (0x5401, 16, 14, 0),
    (0x5101, 17, 15, 0), (0x4801, 18, 16, 0), (0x3801, 19, 17, 0), (0x3401, 20, 18, 0),
    (0x3001, 21, 19, 0), (0x2801, 22, 19, 0), (0x2401, 23, 20, 0), (0x2201, 24, 21, 0),
    (0x1C01, 25, 22, 0), (0x1801, 26, 23, 0), (0x1601, 27, 24, 0), (0x1401, 28, 25, 0),
    (0x1201, 29, 26, 0), (0x1101, 30, 27, 0), (0x0AC1, 31, 28, 0), (0x09C1, 32, 29, 0),
    (0x08A1, 33, 30, 0), (0x0521, 34, 31, 0), (0x0441, 35, 32, 0), (0x02A1, 36, 33, 0),
    (0x0221, 37, 34, 0), (0x0141, 38, 35, 0), (0x0111, 39, 36, 0), (0x0085, 40, 37, 0),
    (0x0049, 41, 38, 0), (0x0025, 42, 39, 0), (0x0015, 43, 40, 0), (0x0009, 44, 41, 0),
    (0x0005, 45, 42, 0), (0x0001, 45, 43, 0), (0x5601, 46, 46, 0),
)

_QE = tuple(row[0] for row in STATE_TABLE)
_NMPS = tuple(row[1] for row in STATE_TABLE)
_NLPS = tuple(row[2] for row in STATE_TABLE)
_SWITCH = tuple(row[3] for row in STATE_TABLE)


class MQEncoder:
    """T.88 MQ encoder over ``num_contexts`` adaptive contexts."""

    def __init__(self, num_contexts: int, initial_states: dict[int, int] | None = None):
        if num_contexts <= 0:
            raise ValueError(f"num_contexts must be positive, got {num_contexts}")
        self._index = [0] * num_contexts
        self._mps = [0] * num_contexts
        if initial_states:
            for cx, state in initial_states.items():
                self._index[cx] = state
        self._a = 0x8000
        self._c = 0
        self._ct = 12
        self._b: int | None = None  # byte under construction (BP target)
        self._out = bytearray()
        self._flushed: bytes | None = None

    # -- core coding -------------------------------------------------------

    def encode(self, bit: int, cx: int) -> None:
        """Encode one binary decision ``bit`` in context ``cx``."""
        if self._flushed is not None:
            raise RuntimeError("encoder already flushed")
        idx = self._index[cx]
        qe = _QE[idx]
        if bit == self._mps[cx]:
            a = self._a - qe
            if a & 0x8000:
                self._a = a
                self._c += qe
                return
            if a < qe:
                self._a = qe
            else:
                self._a = a
                self._c += qe
            self._index[cx] = _NMPS[idx]
            self._renorm()
        else:
            a = self._a - qe
            if a < qe:
                # Conditional exchange: the LPS takes the larger subinterval.
                self._c += qe
                self._a = a
            else:
                self._a = qe
            if _SWITCH[idx]:
                self._mps[cx] = 1 - self._mps[cx]
            self._index[cx] = _NLPS[idx]
            self._renorm()

    def _renorm(self) -> None:
        while True:
            self._a = (self._a << 1) & 0xFFFF
            self._c = (self._c << 1) & 0xFFFFFFF
            self._ct -= 1
            if self._ct == 0:
                self._byteout()
            if self._a & 0x8000:
                break

    def _emit(self, byte: int) -> None:
        if self._b is not None:
            self._out.append(self._b)
        self._b = byte

    def _byteout(self) -> None:
        if self._b == 0xFF:
            self._emit((self._c >> 20) & 0xFF)
            self._c &= 0xFFFFF
            self._ct = 7
        else:
            if self._c < 0x8000000:
                self._emit((self._c >> 19) & 0xFF)
                self._c &= 0x7FFFF
                self._ct = 8
            else:
                if self._b is not None:
                    self._b += 1  # carry propagation
                if self._b == 0xFF:
                    self._c &= 0x7FFFFFF
                    self._emit((self._c >> 20) & 0xFF)
                    self._c &= 0xFFFFF
                    self._ct = 7
                else:
                    self._emit((self._c >> 19) & 0xFF)
                    self._c &= 0x7FFFF
                    self._ct = 8

    def encode_run(self, bits, ctxs) -> None:
        """Encode a batch of binary decisions in one tight loop.

        ``bits`` and ``ctxs`` are parallel byte sequences (``bytes``,
        ``bytearray``, lists of small ints, or uint8 NumPy arrays).  The
        result is bit-exact with calling :meth:`encode` once per decision;
        the batch form exists because EBCOT Tier-1 produces its decision
        stream in whole-pass chunks and the per-call overhead dominates the
        coder.  When the optional native kernel is available (see
        :mod:`repro.jpeg2000._mq_native`) the loop runs in compiled code.
        """
        if self._flushed is not None:
            raise RuntimeError("encoder already flushed")
        bseq = bits if isinstance(bits, (bytes, bytearray)) else bytes(bits)
        cseq = ctxs if isinstance(ctxs, (bytes, bytearray)) else bytes(ctxs)
        if len(bseq) != len(cseq):
            raise ValueError(
                f"bits/ctxs length mismatch: {len(bseq)} vs {len(cseq)}"
            )
        try:
            if len(bseq) != len(bits):
                raise ValueError("bits must be a uint8/byte sequence")
        except TypeError:
            pass  # generators have no len(); bytes() already consumed them
        if not bseq:
            return
        ncx = len(self._index)
        # C-speed range check: delete every valid context byte and see if
        # anything is left over (max() would walk the stream in Python).
        if cseq.translate(None, bytes(range(ncx))):
            raise IndexError(
                f"context {max(cseq)} out of range for {ncx} contexts"
            )
        from repro.jpeg2000 import _mq_native

        if _mq_native.native_encode_run is not None:
            _mq_native.native_encode_run(self, bseq, cseq)
            return
        self._encode_run_py(bseq, cseq)

    def _encode_run_py(self, bseq, cseq) -> None:
        """Pure-Python batch loop: :meth:`encode` + ``_renorm`` + ``_byteout``
        inlined with all hot state in locals."""
        index = self._index
        mps = self._mps
        qe_t, nmps_t, nlps_t, switch_t = _QE, _NMPS, _NLPS, _SWITCH
        a, c, ct, b = self._a, self._c, self._ct, self._b
        append = self._out.append
        for bit, cx in zip(bseq, cseq):
            idx = index[cx]
            qe = qe_t[idx]
            if bit == mps[cx]:
                na = a - qe
                if na & 0x8000:
                    a = na
                    c += qe
                    continue
                if na < qe:
                    a = qe
                else:
                    a = na
                    c += qe
                index[cx] = nmps_t[idx]
            else:
                na = a - qe
                if na < qe:
                    c += qe
                    a = na
                else:
                    a = qe
                if switch_t[idx]:
                    mps[cx] = 1 - mps[cx]
                index[cx] = nlps_t[idx]
            while True:
                a = (a << 1) & 0xFFFF
                c = (c << 1) & 0xFFFFFFF
                ct -= 1
                if ct == 0:
                    if b == 0xFF:
                        append(b)
                        b = (c >> 20) & 0xFF
                        c &= 0xFFFFF
                        ct = 7
                    elif c < 0x8000000:
                        if b is not None:
                            append(b)
                        b = (c >> 19) & 0xFF
                        c &= 0x7FFFF
                        ct = 8
                    else:
                        if b is not None:
                            b += 1
                        if b == 0xFF:
                            c &= 0x7FFFFFF
                            append(b)
                            b = (c >> 20) & 0xFF
                            c &= 0xFFFFF
                            ct = 7
                        else:
                            if b is not None:
                                append(b)
                            b = (c >> 19) & 0xFF
                            c &= 0x7FFFF
                            ct = 8
                if a & 0x8000:
                    break
        self._a, self._c, self._ct, self._b = a, c, ct, b

    # -- termination and rate queries ---------------------------------------

    def safe_length(self) -> int:
        """Bytes sufficient to decode everything encoded so far.

        A conservative truncation length: the completed output plus the byte
        under construction plus the at-most-4 bytes still inside the C
        register.  Guaranteed decodable because the decoder feeds 1-bits
        past the end of a truncated segment.
        """
        return len(self._out) + (0 if self._b is None else 1) + 4

    def flush(self) -> bytes:
        """Terminate the codeword (T.88 FLUSH) and return the full segment."""
        if self._flushed is None:
            # SETBITS: choose the largest code value inside [C, C+A) whose
            # low bits are all ones, so the decoder's 1-fill past the end of
            # the segment reproduces the untransmitted bits exactly.
            temp = self._c + self._a - 1
            self._c |= 0xFFFF
            if self._c > temp:
                self._c -= 0x8000
            self._c <<= self._ct
            self._byteout()
            self._c <<= self._ct
            self._byteout()
            if self._b is not None:
                self._out.append(self._b)
                self._b = None
            # Trailing 0xFF bytes need not be transmitted (C.2.9).
            while self._out and self._out[-1] == 0xFF:
                self._out.pop()
            self._flushed = bytes(self._out)
        return self._flushed


class MQDecoder:
    """T.88 MQ decoder; feeds 1-bits beyond the end of the segment."""

    def __init__(self, data: bytes, num_contexts: int,
                 initial_states: dict[int, int] | None = None):
        self._data = data
        self._index = [0] * num_contexts
        self._mps = [0] * num_contexts
        if initial_states:
            for cx, state in initial_states.items():
                self._index[cx] = state
        self._bp = 0
        self._b = data[0] if data else 0xFF
        self._c = self._b << 16
        self._ct = 0
        self._bytein()
        self._c <<= 7
        self._ct -= 7
        self._a = 0x8000

    def _byte_at(self, pos: int) -> int:
        """Byte at ``pos``, or 0xFF past the end (truncated-segment rule)."""
        return self._data[pos] if pos < len(self._data) else 0xFF

    def _bytein(self) -> None:
        if self._b == 0xFF:
            if self._byte_at(self._bp + 1) > 0x8F:
                self._c += 0xFF00  # marker or end of segment: feed 1 bits
                self._ct = 8
            else:
                self._bp += 1
                self._b = self._data[self._bp]
                self._c += self._b << 9
                self._ct = 7
        else:
            self._bp += 1
            self._b = self._byte_at(self._bp)
            self._c += self._b << 8
            self._ct = 8

    def decode_run(self, ctxs) -> bytes:
        """Decode a batch of binary decisions in one tight loop.

        ``ctxs`` is a byte sequence of context numbers (``bytes``,
        ``bytearray``, or a uint8 NumPy array); the return value is the
        decoded bits as a ``bytes`` of 0/1, bit-exact with calling
        :meth:`decode` once per context.  The EBCOT magnitude-refinement
        pass produces its whole context stream up front (refinement never
        changes significance state), which is what makes a batch decode
        form possible at all; the per-call overhead it removes dominates
        the pure-Python decoder.  When the optional native kernel is
        available (see :mod:`repro.jpeg2000._mq_native`) the loop runs in
        compiled code.
        """
        cseq = ctxs if isinstance(ctxs, (bytes, bytearray)) else bytes(ctxs)
        if not cseq:
            return b""
        ncx = len(self._index)
        if cseq.translate(None, bytes(range(ncx))):
            raise IndexError(
                f"context {max(cseq)} out of range for {ncx} contexts"
            )
        from repro.jpeg2000 import _mq_native

        if _mq_native.native_decode_run is not None:
            return _mq_native.native_decode_run(self, cseq)
        return self._decode_run_py(cseq)

    def _decode_run_py(self, cseq) -> bytes:
        """Pure-Python batch loop: :meth:`decode` + ``_renorm`` + ``_bytein``
        inlined with all hot state in locals."""
        index = self._index
        mps = self._mps
        qe_t, nmps_t, nlps_t, switch_t = _QE, _NMPS, _NLPS, _SWITCH
        data = self._data
        dlen = len(data)
        a, c, ct, bp, b = self._a, self._c, self._ct, self._bp, self._b
        out = bytearray(len(cseq))
        for k, cx in enumerate(cseq):
            idx = index[cx]
            qe = qe_t[idx]
            a -= qe
            if ((c >> 16) & 0xFFFF) < qe:
                if a < qe:
                    d = mps[cx]
                    index[cx] = nmps_t[idx]
                else:
                    d = 1 - mps[cx]
                    if switch_t[idx]:
                        mps[cx] = d
                    index[cx] = nlps_t[idx]
                a = qe
            else:
                c -= qe << 16
                if a & 0x8000:
                    out[k] = mps[cx]
                    continue
                if a < qe:
                    d = 1 - mps[cx]
                    if switch_t[idx]:
                        mps[cx] = d
                    index[cx] = nlps_t[idx]
                else:
                    d = mps[cx]
                    index[cx] = nmps_t[idx]
            while True:
                if ct == 0:
                    if b == 0xFF:
                        if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                            c += 0xFF00
                            ct = 8
                        else:
                            bp += 1
                            b = data[bp]
                            c += b << 9
                            ct = 7
                    else:
                        bp += 1
                        b = data[bp] if bp < dlen else 0xFF
                        c += b << 8
                        ct = 8
                a = (a << 1) & 0xFFFF
                c = (c << 1) & 0xFFFFFFFF
                ct -= 1
                if a & 0x8000:
                    break
            out[k] = d
        self._a, self._c, self._ct, self._bp, self._b = a, c, ct, bp, b
        return bytes(out)

    def decode(self, cx: int) -> int:
        """Decode one binary decision in context ``cx``."""
        idx = self._index[cx]
        qe = _QE[idx]
        self._a -= qe
        if ((self._c >> 16) & 0xFFFF) < qe:
            # LPS exchange path
            if self._a < qe:
                d = self._mps[cx]
                self._index[cx] = _NMPS[idx]
            else:
                d = 1 - self._mps[cx]
                if _SWITCH[idx]:
                    self._mps[cx] = 1 - self._mps[cx]
                self._index[cx] = _NLPS[idx]
            self._a = qe
            self._renorm()
            return d
        self._c -= qe << 16
        if self._a & 0x8000:
            return self._mps[cx]
        if self._a < qe:
            d = 1 - self._mps[cx]
            if _SWITCH[idx]:
                self._mps[cx] = 1 - self._mps[cx]
            self._index[cx] = _NLPS[idx]
        else:
            d = self._mps[cx]
            self._index[cx] = _NMPS[idx]
        self._renorm()
        return d

    def _renorm(self) -> None:
        while True:
            if self._ct == 0:
                self._bytein()
            self._a = (self._a << 1) & 0xFFFF
            self._c = (self._c << 1) & 0xFFFFFFFF
            self._ct -= 1
            if self._a & 0x8000:
                break
