"""PCRD-opt rate control (Taubman's optimized truncation; T.800 J.14 style).

Given every code block's per-pass (cumulative length, distortion reduction)
curve, selects a truncation point per block minimizing total distortion
subject to a byte budget.  This is the sequential "rate control stage" that
the paper identifies as the lossy pipeline's Amdahl bottleneck ("around 60%
of the total execution time in 16 SPE + 2 PPE case").

Two implementations live here:

- :class:`RateModel` / :func:`choose_truncations` — the vectorized path.
  Feasible truncation points and R-D slopes are computed for *all* blocks
  at once: the convex-hull pruning runs as a lockstep monotone chain over
  padded ``(blocks, passes)`` matrices, and the Lagrange-multiplier
  bisection operates on one flat, slope-sorted array via prefix sums and
  ``searchsorted`` instead of a Python loop per block per iteration.
- :func:`choose_truncations_reference` — the original per-block scalar
  code, kept verbatim as the differential-testing oracle and the
  benchmark baseline.

Bit-for-bit equivalence is load-bearing: the vectorized hull evaluates the
same cross-multiplied concavity test on the same float64 operands in the
same per-block order as the scalar monotone chain, cumulative distortions
use the same sequential accumulation (``np.cumsum`` is ``add.accumulate``,
not a pairwise reduction), and the bisection trajectory is driven by exact
integer byte totals — so both paths pick identical truncations and the
encoder's codestreams are byte-identical to the scalar era.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BlockRateInfo:
    """Rate-distortion curve of one code block.

    ``lengths``: cumulative byte counts after each pass.
    ``dist_reductions``: distortion decrease of each pass, already scaled to
    image-MSE-comparable units (step^2 * synthesis gain).

    Hulls are built lazily (scalar monotone chain) on first access; the
    vectorized :class:`RateModel` never touches them.
    """

    lengths: list[float]
    dist_reductions: list[float]

    def __post_init__(self) -> None:
        if len(self.lengths) != len(self.dist_reductions):
            raise ValueError("lengths and dist_reductions must be parallel")
        self._hull: tuple[list[int], list[float]] | None = None

    @property
    def hull_passes(self) -> list[int]:
        if self._hull is None:
            self._hull = _scalar_hull(self.lengths, self.dist_reductions)
        return self._hull[0]

    @property
    def hull_slopes(self) -> list[float]:
        if self._hull is None:
            self._hull = _scalar_hull(self.lengths, self.dist_reductions)
        return self._hull[1]

    def truncation_for_slope(self, lam: float) -> int:
        """Largest hull truncation whose marginal slope is >= ``lam``."""
        chosen = 0
        for np_, sl in zip(self.hull_passes, self.hull_slopes):
            if sl >= lam:
                chosen = np_
            else:
                break
        return chosen

    def length_at(self, num_passes: int) -> float:
        if num_passes == 0:
            return 0.0
        return float(self.lengths[num_passes - 1])


def _scalar_hull(
    lengths: list[float], dist_reductions: list[float]
) -> tuple[list[int], list[float]]:
    """Feasible truncation points on the convex hull of one R-D curve.

    The scalar monotone chain — the oracle the lockstep vectorized hull in
    :class:`RateModel` is differentially tested against.
    """
    points = [(0.0, 0.0)]  # (cumulative rate, cumulative distortion gain)
    cum_dist = 0.0
    for ln, dd in zip(lengths, dist_reductions):
        cum_dist += float(dd)
        points.append((float(ln), cum_dist))
    # Monotone chain for the upper-left hull; pass index == point index.
    hull = [0]
    for j in range(1, len(points)):
        if points[j][1] <= points[hull[-1]][1]:
            continue  # no distortion gain: never a useful truncation
        while len(hull) >= 2:
            a, b = hull[-2], hull[-1]
            # Pop b when slope(a->b) <= slope(b->j): b is below the hull.
            lhs = (points[b][1] - points[a][1]) * (points[j][0] - points[b][0])
            rhs = (points[j][1] - points[b][1]) * (points[b][0] - points[a][0])
            if lhs <= rhs:
                hull.pop()
            else:
                break
        hull.append(j)
    hull_passes: list[int] = []
    hull_slopes: list[float] = []
    prev = hull[0]
    for j in hull[1:]:
        dr = points[j][0] - points[prev][0]
        dd = points[j][1] - points[prev][1]
        hull_passes.append(j)
        hull_slopes.append(dd / dr if dr > 0 else float("inf"))
        prev = j
    return hull_passes, hull_slopes


#: Bisection iteration count shared by both implementations (the scalar
#: code's historical constant; enough to drive lo/hi to adjacent floats).
BISECT_ITERS = 80


class RateModel:
    """All code blocks' R-D hulls as flat NumPy arrays, reusable per encode.

    Construction runs the convex-hull pruning for every block at once: the
    per-pass curves are padded into ``(B, P+1)`` matrices and the monotone
    chain advances in lockstep across blocks (vectorized pushes/pops with
    per-block stack sizes).  Each block sees exactly the scalar algorithm —
    same comparisons on the same float64 values in the same order — so the
    hull point sets are identical to :func:`_scalar_hull`.

    :meth:`choose` then bisects the Lagrange multiplier over the single
    concatenated slope array: total included length for a threshold is a
    ``searchsorted`` into the slope-sorted prefix sums of per-segment byte
    deltas (exact — deltas are integer byte counts held in float64).
    """

    def __init__(
        self,
        lengths_list: list[list[float]],
        dists_list: list[list[float]],
    ) -> None:
        if len(lengths_list) != len(dists_list):
            raise ValueError("need one distortion curve per length curve")
        for ln, dd in zip(lengths_list, dists_list):
            if len(ln) != len(dd):
                raise ValueError("lengths and dist_reductions must be parallel")
        self.nblocks = B = len(lengths_list)
        npasses = np.array([len(ln) for ln in lengths_list], dtype=np.intp)
        P = int(npasses.max()) if B else 0
        # Padded cumulative-rate / cumulative-distortion matrices; column 0
        # is the (0, 0) origin, column j is the state after pass j.
        X = np.zeros((B, P + 1), dtype=np.float64)
        D = np.zeros((B, P + 1), dtype=np.float64)
        if B and P:
            rows = np.repeat(np.arange(B), npasses)
            offs = np.concatenate(([0], np.cumsum(npasses)[:-1]))
            cols = np.arange(npasses.sum()) - np.repeat(offs, npasses) + 1
            X[rows, cols] = np.concatenate(
                [np.asarray(ln, dtype=np.float64) for ln in lengths_list]
            )
            D[rows, cols] = np.concatenate(
                [np.asarray(dd, dtype=np.float64) for dd in dists_list]
            )
        # Sequential accumulation (add.accumulate), bit-identical to the
        # scalar ``cum_dist += float(dd)`` loop; trailing pad zeros only
        # repeat the final value.
        Y = np.cumsum(D, axis=1)
        stack, ssize = _lockstep_hulls(X, Y, npasses)

        # Flatten the per-block hulls (block-major, hull order) into the
        # global arrays the bisection operates on.
        k = np.arange(P + 1)
        mask = (k[None, :] >= 1) & (k[None, :] < ssize[:, None])
        bids, ks = np.nonzero(mask)
        hj = stack[bids, ks]
        hprev = stack[bids, ks - 1]
        deltas = X[bids, hj] - X[bids, hprev]
        dd = Y[bids, hj] - Y[bids, hprev]
        slopes = np.full(len(bids), np.inf)
        pos = deltas > 0
        slopes[pos] = dd[pos] / deltas[pos]

        #: Per-hull-point arrays, block-major / slope-descending per block.
        self.block_ids = bids
        self.hull_passes = hj.astype(np.int64)
        self.slopes = slopes
        #: Marginal byte cost of each hull segment (exact integers).
        self.deltas = deltas
        self.counts = ssize - 1  # hull points per block (excluding origin)
        self.offsets = np.concatenate(([0], np.cumsum(self.counts)[:-1])) \
            if B else np.zeros(0, dtype=np.intp)
        #: Pass count of the last hull point per block (the "keep all"
        #: truncation); 0 for blocks with an empty hull.
        if len(self.hull_passes):
            last = self.offsets + self.counts - 1
            self.full_passes = np.where(
                self.counts > 0, self.hull_passes[np.maximum(last, 0)], 0
            )
        else:
            self.full_passes = np.zeros(B, dtype=np.int64)

        # Slope-ascending order with suffix sums of the byte deltas:
        # total_length(lam) = _suffix[searchsorted(_sorted_slopes, lam)].
        order = np.argsort(slopes, kind="stable")
        self._sorted_slopes = slopes[order]
        self._suffix = np.concatenate(
            (np.cumsum(self.deltas[order][::-1])[::-1], [0.0])
        )
        finite = self._sorted_slopes[np.isfinite(self._sorted_slopes)]
        self._max_finite_slope = float(finite[-1]) if len(finite) else None

    def total_length(self, lam: float) -> float:
        """Total included bytes when every slope >= ``lam`` is kept."""
        idx = int(np.searchsorted(self._sorted_slopes, lam, side="left"))
        return float(self._suffix[idx])

    def truncations_for_slope(self, lam: float) -> np.ndarray:
        """Per-block pass counts keeping every hull point with slope >= lam.

        Within a block hull slopes are non-increasing, so the kept points
        form a prefix of the block's hull and the truncation is the pass
        count at the last kept point.
        """
        incl = self.slopes >= lam
        cnt = np.bincount(
            self.block_ids[incl], minlength=self.nblocks
        ).astype(np.intp) if len(self.slopes) else np.zeros(self.nblocks, np.intp)
        idx = np.maximum(self.offsets + cnt - 1, 0)
        return np.where(cnt > 0, self.hull_passes[idx], 0)

    def choose(self, budget_bytes: float) -> np.ndarray:
        """Per-block pass counts fitting ``budget_bytes`` (0 = dropped).

        Replicates the scalar bisection exactly: same lo/hi seeds, same
        midpoint arithmetic, same 80 iterations, and exact byte totals on
        both sides of every comparison.
        """
        if budget_bytes < 0:
            raise ValueError(f"budget must be non-negative, got {budget_bytes}")
        if self._max_finite_slope is None:
            return np.zeros(self.nblocks, dtype=np.int64)
        lo = 0.0                             # most permissive: keep everything
        hi = self._max_finite_slope * 2.0    # most restrictive: keep ~nothing
        if self.total_length(lo) <= budget_bytes:
            return self.full_passes.copy()
        for _ in range(BISECT_ITERS):
            mid = 0.5 * (lo + hi)
            if self.total_length(mid) <= budget_bytes:
                hi = mid
            else:
                lo = mid
        return self.truncations_for_slope(hi)


def _lockstep_hulls(
    X: np.ndarray, Y: np.ndarray, npasses: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Monotone-chain upper hulls of every row at once.

    ``X``/``Y`` are the padded cumulative (rate, distortion) matrices with
    the origin in column 0.  Returns ``(stack, ssize)``: per-block stacks of
    point indices (column 0 always the origin) and their sizes.  Each block
    undergoes exactly the scalar algorithm's pushes, pops, and skips —
    lockstep only batches independent per-block work.
    """
    B, P1 = X.shape
    stack = np.zeros((B, P1), dtype=np.intp)
    ssize = np.ones(B, dtype=np.intp)
    rows = np.arange(B)
    for j in range(1, P1):
        # Skip points with no distortion gain over the current hull top.
        top = stack[rows, ssize - 1]
        push = (j <= npasses) & (Y[:, j] > Y[rows, top])
        popping = push.copy()
        while True:
            cand = popping & (ssize >= 2)
            bidx = np.nonzero(cand)[0]
            if not len(bidx):
                break
            b = stack[bidx, ssize[bidx] - 1]
            a = stack[bidx, ssize[bidx] - 2]
            ya = Y[bidx, a]
            xb, yb = X[bidx, b], Y[bidx, b]
            # Pop b when slope(a->b) <= slope(b->j): b is below the hull
            # (cross-multiplied, same float ops as the scalar test).
            lhs = (yb - ya) * (X[bidx, j] - xb)
            rhs = (Y[bidx, j] - yb) * (xb - X[bidx, a])
            pop = lhs <= rhs
            popped = bidx[pop]
            if not len(popped):
                break
            ssize[popped] -= 1
            popping = np.zeros(B, dtype=bool)
            popping[popped] = True
        bpush = np.nonzero(push)[0]
        stack[bpush, ssize[bpush]] = j
        ssize[bpush] += 1
    return stack, ssize


def choose_truncations(
    blocks: list[BlockRateInfo], budget_bytes: float
) -> list[int]:
    """Pick per-block pass counts whose total length fits ``budget_bytes``.

    Vectorized: builds a throwaway :class:`RateModel` (hulls for all blocks
    at once) and runs the flat-array bisection.  Returns the number of
    passes to keep per block (0 = block dropped entirely) — identical to
    :func:`choose_truncations_reference` for every input.
    """
    if budget_bytes < 0:
        raise ValueError(f"budget must be non-negative, got {budget_bytes}")
    if not blocks:
        return []
    model = RateModel(
        [b.lengths for b in blocks], [b.dist_reductions for b in blocks]
    )
    return [int(t) for t in model.choose(budget_bytes)]


def choose_truncations_reference(
    blocks: list[BlockRateInfo], budget_bytes: float
) -> list[int]:
    """The scalar seed implementation, kept as oracle and benchmark baseline.

    Bisects the Lagrange multiplier over the global slope range with a
    Python loop per block per iteration.
    """
    if budget_bytes < 0:
        raise ValueError(f"budget must be non-negative, got {budget_bytes}")
    all_slopes = [s for b in blocks for s in b.hull_slopes if np.isfinite(s)]
    if not all_slopes:
        return [0] * len(blocks)

    def total_length(lam: float) -> float:
        return sum(b.length_at(b.truncation_for_slope(lam)) for b in blocks)

    lo = 0.0                       # most permissive: keep everything
    hi = max(all_slopes) * 2.0     # most restrictive: keep ~nothing
    if total_length(lo) <= budget_bytes:
        return [b.truncation_for_slope(lo) for b in blocks]
    for _ in range(BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        if total_length(mid) <= budget_bytes:
            hi = mid
        else:
            lo = mid
    lam = hi
    return [b.truncation_for_slope(lam) for b in blocks]


def apportion_budget(total: float, weights: list[int]) -> list[float]:
    """Split ``total`` across items proportionally to ``weights``.

    Used by tiled rate control to hand every tile its raw-size share of
    the global byte budget (and of the fixed marker overhead).  Weights
    must be non-negative with a positive sum; the shares sum to ``total``
    exactly up to float rounding.
    """
    if not weights:
        return []
    if any(w < 0 for w in weights):
        raise ValueError(f"weights must be non-negative, got {weights}")
    wsum = float(sum(weights))
    if wsum <= 0:
        return [total / len(weights)] * len(weights)
    return [total * (w / wsum) for w in weights]
