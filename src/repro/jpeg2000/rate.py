"""PCRD-opt rate control (Taubman's optimized truncation; T.800 J.14 style).

Given every code block's per-pass (cumulative length, distortion reduction)
curve, selects a truncation point per block minimizing total distortion
subject to a byte budget.  This is the sequential "rate control stage" that
the paper identifies as the lossy pipeline's Amdahl bottleneck ("around 60%
of the total execution time in 16 SPE + 2 PPE case").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BlockRateInfo:
    """Rate-distortion curve of one code block.

    ``lengths``: cumulative byte counts after each pass.
    ``dist_reductions``: distortion decrease of each pass, already scaled to
    image-MSE-comparable units (step^2 * synthesis gain).
    """

    lengths: list[float]
    dist_reductions: list[float]
    hull_passes: list[int] = field(default_factory=list)
    hull_slopes: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.lengths) != len(self.dist_reductions):
            raise ValueError("lengths and dist_reductions must be parallel")
        self._build_hull()

    def _build_hull(self) -> None:
        """Feasible truncation points on the convex hull of the R-D curve."""
        points = [(0.0, 0.0)]  # (cumulative rate, cumulative distortion gain)
        cum_dist = 0.0
        for ln, dd in zip(self.lengths, self.dist_reductions):
            cum_dist += float(dd)
            points.append((float(ln), cum_dist))
        # Monotone chain for the upper-left hull; pass index == point index.
        hull = [0]
        for j in range(1, len(points)):
            if points[j][1] <= points[hull[-1]][1]:
                continue  # no distortion gain: never a useful truncation
            while len(hull) >= 2:
                a, b = hull[-2], hull[-1]
                # Pop b when slope(a->b) <= slope(b->j): b is below the hull.
                lhs = (points[b][1] - points[a][1]) * (points[j][0] - points[b][0])
                rhs = (points[j][1] - points[b][1]) * (points[b][0] - points[a][0])
                if lhs <= rhs:
                    hull.pop()
                else:
                    break
            hull.append(j)
        self.hull_passes = []
        self.hull_slopes = []
        prev = hull[0]
        for j in hull[1:]:
            dr = points[j][0] - points[prev][0]
            dd = points[j][1] - points[prev][1]
            self.hull_passes.append(j)
            self.hull_slopes.append(dd / dr if dr > 0 else float("inf"))
            prev = j

    def truncation_for_slope(self, lam: float) -> int:
        """Largest hull truncation whose marginal slope is >= ``lam``."""
        chosen = 0
        for np_, sl in zip(self.hull_passes, self.hull_slopes):
            if sl >= lam:
                chosen = np_
            else:
                break
        return chosen

    def length_at(self, num_passes: int) -> float:
        if num_passes == 0:
            return 0.0
        return float(self.lengths[num_passes - 1])


def choose_truncations(
    blocks: list[BlockRateInfo], budget_bytes: float
) -> list[int]:
    """Pick per-block pass counts whose total length fits ``budget_bytes``.

    Bisects the Lagrange multiplier over the global slope range; returns the
    number of passes to keep per block (0 = block dropped entirely).
    """
    if budget_bytes < 0:
        raise ValueError(f"budget must be non-negative, got {budget_bytes}")
    all_slopes = [s for b in blocks for s in b.hull_slopes if np.isfinite(s)]
    if not all_slopes:
        return [0] * len(blocks)

    def total_length(lam: float) -> float:
        return sum(b.length_at(b.truncation_for_slope(lam)) for b in blocks)

    lo = 0.0                       # most permissive: keep everything
    hi = max(all_slopes) * 2.0     # most restrictive: keep ~nothing
    if total_length(lo) <= budget_bytes:
        return [b.truncation_for_slope(lo) for b in blocks]
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if total_length(mid) <= budget_bytes:
            hi = mid
        else:
            lo = mid
    lam = hi
    return [b.truncation_for_slope(lam) for b in blocks]
