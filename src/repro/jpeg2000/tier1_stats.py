"""Fast vectorized estimation of Tier-1 workload statistics.

The exact Tier-1 coder (:mod:`repro.jpeg2000.tier1`) is inherently
sequential and therefore slow in Python; encoding the paper's 28.3 MB image
exactly would take hours.  This module estimates the quantity the Cell
performance model actually needs — binary decisions per coding pass per
code block — directly from the coefficient magnitudes with NumPy:

* a sample is *significant before plane p* iff its magnitude has a bit
  above p;
* MRP at plane p codes exactly the already-significant samples;
* SPP at plane p codes the insignificant samples with a significant
  8-neighbour (approximated by one dilation of the start-of-plane
  significance map — the intra-pass propagation the real coder performs is
  folded into a small correction);
* CUP codes the rest, with the run-length mode collapsing fully
  insignificant, neighbour-free 4-sample stripe columns to ~1 decision;
* each newly significant sample adds one sign decision.

``estimate_workload`` runs the real (fast) MCT/DWT/quantization stages and
this estimator per code block, producing a :class:`WorkloadStats` for any
image size in seconds.  Accuracy against the exact coder is validated in
``tests/test_tier1_stats.py`` (typically within ~15 %).
"""

from __future__ import annotations

import numpy as np

from repro.jpeg2000 import mct
from repro.jpeg2000.codeblocks import partition_subband
from repro.jpeg2000.dwt import forward_dwt2d
from repro.jpeg2000.encoder import BlockStats, SubbandStats, WorkloadStats, _normalize_image
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.quantize import derive_quant, quantize

#: Average coded bits per binary decision, used for the byte estimate.  The
#: MQ coder averages well under 1 bit per decision on the skewed contexts;
#: measured over natural-image blocks it sits near 0.55.
BITS_PER_SYMBOL = 0.55


def geometry_cache_stats() -> dict:
    """Hit/miss counters of the shared Tier-1 geometry cache.

    All three Tier-1 backends resolve scan order, neighbour tables, and
    context LUTs through :func:`repro.jpeg2000.tier1_geom.geometry`; this
    re-exports its counters (``hits``, ``misses``, ``entries``,
    ``hit_rate``) for workload reporting and the service ``/stats``
    rollup.
    """
    from repro.jpeg2000 import tier1_geom

    return tier1_geom.cache_stats()


def _dilate8(mask: np.ndarray) -> np.ndarray:
    """8-neighbourhood binary dilation via shifts (no SciPy needed)."""
    out = mask.copy()
    out[1:, :] |= mask[:-1, :]
    out[:-1, :] |= mask[1:, :]
    out[:, 1:] |= mask[:, :-1]
    out[:, :-1] |= mask[:, 1:]
    out[1:, 1:] |= mask[:-1, :-1]
    out[1:, :-1] |= mask[:-1, 1:]
    out[:-1, 1:] |= mask[1:, :-1]
    out[:-1, :-1] |= mask[1:, 1:]
    return out


def estimate_codeblock_stats(coeffs: np.ndarray) -> tuple[int, int, list[int]]:
    """Estimate Tier-1 statistics for one code block.

    Returns ``(msbs, total_symbols, pass_symbols)`` where ``pass_symbols``
    follows the real pass order (CUP for the top plane, then SPP/MRP/CUP
    per remaining plane).
    """
    arr = np.asarray(coeffs)
    if arr.ndim != 2:
        raise ValueError(f"code block must be 2-D, got shape {arr.shape}")
    mag = np.abs(arr.astype(np.int64))
    max_mag = int(mag.max()) if mag.size else 0
    msbs = max_mag.bit_length()
    if msbs == 0:
        return 0, 0, []

    h, w = mag.shape
    pass_symbols: list[int] = []
    for p in range(msbs - 1, -1, -1):
        sig_before = mag >> (p + 1) != 0
        sig_after = mag >> p != 0
        newly = sig_after & ~sig_before
        if p != msbs - 1:
            # SPP: insignificant samples with a significant neighbour.  The
            # real pass also propagates within the stripe scan; one dilation
            # of the *end-of-pass* map approximates that spillover.
            spp_zone = _dilate8(sig_before) | _dilate8(newly & _dilate8(sig_before))
            spp = ~sig_before & spp_zone
            spp_new = newly & spp
            pass_symbols.append(int(spp.sum() + spp_new.sum()))
            # MRP: all previously significant samples.
            pass_symbols.append(int(sig_before.sum()))
        else:
            spp = np.zeros_like(sig_before)
        # CUP: the remaining insignificant samples, with run-length savings
        # on all-clear stripe columns.
        cup = ~sig_before & ~spp
        cup_new = newly & cup
        decisions = int(cup.sum())
        # Run-length collapse: count full 4-rows stripe columns that are
        # entirely insignificant and have no significant neighbours.
        hot = _dilate8(sig_after)
        quiet = cup & ~hot
        full = (h // 4) * 4
        if full:
            q = quiet[:full].reshape(h // 4, 4, w).all(axis=1)
            decisions -= int(q.sum()) * 3  # 4 decisions become ~1
        pass_symbols.append(decisions + int(cup_new.sum()))
    return msbs, sum(pass_symbols), pass_symbols


def estimate_workload(
    image: np.ndarray, params: EncoderParams | None = None
) -> WorkloadStats:
    """Build a :class:`WorkloadStats` for ``image`` without Tier-1 coding.

    Runs the real level shift, MCT, DWT and quantization, then estimates
    Tier-1 decisions per code block.  ``codestream_bytes`` is an estimate
    from :data:`BITS_PER_SYMBOL`.
    """
    if params is None:
        params = EncoderParams.lossless_default()
    comps, depth = _normalize_image(image)
    height, width = comps[0].shape
    ncomp = len(comps)
    chroma_expanded = params.lossless and ncomp == 3

    stats = WorkloadStats(
        height=height, width=width, num_components=ncomp, bit_depth=depth,
        lossless=params.lossless, levels=params.levels,
        codeblock_size=params.codeblock_size,
        raw_bytes=int(np.asarray(image).nbytes),
    )
    planes = mct.forward_mct(comps, depth, params.lossless)
    total_bits = 0.0
    for ci, plane in enumerate(planes):
        decomp = forward_dwt2d(plane, params.levels, params.lossless)
        stats.levels = decomp.levels
        for sb in decomp.subbands():
            if params.lossless:
                q = sb.data.astype(np.int32)
            else:
                quant = derive_quant(
                    sb.band, max(sb.dlevel, 1), depth, params.lossless,
                    params.guard_bits, params.base_quant_step,
                    chroma_expanded=chroma_expanded,
                )
                q = quantize(sb.data, quant.step)
            stats.subbands.append(
                SubbandStats(ci, sb.band, sb.dlevel, sb.shape[0], sb.shape[1])
            )
            specs, _, _ = partition_subband(
                sb.shape[0], sb.shape[1], params.codeblock_size
            )
            for spec in specs:
                block = q[spec.row0 : spec.row0 + spec.height,
                          spec.col0 : spec.col0 + spec.width]
                msbs, symbols, pass_syms = estimate_codeblock_stats(block)
                coded_bytes = int(symbols * BITS_PER_SYMBOL / 8)
                total_bits += symbols * BITS_PER_SYMBOL
                stats.blocks.append(
                    BlockStats(
                        comp=ci, band=sb.band, dlevel=sb.dlevel,
                        height=spec.height, width=spec.width,
                        msbs=msbs, num_passes=len(pass_syms),
                        total_symbols=symbols, coded_bytes=coded_bytes,
                        pass_symbols=pass_syms,
                    )
                )
    stats.codestream_bytes = int(total_bits / 8) + 128  # + headers
    return stats
