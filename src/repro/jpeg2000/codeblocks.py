"""Partitioning subbands into code blocks (T.800 B.7).

A code block is the unit of Tier-1 coding and — in the paper — the unit of
work distributed through the dynamic work queue (Section 3.2).  The paper
uses the standard maximum 64x64; Muta et al. use 32x32, which quadruples
queue traffic (the ablation A4 reproduces this trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CodeBlockSpec:
    """Geometry of one code block within a subband."""

    row0: int
    col0: int
    height: int
    width: int
    grid_row: int
    grid_col: int

    @property
    def num_samples(self) -> int:
        return self.height * self.width


def partition_subband(
    height: int, width: int, cb_size: int
) -> tuple[list[CodeBlockSpec], int, int]:
    """Split a ``height x width`` subband into code blocks.

    Returns ``(blocks, grid_rows, grid_cols)`` with blocks in raster order
    (the tag-tree leaf order).  Degenerate subbands yield an empty list.
    """
    if cb_size <= 0:
        raise ValueError(f"cb_size must be positive, got {cb_size}")
    if height <= 0 or width <= 0:
        return [], 0, 0
    grid_rows = (height + cb_size - 1) // cb_size
    grid_cols = (width + cb_size - 1) // cb_size
    blocks = []
    for gr in range(grid_rows):
        for gc in range(grid_cols):
            r0 = gr * cb_size
            c0 = gc * cb_size
            blocks.append(
                CodeBlockSpec(
                    row0=r0,
                    col0=c0,
                    height=min(cb_size, height - r0),
                    width=min(cb_size, width - c0),
                    grid_row=gr,
                    grid_col=gc,
                )
            )
    return blocks, grid_rows, grid_cols
