"""Fused, chunked DWT front end: interleaved lifting over column chunks.

The paper's kernel contribution (Section 4) rebuilds the wavelet stage
around two ideas.  First, the vertical lifting steps are *interleaved*:
all two (5/3) or four (9/7) steps advance together in one traversal, with
the band split merged into the sweep through a half-size auxiliary buffer
instead of a separate deinterleave pass over a symmetric-extended copy —
boundaries are handled by edge-specialized expressions, not guard samples.
Second, the traversal runs over the constant-width column chunks of the
Section 2 data decomposition, so a chunk stays resident in local store
(here: cache) across every lifting step, and chunks are independent units
of parallel work.

This module is the executable analogue.  :func:`lift_53` and
:func:`lift_97` are the fused kernels; :func:`run_frontend` drives them
chunk by chunk over the whole encoder front end, fusing level shift + MCT
into the first vertical pass and quantization into the last horizontal
pass (the paper's Section 3.2 stage merges).  Chunks fan out over
:class:`repro.core.workpool.ChunkWorkQueue` — shared-memory threads
writing disjoint slices of preallocated outputs — so results are
deterministic for any worker count and chunk width.

Bit-exactness is load-bearing: ``"fused"`` produces byte-identical
codestreams to ``"reference"`` (the :mod:`repro.jpeg2000.dwt` oracle)
because every fused expression evaluates the same elementwise arithmetic;
nothing here reassociates a floating-point sum.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.workpool import ChunkWorkQueue
from repro.jpeg2000 import mct
from repro.jpeg2000.dwt import (
    LIFT_ALPHA,
    LIFT_BETA,
    LIFT_DELTA,
    LIFT_GAMMA,
    LIFT_K,
    Decomposition,
    _level_shapes,
    effective_levels,
    forward_dwt2d,
    inverse_53_1d,
    inverse_97_1d,
)
from repro.jpeg2000.quantize import SubbandQuant, derive_quant, quantize


def quantize_fast(coeffs: np.ndarray, step: float) -> np.ndarray:
    """Deadzone quantization in three passes instead of the oracle's six.

    ``trunc(c / step)`` equals the oracle's ``sign(c) * floor(|c| / step)``
    bitwise — IEEE division is sign-symmetric, so ``|c| / step`` and
    ``|c / step|`` are the same float — which keeps the fused backend
    byte-identical while dropping the separate sign/abs/multiply
    traversals (differentially tested against :func:`quantize`).
    """
    q = np.divide(coeffs, step)
    np.trunc(q, out=q)
    return q.astype(np.int32)

#: Environment variable consulted when ``dwt_backend="auto"``.
BACKEND_ENV_VAR = "REPRO_DWT_BACKEND"

#: Valid DWT backend names.
DWT_BACKENDS = ("auto", "reference", "fused")

#: Chunk widths are rounded up to a multiple of this many samples — the
#: analogue of the paper's constraint that chunk widths be a multiple of
#: the 128-byte cache line (32 4-byte samples) so DMA-ed chunks stay
#: aligned and contiguous.
CACHE_LINE_COLS = 32

#: Environment override for the auto-serial threshold (``0`` disables the
#: clamp entirely — used by tests and benchmarks that need the parallel
#: path on small inputs; any other integer replaces the sample threshold).
AUTO_SERIAL_ENV = "REPRO_DWT_AUTO_SERIAL_SAMPLES"

_UNSET = object()


def dwt_serial_threshold() -> int:
    """Input samples below which the fused front end stays serial.

    Precedence: the :data:`AUTO_SERIAL_ENV` override wins; otherwise the
    planner's model-derived cutover
    (:func:`repro.plan.cutovers.dwt_serial_cutover_samples`), which with
    the pinned default calibration reproduces the hand-tuned ``1 << 21``
    clamp this function replaced — thread submission and chunk-boundary
    costs only amortize on enough data (BENCH_dwt's 1024x1024 case showed
    parallel *losing* to serial, scaling 0.69, before the guard existed).
    """
    env = os.environ.get(AUTO_SERIAL_ENV, "")
    if env:
        try:
            return int(env)
        except ValueError:
            raise ValueError(
                f"{AUTO_SERIAL_ENV}={env!r} invalid; expected an integer"
            ) from None
    from repro.plan.cutovers import dwt_serial_cutover_samples  # lazy: cycle

    return dwt_serial_cutover_samples()


def auto_serial_workers(workers, samples: int):
    """Clamp the chunk fan-out to serial when the input is too small.

    Returns ``1`` when ``samples`` falls below the (env-overridable,
    otherwise model-derived) threshold, otherwise ``workers`` unchanged —
    so fused parallel never loses to fused serial on small images.
    """
    if samples < dwt_serial_threshold():
        return 1
    return workers


def resolve_dwt_backend(backend: str | None) -> str:
    """Resolve a backend name, honouring :data:`BACKEND_ENV_VAR` for auto."""
    if backend is None:
        backend = "auto"
    if backend not in DWT_BACKENDS:
        raise ValueError(
            f"unknown DWT backend {backend!r}; expected one of {DWT_BACKENDS}"
        )
    if backend == "auto":
        env = os.environ.get(BACKEND_ENV_VAR, "")
        if env:
            if env not in DWT_BACKENDS:
                raise ValueError(
                    f"{BACKEND_ENV_VAR}={env!r} invalid; expected one of "
                    f"{DWT_BACKENDS}"
                )
            backend = env
    return "fused" if backend == "auto" else backend


@dataclass
class StageTimings:
    """Wall-clock seconds spent in each encode pipeline stage.

    Reference-backend front-end numbers are plain wall time around each
    stage.  Fused-backend numbers are accumulated from per-chunk timers
    inside the worker tasks: with one worker that is wall time; with
    several it is summed busy time across workers (CPU-seconds), the
    honest attribution when fused stages overlap in time.
    """

    levelshift_mct: float = 0.0
    dwt: float = 0.0
    quantize: float = 0.0
    tier1: float = 0.0
    tier2: float = 0.0
    rate_control: float = 0.0
    total: float = 0.0

    #: Stage attribute names in pipeline order (used by the service metrics
    #: and the CLI summary line).
    STAGES: ClassVar[tuple[str, ...]] = (
        "levelshift_mct", "dwt", "quantize", "tier1", "tier2", "rate_control",
    )

    def as_dict(self) -> dict[str, float]:
        out = {name: getattr(self, name) for name in self.STAGES}
        out["total"] = self.total
        return out

    def summary(self) -> str:
        """One-line, human-oriented stage breakdown for the CLI."""
        labels = {
            "levelshift_mct": "mct", "dwt": "dwt", "quantize": "quant",
            "tier1": "tier1", "tier2": "tier2", "rate_control": "rate",
        }
        parts = []
        for name in self.STAGES:
            value = getattr(self, name)
            if name == "rate_control" and value == 0.0:
                continue  # lossless encodes have no rate-control stage
            parts.append(f"{labels[name]} {_fmt_seconds(value)}")
        return " | ".join(parts)


def _fmt_seconds(s: float) -> str:
    if s >= 10.0:
        return f"{s:.1f}s"
    if s >= 0.1:
        return f"{s:.2f}s"
    return f"{s * 1e3:.1f}ms"


@dataclass
class DecodeStageTimings:
    """Wall-clock seconds spent in each decode pipeline stage.

    The decode mirror of :class:`StageTimings`: ``parse`` covers marker and
    packet parsing, ``tier1`` the code-block bit decoding, ``dequantize``
    the step multiply + placement, and ``idwt_mct`` the fused inverse DWT +
    inverse MCT + level-unshift front end.  The reference decode backend
    fills only ``parse`` and ``total`` (its stages are interleaved by
    design and left untouched as the oracle).
    """

    parse: float = 0.0
    tier1: float = 0.0
    dequantize: float = 0.0
    idwt_mct: float = 0.0
    total: float = 0.0

    #: Stage attribute names in pipeline order (CLI summary, service
    #: metrics).
    STAGES: ClassVar[tuple[str, ...]] = (
        "parse", "tier1", "dequantize", "idwt_mct",
    )

    def as_dict(self) -> dict[str, float]:
        out = {name: getattr(self, name) for name in self.STAGES}
        out["total"] = self.total
        return out

    def summary(self) -> str:
        """One-line, human-oriented stage breakdown for the CLI."""
        labels = {
            "parse": "parse", "tier1": "tier1",
            "dequantize": "dequant", "idwt_mct": "idwt+mct",
        }
        parts = []
        for name in self.STAGES:
            value = getattr(self, name)
            if value == 0.0:
                continue  # the reference backend only fills parse/total
            parts.append(f"{labels[name]} {_fmt_seconds(value)}")
        return " | ".join(parts) if parts else "n/a"


# ---------------------------------------------------------------------------
# Fused lifting kernels
# ---------------------------------------------------------------------------


def _sl(axis: int, s) -> tuple:
    """Index tuple selecting ``s`` along ``axis`` (everything else whole)."""
    return (slice(None),) * axis + (s,)


def _predict_sum(P: np.ndarray, out: np.ndarray, odd_n: bool, axis: int) -> None:
    """``out_k = P_k + P_{k+1}`` with the symmetric right edge folded in.

    ``P`` holds the even-position samples (length ``ns``), ``out`` receives
    one value per odd position (length ``nd``).  For even-length signals the
    reflected neighbour of the last odd sample is its left neighbour, so the
    edge term is ``2 * P_last`` — the edge-specialized expression that
    replaces the oracle's symmetric-extended guard samples.
    """
    lo = P[_sl(axis, slice(0, -1))]
    hi = P[_sl(axis, slice(1, None))]
    if odd_n:
        np.add(lo, hi, out=out)
    else:
        np.add(lo, hi, out=out[_sl(axis, slice(0, -1))])
        np.multiply(P[_sl(axis, slice(-1, None))], 2,
                    out=out[_sl(axis, slice(-1, None))])


def _update_sum(Q: np.ndarray, out: np.ndarray, odd_n: bool, axis: int) -> None:
    """``out_i = Q_{i-1} + Q_i`` with both symmetric edges folded in.

    ``Q`` holds the odd-position (high) samples (length ``nd``), ``out``
    receives one value per even position (length ``ns``).  Reflection makes
    both boundary terms a doubling: ``2 * Q_0`` on the left and, for
    odd-length signals, ``2 * Q_last`` on the right.
    """
    nd = Q.shape[axis]
    np.multiply(Q[_sl(axis, slice(0, 1))], 2, out=out[_sl(axis, slice(0, 1))])
    np.add(Q[_sl(axis, slice(0, nd - 1))], Q[_sl(axis, slice(1, None))],
           out=out[_sl(axis, slice(1, nd))])
    if odd_n:
        np.multiply(Q[_sl(axis, slice(nd - 1, nd))], 2,
                    out=out[_sl(axis, slice(nd, nd + 1))])


def lift_53(plane: np.ndarray, lo: np.ndarray, hi: np.ndarray, axis: int) -> None:
    """Fused reversible 5/3 analysis along ``axis``.

    Both lifting steps advance in one traversal of the chunk: the predict
    step writes the high band straight into ``hi`` (the half-size auxiliary
    buffer that merges the split), and the update step folds it back into
    ``lo``.  No symmetric-extended copy is built and no int64 upcast is
    made — the caller chooses the working dtype.  Outputs must not alias
    ``plane``.  Bit-exact versus :func:`repro.jpeg2000.dwt.forward_53_1d`.
    """
    n = plane.shape[axis]
    if n == 1:
        np.copyto(lo, plane)
        return
    odd = bool(n & 1)
    even = plane[_sl(axis, slice(0, None, 2))]
    odds = plane[_sl(axis, slice(1, None, 2))]
    t = np.empty(hi.shape, hi.dtype)
    _predict_sum(even, t, odd, axis)
    t >>= 1
    np.subtract(odds, t, out=hi)
    u = np.empty(lo.shape, lo.dtype)
    _update_sum(hi, u, odd, axis)
    u += 2
    u >>= 2
    np.add(even, u, out=lo)


def lift_97(plane: np.ndarray, lo: np.ndarray, hi: np.ndarray, axis: int) -> None:
    """Fused irreversible 9/7 analysis along ``axis``.

    All four lifting steps plus the K scaling advance in one traversal,
    ping-ponging between ``hi`` and ``lo`` with two half-size scratch
    buffers; boundary terms use the edge-specialized doublings of
    :func:`_predict_sum` / :func:`_update_sum`.  Outputs must not alias
    ``plane``.  Bit-exact versus :func:`repro.jpeg2000.dwt.forward_97_1d`
    (every expression is the same elementwise arithmetic in the same
    order; only the traversal is fused).
    """
    n = plane.shape[axis]
    if n == 1:
        np.copyto(lo, plane)  # length-1 signal: no lifting, no scaling
        return
    odd = bool(n & 1)
    even = plane[_sl(axis, slice(0, None, 2))]
    odds = plane[_sl(axis, slice(1, None, 2))]
    t = np.empty(hi.shape, np.float64)
    u = np.empty(lo.shape, np.float64)
    _predict_sum(even, t, odd, axis)
    t *= LIFT_ALPHA
    np.add(odds, t, out=hi)        # step 1: d1
    _update_sum(hi, u, odd, axis)
    u *= LIFT_BETA
    np.add(even, u, out=lo)        # step 2: s1
    _predict_sum(lo, t, odd, axis)
    t *= LIFT_GAMMA
    hi += t                        # step 3: d2
    _update_sum(hi, u, odd, axis)
    u *= LIFT_DELTA
    lo += u                        # step 4: s2
    lo *= 1.0 / LIFT_K
    hi *= LIFT_K


# ---------------------------------------------------------------------------
# Chunked front-end driver
# ---------------------------------------------------------------------------


def resolve_chunk(total: int, requested: int | None, workers: int) -> int:
    """Chunk width in samples: a :data:`CACHE_LINE_COLS` multiple.

    ``None`` asks for the automatic policy: one whole-extent chunk when
    serial (no per-chunk overhead to amortize), otherwise about two chunks
    per worker so the dynamic queue can balance ragged finish times.
    """
    if total <= 0:
        return CACHE_LINE_COLS
    if requested is None:
        if workers <= 1:
            return total
        target = -(-total // (2 * workers))
    else:
        if requested < 1:
            raise ValueError(f"chunk width must be >= 1, got {requested}")
        target = requested
    lines = -(-target // CACHE_LINE_COLS)
    return max(CACHE_LINE_COLS, lines * CACHE_LINE_COLS)


def _ranges(total: int, chunk: int) -> list[tuple[int, int]]:
    return [(a, min(a + chunk, total)) for a in range(0, total, chunk)]


@dataclass
class FrontendResult:
    """Everything the encoder needs from the front end.

    ``decomps`` hold **quantized** subband data: int32 coefficients on the
    reversible path, int32 quantizer indices on the irreversible path —
    either way exactly what Tier-1 consumes.
    """

    backend: str
    levels: int
    quants: dict[tuple[str, int], SubbandQuant]
    decomps: list[Decomposition]
    timings: StageTimings = field(repr=False, default_factory=StageTimings)


def run_frontend(
    comps: list[np.ndarray],
    depth: int,
    params,
    *,
    timings: StageTimings | None = None,
    backend: str | None = None,
    workers=_UNSET,
    chunk_cols=_UNSET,
) -> FrontendResult:
    """Level shift + MCT + DWT + quantization for every component.

    ``params`` is an :class:`repro.jpeg2000.params.EncoderParams`;
    ``backend`` / ``workers`` / ``chunk_cols`` override the corresponding
    params fields (benchmark convenience).  Both backends yield identical
    subband data — the fused one just gets there with fused, chunked,
    optionally parallel passes.
    """
    if timings is None:
        timings = StageTimings()
    resolved = resolve_dwt_backend(
        backend if backend is not None else params.dwt_backend
    )
    if workers is _UNSET:
        workers = params.workers
    if chunk_cols is _UNSET:
        chunk_cols = params.dwt_chunk_cols
    h, w = comps[0].shape
    lossless = params.lossless
    chroma_expanded = lossless and len(comps) == 3
    levels_eff = effective_levels((h, w), params.levels)
    quants = _derive_quants(levels_eff, depth, params, chroma_expanded)
    if resolved == "reference":
        decomps = _reference_frontend(comps, depth, params, quants, timings)
    else:
        decomps = _fused_frontend(
            comps, depth, params, levels_eff, quants, timings, workers, chunk_cols
        )
    return FrontendResult(
        backend=resolved, levels=levels_eff, quants=quants,
        decomps=decomps, timings=timings,
    )


def _derive_quants(
    levels_eff: int, depth: int, params, chroma_expanded: bool
) -> dict[tuple[str, int], SubbandQuant]:
    def derive(band: str, dlevel: int) -> SubbandQuant:
        return derive_quant(
            band, max(dlevel, 1), depth, params.lossless,
            params.guard_bits, params.base_quant_step,
            chroma_expanded=chroma_expanded,
        )

    quants = {("LL", levels_eff): derive("LL", levels_eff)}
    for dl in range(1, levels_eff + 1):
        for band in ("HL", "LH", "HH"):
            quants[(band, dl)] = derive(band, dl)
    return quants


def _reference_frontend(comps, depth, params, quants, timings) -> list[Decomposition]:
    """The oracle path: per-stage full-plane passes from the naive modules."""
    t0 = time.perf_counter()
    planes = mct.forward_mct(list(comps), depth, params.lossless)
    t1 = time.perf_counter()
    timings.levelshift_mct += t1 - t0
    decomps = [forward_dwt2d(p, params.levels, params.lossless) for p in planes]
    t2 = time.perf_counter()
    timings.dwt += t2 - t1
    return [_quantize_decomp(d, params.lossless, quants, timings) for d in decomps]


def _quantize_decomp(d: Decomposition, lossless, quants, timings) -> Decomposition:
    t0 = time.perf_counter()
    if lossless:
        ll = d.ll.astype(np.int32)
        details = [tuple(b.astype(np.int32) for b in lvl) for lvl in d.details]
    else:
        ll = quantize(d.ll, quants[("LL", d.levels)].step)
        details = []
        for i, (hl, lh, hh) in enumerate(d.details):
            dl = i + 1
            details.append((
                quantize(hl, quants[("HL", dl)].step),
                quantize(lh, quants[("LH", dl)].step),
                quantize(hh, quants[("HH", dl)].step),
            ))
    timings.quantize += time.perf_counter() - t0
    return Decomposition(
        shape=d.shape, levels=d.levels, reversible=d.reversible,
        ll=ll, details=details,
    )


def _fused_frontend(
    comps, depth, params, levels_eff, quants, timings, workers, chunk_cols
) -> list[Decomposition]:
    lossless = params.lossless
    ncomp = len(comps)
    h, w = comps[0].shape
    workers = auto_serial_workers(workers, h * w * ncomp)
    if lossless:
        # int32 holds one level of 5/3 headroom as long as the running
        # magnitude stays below 2**27; magnitudes roughly double per level,
        # so depth + levels bounds them.  Deep imagery falls back to int64.
        dt = np.int32 if depth + levels_eff <= 28 else np.int64
        lift = lift_53
    else:
        dt = np.float64
        lift = lift_97
    lock = threading.Lock()

    def account(mct_s: float = 0.0, dwt_s: float = 0.0, q_s: float = 0.0) -> None:
        with lock:
            timings.levelshift_mct += mct_s
            timings.dwt += dwt_s
            timings.quantize += q_s

    with ChunkWorkQueue(workers) as queue:
        if levels_eff == 0:
            return _fused_level0(
                comps, depth, lossless, dt, quants, queue, chunk_cols, account
            )

        details_acc: list[list[tuple]] = [[] for _ in range(ncomp)]
        final_ll: list[np.ndarray] = [None] * ncomp  # type: ignore[list-item]
        cur: list[np.ndarray] = []
        ph, pw = h, w
        for lev in range(1, levels_eff + 1):
            nd_v, ns_v = ph // 2, ph - ph // 2
            lo_v = [np.empty((ns_v, pw), dt) for _ in range(ncomp)]
            hi_v = [np.empty((nd_v, pw), dt) for _ in range(ncomp)]
            cols = _ranges(pw, resolve_chunk(pw, chunk_cols, queue.workers))

            # Vertical pass over column chunks; the first level fuses the
            # merged level shift + MCT into the same chunk traversal.
            if lev == 1:
                def vtask(c0: int, c1: int) -> None:
                    t0 = time.perf_counter()
                    planes = mct.forward_mct_chunk(
                        [c[:, c0:c1] for c in comps], depth, lossless, dt
                    )
                    t1 = time.perf_counter()
                    for ci, cp in enumerate(planes):
                        lift(cp, lo_v[ci][:, c0:c1], hi_v[ci][:, c0:c1], 0)
                    account(mct_s=t1 - t0, dwt_s=time.perf_counter() - t1)

                queue.run([lambda a=a, b=b: vtask(a, b) for a, b in cols])
            else:
                def vtask_ll(ci: int, c0: int, c1: int) -> None:
                    t0 = time.perf_counter()
                    lift(cur[ci][:, c0:c1], lo_v[ci][:, c0:c1],
                         hi_v[ci][:, c0:c1], 0)
                    account(dwt_s=time.perf_counter() - t0)

                queue.run([
                    lambda ci=ci, a=a, b=b: vtask_ll(ci, a, b)
                    for ci in range(ncomp) for a, b in cols
                ])

            # Horizontal pass over row chunks; quantization of final bands
            # is fused into the same chunk traversal (lossy path).
            nd_h, ns_h = pw // 2, pw - pw // 2
            last = lev == levels_eff
            rows_lo = _ranges(ns_v, resolve_chunk(ns_v, chunk_cols, queue.workers))
            rows_hi = _ranges(nd_v, resolve_chunk(nd_v, chunk_cols, queue.workers))
            tasks = []
            level_bands = []
            for ci in range(ncomp):
                if lossless:
                    ll_out = np.empty((ns_v, ns_h), dt)
                    hl_out = np.empty((ns_v, nd_h), dt)
                    lh_out = np.empty((nd_v, ns_h), dt)
                    hh_out = np.empty((nd_v, nd_h), dt)
                    ll_step = hl_step = lh_step = hh_step = None
                else:
                    hl_out = np.empty((ns_v, nd_h), np.int32)
                    lh_out = np.empty((nd_v, ns_h), np.int32)
                    hh_out = np.empty((nd_v, nd_h), np.int32)
                    hl_step = quants[("HL", lev)].step
                    lh_step = quants[("LH", lev)].step
                    hh_step = quants[("HH", lev)].step
                    if last:
                        ll_out = np.empty((ns_v, ns_h), np.int32)
                        ll_step = quants[("LL", lev)].step
                    else:
                        ll_out = np.empty((ns_v, ns_h), np.float64)
                        ll_step = None
                level_bands.append((ll_out, hl_out, lh_out, hh_out))
                for r0, r1 in rows_lo:
                    tasks.append(lambda src=lo_v[ci], r0=r0, r1=r1,
                                 a=ll_out, b=hl_out, sa=ll_step, sb=hl_step:
                                 _hlift_task(lift, src, r0, r1, a, b, sa, sb,
                                             account))
                for r0, r1 in rows_hi:
                    tasks.append(lambda src=hi_v[ci], r0=r0, r1=r1,
                                 a=lh_out, b=hh_out, sa=lh_step, sb=hh_step:
                                 _hlift_task(lift, src, r0, r1, a, b, sa, sb,
                                             account))
            queue.run(tasks)

            cur = []
            for ci in range(ncomp):
                ll_out, hl_out, lh_out, hh_out = level_bands[ci]
                if lossless:
                    details_acc[ci].append(tuple(
                        b.astype(np.int32, copy=False)
                        for b in (hl_out, lh_out, hh_out)
                    ))
                    if last:
                        final_ll[ci] = ll_out.astype(np.int32, copy=False)
                else:
                    details_acc[ci].append((hl_out, lh_out, hh_out))
                    if last:
                        final_ll[ci] = ll_out
                cur.append(ll_out)
            ph, pw = ns_v, ns_h

    return [
        Decomposition(
            shape=(h, w), levels=levels_eff, reversible=lossless,
            ll=final_ll[ci], details=details_acc[ci],
        )
        for ci in range(ncomp)
    ]


def _hlift_task(lift, src, r0, r1, a_out, b_out, a_step, b_step, account) -> None:
    """Horizontal lift of one row chunk, quantizing fused where asked.

    ``a_step`` / ``b_step`` of ``None`` mean the band is written raw (it is
    still an intermediate, or the encode is reversible); a float step means
    the band is final on the irreversible path and its chunk is quantized
    in the same traversal that produced it.
    """
    t0 = time.perf_counter()
    rows = r1 - r0
    a_dst = (a_out[r0:r1] if a_step is None
             else np.empty((rows, a_out.shape[1]), np.float64))
    b_dst = (b_out[r0:r1] if b_step is None
             else np.empty((rows, b_out.shape[1]), np.float64))
    lift(src[r0:r1], a_dst, b_dst, 1)
    t1 = time.perf_counter()
    if a_step is not None:
        a_out[r0:r1] = quantize_fast(a_dst, a_step)
    if b_step is not None:
        b_out[r0:r1] = quantize_fast(b_dst, b_step)
    account(dwt_s=t1 - t0, q_s=time.perf_counter() - t1)


def _fused_level0(
    comps, depth, lossless, dt, quants, queue, chunk_cols, account
) -> list[Decomposition]:
    """Degenerate zero-level decomposition: LL0 is the MCT output itself."""
    ncomp = len(comps)
    h, w = comps[0].shape
    planes = [np.empty((h, w), dt) for _ in range(ncomp)]

    def mtask(c0: int, c1: int) -> None:
        t0 = time.perf_counter()
        out = mct.forward_mct_chunk(
            [c[:, c0:c1] for c in comps], depth, lossless, dt
        )
        for ci in range(ncomp):
            planes[ci][:, c0:c1] = out[ci]
        account(mct_s=time.perf_counter() - t0)

    cols = _ranges(w, resolve_chunk(w, chunk_cols, queue.workers))
    queue.run([lambda a=a, b=b: mtask(a, b) for a, b in cols])
    decomps = []
    for p in planes:
        t0 = time.perf_counter()
        if lossless:
            ll = p.astype(np.int32, copy=False)
        else:
            ll = quantize_fast(p, quants[("LL", 0)].step)
        account(q_s=time.perf_counter() - t0)
        decomps.append(Decomposition(
            shape=(h, w), levels=0, reversible=lossless, ll=ll, details=[],
        ))
    return decomps


# ---------------------------------------------------------------------------
# Chunked inverse front end (decode mirror of run_frontend)
# ---------------------------------------------------------------------------


def _chunked_inverse_once(
    inv, ll, hl, lh, hh, shape, dt, queue: ChunkWorkQueue, chunk_cols
) -> np.ndarray:
    """One synthesis level, chunk-parallel, bit-exact vs ``_inverse_2d_once``.

    The reference runs ``inv(ll.T, hl.T, w).T`` then ``inv(lo_v, hi_v, h)``
    — each 1-D synthesis transforms along axis 0 and is *elementwise* along
    axis 1 (every lifting expression combines samples of one column only).
    Chunking the free axis therefore partitions identical arithmetic:
    horizontal synthesis fans out over row chunks, vertical over column
    chunks, every task writing a disjoint slice of a preallocated output.
    The per-call 5/3 working dtype (``_lift_dtype``) may differ chunk vs
    whole, but 5/3 lifting is exact integer arithmetic with no overflow in
    either width, so the int32 results are equal either way.
    """
    h, w = shape
    ns_v, nd_v = h - h // 2, h // 2
    lo_v = np.empty((ns_v, w), dt)
    hi_v = np.empty((nd_v, w), dt)

    def htask(lo_band, hi_band, dst, r0: int, r1: int) -> None:
        dst[r0:r1] = inv(lo_band[r0:r1].T, hi_band[r0:r1].T, w).T

    tasks = []
    for r0, r1 in _ranges(ns_v, resolve_chunk(ns_v, chunk_cols, queue.workers)):
        tasks.append(lambda a=r0, b=r1: htask(ll, hl, lo_v, a, b))
    for r0, r1 in _ranges(nd_v, resolve_chunk(nd_v, chunk_cols, queue.workers)):
        tasks.append(lambda a=r0, b=r1: htask(lh, hh, hi_v, a, b))
    queue.run(tasks)

    out = np.empty((h, w), dt)

    def vtask(c0: int, c1: int) -> None:
        out[:, c0:c1] = inv(lo_v[:, c0:c1], hi_v[:, c0:c1], h)

    cols = _ranges(w, resolve_chunk(w, chunk_cols, queue.workers))
    queue.run([lambda a=a, b=b: vtask(a, b) for a, b in cols])
    return out


def run_inverse_frontend(
    decomps: list[Decomposition],
    bit_depth: int,
    lossless: bool,
    *,
    workers: int | None = 1,
    chunk_cols: int | None = None,
) -> list[np.ndarray]:
    """Fused inverse DWT + inverse MCT + level unshift for every component.

    The decode mirror of :func:`run_frontend`: synthesis levels run as
    chunked passes over a :class:`ChunkWorkQueue` (threads writing disjoint
    slices, deterministic for any worker count), and the final inverse MCT
    + DC unshift runs as one more chunked traversal over the reconstructed
    planes instead of three separate full-plane passes.  Returns unsigned
    int32 component planes, bit-exact versus
    ``mct.inverse_mct([inverse_dwt2d(d) for d in decomps], ...)`` — every
    chunked expression is the same elementwise arithmetic as the oracle's
    (see :func:`_chunked_inverse_once`), and :func:`mct.inverse_mct` itself
    is elementwise, so applying it per column chunk changes nothing.
    """
    if not decomps:
        raise ValueError("need at least one component decomposition")
    from repro.core.workpool import default_workers

    h, w = decomps[0].shape
    if workers is None:
        workers = default_workers()
    workers = auto_serial_workers(workers, h * w * len(decomps))
    with ChunkWorkQueue(workers) as queue:
        planes = []
        for d in decomps:
            inv = inverse_53_1d if d.reversible else inverse_97_1d
            dt = np.int32 if d.reversible else np.float64
            ll = d.ll
            shapes = _level_shapes(d.shape, d.levels)
            for i in range(d.levels - 1, -1, -1):
                hl, lh, hh = d.details[i]
                ll = _chunked_inverse_once(
                    inv, ll, hl, lh, hh, shapes[i], dt, queue, chunk_cols
                )
            planes.append(ll)

        out = [np.empty((h, w), np.int32) for _ in planes]

        def mtask(c0: int, c1: int) -> None:
            restored = mct.inverse_mct(
                [p[:, c0:c1] for p in planes], bit_depth, lossless
            )
            for ci, r in enumerate(restored):
                out[ci][:, c0:c1] = r

        cols = _ranges(w, resolve_chunk(w, chunk_cols, queue.workers))
        queue.run([lambda a=a, b=b: mtask(a, b) for a, b in cols])
    return out
