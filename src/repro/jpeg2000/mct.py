"""Level shift and multi-component transforms (RCT / ICT).

JPEG2000 Part-1 defines two inter-component transforms for 3-component
images: the reversible color transform (RCT, integer, used with the 5/3
wavelet) and the irreversible color transform (ICT, the floating-point
YCbCr matrix, used with the 9/7 wavelet).  The paper merges the level-shift
and inter-component-transform stages into one kernel to halve their DMA
traffic (Section 3.2); functionally the merged result is identical, which is
what :func:`forward_mct` computes.
"""

from __future__ import annotations

import numpy as np

#: ICT (YCbCr) analysis matrix rows, ITU-R BT.601 luma coefficients.
_ICT_FWD = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.16875, -0.33126, 0.5],
        [0.5, -0.41869, -0.08131],
    ],
    dtype=np.float64,
)
_ICT_INV = np.linalg.inv(_ICT_FWD)


def level_shift(component: np.ndarray, bit_depth: int) -> np.ndarray:
    """DC level shift: subtract ``2**(bit_depth-1)`` yielding signed samples."""
    _check_depth(bit_depth)
    return component.astype(np.int32) - (1 << (bit_depth - 1))


def level_unshift(component: np.ndarray, bit_depth: int) -> np.ndarray:
    """Inverse DC level shift with clamping to the unsigned sample range."""
    _check_depth(bit_depth)
    out = np.asarray(component) + (1 << (bit_depth - 1))
    return np.clip(out, 0, (1 << bit_depth) - 1)


def forward_rct(r: np.ndarray, g: np.ndarray, b: np.ndarray):
    """Reversible color transform (integer, exactly invertible)."""
    r = r.astype(np.int64)
    g = g.astype(np.int64)
    b = b.astype(np.int64)
    y = (r + 2 * g + b) >> 2
    u = b - g
    v = r - g
    return y.astype(np.int32), u.astype(np.int32), v.astype(np.int32)


def inverse_rct(y: np.ndarray, u: np.ndarray, v: np.ndarray):
    """Exact inverse of :func:`forward_rct`."""
    y = y.astype(np.int64)
    u = u.astype(np.int64)
    v = v.astype(np.int64)
    g = y - ((u + v) >> 2)
    r = v + g
    b = u + g
    return r.astype(np.int32), g.astype(np.int32), b.astype(np.int32)


def forward_ict(r: np.ndarray, g: np.ndarray, b: np.ndarray):
    """Irreversible color transform (floating point YCbCr)."""
    stacked = np.stack([r, g, b]).astype(np.float64)
    out = np.tensordot(_ICT_FWD, stacked, axes=(1, 0))
    return out[0], out[1], out[2]


def inverse_ict(y: np.ndarray, cb: np.ndarray, cr: np.ndarray):
    """Inverse of :func:`forward_ict` (floating point)."""
    stacked = np.stack([y, cb, cr]).astype(np.float64)
    out = np.tensordot(_ICT_INV, stacked, axes=(1, 0))
    return out[0], out[1], out[2]


def forward_mct(components: list[np.ndarray], bit_depth: int, lossless: bool):
    """Merged level shift + inter-component transform (paper Fig. 2 stage).

    For 3-component images applies RCT (lossless) or ICT (lossy) after the
    level shift; single-component images are only level shifted.  Returns a
    list of float64 (lossy) or int32 (lossless) planes.
    """
    shifted = [level_shift(c, bit_depth) for c in components]
    if len(shifted) == 1:
        if lossless:
            return shifted
        return [s.astype(np.float64) for s in shifted]
    if len(shifted) != 3:
        raise ValueError(f"MCT supports 1 or 3 components, got {len(shifted)}")
    if lossless:
        return list(forward_rct(*shifted))
    return list(forward_ict(*shifted))


def inverse_mct(planes: list[np.ndarray], bit_depth: int, lossless: bool):
    """Inverse of :func:`forward_mct`, returning unsigned integer components."""
    if len(planes) == 1:
        restored = planes
    elif len(planes) != 3:
        raise ValueError(f"MCT supports 1 or 3 components, got {len(planes)}")
    elif lossless:
        restored = list(inverse_rct(*planes))
    else:
        restored = list(inverse_ict(*planes))
    out = []
    for plane in restored:
        if not lossless:
            plane = np.rint(plane)
        out.append(level_unshift(plane, bit_depth).astype(np.int32))
    return out


def _check_depth(bit_depth: int) -> None:
    if not (1 <= bit_depth <= 16):
        raise ValueError(f"bit_depth must be in [1, 16], got {bit_depth}")
