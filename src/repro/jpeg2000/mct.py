"""Level shift and multi-component transforms (RCT / ICT).

JPEG2000 Part-1 defines two inter-component transforms for 3-component
images: the reversible color transform (RCT, integer, used with the 5/3
wavelet) and the irreversible color transform (ICT, the floating-point
YCbCr matrix, used with the 9/7 wavelet).  The paper merges the level-shift
and inter-component-transform stages into one kernel to halve their DMA
traffic (Section 3.2); functionally the merged result is identical, which is
what :func:`forward_mct` computes.
"""

from __future__ import annotations

import numpy as np

#: ICT (YCbCr) analysis matrix rows, ITU-R BT.601 luma coefficients.
_ICT_FWD = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.16875, -0.33126, 0.5],
        [0.5, -0.41869, -0.08131],
    ],
    dtype=np.float64,
)
_ICT_INV = np.linalg.inv(_ICT_FWD)


def level_shift(component: np.ndarray, bit_depth: int) -> np.ndarray:
    """DC level shift: subtract ``2**(bit_depth-1)`` yielding signed samples."""
    _check_depth(bit_depth)
    return component.astype(np.int32) - (1 << (bit_depth - 1))


def level_unshift(component: np.ndarray, bit_depth: int) -> np.ndarray:
    """Inverse DC level shift with clamping to the unsigned sample range."""
    _check_depth(bit_depth)
    out = np.asarray(component) + (1 << (bit_depth - 1))
    return np.clip(out, 0, (1 << bit_depth) - 1)


def forward_rct(r: np.ndarray, g: np.ndarray, b: np.ndarray):
    """Reversible color transform (integer, exactly invertible)."""
    r = r.astype(np.int64)
    g = g.astype(np.int64)
    b = b.astype(np.int64)
    y = (r + 2 * g + b) >> 2
    u = b - g
    v = r - g
    return y.astype(np.int32), u.astype(np.int32), v.astype(np.int32)


def inverse_rct(y: np.ndarray, u: np.ndarray, v: np.ndarray):
    """Exact inverse of :func:`forward_rct`."""
    y = y.astype(np.int64)
    u = u.astype(np.int64)
    v = v.astype(np.int64)
    g = y - ((u + v) >> 2)
    r = v + g
    b = u + g
    return r.astype(np.int32), g.astype(np.int32), b.astype(np.int32)


def _matrix_rows(m: np.ndarray, a, b, c):
    """Apply a 3x3 matrix row by row as explicit elementwise expressions.

    Deliberately *not* a BLAS call: elementwise arithmetic is evaluated in a
    fixed order per sample, so the result is bitwise identical whether the
    planes are transformed whole or one column chunk at a time — the
    property the fused front end's chunk-vs-whole byte-identity rests on.
    (``tensordot`` may reassociate/FMA the 3-term dot depending on shape.)
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    scratch = np.empty(a.shape, np.float64)
    out = []
    for i in range(3):
        acc = np.multiply(a, m[i, 0])
        np.multiply(b, m[i, 1], out=scratch)
        np.add(acc, scratch, out=acc)
        np.multiply(c, m[i, 2], out=scratch)
        np.add(acc, scratch, out=acc)
        out.append(acc)
    return tuple(out)


def forward_ict(r: np.ndarray, g: np.ndarray, b: np.ndarray):
    """Irreversible color transform (floating point YCbCr)."""
    return _matrix_rows(_ICT_FWD, r, g, b)


def inverse_ict(y: np.ndarray, cb: np.ndarray, cr: np.ndarray):
    """Inverse of :func:`forward_ict` (floating point)."""
    return _matrix_rows(_ICT_INV, y, cb, cr)


def forward_mct(components: list[np.ndarray], bit_depth: int, lossless: bool):
    """Merged level shift + inter-component transform (paper Fig. 2 stage).

    For 3-component images applies RCT (lossless) or ICT (lossy) after the
    level shift; single-component images are only level shifted.  Returns a
    list of float64 (lossy) or int32 (lossless) planes.
    """
    shifted = [level_shift(c, bit_depth) for c in components]
    if len(shifted) == 1:
        if lossless:
            return shifted
        return [s.astype(np.float64) for s in shifted]
    if len(shifted) != 3:
        raise ValueError(f"MCT supports 1 or 3 components, got {len(shifted)}")
    if lossless:
        return list(forward_rct(*shifted))
    return list(forward_ict(*shifted))


def forward_mct_chunk(
    chunks: list[np.ndarray], bit_depth: int, lossless: bool, dtype=np.int32
) -> list[np.ndarray]:
    """Merged level shift + MCT on one column chunk (fused front end).

    Bitwise identical to :func:`forward_mct` restricted to the same columns
    (every operation is elementwise), but the reversible path folds the DC
    shift into the transform algebraically instead of running a separate
    shift pass — ``((r-h) + 2(g-h) + (b-h)) >> 2 == ((r + 2g + b) >> 2) - h``
    and the chroma differences cancel the shift outright — one traversal
    where the naive pipeline makes two, the paper's Section 3.2 merge.

    ``dtype`` selects the reversible working precision (int32 when the
    caller proved the headroom, int64 otherwise); the lossy path is always
    float64.
    """
    _check_depth(bit_depth)
    half = 1 << (bit_depth - 1)
    if len(chunks) == 1:
        if lossless:
            shifted = level_shift(chunks[0], bit_depth)
            return [shifted.astype(dtype, copy=False)]
        out = chunks[0].astype(np.float64)
        out -= half  # same value as level_shift then float-convert, one pass
        return [out]
    if len(chunks) != 3:
        raise ValueError(f"MCT supports 1 or 3 components, got {len(chunks)}")
    if lossless:
        r = chunks[0].astype(dtype)
        g = chunks[1].astype(dtype)
        b = chunks[2].astype(dtype)
        y = (r + 2 * g + b) >> 2
        y -= half
        return [y, b - g, r - g]
    shifted = []
    for c in chunks:
        s = c.astype(np.float64)
        s -= half  # bitwise equal to int shift for any depth <= 16
        shifted.append(s)
    return list(forward_ict(*shifted))


def inverse_mct(planes: list[np.ndarray], bit_depth: int, lossless: bool):
    """Inverse of :func:`forward_mct`, returning unsigned integer components."""
    if len(planes) == 1:
        restored = planes
    elif len(planes) != 3:
        raise ValueError(f"MCT supports 1 or 3 components, got {len(planes)}")
    elif lossless:
        restored = list(inverse_rct(*planes))
    else:
        restored = list(inverse_ict(*planes))
    out = []
    for plane in restored:
        if not lossless:
            plane = np.rint(plane)
        out.append(level_unshift(plane, bit_depth).astype(np.int32))
    return out


def _check_depth(bit_depth: int) -> None:
    if not (1 <= bit_depth <= 16):
        raise ValueError(f"bit_depth must be in [1, 16], got {bit_depth}")
