"""EBCOT Tier-1: context-modelled bit-plane coding of code blocks (T.800 D).

Each code block's quantized coefficients are coded magnitude bit plane by
bit plane in up to three passes per plane — significance propagation (SPP),
magnitude refinement (MRP), and cleanup (CUP) — driving the MQ coder of
:mod:`repro.jpeg2000.mq` with 19 adaptive contexts.  This is the paper's
dominant compute kernel ("Tier-1 coding in the EBCOT and the DWT are the
most computationally expensive algorithmic kernels").

The encoder records, per coding pass: a safe truncation length, the
distortion reduction (for PCRD-opt rate control), and the number of binary
decisions coded (the workload statistic the Cell performance model charges
for).  The decoder mirrors the encoder exactly and tolerates truncated
segments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.jpeg2000 import tier1_geom
from repro.jpeg2000.mq import MQDecoder, MQEncoder

#: Environment variable consulted when ``backend="auto"`` (see
#: :func:`encode_codeblock`).  Values: ``"reference"``, ``"vectorized"``,
#: ``"batched"``.
BACKEND_ENV_VAR = "REPRO_TIER1_BACKEND"

#: Valid Tier-1 encoder backend names.
BACKENDS = ("auto", "reference", "vectorized", "batched")

#: Below this many samples the NumPy batching overhead of the vectorized
#: backend exceeds its win and ``"auto"`` picks the scalar coder instead.
AUTO_VECTORIZE_MIN_SAMPLES = 64

# Context numbering (T.800 Table D.1 layout).
NUM_CONTEXTS = 19
CTX_SIG_BASE = 0      # 0..8  significance coding
CTX_SIGN_BASE = 9     # 9..13 sign coding
CTX_MAG_BASE = 14     # 14..16 magnitude refinement
CTX_RUNLEN = 17
CTX_UNIFORM = 18

#: Initial MQ states: the all-zero significance context starts at state 4,
#: run-length at 3, uniform at 46 (T.800 Table D.7).
INITIAL_STATES = {CTX_SIG_BASE: 4, CTX_RUNLEN: 3, CTX_UNIFORM: 46}

PASS_SIG = "SPP"
PASS_REF = "MRP"
PASS_CLEAN = "CUP"


# Significance/sign LUTs now live in the shared per-geometry cache module
# (tier1_geom); the old private names are kept as aliases because the other
# backends import them from here.
_sig_lut_for_band = tier1_geom.sig_lut_for_band
_SIGN_LUT = tier1_geom.SIGN_LUT


def _neighbour_indices(h: int, w: int) -> np.ndarray:
    """Flat neighbour indices (W, E, N, S, NW, NE, SW, SE) per sample.

    Returns a read-only ``(h*w, 8)`` int32 array; out-of-block neighbours
    point at a sentinel slot ``h*w`` that always holds "insignificant".
    The array is shared through the process-wide geometry cache
    (:func:`repro.jpeg2000.tier1_geom.geometry`): repeated calls return the
    same immutable object.
    """
    return tier1_geom.geometry(h, w).nbr


@dataclass
class CodeBlockResult:
    """Output of Tier-1 encoding of one code block."""

    data: bytes
    num_passes: int
    msbs: int                     # magnitude bit planes actually coded
    pass_types: list[str] = field(default_factory=list)
    #: Cumulative safe truncation length (bytes) after each pass.
    pass_lengths: list[int] = field(default_factory=list)
    #: Distortion reduction of each pass, in (quantizer-step)^2 units.
    pass_dist: list[float] = field(default_factory=list)
    #: Binary decisions coded in each pass (Cell workload statistic).
    pass_symbols: list[int] = field(default_factory=list)

    @property
    def total_symbols(self) -> int:
        return sum(self.pass_symbols)


def _validate_block(coeffs: np.ndarray) -> np.ndarray:
    """Shared code-block argument validation for both encoder backends."""
    arr = np.asarray(coeffs)
    if arr.ndim != 2:
        raise ValueError(f"code block must be 2-D, got shape {arr.shape}")
    if arr.shape[0] > 64 or arr.shape[1] > 64:
        raise ValueError(f"code block too large: {arr.shape}")
    return arr


def resolve_backend(backend: str | None) -> str:
    """Resolve a backend name, honouring :data:`BACKEND_ENV_VAR` for auto."""
    if backend is None:
        backend = "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown tier-1 backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        env = os.environ.get(BACKEND_ENV_VAR, "")
        if env:
            if env not in BACKENDS:
                raise ValueError(
                    f"{BACKEND_ENV_VAR}={env!r} invalid; expected one of "
                    f"{BACKENDS}"
                )
            return env
    return backend


def encode_codeblock(
    coeffs: np.ndarray, band: str, backend: str | None = None
) -> CodeBlockResult:
    """Tier-1 encode one code block of signed integer coefficients.

    ``backend`` selects the implementation: ``"reference"`` is the scalar
    per-sample coder below (the differential-testing oracle),
    ``"vectorized"`` is the NumPy-batched coder in
    :mod:`repro.jpeg2000.tier1_vec` (byte-identical output, much faster),
    ``"batched"`` is the whole-image stacked coder in
    :mod:`repro.jpeg2000.tier1_batch` (called here with a single-block
    batch; its real win comes from the encoder handing it every code block
    of an image at once), and ``"auto"`` (default, also via the
    ``REPRO_TIER1_BACKEND`` environment variable) picks the vectorized
    coder for all but tiny blocks.
    """
    backend = resolve_backend(backend)
    if backend == "auto":
        arr = _validate_block(coeffs)
        backend = (
            "vectorized" if arr.size >= AUTO_VECTORIZE_MIN_SAMPLES
            else "reference"
        )
    if backend == "vectorized":
        from repro.jpeg2000.tier1_vec import encode_codeblock_vectorized

        return encode_codeblock_vectorized(coeffs, band)
    if backend == "batched":
        from repro.jpeg2000.tier1_batch import encode_codeblocks_batched

        return encode_codeblocks_batched([(coeffs, band)])[0]
    return encode_codeblock_reference(coeffs, band)


def encode_codeblock_reference(coeffs: np.ndarray, band: str) -> CodeBlockResult:
    """Scalar per-sample Tier-1 encoder (T.800 D, followed literally).

    This is the oracle the vectorized backend is differentially tested
    against: every stream byte, pass length, and distortion value of
    :func:`repro.jpeg2000.tier1_vec.encode_codeblock_vectorized` must match
    this implementation exactly.
    """
    arr = _validate_block(coeffs)
    hgt, wid = arr.shape
    n = hgt * wid
    flat = arr.astype(np.int64).ravel()
    mag_arr = np.abs(flat)
    mag = mag_arr.tolist()
    sgn = (flat < 0).view(np.int8).tolist()
    msbs = int(mag_arr.max()).bit_length() if n else 0
    if msbs == 0:
        return CodeBlockResult(data=b"", num_passes=0, msbs=0)

    sig_lut = _sig_lut_for_band(band)
    nbr = _neighbour_indices(hgt, wid).tolist()
    sig = [0] * (n + 1)       # +1 sentinel slot
    visited = [0] * n
    refined = [0] * n

    mq = MQEncoder(NUM_CONTEXTS, INITIAL_STATES)
    result = CodeBlockResult(data=b"", num_passes=0, msbs=msbs)

    symbols = 0

    def sig_ctx(i: int) -> int:
        w_, e_, n_, s_, nw_, ne_, sw_, se_ = nbr[i]
        hcnt = sig[w_] + sig[e_]
        vcnt = sig[n_] + sig[s_]
        dcnt = sig[nw_] + sig[ne_] + sig[sw_] + sig[se_]
        return sig_lut[hcnt * 15 + vcnt * 5 + dcnt]

    def sign_ctx(i: int) -> tuple[int, int]:
        w_, e_, n_, s_ = nbr[i][:4]
        hc = (sig[w_] and (1 - 2 * sgn[w_])) + (sig[e_] and (1 - 2 * sgn[e_]))
        vc = (sig[n_] and (1 - 2 * sgn[n_])) + (sig[s_] and (1 - 2 * sgn[s_]))
        hc = max(-1, min(1, hc))
        vc = max(-1, min(1, vc))
        return _SIGN_LUT[(hc + 1) * 3 + (vc + 1)]

    def code_sign(i: int) -> None:
        nonlocal symbols
        ctx, xor = sign_ctx(i)
        mq.encode(sgn[i] ^ xor, ctx)
        symbols += 1

    def dist_become(i: int, p: int) -> float:
        v = float(mag[i])
        mhat = (mag[i] >> p) << p
        rec = mhat + ((1 << p) >> 1)
        e1 = v - rec
        return v * v - e1 * e1

    def dist_refine(i: int, p: int) -> float:
        v = float(mag[i])
        mhat_prev = (mag[i] >> (p + 1)) << (p + 1)
        rec_prev = mhat_prev + ((1 << (p + 1)) >> 1)
        mhat = (mag[i] >> p) << p
        rec = mhat + ((1 << p) >> 1)
        e0 = v - rec_prev
        e1 = v - rec
        return e0 * e0 - e1 * e1

    def end_pass(kind: str, dist: float) -> None:
        nonlocal symbols
        result.pass_types.append(kind)
        result.pass_lengths.append(mq.safe_length())
        result.pass_dist.append(dist)
        result.pass_symbols.append(symbols)
        symbols = 0

    def sig_prop_pass(p: int) -> None:
        nonlocal symbols
        dist = 0.0
        for top in range(0, hgt, 4):
            rows = range(top, min(top + 4, hgt))
            for col in range(wid):
                for r in rows:
                    i = r * wid + col
                    if sig[i]:
                        visited[i] = 0
                        continue
                    ctx = sig_ctx(i)
                    if ctx == 0:
                        visited[i] = 0
                        continue
                    bit = (mag[i] >> p) & 1
                    mq.encode(bit, ctx)
                    symbols += 1
                    if bit:
                        code_sign(i)
                        sig[i] = 1
                        dist += dist_become(i, p)
                    visited[i] = 1
        end_pass(PASS_SIG, dist)

    def mag_ref_pass(p: int) -> None:
        nonlocal symbols
        dist = 0.0
        for top in range(0, hgt, 4):
            rows = range(top, min(top + 4, hgt))
            for col in range(wid):
                for r in rows:
                    i = r * wid + col
                    if not sig[i] or visited[i]:
                        continue
                    if refined[i]:
                        ctx = 16
                    else:
                        w_, e_, n_, s_, nw_, ne_, sw_, se_ = nbr[i]
                        any_sig = (sig[w_] or sig[e_] or sig[n_] or sig[s_]
                                   or sig[nw_] or sig[ne_] or sig[sw_] or sig[se_])
                        ctx = 15 if any_sig else 14
                    mq.encode((mag[i] >> p) & 1, ctx)
                    symbols += 1
                    refined[i] = 1
                    dist += dist_refine(i, p)
        end_pass(PASS_REF, dist)

    def cleanup_pass(p: int) -> None:
        nonlocal symbols
        dist = 0.0
        for top in range(0, hgt, 4):
            nrows = min(4, hgt - top)
            for col in range(wid):
                base = top * wid + col
                idxs = [base + k * wid for k in range(nrows)]
                start = 0
                if nrows == 4:
                    # Run-length mode: all four insignificant, unvisited, and
                    # with all-zero significance contexts.
                    if all((not sig[i]) and (not visited[i]) and sig_ctx(i) == 0
                           for i in idxs):
                        if all(((mag[i] >> p) & 1) == 0 for i in idxs):
                            mq.encode(0, CTX_RUNLEN)
                            symbols += 1
                            continue
                        mq.encode(1, CTX_RUNLEN)
                        first = next(k for k, i in enumerate(idxs)
                                     if (mag[i] >> p) & 1)
                        mq.encode((first >> 1) & 1, CTX_UNIFORM)
                        mq.encode(first & 1, CTX_UNIFORM)
                        symbols += 3
                        i = idxs[first]
                        code_sign(i)
                        sig[i] = 1
                        dist += dist_become(i, p)
                        start = first + 1
                for k in range(start, nrows):
                    i = idxs[k]
                    if sig[i] or visited[i]:
                        continue
                    ctx = sig_ctx(i)
                    bit = (mag[i] >> p) & 1
                    mq.encode(bit, ctx)
                    symbols += 1
                    if bit:
                        code_sign(i)
                        sig[i] = 1
                        dist += dist_become(i, p)
        end_pass(PASS_CLEAN, dist)

    for p in range(msbs - 1, -1, -1):
        if p != msbs - 1:
            sig_prop_pass(p)
            mag_ref_pass(p)
        cleanup_pass(p)

    data = mq.flush()
    result.data = data
    result.num_passes = len(result.pass_types)
    result.pass_lengths = [min(pl, len(data)) for pl in result.pass_lengths]
    if result.pass_lengths:
        result.pass_lengths[-1] = len(data)
    return result


def decode_codeblock(
    data: bytes,
    height: int,
    width: int,
    band: str,
    msbs: int,
    num_passes: int,
) -> np.ndarray:
    """Tier-1 decode mirroring :func:`encode_codeblock`.

    Returns int32 coefficients.  When the segment is truncated
    (``num_passes`` fewer than ``1 + 3*(msbs-1)``), significant samples are
    reconstructed at the midpoint of their decoded-precision interval.
    """
    if height <= 0 or width <= 0 or height > 64 or width > 64:
        raise ValueError(f"invalid code block dims {height}x{width}")
    if msbs < 0:
        raise ValueError(f"msbs must be non-negative, got {msbs}")
    n = height * width
    out = np.zeros((height, width), dtype=np.int32)
    if msbs == 0 or num_passes == 0:
        return out
    max_passes = 1 + 3 * (msbs - 1)
    if num_passes > max_passes:
        raise ValueError(f"num_passes {num_passes} exceeds maximum {max_passes}")

    sig_lut = _sig_lut_for_band(band)
    nbr = _neighbour_indices(height, width).tolist()
    sig = [0] * (n + 1)
    visited = [0] * n
    refined = [0] * n
    mag = [0] * n
    sgn = [0] * n
    prec = [0] * n  # last plane at which the sample's value was updated

    mq = MQDecoder(data, NUM_CONTEXTS, INITIAL_STATES)
    passes_done = 0

    def sig_ctx(i: int) -> int:
        w_, e_, n_, s_, nw_, ne_, sw_, se_ = nbr[i]
        return sig_lut[(sig[w_] + sig[e_]) * 15 + (sig[n_] + sig[s_]) * 5
                       + sig[nw_] + sig[ne_] + sig[sw_] + sig[se_]]

    def decode_sign(i: int) -> None:
        w_, e_, n_, s_ = nbr[i][:4]
        hc = (sig[w_] and (1 - 2 * sgn[w_])) + (sig[e_] and (1 - 2 * sgn[e_]))
        vc = (sig[n_] and (1 - 2 * sgn[n_])) + (sig[s_] and (1 - 2 * sgn[s_]))
        hc = max(-1, min(1, hc))
        vc = max(-1, min(1, vc))
        ctx, xor = _SIGN_LUT[(hc + 1) * 3 + (vc + 1)]
        sgn[i] = mq.decode(ctx) ^ xor

    def sig_prop_pass(p: int) -> None:
        for top in range(0, height, 4):
            rows = range(top, min(top + 4, height))
            for col in range(width):
                for r in rows:
                    i = r * width + col
                    if sig[i]:
                        visited[i] = 0
                        continue
                    ctx = sig_ctx(i)
                    if ctx == 0:
                        visited[i] = 0
                        continue
                    if mq.decode(ctx):
                        decode_sign(i)
                        sig[i] = 1
                        mag[i] = 1 << p
                        prec[i] = p
                    visited[i] = 1

    def mag_ref_pass(p: int) -> None:
        for top in range(0, height, 4):
            rows = range(top, min(top + 4, height))
            for col in range(width):
                for r in rows:
                    i = r * width + col
                    if not sig[i] or visited[i]:
                        continue
                    if refined[i]:
                        ctx = 16
                    else:
                        w_, e_, n_, s_, nw_, ne_, sw_, se_ = nbr[i]
                        any_sig = (sig[w_] or sig[e_] or sig[n_] or sig[s_]
                                   or sig[nw_] or sig[ne_] or sig[sw_] or sig[se_])
                        ctx = 15 if any_sig else 14
                    mag[i] |= mq.decode(ctx) << p
                    refined[i] = 1
                    prec[i] = p

    def cleanup_pass(p: int) -> None:
        for top in range(0, height, 4):
            nrows = min(4, height - top)
            for col in range(width):
                base = top * width + col
                idxs = [base + k * width for k in range(nrows)]
                start = 0
                if nrows == 4:
                    if all((not sig[i]) and (not visited[i]) and sig_ctx(i) == 0
                           for i in idxs):
                        if not mq.decode(CTX_RUNLEN):
                            continue
                        first = (mq.decode(CTX_UNIFORM) << 1) | mq.decode(CTX_UNIFORM)
                        i = idxs[first]
                        decode_sign(i)
                        sig[i] = 1
                        mag[i] = 1 << p
                        prec[i] = p
                        start = first + 1
                for k in range(start, nrows):
                    i = idxs[k]
                    if sig[i] or visited[i]:
                        continue
                    ctx = sig_ctx(i)
                    if mq.decode(ctx):
                        decode_sign(i)
                        sig[i] = 1
                        mag[i] = 1 << p
                        prec[i] = p

    for p in range(msbs - 1, -1, -1):
        if p != msbs - 1:
            sig_prop_pass(p)
            passes_done += 1
            if passes_done >= num_passes:
                break
            mag_ref_pass(p)
            passes_done += 1
            if passes_done >= num_passes:
                break
        cleanup_pass(p)
        passes_done += 1
        if passes_done >= num_passes:
            break

    values = np.zeros(n, dtype=np.int64)
    for i in range(n):
        if mag[i]:
            v = mag[i] + ((1 << prec[i]) >> 1)
            values[i] = -v if sgn[i] else v
    return values.reshape(height, width).astype(np.int32)


#: The scalar decoder above is the pinned oracle for every fast decode
#: backend (:mod:`repro.jpeg2000.tier1_dec_vec` is differentially tested
#: against it sample by sample); the alias mirrors
#: :func:`encode_codeblock_reference` on the encode side.
decode_codeblock_reference = decode_codeblock
