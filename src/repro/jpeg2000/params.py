"""Encoder parameter objects (the analogue of Jasper's ``-O`` options)."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Measured peak encoder working set per tile sample, in bytes.  The
#: front end's int32/float planes account for ~8, but the batched Tier-1
#: coder's stacked per-block state (sign/significance/context planes and
#: MQ output buffers) dominates at roughly 16x that.  ``mem_budget``
#: batch sizing and the planner's automatic tile sizing both divide by
#: this constant, so they share one definition.
TILE_WORKSET_BYTES = 128


@dataclass(frozen=True)
class EncoderParams:
    """Options controlling a JPEG2000 encode.

    Attributes
    ----------
    lossless:
        True selects reversible coding (5/3 DWT + RCT), the paper's
        "default option".  False selects irreversible coding (9/7 DWT + ICT
        + deadzone quantization), the paper's ``-O mode=real``.
    rate:
        Target compressed size as a fraction of the raw image size
        (``-O rate=0.1`` in the paper).  ``None`` disables rate control;
        it must be ``None`` for lossless encoding.
    levels:
        Number of DWT decomposition levels (Jasper default: 5).
    codeblock_size:
        Code block height/width.  The paper uses the standard maximum of
        64x64; Muta et al. use 32x32 (Section 3.2 discussion).
    guard_bits:
        Number of guard bits signalled in the QCD marker.
    base_quant_step:
        Base quantization step for the irreversible path, before per-subband
        scaling by synthesis gain.
    tier1_backend:
        Tier-1 coder implementation: ``"reference"`` (scalar, the
        differential-testing oracle), ``"vectorized"`` (NumPy-batched hot
        path, one block at a time), ``"batched"`` (whole-image stacks of
        same-geometry blocks, :mod:`repro.jpeg2000.tier1_batch`), or
        ``"auto"`` (default; also honours the ``REPRO_TIER1_BACKEND``
        environment variable — picks the batched coder for whole-image
        encodes and the vectorized coder per block).  All backends produce
        byte-identical codestreams.
    workers:
        Worker parallelism — the executable analogue of the paper's SPE
        count.  Controls both the Tier-1 code-block process pool and the
        fused front end's chunk threads.  ``1`` (default) encodes
        in-process; ``None`` uses one worker per CPU core.  The codestream
        is byte-identical for any value.
    dwt_backend:
        Front-end (level shift + MCT + DWT + quantize) implementation:
        ``"reference"`` (the naive per-stage oracle in
        :mod:`repro.jpeg2000.dwt`), ``"fused"`` (interleaved lifting over
        column chunks, :mod:`repro.jpeg2000.dwt_fast`), or ``"auto"``
        (default; honours the ``REPRO_DWT_BACKEND`` environment variable,
        otherwise fused).  Both backends produce byte-identical
        codestreams.
    dwt_chunk_cols:
        Column-chunk width for the fused front end, rounded up to a
        multiple of the 32-sample cache line.  ``None`` (default) picks
        automatically: whole-plane when serial, about two chunks per
        worker otherwise.
    self_check:
        When True, :func:`repro.jpeg2000.encoder.encode` decodes its own
        output before returning and verifies the round trip — bit-exact
        reconstruction for lossless, a per-rate PSNR floor for lossy (see
        :mod:`repro.verify.roundtrip`).  A failed check raises
        :class:`repro.verify.VerificationError` instead of returning a
        bad codestream.  Off by default: it roughly doubles encode cost.
    tile_size:
        Edge length of the square tile grid (SIZ ``XTsiz``/``YTsiz``).
        ``None`` (default) encodes the whole image as a single tile and
        emits exactly the legacy codestream bytes.  When set, the image is
        partitioned into ``tile_size x tile_size`` tiles (edge tiles may be
        smaller), each coded independently and emitted as its own
        SOT..SOD tile-part, with a TLM marker in the main header for
        random spatial access.  Tiles shard across the Tier-1 work queue,
        so a tiled encode parallelizes over spatial regions as well as
        code blocks, and the streaming path bounds peak memory to a few
        tile rows.
    progression:
        Tier-2 packet progression order written into COD and used when
        sequencing packets: ``"LRCP"`` (default, layer-resolution-
        component-position — the legacy order), ``"RPCL"``
        (resolution-position-component-layer, the streaming-friendly
        order), or ``"PCRL"`` (position-major, for spatial random access).
        With one layer and one precinct all orders coincide, so the
        default remains byte-identical.
    precinct_size:
        Precinct edge length at the highest resolution (halved once for
        every lower resolution, floored at one code block).  ``None``
        (default) uses maximal precincts (the whole subband — the legacy
        layout, COD ``Scod`` bit 0 clear).  Must be a power of two and at
        least ``codeblock_size``.
    mem_budget:
        Soft cap, in bytes, on the working set held in planes/coefficients
        during a tiled encode.  Execution-only: it changes batching, never
        bytes.  ``None`` (default) batches one tile row at a time when
        tiled.  Requires ``tile_size`` to have an effect.
    plan:
        Execution-planner request: ``None`` (default) keeps the classic
        knob semantics above; ``"auto"`` asks
        :mod:`repro.plan` to pick backends / workers / chunking from its
        calibrated cost model for the image at hand; an explicit
        :class:`repro.plan.ExecutionPlan` is applied verbatim.  The plan
        only fills fields left on automatic — precedence is explicit
        parameter > environment variable > plan — and never changes the
        codestream: every plan is byte-identical by construction.
    """

    lossless: bool = True
    rate: float | None = None
    levels: int = 5
    codeblock_size: int = 64
    guard_bits: int = 2
    base_quant_step: float = 1.0 / 128.0
    tier1_backend: str = "auto"
    workers: int | None = 1
    dwt_backend: str = "auto"
    dwt_chunk_cols: int | None = None
    tile_size: int | None = None
    progression: str = "LRCP"
    precinct_size: int | None = None
    mem_budget: int | None = None
    self_check: bool = False
    plan: object = None

    def __post_init__(self) -> None:
        if self.levels < 0 or self.levels > 32:
            raise ValueError(f"levels must be in [0, 32], got {self.levels}")
        cb = self.codeblock_size
        if cb < 4 or cb > 64 or (cb & (cb - 1)) != 0:
            raise ValueError(
                f"codeblock_size must be a power of two in [4, 64], got {cb}"
            )
        if self.rate is not None:
            if self.lossless:
                raise ValueError(
                    "lossless=True cannot be combined with rate control "
                    f"(rate={self.rate}); use lossless=False or rate=None"
                )
            if not (0.0 < self.rate <= 1.0):
                raise ValueError(f"rate must be in (0, 1], got {self.rate}")
        if not (0 <= self.guard_bits <= 7):
            raise ValueError(f"guard_bits must be in [0, 7], got {self.guard_bits}")
        if self.base_quant_step <= 0 or self.base_quant_step >= 2.0:
            raise ValueError(
                f"base_quant_step must be in (0, 2), got {self.base_quant_step}"
            )
        from repro.jpeg2000.tier1 import BACKENDS  # lazy: avoids heavy import

        if self.tier1_backend not in BACKENDS:
            raise ValueError(
                f"tier1_backend must be one of {BACKENDS}, "
                f"got {self.tier1_backend!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1 or None, got {self.workers}")
        from repro.jpeg2000.dwt_fast import DWT_BACKENDS  # lazy: avoids cycle

        if self.dwt_backend not in DWT_BACKENDS:
            raise ValueError(
                f"dwt_backend must be one of {DWT_BACKENDS}, "
                f"got {self.dwt_backend!r}"
            )
        if self.dwt_chunk_cols is not None and self.dwt_chunk_cols < 1:
            raise ValueError(
                f"dwt_chunk_cols must be >= 1 or None, got {self.dwt_chunk_cols}"
            )
        if self.tile_size is not None and self.tile_size < 16:
            raise ValueError(
                f"tile_size must be >= 16 or None, got {self.tile_size}"
            )
        from repro.jpeg2000.codestream import PROGRESSIONS  # lazy: avoids cycle

        if self.progression not in PROGRESSIONS:
            raise ValueError(
                f"progression must be one of {sorted(PROGRESSIONS)}, "
                f"got {self.progression!r}"
            )
        ps = self.precinct_size
        if ps is not None:
            if ps < self.codeblock_size or ps > 32768 or (ps & (ps - 1)) != 0:
                raise ValueError(
                    "precinct_size must be a power of two in "
                    f"[codeblock_size, 32768] or None, got {ps}"
                )
        if self.mem_budget is not None and self.mem_budget < (1 << 20):
            raise ValueError(
                f"mem_budget must be >= 1 MiB or None, got {self.mem_budget}"
            )
        if self.plan is not None and self.plan != "auto":
            from repro.plan.model import ExecutionPlan  # lazy: avoids cycle

            if not isinstance(self.plan, ExecutionPlan):
                raise ValueError(
                    f'plan must be None, "auto", or an ExecutionPlan, '
                    f"got {self.plan!r}"
                )

    @staticmethod
    def lossless_default() -> "EncoderParams":
        """The paper's lossless configuration (Jasper defaults)."""
        return EncoderParams(lossless=True)

    @staticmethod
    def lossy_rate(rate: float = 0.1) -> "EncoderParams":
        """The paper's lossy configuration: ``-O mode=real -O rate=0.1``."""
        return EncoderParams(lossless=False, rate=rate)
