"""Fast EBCOT Tier-1 *decoder* backend (sample-identical to the reference).

The scalar reference decoder (:func:`repro.jpeg2000.tier1.decode_codeblock`)
re-derives every sample's significance context from its eight neighbours on
every visit of every pass of every bit plane — a closure call plus eight
list lookups per sample visit, three passes per plane.  Decoding cannot be
vectorized the way encoding was (:mod:`repro.jpeg2000.tier1_vec` knows all
bits up front and iterates context modelling to a fixpoint; a decoder
learns each bit only from the MQ coder, whose (A, C) registers make it
inherently serial), so this backend attacks the constant factor instead:

* **Incremental context keys.**  One flat array ``key[i] = 15*h + 5*v + d``
  (significant horizontal/vertical/diagonal neighbour counts) is maintained
  incrementally: when a sample becomes significant its eight neighbours'
  keys are bumped by +15/+5/+1.  A significance context is then a single
  LUT index, and the all-zero-context tests of the significance and
  cleanup passes collapse to ``key[i] == 0`` (context 0 ⇔ key 0 in every
  band's LUT).  Out-of-block neighbours point at a sentinel slot that
  absorbs the updates.
* **Inlined MQ decoding.**  The significance-propagation and cleanup loops
  keep the whole MQ decoder state (A, C, CT, byte pointer) in locals and
  inline ``decode``/``_renorm``/``_bytein`` at each decision site — no
  per-bit method calls.
* **Batched magnitude refinement.**  MRP never changes significance state,
  so its full candidate list and context stream are known before the pass:
  the bits come back from one :meth:`repro.jpeg2000.mq.MQDecoder.decode_run`
  call (compiled via :mod:`repro.jpeg2000._mq_native` when available) and
  are applied with vectorized NumPy updates.
* **Vectorized reconstruction** of the decoded magnitudes/signs, stacked
  across same-geometry code blocks by :func:`decode_codeblocks_batched`
  (the cross-block strategy of :mod:`repro.jpeg2000.tier1_batch`, applied
  to the decode side).

Every path is differentially pinned against the scalar oracle: identical
int32 samples for any ``(data, geometry, band, msbs, num_passes)``,
including truncated segments.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.jpeg2000 import _t1_dec_native, tier1_geom
from repro.jpeg2000.mq import _NLPS, _NMPS, _QE, _SWITCH, MQDecoder
from repro.jpeg2000.tier1 import (
    CTX_RUNLEN,
    CTX_UNIFORM,
    INITIAL_STATES,
    NUM_CONTEXTS,
)

_SIGN_LUT = tier1_geom.SIGN_LUT


@lru_cache(maxsize=None)
def _scan_lists(h: int, w: int):
    """Python-native scan structures for an ``h x w`` block.

    Returns ``(order, nbr, cup_groups)``: the flat T.800 scan order as a
    plain list, per-sample neighbour tuples (W, E, N, S, NW, NE, SW, SE;
    sentinel ``h*w`` for out-of-block), and the cleanup pass's
    stripe-column sample groups (4-tuples for full stripes, shorter at the
    bottom edge).  Plain lists/tuples index faster than NumPy scalars in
    the scalar hot loops below; the underlying arrays come from the shared
    geometry cache.
    """
    geo = tier1_geom.geometry(h, w)
    order = geo.order.tolist()
    nbr = [tuple(row) for row in geo.nbr.tolist()]
    groups = []
    for top in range(0, h, 4):
        nrows = min(4, h - top)
        for col in range(w):
            base = top * w + col
            groups.append(tuple(base + k * w for k in range(nrows)))
    return order, nbr, tuple(groups)


def _spp(mq: MQDecoder, p: int, sig, key, sgn, visited,
         order, nbr, lut) -> list:
    """Significance propagation pass; returns newly significant indices."""
    index = mq._index
    mps = mq._mps
    data = mq._data
    dlen = len(data)
    a, c, ct, bp, b = mq._a, mq._c, mq._ct, mq._bp, mq._b
    qe_t, nmps_t, nlps_t, switch_t = _QE, _NMPS, _NLPS, _SWITCH
    sign_lut = _SIGN_LUT
    new_sigs = []
    append = new_sigs.append
    for i in order:
        if sig[i]:
            visited[i] = 0
            continue
        k = key[i]
        if not k:
            visited[i] = 0
            continue
        cx = lut[k]
        # -- inline MQ decode (significance bit) --------------------------
        idx = index[cx]
        qe = qe_t[idx]
        a -= qe
        if ((c >> 16) & 0xFFFF) < qe:
            if a < qe:
                d = mps[cx]
                index[cx] = nmps_t[idx]
            else:
                d = 1 - mps[cx]
                if switch_t[idx]:
                    mps[cx] = d
                index[cx] = nlps_t[idx]
            a = qe
            while True:
                if ct == 0:
                    if b == 0xFF:
                        if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                            c += 0xFF00
                            ct = 8
                        else:
                            bp += 1
                            b = data[bp]
                            c += b << 9
                            ct = 7
                    else:
                        bp += 1
                        b = data[bp] if bp < dlen else 0xFF
                        c += b << 8
                        ct = 8
                a = (a << 1) & 0xFFFF
                c = (c << 1) & 0xFFFFFFFF
                ct -= 1
                if a & 0x8000:
                    break
        else:
            c -= qe << 16
            if a & 0x8000:
                d = mps[cx]
            else:
                if a < qe:
                    d = 1 - mps[cx]
                    if switch_t[idx]:
                        mps[cx] = d
                    index[cx] = nlps_t[idx]
                else:
                    d = mps[cx]
                    index[cx] = nmps_t[idx]
                while True:
                    if ct == 0:
                        if b == 0xFF:
                            if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                c += 0xFF00
                                ct = 8
                            else:
                                bp += 1
                                b = data[bp]
                                c += b << 9
                                ct = 7
                        else:
                            bp += 1
                            b = data[bp] if bp < dlen else 0xFF
                            c += b << 8
                            ct = 8
                    a = (a << 1) & 0xFFFF
                    c = (c << 1) & 0xFFFFFFFF
                    ct -= 1
                    if a & 0x8000:
                        break
        if d:
            nb = nbr[i]
            w_ = nb[0]
            e_ = nb[1]
            n_ = nb[2]
            s_ = nb[3]
            hc = ((sig[w_] and (1 - 2 * sgn[w_]))
                  + (sig[e_] and (1 - 2 * sgn[e_])))
            vc = ((sig[n_] and (1 - 2 * sgn[n_]))
                  + (sig[s_] and (1 - 2 * sgn[s_])))
            if hc > 1:
                hc = 1
            elif hc < -1:
                hc = -1
            if vc > 1:
                vc = 1
            elif vc < -1:
                vc = -1
            cx, xor = sign_lut[(hc + 1) * 3 + (vc + 1)]
            # -- inline MQ decode (sign bit) ------------------------------
            idx = index[cx]
            qe = qe_t[idx]
            a -= qe
            if ((c >> 16) & 0xFFFF) < qe:
                if a < qe:
                    d = mps[cx]
                    index[cx] = nmps_t[idx]
                else:
                    d = 1 - mps[cx]
                    if switch_t[idx]:
                        mps[cx] = d
                    index[cx] = nlps_t[idx]
                a = qe
                while True:
                    if ct == 0:
                        if b == 0xFF:
                            if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                c += 0xFF00
                                ct = 8
                            else:
                                bp += 1
                                b = data[bp]
                                c += b << 9
                                ct = 7
                        else:
                            bp += 1
                            b = data[bp] if bp < dlen else 0xFF
                            c += b << 8
                            ct = 8
                    a = (a << 1) & 0xFFFF
                    c = (c << 1) & 0xFFFFFFFF
                    ct -= 1
                    if a & 0x8000:
                        break
            else:
                c -= qe << 16
                if a & 0x8000:
                    d = mps[cx]
                else:
                    if a < qe:
                        d = 1 - mps[cx]
                        if switch_t[idx]:
                            mps[cx] = d
                        index[cx] = nlps_t[idx]
                    else:
                        d = mps[cx]
                        index[cx] = nmps_t[idx]
                    while True:
                        if ct == 0:
                            if b == 0xFF:
                                if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                    c += 0xFF00
                                    ct = 8
                                else:
                                    bp += 1
                                    b = data[bp]
                                    c += b << 9
                                    ct = 7
                            else:
                                bp += 1
                                b = data[bp] if bp < dlen else 0xFF
                                c += b << 8
                                ct = 8
                        a = (a << 1) & 0xFFFF
                        c = (c << 1) & 0xFFFFFFFF
                        ct -= 1
                        if a & 0x8000:
                            break
            sgn[i] = d ^ xor
            sig[i] = 1
            append(i)
            key[w_] += 15
            key[e_] += 15
            key[n_] += 5
            key[s_] += 5
            key[nb[4]] += 1
            key[nb[5]] += 1
            key[nb[6]] += 1
            key[nb[7]] += 1
        visited[i] = 1
    mq._a, mq._c, mq._ct, mq._bp, mq._b = a, c, ct, bp, b
    return new_sigs


def _cup(mq: MQDecoder, p: int, sig, key, sgn, visited,
         cup_groups, nbr, lut) -> list:
    """Cleanup pass; returns newly significant indices."""
    index = mq._index
    mps = mq._mps
    data = mq._data
    dlen = len(data)
    a, c, ct, bp, b = mq._a, mq._c, mq._ct, mq._bp, mq._b
    qe_t, nmps_t, nlps_t, switch_t = _QE, _NMPS, _NLPS, _SWITCH
    sign_lut = _SIGN_LUT
    new_sigs = []
    append = new_sigs.append
    for idxs in cup_groups:
        start = 0
        nrows = len(idxs)
        if nrows == 4:
            i0, i1, i2, i3 = idxs
            if not (sig[i0] or visited[i0] or key[i0]
                    or sig[i1] or visited[i1] or key[i1]
                    or sig[i2] or visited[i2] or key[i2]
                    or sig[i3] or visited[i3] or key[i3]):
                # Run-length mode.
                cx = CTX_RUNLEN
                # -- inline MQ decode (run-length bit) --------------------
                idx = index[cx]
                qe = qe_t[idx]
                a -= qe
                if ((c >> 16) & 0xFFFF) < qe:
                    if a < qe:
                        d = mps[cx]
                        index[cx] = nmps_t[idx]
                    else:
                        d = 1 - mps[cx]
                        if switch_t[idx]:
                            mps[cx] = d
                        index[cx] = nlps_t[idx]
                    a = qe
                    while True:
                        if ct == 0:
                            if b == 0xFF:
                                if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                    c += 0xFF00
                                    ct = 8
                                else:
                                    bp += 1
                                    b = data[bp]
                                    c += b << 9
                                    ct = 7
                            else:
                                bp += 1
                                b = data[bp] if bp < dlen else 0xFF
                                c += b << 8
                                ct = 8
                        a = (a << 1) & 0xFFFF
                        c = (c << 1) & 0xFFFFFFFF
                        ct -= 1
                        if a & 0x8000:
                            break
                else:
                    c -= qe << 16
                    if a & 0x8000:
                        d = mps[cx]
                    else:
                        if a < qe:
                            d = 1 - mps[cx]
                            if switch_t[idx]:
                                mps[cx] = d
                            index[cx] = nlps_t[idx]
                        else:
                            d = mps[cx]
                            index[cx] = nmps_t[idx]
                        while True:
                            if ct == 0:
                                if b == 0xFF:
                                    if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                        c += 0xFF00
                                        ct = 8
                                    else:
                                        bp += 1
                                        b = data[bp]
                                        c += b << 9
                                        ct = 7
                                else:
                                    bp += 1
                                    b = data[bp] if bp < dlen else 0xFF
                                    c += b << 8
                                    ct = 8
                            a = (a << 1) & 0xFFFF
                            c = (c << 1) & 0xFFFFFFFF
                            ct -= 1
                            if a & 0x8000:
                                break
                if not d:
                    continue
                first = 0
                for _ in (0, 1):
                    cx = CTX_UNIFORM
                    # -- inline MQ decode (uniform bit) -------------------
                    idx = index[cx]
                    qe = qe_t[idx]
                    a -= qe
                    if ((c >> 16) & 0xFFFF) < qe:
                        if a < qe:
                            d = mps[cx]
                            index[cx] = nmps_t[idx]
                        else:
                            d = 1 - mps[cx]
                            if switch_t[idx]:
                                mps[cx] = d
                            index[cx] = nlps_t[idx]
                        a = qe
                        while True:
                            if ct == 0:
                                if b == 0xFF:
                                    if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                        c += 0xFF00
                                        ct = 8
                                    else:
                                        bp += 1
                                        b = data[bp]
                                        c += b << 9
                                        ct = 7
                                else:
                                    bp += 1
                                    b = data[bp] if bp < dlen else 0xFF
                                    c += b << 8
                                    ct = 8
                            a = (a << 1) & 0xFFFF
                            c = (c << 1) & 0xFFFFFFFF
                            ct -= 1
                            if a & 0x8000:
                                break
                    else:
                        c -= qe << 16
                        if a & 0x8000:
                            d = mps[cx]
                        else:
                            if a < qe:
                                d = 1 - mps[cx]
                                if switch_t[idx]:
                                    mps[cx] = d
                                index[cx] = nlps_t[idx]
                            else:
                                d = mps[cx]
                                index[cx] = nmps_t[idx]
                            while True:
                                if ct == 0:
                                    if b == 0xFF:
                                        if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                            c += 0xFF00
                                            ct = 8
                                        else:
                                            bp += 1
                                            b = data[bp]
                                            c += b << 9
                                            ct = 7
                                    else:
                                        bp += 1
                                        b = data[bp] if bp < dlen else 0xFF
                                        c += b << 8
                                        ct = 8
                                a = (a << 1) & 0xFFFF
                                c = (c << 1) & 0xFFFFFFFF
                                ct -= 1
                                if a & 0x8000:
                                    break
                    first = (first << 1) | d
                i = idxs[first]
                nb = nbr[i]
                w_ = nb[0]
                e_ = nb[1]
                n_ = nb[2]
                s_ = nb[3]
                hc = ((sig[w_] and (1 - 2 * sgn[w_]))
                      + (sig[e_] and (1 - 2 * sgn[e_])))
                vc = ((sig[n_] and (1 - 2 * sgn[n_]))
                      + (sig[s_] and (1 - 2 * sgn[s_])))
                if hc > 1:
                    hc = 1
                elif hc < -1:
                    hc = -1
                if vc > 1:
                    vc = 1
                elif vc < -1:
                    vc = -1
                cx, xor = sign_lut[(hc + 1) * 3 + (vc + 1)]
                # -- inline MQ decode (sign bit, run-length sample) -------
                idx = index[cx]
                qe = qe_t[idx]
                a -= qe
                if ((c >> 16) & 0xFFFF) < qe:
                    if a < qe:
                        d = mps[cx]
                        index[cx] = nmps_t[idx]
                    else:
                        d = 1 - mps[cx]
                        if switch_t[idx]:
                            mps[cx] = d
                        index[cx] = nlps_t[idx]
                    a = qe
                    while True:
                        if ct == 0:
                            if b == 0xFF:
                                if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                    c += 0xFF00
                                    ct = 8
                                else:
                                    bp += 1
                                    b = data[bp]
                                    c += b << 9
                                    ct = 7
                            else:
                                bp += 1
                                b = data[bp] if bp < dlen else 0xFF
                                c += b << 8
                                ct = 8
                        a = (a << 1) & 0xFFFF
                        c = (c << 1) & 0xFFFFFFFF
                        ct -= 1
                        if a & 0x8000:
                            break
                else:
                    c -= qe << 16
                    if a & 0x8000:
                        d = mps[cx]
                    else:
                        if a < qe:
                            d = 1 - mps[cx]
                            if switch_t[idx]:
                                mps[cx] = d
                            index[cx] = nlps_t[idx]
                        else:
                            d = mps[cx]
                            index[cx] = nmps_t[idx]
                        while True:
                            if ct == 0:
                                if b == 0xFF:
                                    if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                        c += 0xFF00
                                        ct = 8
                                    else:
                                        bp += 1
                                        b = data[bp]
                                        c += b << 9
                                        ct = 7
                                else:
                                    bp += 1
                                    b = data[bp] if bp < dlen else 0xFF
                                    c += b << 8
                                    ct = 8
                            a = (a << 1) & 0xFFFF
                            c = (c << 1) & 0xFFFFFFFF
                            ct -= 1
                            if a & 0x8000:
                                break
                sgn[i] = d ^ xor
                sig[i] = 1
                append(i)
                key[w_] += 15
                key[e_] += 15
                key[n_] += 5
                key[s_] += 5
                key[nb[4]] += 1
                key[nb[5]] += 1
                key[nb[6]] += 1
                key[nb[7]] += 1
                start = first + 1
        for k_ in range(start, nrows):
            i = idxs[k_]
            if sig[i] or visited[i]:
                continue
            cx = lut[key[i]]
            # -- inline MQ decode (significance bit) ----------------------
            idx = index[cx]
            qe = qe_t[idx]
            a -= qe
            if ((c >> 16) & 0xFFFF) < qe:
                if a < qe:
                    d = mps[cx]
                    index[cx] = nmps_t[idx]
                else:
                    d = 1 - mps[cx]
                    if switch_t[idx]:
                        mps[cx] = d
                    index[cx] = nlps_t[idx]
                a = qe
                while True:
                    if ct == 0:
                        if b == 0xFF:
                            if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                c += 0xFF00
                                ct = 8
                            else:
                                bp += 1
                                b = data[bp]
                                c += b << 9
                                ct = 7
                        else:
                            bp += 1
                            b = data[bp] if bp < dlen else 0xFF
                            c += b << 8
                            ct = 8
                    a = (a << 1) & 0xFFFF
                    c = (c << 1) & 0xFFFFFFFF
                    ct -= 1
                    if a & 0x8000:
                        break
            else:
                c -= qe << 16
                if a & 0x8000:
                    d = mps[cx]
                else:
                    if a < qe:
                        d = 1 - mps[cx]
                        if switch_t[idx]:
                            mps[cx] = d
                        index[cx] = nlps_t[idx]
                    else:
                        d = mps[cx]
                        index[cx] = nmps_t[idx]
                    while True:
                        if ct == 0:
                            if b == 0xFF:
                                if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                    c += 0xFF00
                                    ct = 8
                                else:
                                    bp += 1
                                    b = data[bp]
                                    c += b << 9
                                    ct = 7
                            else:
                                bp += 1
                                b = data[bp] if bp < dlen else 0xFF
                                c += b << 8
                                ct = 8
                        a = (a << 1) & 0xFFFF
                        c = (c << 1) & 0xFFFFFFFF
                        ct -= 1
                        if a & 0x8000:
                            break
            if d:
                nb = nbr[i]
                w_ = nb[0]
                e_ = nb[1]
                n_ = nb[2]
                s_ = nb[3]
                hc = ((sig[w_] and (1 - 2 * sgn[w_]))
                      + (sig[e_] and (1 - 2 * sgn[e_])))
                vc = ((sig[n_] and (1 - 2 * sgn[n_]))
                      + (sig[s_] and (1 - 2 * sgn[s_])))
                if hc > 1:
                    hc = 1
                elif hc < -1:
                    hc = -1
                if vc > 1:
                    vc = 1
                elif vc < -1:
                    vc = -1
                cx, xor = sign_lut[(hc + 1) * 3 + (vc + 1)]
                # -- inline MQ decode (sign bit) --------------------------
                idx = index[cx]
                qe = qe_t[idx]
                a -= qe
                if ((c >> 16) & 0xFFFF) < qe:
                    if a < qe:
                        d = mps[cx]
                        index[cx] = nmps_t[idx]
                    else:
                        d = 1 - mps[cx]
                        if switch_t[idx]:
                            mps[cx] = d
                        index[cx] = nlps_t[idx]
                    a = qe
                    while True:
                        if ct == 0:
                            if b == 0xFF:
                                if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                    c += 0xFF00
                                    ct = 8
                                else:
                                    bp += 1
                                    b = data[bp]
                                    c += b << 9
                                    ct = 7
                            else:
                                bp += 1
                                b = data[bp] if bp < dlen else 0xFF
                                c += b << 8
                                ct = 8
                        a = (a << 1) & 0xFFFF
                        c = (c << 1) & 0xFFFFFFFF
                        ct -= 1
                        if a & 0x8000:
                            break
                else:
                    c -= qe << 16
                    if a & 0x8000:
                        d = mps[cx]
                    else:
                        if a < qe:
                            d = 1 - mps[cx]
                            if switch_t[idx]:
                                mps[cx] = d
                            index[cx] = nlps_t[idx]
                        else:
                            d = mps[cx]
                            index[cx] = nmps_t[idx]
                        while True:
                            if ct == 0:
                                if b == 0xFF:
                                    if (data[bp + 1] if bp + 1 < dlen else 0xFF) > 0x8F:
                                        c += 0xFF00
                                        ct = 8
                                    else:
                                        bp += 1
                                        b = data[bp]
                                        c += b << 9
                                        ct = 7
                                else:
                                    bp += 1
                                    b = data[bp] if bp < dlen else 0xFF
                                    c += b << 8
                                    ct = 8
                            a = (a << 1) & 0xFFFF
                            c = (c << 1) & 0xFFFFFFFF
                            ct -= 1
                            if a & 0x8000:
                                break
                sgn[i] = d ^ xor
                sig[i] = 1
                append(i)
                key[w_] += 15
                key[e_] += 15
                key[n_] += 5
                key[s_] += 5
                key[nb[4]] += 1
                key[nb[5]] += 1
                key[nb[6]] += 1
                key[nb[7]] += 1
    mq._a, mq._c, mq._ct, mq._bp, mq._b = a, c, ct, bp, b
    return new_sigs


def _validate(height: int, width: int, msbs: int, num_passes: int) -> None:
    """Argument validation identical to the scalar reference decoder."""
    if height <= 0 or width <= 0 or height > 64 or width > 64:
        raise ValueError(f"invalid code block dims {height}x{width}")
    if msbs < 0:
        raise ValueError(f"msbs must be non-negative, got {msbs}")
    if msbs == 0 or num_passes == 0:
        return
    max_passes = 1 + 3 * (msbs - 1)
    if num_passes > max_passes:
        raise ValueError(f"num_passes {num_passes} exceeds maximum {max_passes}")


def _decode_state(
    data: bytes, height: int, width: int, band: str, msbs: int,
    num_passes: int,
):
    """Run the pass loop; returns ``(mag, prec, sgn)`` or None if empty.

    ``mag``/``prec`` are flat int64 arrays, ``sgn`` a flat uint8 array.
    Reconstruction is left to the caller so that
    :func:`decode_codeblocks_batched` can vectorize it across a whole
    same-geometry stack.  When the compiled whole-block kernel is present
    (:mod:`repro.jpeg2000._t1_dec_native`) the entire pass loop runs in C;
    the Python loops below are the bit-exact fallback.
    """
    _validate(height, width, msbs, num_passes)
    if msbs == 0 or num_passes == 0:
        return None
    if _t1_dec_native.native_decode_block is not None:
        return _t1_dec_native.native_decode_block(
            data, height, width, tier1_geom.sig_lut_array(band),
            tier1_geom.geometry(height, width).nbr, msbs, num_passes,
        )
    n = height * width
    lut = tier1_geom.sig_lut_for_band(band)
    order, nbr, cup_groups = _scan_lists(height, width)
    geo = tier1_geom.geometry(height, width)
    ord_arr = geo.order
    nbr_arr = geo.nbr

    sig = [0] * (n + 1)       # +1 sentinel slot
    key = [0] * (n + 1)       # incremental 15h+5v+d context keys
    visited = [0] * n
    sgn = [0] * n
    sig_arr = np.zeros(n + 1, dtype=np.uint8)
    refined = np.zeros(n, dtype=np.uint8)
    mag = np.zeros(n, dtype=np.int64)
    prec = np.zeros(n, dtype=np.int64)

    mq = MQDecoder(data, NUM_CONTEXTS, INITIAL_STATES)
    passes_done = 0

    def apply_new(new_sigs: list, p: int) -> None:
        idx = np.asarray(new_sigs, dtype=np.int64)
        sig_arr[idx] = 1
        mag[idx] = 1 << p
        prec[idx] = p

    for p in range(msbs - 1, -1, -1):
        if p != msbs - 1:
            new_sigs = _spp(mq, p, sig, key, sgn, visited, order, nbr, lut)
            # MRP candidates are exactly the samples significant *before*
            # this plane's SPP ran (SPP marks everything else visited), so
            # snapshot before folding in the SPP updates.
            cand = ord_arr[sig_arr[ord_arr] != 0]
            if new_sigs:
                apply_new(new_sigs, p)
            passes_done += 1
            if passes_done >= num_passes:
                break
            if cand.size:
                anys = sig_arr[nbr_arr[cand]].any(axis=1)
                ctxs = np.where(
                    refined[cand] != 0, 16, np.where(anys, 15, 14)
                ).astype(np.uint8)
                bits = np.frombuffer(
                    mq.decode_run(ctxs.tobytes()), dtype=np.uint8
                )
                mag[cand] |= bits.astype(np.int64) << p
                refined[cand] = 1
                prec[cand] = p
            passes_done += 1
            if passes_done >= num_passes:
                break
        new_sigs = _cup(mq, p, sig, key, sgn, visited, cup_groups, nbr, lut)
        if new_sigs:
            apply_new(new_sigs, p)
        passes_done += 1
        if passes_done >= num_passes:
            break
    return mag, prec, np.asarray(sgn, dtype=np.uint8)


def _reconstruct(mag: np.ndarray, prec: np.ndarray,
                 sgn: np.ndarray) -> np.ndarray:
    """Midpoint reconstruction, vectorized; works on flat or stacked axes."""
    half = np.left_shift(np.int64(1), prec) >> 1
    values = np.where(mag != 0, mag + half, np.int64(0))
    return np.where(sgn != 0, -values, values)


def decode_codeblock_fast(
    data: bytes,
    height: int,
    width: int,
    band: str,
    msbs: int,
    num_passes: int,
) -> np.ndarray:
    """Fast Tier-1 decode, sample-identical to the scalar reference."""
    state = _decode_state(data, height, width, band, msbs, num_passes)
    if state is None:
        return np.zeros((height, width), dtype=np.int32)
    mag, prec, sgn = state
    values = _reconstruct(mag, prec, sgn)
    return values.reshape(height, width).astype(np.int32)


def decode_codeblocks_batched(blocks) -> list:
    """Decode many code blocks, batching same-geometry reconstruction.

    ``blocks`` is a sequence of ``(data, height, width, band, msbs,
    num_passes)`` tuples.  The MQ pass loop is inherently serial per block,
    but blocks sharing a geometry stack their decoded magnitude/precision
    state so the final midpoint reconstruction runs as a handful of NumPy
    ops over ``(nblocks, h*w)`` arrays instead of once per block — the
    decode-side analogue of :mod:`repro.jpeg2000.tier1_batch`'s
    same-geometry stacking.  Results keep input order.
    """
    results: list = [None] * len(blocks)
    groups: dict = {}
    for pos, blk in enumerate(blocks):
        groups.setdefault((blk[1], blk[2]), []).append(pos)
    for (h, w), members in groups.items():
        stacked: list = []
        for pos in members:
            state = _decode_state(*blocks[pos])
            if state is None:
                results[pos] = np.zeros((h, w), dtype=np.int32)
            else:
                stacked.append((pos, state))
        if not stacked:
            continue
        mag = np.stack([st[0] for _, st in stacked])
        prec = np.stack([st[1] for _, st in stacked])
        sgn = np.asarray([st[2] for _, st in stacked], dtype=np.int64)
        values = _reconstruct(mag, prec, sgn).astype(np.int32)
        for row, (pos, _) in enumerate(stacked):
            results[pos] = values[row].reshape(h, w)
    return results
