"""Optional compiled kernel for the batched MQ encoder loop.

The MQ coder is the one part of Tier-1 that cannot be vectorized: every
decision updates the (A, C) interval registers that the next decision
reads.  :meth:`repro.jpeg2000.mq.MQEncoder.encode_run` therefore consumes
the whole per-pass decision stream in one loop — and this module, when a C
compiler is present, compiles that loop to native code at first use and
drives it through :mod:`ctypes`.  This is the Python-world analogue of the
paper running Tier-1 on the SPEs: the context modelling is batched (NumPy,
in :mod:`repro.jpeg2000.tier1_vec`) and the serial arithmetic coder runs
at machine speed.

Design constraints:

* **Bit-exact**: the C loop is a transliteration of ``MQEncoder.encode``
  /``_renorm``/``_byteout``; the state tables are generated from
  :data:`repro.jpeg2000.mq.STATE_TABLE` so there is one source of truth.
* **Optional**: if no compiler is available, compilation fails, or the
  environment sets ``REPRO_MQ_NATIVE=0``, :data:`native_encode_run` is
  ``None`` and callers fall back to the pure-Python tight loop.  No
  third-party packages are involved — only the system C compiler.
* **Cached**: the shared object is built once per source hash in a
  per-user cache directory, so repeated processes (and multiprocessing
  workers under ``spawn``) just ``dlopen`` it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

from repro.jpeg2000.mq import STATE_TABLE

_C_TEMPLATE = r"""
#include <stdint.h>

static const uint16_t QE[{n}] = {{{qe}}};
static const uint8_t NMPS[{n}] = {{{nmps}}};
static const uint8_t NLPS[{n}] = {{{nlps}}};
static const uint8_t SWITCH_[{n}] = {{{switch}}};

long mq_encode_run(int32_t *index, int32_t *mps,
                   uint32_t *areg, uint32_t *creg,
                   int32_t *ctreg, int32_t *breg,
                   const uint8_t *bits, const uint8_t *ctxs, long nsym,
                   uint8_t *out)
{{
    uint32_t a = *areg, c = *creg;
    int32_t ct = *ctreg;
    int32_t b = *breg;             /* -1 encodes Python None */
    long olen = 0;
    for (long k = 0; k < nsym; k++) {{
        int cx = ctxs[k];
        int idx = index[cx];
        uint32_t qe = QE[idx];
        if (bits[k] == mps[cx]) {{
            uint32_t na = a - qe;
            if (na & 0x8000u) {{ a = na; c += qe; continue; }}
            if (na < qe) {{ a = qe; }} else {{ a = na; c += qe; }}
            index[cx] = NMPS[idx];
        }} else {{
            uint32_t na = a - qe;
            if (na < qe) {{ c += qe; a = na; }} else {{ a = qe; }}
            if (SWITCH_[idx]) mps[cx] = 1 - mps[cx];
            index[cx] = NLPS[idx];
        }}
        do {{
            a = (a << 1) & 0xFFFFu;
            c = (c << 1) & 0xFFFFFFFu;
            if (--ct == 0) {{
                if (b == 0xFF) {{
                    out[olen++] = (uint8_t)b;
                    b = (c >> 20) & 0xFF; c &= 0xFFFFFu; ct = 7;
                }} else if (c < 0x8000000u) {{
                    if (b >= 0) out[olen++] = (uint8_t)b;
                    b = (c >> 19) & 0xFF; c &= 0x7FFFFu; ct = 8;
                }} else {{
                    if (b >= 0) b += 1;
                    if (b == 0xFF) {{
                        c &= 0x7FFFFFFu;
                        out[olen++] = (uint8_t)b;
                        b = (c >> 20) & 0xFF; c &= 0xFFFFFu; ct = 7;
                    }} else {{
                        if (b >= 0) out[olen++] = (uint8_t)b;
                        b = (c >> 19) & 0xFF; c &= 0x7FFFFu; ct = 8;
                    }}
                }}
            }}
        }} while (!(a & 0x8000u));
    }}
    *areg = a; *creg = c; *ctreg = ct; *breg = b;
    return olen;
}}

long mq_decode_run(int32_t *index, int32_t *mps,
                   uint32_t *areg, uint32_t *creg,
                   int32_t *ctreg, long *bpreg, int32_t *breg,
                   const uint8_t *data, long dlen,
                   const uint8_t *ctxs, long nsym,
                   uint8_t *out_bits)
{{
    uint32_t a = *areg, c = *creg;
    int32_t ct = *ctreg;
    long bp = *bpreg;
    int32_t b = *breg;
    for (long k = 0; k < nsym; k++) {{
        int cx = ctxs[k];
        int idx = index[cx];
        uint32_t qe = QE[idx];
        int d;
        a -= qe;
        if (((c >> 16) & 0xFFFFu) < qe) {{
            if (a < qe) {{
                d = mps[cx];
                index[cx] = NMPS[idx];
            }} else {{
                d = 1 - mps[cx];
                if (SWITCH_[idx]) mps[cx] = d;
                index[cx] = NLPS[idx];
            }}
            a = qe;
        }} else {{
            c -= qe << 16;
            if (a & 0x8000u) {{ out_bits[k] = (uint8_t)mps[cx]; continue; }}
            if (a < qe) {{
                d = 1 - mps[cx];
                if (SWITCH_[idx]) mps[cx] = d;
                index[cx] = NLPS[idx];
            }} else {{
                d = mps[cx];
                index[cx] = NMPS[idx];
            }}
        }}
        do {{
            if (ct == 0) {{
                if (b == 0xFF) {{
                    if (((bp + 1 < dlen) ? data[bp + 1] : 0xFFu) > 0x8Fu) {{
                        c += 0xFF00u; ct = 8;
                    }} else {{
                        bp += 1; b = data[bp];
                        c += ((uint32_t)b) << 9; ct = 7;
                    }}
                }} else {{
                    bp += 1;
                    b = (bp < dlen) ? data[bp] : 0xFF;
                    c += ((uint32_t)b) << 8; ct = 8;
                }}
            }}
            a = (a << 1) & 0xFFFFu;
            c = c << 1;
            ct -= 1;
        }} while (!(a & 0x8000u));
        out_bits[k] = (uint8_t)d;
    }}
    *areg = a; *creg = c; *ctreg = ct; *bpreg = bp; *breg = b;
    return nsym;
}}
"""


def _c_source() -> str:
    return _C_TEMPLATE.format(
        n=len(STATE_TABLE),
        qe=", ".join(f"0x{q:04X}" for q, _, _, _ in STATE_TABLE),
        nmps=", ".join(str(n) for _, n, _, _ in STATE_TABLE),
        nlps=", ".join(str(n) for _, _, n, _ in STATE_TABLE),
        switch=", ".join(str(s) for _, _, _, s in STATE_TABLE),
    )


def _build_library():
    """Compile (or load the cached) shared object; None on any failure."""
    src = _c_source()
    tag = hashlib.sha256(src.encode()).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-mq-native-{os.getuid()}"
    )
    so_path = os.path.join(cache_dir, f"mq_{tag}.so")
    if not os.path.exists(so_path):
        os.makedirs(cache_dir, mode=0o700, exist_ok=True)
        c_path = os.path.join(cache_dir, f"mq_{tag}_{os.getpid()}.c")
        tmp_so = so_path + f".{os.getpid()}.tmp"
        try:
            with open(c_path, "w") as fh:
                fh.write(src)
            subprocess.run(
                ["cc", "-O2", "-shared", "-fPIC", "-o", tmp_so, c_path],
                check=True,
                capture_output=True,
                timeout=60,
            )
            os.replace(tmp_so, so_path)  # atomic vs. concurrent builders
        except (OSError, subprocess.SubprocessError):
            return None
        finally:
            for path in (c_path, tmp_so):
                try:
                    os.unlink(path)
                except OSError:
                    pass
    try:
        lib = ctypes.CDLL(so_path)
    except OSError:
        return None
    fn = lib.mq_encode_run
    fn.restype = ctypes.c_long
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_int32),  # index
        ctypes.POINTER(ctypes.c_int32),  # mps
        ctypes.POINTER(ctypes.c_uint32),  # a
        ctypes.POINTER(ctypes.c_uint32),  # c
        ctypes.POINTER(ctypes.c_int32),  # ct
        ctypes.POINTER(ctypes.c_int32),  # b
        ctypes.c_char_p,  # bits
        ctypes.c_char_p,  # ctxs
        ctypes.c_long,  # nsym
        ctypes.POINTER(ctypes.c_uint8),  # out
    ]
    dfn = lib.mq_decode_run
    dfn.restype = ctypes.c_long
    dfn.argtypes = [
        ctypes.POINTER(ctypes.c_int32),  # index
        ctypes.POINTER(ctypes.c_int32),  # mps
        ctypes.POINTER(ctypes.c_uint32),  # a
        ctypes.POINTER(ctypes.c_uint32),  # c
        ctypes.POINTER(ctypes.c_int32),  # ct
        ctypes.POINTER(ctypes.c_long),  # bp
        ctypes.POINTER(ctypes.c_int32),  # b
        ctypes.c_char_p,  # data
        ctypes.c_long,  # dlen
        ctypes.c_char_p,  # ctxs
        ctypes.c_long,  # nsym
        ctypes.POINTER(ctypes.c_uint8),  # out_bits
    ]
    return fn, dfn


def _make_wrapper(fn):
    def native_encode_run(enc, bseq: bytes, cseq: bytes) -> None:
        """Drive the compiled loop with ``enc``'s state, then sync back."""
        ncx = len(enc._index)
        index = (ctypes.c_int32 * ncx)(*enc._index)
        mps = (ctypes.c_int32 * ncx)(*enc._mps)
        a = ctypes.c_uint32(enc._a)
        c = ctypes.c_uint32(enc._c)
        ct = ctypes.c_int32(enc._ct)
        b = ctypes.c_int32(-1 if enc._b is None else enc._b)
        n = len(bseq)
        # Worst case: every symbol renormalizes by the full 15 positions and
        # every 7 shifted bits emit a byte — 3n + slack is comfortably above.
        out = (ctypes.c_uint8 * (3 * n + 16))()
        olen = fn(index, mps, ctypes.byref(a), ctypes.byref(c),
                  ctypes.byref(ct), ctypes.byref(b),
                  bytes(bseq), bytes(cseq), n, out)
        enc._index[:] = index
        enc._mps[:] = mps
        enc._a = a.value
        enc._c = c.value
        enc._ct = ct.value
        enc._b = None if b.value < 0 else b.value
        if olen:
            enc._out += ctypes.string_at(out, olen)

    return native_encode_run


def _make_decode_wrapper(fn):
    def native_decode_run(dec, cseq: bytes) -> bytes:
        """Drive the compiled decode loop with ``dec``'s state, sync back."""
        ncx = len(dec._index)
        index = (ctypes.c_int32 * ncx)(*dec._index)
        mps = (ctypes.c_int32 * ncx)(*dec._mps)
        a = ctypes.c_uint32(dec._a)
        c = ctypes.c_uint32(dec._c)
        ct = ctypes.c_int32(dec._ct)
        bp = ctypes.c_long(dec._bp)
        b = ctypes.c_int32(dec._b)
        n = len(cseq)
        out = (ctypes.c_uint8 * n)()
        fn(index, mps, ctypes.byref(a), ctypes.byref(c),
           ctypes.byref(ct), ctypes.byref(bp), ctypes.byref(b),
           bytes(dec._data), len(dec._data), bytes(cseq), n, out)
        dec._index[:] = index
        dec._mps[:] = mps
        dec._a = a.value
        dec._c = c.value
        dec._ct = ct.value
        dec._bp = bp.value
        dec._b = b.value
        return ctypes.string_at(out, n)

    return native_decode_run


#: Callable ``(MQEncoder, bytes, bytes) -> None`` or None when unavailable.
native_encode_run = None

#: Callable ``(MQDecoder, bytes) -> bytes`` or None when unavailable.
native_decode_run = None

if os.environ.get("REPRO_MQ_NATIVE", "1") != "0":
    _fns = _build_library()
    if _fns is not None:
        native_encode_run = _make_wrapper(_fns[0])
        native_decode_run = _make_decode_wrapper(_fns[1])
