"""Typed error taxonomy for codestream parsing and decoding.

Decoding untrusted bytes must fail *predictably*: every malformed,
truncated, or adversarial codestream raises a :class:`CodestreamError`
subclass — never a bare ``IndexError``/``struct.error`` escaping from some
parsing layer, and never a ``MemoryError`` from allocating whatever a
corrupt SIZ header declares.  The service maps these onto structured HTTP
errors and the fuzz harness (:mod:`repro.verify.fuzz`) enforces the
contract over tens of thousands of mutated codestreams.

Taxonomy
--------
``CodestreamError``
    Base class (a ``ValueError``, so legacy ``except ValueError`` callers
    keep working).  Carries an optional byte ``offset`` for context.
``TruncatedCodestreamError``
    The stream ends before a marker, segment, or packet completes.
``MarkerError``
    A marker is missing, unknown, or appears out of order.
``HeaderFieldError``
    A marker segment parses but its fields are invalid or mutually
    inconsistent (zero dimensions, unsupported transform, QCD subband
    count not matching the geometry, ...).
``LimitExceededError``
    A declared quantity (image dimensions, components, decomposition
    levels) exceeds the :class:`DecodeLimits` cap — raised *before* any
    allocation sized by the untrusted value.
``PacketError``
    A Tier-2 packet header or body is malformed (tag-tree garbage,
    impossible pass counts, truncated block bodies, ...).
"""

from __future__ import annotations

from dataclasses import dataclass


class CodestreamError(ValueError):
    """Raised on malformed codestreams.

    ``offset`` (when known) is the byte position in the input at which the
    problem was detected; it is appended to the message for context.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        self.offset = offset
        if offset is not None:
            message = f"{message} (at byte offset {offset})"
        super().__init__(message)


class TruncatedCodestreamError(CodestreamError):
    """The codestream ends mid-marker, mid-segment, or mid-packet."""


class MarkerError(CodestreamError):
    """A marker is missing, unknown, or out of order."""


class HeaderFieldError(CodestreamError):
    """A marker segment carries invalid or inconsistent field values."""


class LimitExceededError(CodestreamError):
    """A declared size exceeds the decoder's :class:`DecodeLimits` caps."""


class PacketError(CodestreamError):
    """A Tier-2 packet header or body is malformed."""


@dataclass(frozen=True)
class DecodeLimits:
    """Caps applied to *declared* sizes before anything is allocated.

    A corrupt SIZ marker can declare a 4-billion-pixel image in 10 bytes;
    without caps the decoder would faithfully attempt a multi-GiB
    allocation (a denial of service, not a decode).  These limits bound
    every quantity that sizes an allocation or a loop.  The defaults
    comfortably cover the paper's 3072x3072x3 test image; the fuzz harness
    runs with much tighter limits so mutated headers fail fast.
    """

    #: Largest accepted width or height.
    max_dimension: int = 1 << 20
    #: Largest accepted ``width * height * components`` total.
    max_samples: int = 1 << 26
    #: Largest accepted component count (this reproduction encodes 1 or 3).
    max_components: int = 16
    #: Largest accepted DWT decomposition level count (matches params.py).
    max_levels: int = 32
    #: Largest accepted sample bit depth (the codec emits uint8/uint16).
    max_bit_depth: int = 16
    #: Largest accepted tile count (``ceil(w/XTsiz) * ceil(h/YTsiz)``) —
    #: bounds the per-tile bookkeeping allocated while parsing SOT segments.
    max_tiles: int = 65535


#: Default limits used by :func:`repro.jpeg2000.codestream.parse_codestream`
#: and :func:`repro.jpeg2000.decoder.decode` when none are passed.
DEFAULT_LIMITS = DecodeLimits()
