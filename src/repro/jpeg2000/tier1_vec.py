"""Vectorized EBCOT Tier-1 encoder backend (NumPy-batched context modelling).

Byte-identical to :func:`repro.jpeg2000.tier1.encode_codeblock_reference`
but orders of magnitude less Python-loop work.  The key observation is that
only the MQ coder is inherently serial — everything upstream of it is
per-pass data-parallel once intra-pass significance propagation is
expressed in closed form:

* A sample's neighbour state *at its scan time* is
  ``sig_pre[n] or (newly_significant[n] and scanpos[n] < scanpos[i])`` —
  the pre-pass state plus exactly the samples that became significant
  earlier in the same pass.  The ``scanpos`` comparisons are static per
  block geometry and cached.
* **Significance propagation (SPP)** codes a sample iff its context is
  non-zero at scan time, which both grows monotonically with the
  newly-significant set and feeds back into it — so the coded set is the
  least fixpoint of a vectorized map, reached in a handful of whole-array
  iterations (propagation only travels forward in scan order).
* **Magnitude refinement (MRP)** changes no significance state at all, so
  a single batched evaluation suffices.
* **Cleanup (CUP)** codes every not-yet-visited insignificant sample, so
  the newly-significant set is known in closed form (candidates whose bit
  is set) and run-length column structure is pure index arithmetic.

Each pass therefore reduces to NumPy array ops that emit a flat
``(bit, context)`` decision stream, consumed by one tight
:meth:`repro.jpeg2000.mq.MQEncoder.encode_run` loop (compiled to native
code when a C compiler is present).  This mirrors the paper's split of
Tier-1 into SIMD-friendly context modelling and the serial MQ coder on the
SPE (Section 3.2).

Distortion bookkeeping matters for byte-level parity of
:class:`CodeBlockResult`: per-sample terms are computed with the same
float64 expressions as the reference and summed in scan order (Python
left-to-right), so ``pass_dist`` matches bit for bit, not just
approximately.
"""

from __future__ import annotations

import numpy as np

from repro.jpeg2000 import tier1_geom
from repro.jpeg2000.mq import MQEncoder
from repro.jpeg2000.tier1 import (
    CTX_RUNLEN,
    CTX_UNIFORM,
    INITIAL_STATES,
    NUM_CONTEXTS,
    PASS_CLEAN,
    PASS_REF,
    PASS_SIG,
    CodeBlockResult,
    _validate_block,
)

#: Neighbour offsets in (dr, dc) form: W, E, N, S, NW, NE, SW, SE.
_OFFSETS = tier1_geom.NEIGHBOUR_OFFSETS

_SIGN_CTX = tier1_geom.SIGN_CTX
_SIGN_XOR = tier1_geom.SIGN_XOR

_sig_lut_array = tier1_geom.sig_lut_array


def _geometry(h: int, w: int):
    """Static scan geometry for an ``h x w`` block.

    Thin wrapper over the shared per-geometry cache
    (:func:`repro.jpeg2000.tier1_geom.geometry`); returns
    ``(order, earlier_self, earlier_top)`` as this module's passes expect.
    """
    geo = tier1_geom.geometry(h, w)
    return geo.order, geo.earlier_self, geo.earlier_top


def _pad(arr: np.ndarray) -> np.ndarray:
    out = np.zeros((arr.shape[0] + 2, arr.shape[1] + 2), dtype=arr.dtype)
    out[1:-1, 1:-1] = arr
    return out


def _nbr_views(padded: np.ndarray, h: int, w: int) -> list[np.ndarray]:
    return [padded[1 + dr:1 + dr + h, 1 + dc:1 + dc + w]
            for dr, dc in _OFFSETS]


def _context_grid(lut, eff):
    """Significance-context grid from the 8 effective-neighbour grids."""
    hc = eff[0].astype(np.int16) + eff[1]
    vc = eff[2].astype(np.int16) + eff[3]
    dc = eff[4].astype(np.int16) + eff[5] + eff[6] + eff[7]
    return lut[hc * 15 + vc * 5 + dc]


def _sign_grids(eff, signw_sh, sgn_u8):
    """(sign bit, sign context) grids evaluated at each sample's scan time.

    Valid wherever a sample becomes significant; garbage elsewhere (never
    gathered there).
    """
    hc = np.where(eff[0], signw_sh[0], 0) + np.where(eff[1], signw_sh[1], 0)
    vc = np.where(eff[2], signw_sh[2], 0) + np.where(eff[3], signw_sh[3], 0)
    np.clip(hc, -1, 1, out=hc)
    np.clip(vc, -1, 1, out=vc)
    sidx = ((hc + 1) * 3 + (vc + 1)).astype(np.intp)
    return sgn_u8 ^ _SIGN_XOR[sidx], _SIGN_CTX[sidx]


def _dist_become(magv: np.ndarray, p: int) -> np.ndarray:
    """Distortion reduction when samples become significant at plane p."""
    v = magv.astype(np.float64)
    rec = (((magv >> p) << p) + ((1 << p) >> 1)).astype(np.float64)
    e1 = v - rec
    return v * v - e1 * e1


def _dist_refine(magv: np.ndarray, p: int) -> np.ndarray:
    """Distortion reduction of a refinement at plane p."""
    v = magv.astype(np.float64)
    rec_prev = (((magv >> (p + 1)) << (p + 1)) + (1 << p)).astype(np.float64)
    rec = (((magv >> p) << p) + ((1 << p) >> 1)).astype(np.float64)
    e0 = v - rec_prev
    e1 = v - rec
    return e0 * e0 - e1 * e1


def _scan_sum(vals: np.ndarray) -> float:
    """Left-to-right float sum, matching the reference's accumulation."""
    return float(sum(vals.tolist()))


def encode_codeblock_vectorized(coeffs: np.ndarray, band: str) -> CodeBlockResult:
    """NumPy-batched Tier-1 encode; byte-identical to the reference coder."""
    arr = _validate_block(coeffs)
    h, w = arr.shape
    n = h * w
    signed = arr.astype(np.int64)
    mag = np.abs(signed)
    msbs = int(mag.max()).bit_length() if n else 0
    if msbs == 0:
        return CodeBlockResult(data=b"", num_passes=0, msbs=0)

    lut = _sig_lut_array(band)
    order, earlier_self, earlier_top = _geometry(h, w)
    sgn_u8 = (signed < 0).view(np.uint8)
    signw_sh = _nbr_views(_pad(np.where(signed < 0, -1, 1).astype(np.int8)),
                          h, w)[:4]
    mag_f = mag.ravel()

    sig = np.zeros((h, w), dtype=bool)
    visited = np.zeros((h, w), dtype=bool)
    refined = np.zeros((h, w), dtype=bool)

    mq = MQEncoder(NUM_CONTEXTS, INITIAL_STATES)
    result = CodeBlockResult(data=b"", num_passes=0, msbs=msbs)

    def end_pass(kind: str, nsym: int, dist: float) -> None:
        result.pass_types.append(kind)
        result.pass_lengths.append(mq.safe_length())
        result.pass_dist.append(dist)
        result.pass_symbols.append(nsym)

    def sig_prop_pass(p: int, bitp: np.ndarray) -> None:
        cand = ~sig
        sig_sh = _nbr_views(_pad(sig), h, w)
        newly = np.zeros((h, w), dtype=bool)
        # Least fixpoint of intra-pass propagation: significance travels
        # only forward in scan order, so iterating the whole-array map from
        # the empty set converges to the true execution's coded set.
        while True:
            new_sh = _nbr_views(_pad(newly), h, w)
            eff = [s | (nv & e)
                   for s, nv, e in zip(sig_sh, new_sh, earlier_self)]
            ctx = _context_grid(lut, eff)
            coded = cand & (ctx != 0)
            newly2 = coded & bitp
            if np.array_equal(newly2, newly):
                break
            newly = newly2

        coded_v = coded.ravel()[order]
        ci = order[coded_v]
        bits = bitp.ravel()[ci].view(np.uint8)
        cxs = ctx.ravel()[ci]
        nly = bits.view(bool)
        nsig = int(np.count_nonzero(nly))
        total = bits.size + nsig
        if total:
            out_b = np.empty(total, dtype=np.uint8)
            out_c = np.empty(total, dtype=np.uint8)
            pos = np.arange(bits.size, dtype=np.int64)
            if nsig:
                pos[1:] += np.cumsum(nly[:-1])
            out_b[pos] = bits
            out_c[pos] = cxs
            dist = 0.0
            if nsig:
                sbit, sctx = _sign_grids(eff, signw_sh, sgn_u8)
                ni = ci[nly]
                spos = pos[nly] + 1
                out_b[spos] = sbit.ravel()[ni]
                out_c[spos] = sctx.ravel()[ni]
                dist = _scan_sum(_dist_become(mag_f[ni], p))
            mq.encode_run(out_b, out_c)
        else:
            dist = 0.0
        np.logical_or(sig, newly, out=sig)
        visited[:] = coded
        end_pass(PASS_SIG, total, dist)

    def mag_ref_pass(p: int, bitp: np.ndarray) -> None:
        cand = sig & ~visited
        cv = cand.ravel()[order]
        ci = order[cv]
        if ci.size:
            sig_sh = _nbr_views(_pad(sig), h, w)
            anysig = sig_sh[0].copy()
            for s in sig_sh[1:]:
                anysig |= s
            ctx = np.where(refined, np.uint8(16),
                           np.where(anysig, np.uint8(15), np.uint8(14)))
            mq.encode_run(bitp.ravel()[ci].view(np.uint8), ctx.ravel()[ci])
            dist = _scan_sum(_dist_refine(mag_f[ci], p))
            np.logical_or(refined, cand, out=refined)
        else:
            dist = 0.0
        end_pass(PASS_REF, int(ci.size), dist)

    def cleanup_pass(p: int, bitp: np.ndarray) -> None:
        cand = ~sig & ~visited
        newly = cand & bitp
        sig_sh = _nbr_views(_pad(sig), h, w)
        new_sh = _nbr_views(_pad(newly), h, w)
        eff = [s | (nv & e)
               for s, nv, e in zip(sig_sh, new_sh, earlier_self)]
        ctx = _context_grid(lut, eff)

        normal = cand.copy()
        rl_zero_top = np.zeros((h, w), dtype=bool)
        rl_esc_top = np.zeros((h, w), dtype=bool)
        is_f = np.zeros((h, w), dtype=bool)
        tail = np.zeros((h, w), dtype=bool)
        fhi = np.zeros((h, w), dtype=np.uint8)
        flo = np.zeros((h, w), dtype=np.uint8)

        nfull = h // 4
        if nfull:
            h4 = nfull * 4
            eff_t = [s | (nv & e)
                     for s, nv, e in zip(sig_sh, new_sh, earlier_top)]
            ctx_t = _context_grid(lut, eff_t)
            c4 = cand[:h4].reshape(nfull, 4, w)
            b4 = bitp[:h4].reshape(nfull, 4, w)
            z4 = ctx_t[:h4].reshape(nfull, 4, w) == 0
            # Run-length mode: whole stripe column insignificant, unvisited,
            # and all-zero contexts at the column's scan start.
            rl = c4.all(axis=1) & z4.all(axis=1)            # (nfull, w)
            has1 = b4.any(axis=1)
            f = np.argmax(b4, axis=1)                        # first 1 bit
            rl_z = rl & ~has1
            rl_e = rl & has1
            karr = np.arange(4, dtype=np.int64)[None, :, None]
            in_rl = np.broadcast_to(rl[:, None, :], (nfull, 4, w))
            normal[:h4] &= ~in_rl.reshape(h4, w)
            top = karr == 0
            rl_zero_top[:h4] = (rl_z[:, None, :] & top).reshape(h4, w)
            rl_esc_top[:h4] = (rl_e[:, None, :] & top).reshape(h4, w)
            is_f[:h4] = (rl_e[:, None, :] & (karr == f[:, None, :])
                         ).reshape(h4, w)
            tail[:h4] = (rl_e[:, None, :] & (karr > f[:, None, :])
                         ).reshape(h4, w)
            toprows = np.arange(nfull) * 4
            fhi[toprows, :] = ((f >> 1) & 1).astype(np.uint8)
            flo[toprows, :] = (f & 1).astype(np.uint8)

        cnt = np.zeros((h, w), dtype=np.int64)
        cnt[normal] = 1 + bitp[normal]
        cnt[rl_zero_top] = 1
        cnt[rl_esc_top] += 3
        cnt[is_f] += 1
        cnt[tail] += 1 + bitp[tail]

        cnt_v = cnt.ravel()[order]
        total = int(cnt_v.sum())
        if total == 0:
            end_pass(PASS_CLEAN, 0, 0.0)
            return
        offs = np.empty(n, dtype=np.int64)
        offs[order] = np.concatenate(
            ([0], np.cumsum(cnt_v[:-1]))
        )
        out_b = np.empty(total, dtype=np.uint8)
        out_c = np.empty(total, dtype=np.uint8)
        bitp_f = bitp.ravel().view(np.uint8)
        ctx_f = ctx.ravel()
        newly_f = newly.ravel()
        sbit, sctx = _sign_grids(eff, signw_sh, sgn_u8)
        sbit_f = sbit.ravel()
        sctx_f = sctx.ravel()

        m = normal.ravel()
        pos = offs[m]
        out_b[pos] = bitp_f[m]
        out_c[pos] = ctx_f[m]
        mn = m & newly_f
        out_b[offs[mn] + 1] = sbit_f[mn]
        out_c[offs[mn] + 1] = sctx_f[mn]

        m = rl_zero_top.ravel()
        out_b[offs[m]] = 0
        out_c[offs[m]] = CTX_RUNLEN

        m = rl_esc_top.ravel()
        o = offs[m]
        out_b[o] = 1
        out_c[o] = CTX_RUNLEN
        out_b[o + 1] = fhi.ravel()[m]
        out_c[o + 1] = CTX_UNIFORM
        out_b[o + 2] = flo.ravel()[m]
        out_c[o + 2] = CTX_UNIFORM

        m = is_f.ravel()
        spos = offs[m] + np.where(rl_esc_top.ravel()[m], 3, 0)
        out_b[spos] = sbit_f[m]
        out_c[spos] = sctx_f[m]

        m = tail.ravel()
        pos = offs[m]
        out_b[pos] = bitp_f[m]
        out_c[pos] = ctx_f[m]
        mt = m & newly_f
        out_b[offs[mt] + 1] = sbit_f[mt]
        out_c[offs[mt] + 1] = sctx_f[mt]

        nv = newly_f[order]
        ni = order[nv]
        dist = _scan_sum(_dist_become(mag_f[ni], p)) if ni.size else 0.0
        mq.encode_run(out_b, out_c)
        np.logical_or(sig, newly, out=sig)
        end_pass(PASS_CLEAN, total, dist)

    for p in range(msbs - 1, -1, -1):
        bitp = ((mag >> p) & 1).astype(bool)
        if p != msbs - 1:
            sig_prop_pass(p, bitp)
            mag_ref_pass(p, bitp)
        cleanup_pass(p, bitp)

    data = mq.flush()
    result.data = data
    result.num_passes = len(result.pass_types)
    result.pass_lengths = [min(pl, len(data)) for pl in result.pass_lengths]
    if result.pass_lengths:
        result.pass_lengths[-1] = len(data)
    return result
