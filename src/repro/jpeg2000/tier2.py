"""Tier-2: packet header coding and packet assembly (T.800 B.9-B.10).

One packet carries the contributions of every code block of one (component,
resolution) pair — this reproduction uses a single tile, a single quality
layer, and one precinct spanning each resolution, matching the Jasper
defaults the paper encodes with.  Headers code per-block inclusion, missing
bit planes (both via tag trees), coding-pass counts, and segment lengths
into a bit-stuffed stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.jpeg2000.errors import PacketError
from repro.jpeg2000.tagtree import TagTreeDecoder, TagTreeEncoder
from repro.utils.bitio import BitReader, BitWriter

#: Largest missing-bit-plane count a packet header may signal.  The encoder
#: never exceeds ``exponent + guard_bits - 1 <= 37``; the decode-side cap
#: bounds the tag-tree threshold climb on adversarial headers.
MAX_ZERO_BITPLANES = 255

#: Largest Lblock a packet header may grow to.  Lblock only ever needs to
#: reach ``bit_length(length) - floor_log2(passes)``; a 32-bit length is
#: far beyond any real packet, so higher values mean a corrupt header.
MAX_LBLOCK = 32


@dataclass
class BlockContribution:
    """What one code block contributes to its packet.

    ``length`` may be given without ``data``: the rate-control loop prices
    packets from lengths alone (:func:`packet_length`) and only the final
    assembly materializes bytes.  When both are present they must agree.
    """

    grid_row: int
    grid_col: int
    included: bool
    zero_bitplanes: int = 0   # Mb - msbs
    num_passes: int = 0
    data: bytes = b""
    length: int | None = None

    def __post_init__(self) -> None:
        if self.length is None:
            self.length = len(self.data)


@dataclass
class PacketBand:
    """All code blocks of one subband inside a packet, in raster order."""

    grid_rows: int
    grid_cols: int
    blocks: list[BlockContribution]


_LBLOCK_INIT = 3


def _write_num_passes(bw: BitWriter, n: int) -> None:
    """Coding-pass count codeword (T.800 Table B.4)."""
    if n < 1 or n > 164:
        raise ValueError(f"pass count out of range: {n}")
    if n == 1:
        bw.write_bit(0)
    elif n == 2:
        bw.write_bits(0b10, 2)
    elif n <= 5:
        bw.write_bits(0b11, 2)
        bw.write_bits(n - 3, 2)
    elif n <= 36:
        bw.write_bits(0b1111, 4)
        bw.write_bits(n - 6, 5)
    else:
        bw.write_bits(0b111111111, 9)
        bw.write_bits(n - 37, 7)


def _read_num_passes(br: BitReader) -> int:
    if not br.read_bit():
        return 1
    if not br.read_bit():
        return 2
    v = br.read_bits(2)
    if v < 3:
        return 3 + v
    v = br.read_bits(5)
    if v < 31:
        return 6 + v
    return 37 + br.read_bits(7)


def _floor_log2(n: int) -> int:
    if n < 1:
        raise ValueError(f"floor_log2 needs n >= 1, got {n}")
    return n.bit_length() - 1


def encode_packet_header(bands: list[PacketBand]) -> bytes:
    """Code one packet's stuffed header from inclusion/passes/lengths alone.

    Needs only each contribution's ``length``, never its ``data`` — this is
    what lets :func:`packet_length` price a packet without materializing
    body bytes.
    """
    bw = BitWriter(stuffing=True)
    any_data = any(b.included for band in bands for b in band.blocks)
    if not any_data:
        bw.write_bit(0)
        bw.terminate_stuffed()
        return bw.getvalue()
    bw.write_bit(1)
    for band in bands:
        if not band.blocks:
            continue
        incl_tree = TagTreeEncoder(band.grid_rows, band.grid_cols)
        zbp_tree = TagTreeEncoder(band.grid_rows, band.grid_cols)
        incl_vals = np.zeros((band.grid_rows, band.grid_cols), dtype=np.int64)
        zbp_vals = np.zeros((band.grid_rows, band.grid_cols), dtype=np.int64)
        for blk in band.blocks:
            incl_vals[blk.grid_row, blk.grid_col] = 0 if blk.included else 1
            zbp_vals[blk.grid_row, blk.grid_col] = (
                blk.zero_bitplanes if blk.included else 0
            )
        incl_tree.set_values(incl_vals)
        zbp_tree.set_values(zbp_vals)
        for blk in band.blocks:
            incl_tree.encode(blk.grid_row, blk.grid_col, 1, bw)
            if not blk.included:
                continue
            # First inclusion: signal missing bit planes; threshold value+1
            # forces the tag tree to pin the leaf exactly.
            zbp_tree.encode(blk.grid_row, blk.grid_col, blk.zero_bitplanes + 1, bw)
            _write_num_passes(bw, blk.num_passes)
            lblock = _LBLOCK_INIT
            bits_for_len = blk.length.bit_length()
            base = _floor_log2(blk.num_passes)
            k = max(0, bits_for_len - base - lblock)
            for _ in range(k):
                bw.write_bit(1)
            bw.write_bit(0)
            lblock += k
            bw.write_bits(blk.length, lblock + base)
    bw.terminate_stuffed()
    return bw.getvalue()


def packet_length(bands: list[PacketBand]) -> int:
    """Exact byte length of :func:`encode_packet` without building bytes.

    The header is still bit-coded (tag trees, pass-count codewords, length
    fields, and the 0xFF bit-stuffing rule make its size value-dependent),
    but the body — the dominant cost — is priced as a sum of lengths.
    """
    total = len(encode_packet_header(bands))
    for band in bands:
        for blk in band.blocks:
            if blk.included:
                total += blk.length
    return total


def encode_packet(bands: list[PacketBand]) -> bytes:
    """Build one packet: stuffed header followed by the code block bodies."""
    header = encode_packet_header(bands)
    body = bytearray()
    for band in bands:
        for blk in band.blocks:
            if not blk.included:
                continue
            if len(blk.data) != blk.length:
                raise ValueError(
                    f"block ({blk.grid_row}, {blk.grid_col}) carries "
                    f"{len(blk.data)} body bytes but signals {blk.length}"
                )
            body.extend(blk.data)
    return header + bytes(body)


def precinct_cells(
    codeblock_size: int, precinct_size: int | None, res: int
) -> int | None:
    """Code-block cells per precinct edge in one subband at resolution ``res``.

    Precincts are defined on the resolution-level grid; subbands at
    resolutions above 0 have coordinates halved relative to it, so the
    effective precinct edge in band coordinates halves once — floored at a
    single code block.  ``None`` means maximal precincts (whole subband).
    """
    if precinct_size is None:
        return None
    eff = precinct_size if res == 0 else max(1, precinct_size // 2)
    return max(1, eff // codeblock_size)


def precinct_counts(
    pcb: int | None, band_grids: list[tuple[int, int]]
) -> tuple[int, int]:
    """Precinct grid ``(rows, cols)`` covering the largest band grid."""
    if pcb is None:
        return 1, 1
    max_rows = max((r for r, _ in band_grids), default=1)
    max_cols = max((c for _, c in band_grids), default=1)
    return (
        max(1, (max_rows + pcb - 1) // pcb),
        max(1, (max_cols + pcb - 1) // pcb),
    )


def precinct_band_window(
    grid_rows: int, grid_cols: int, pcb: int | None, pcols: int, p: int
) -> tuple[tuple[int, int, int, int], tuple[int, int]]:
    """One precinct's window into a band's code-block grid.

    Returns ``((r_lo, r_hi, c_lo, c_hi), (local_rows, local_cols))`` where
    the half-open row/col ranges select this precinct's blocks and the
    local dims give the packet's per-band grid.  With ``pcb=None`` the
    single precinct covers the whole band.
    """
    if pcb is None:
        return (0, grid_rows, 0, grid_cols), (grid_rows, grid_cols)
    pr, pc = p // pcols, p % pcols
    r_lo, c_lo = pr * pcb, pc * pcb
    r_hi = min(grid_rows, r_lo + pcb)
    c_hi = min(grid_cols, c_lo + pcb)
    lr = max(0, r_hi - r_lo)
    lc = max(0, c_hi - c_lo)
    return (r_lo, r_hi, c_lo, c_hi), (lr, lc)


def iter_packets(
    levels: int, ncomp: int, nprec_by_res: list[int], progression: str
):
    """Yield ``(res, comp, precinct)`` in codestream packet order.

    ``nprec_by_res[res]`` is the precinct count at each resolution.  With a
    single quality layer the supported orders reduce to:

    - ``LRCP``: resolution -> component -> precinct (the legacy order —
      with one precinct this is exactly the historical ``res, comp`` loop);
    - ``RPCL``: resolution -> precinct -> component;
    - ``PCRL``: precinct position -> component -> resolution.
    """
    nres = levels + 1
    if progression == "LRCP":
        for res in range(nres):
            for ci in range(ncomp):
                for p in range(nprec_by_res[res]):
                    yield res, ci, p
    elif progression == "RPCL":
        for res in range(nres):
            for p in range(nprec_by_res[res]):
                for ci in range(ncomp):
                    yield res, ci, p
    elif progression == "PCRL":
        for p in range(max(nprec_by_res, default=1)):
            for ci in range(ncomp):
                for res in range(nres):
                    if p < nprec_by_res[res]:
                        yield res, ci, p
    else:
        raise ValueError(f"unknown progression order {progression!r}")


@dataclass
class ParsedBlock:
    """Decoded packet-header record for one code block."""

    grid_row: int
    grid_col: int
    included: bool
    zero_bitplanes: int = 0
    num_passes: int = 0
    length: int = 0
    data: bytes = b""


def parse_packet(
    data: bytes, offset: int, band_grids: list[tuple[int, int, int]]
) -> tuple[list[list[ParsedBlock]], int]:
    """Parse one packet starting at ``data[offset]``.

    ``band_grids`` holds ``(grid_rows, grid_cols, num_blocks)`` per subband
    in packet order.  Returns the per-band parsed blocks and the offset just
    past the packet.

    Malformed input — a header that runs past the end of ``data``,
    impossible tag-tree values, or block bodies the stream cannot hold —
    raises :class:`repro.jpeg2000.errors.PacketError` with the packet's
    byte offset; no other exception type escapes this parser.
    """
    if offset > len(data):
        raise PacketError("packet starts past the end of the stream",
                          offset=offset)
    try:
        return _parse_packet_checked(data, offset, band_grids)
    except PacketError:
        raise
    except (EOFError, ValueError) as exc:
        # BitReader exhaustion and tag-tree cap violations surface here.
        raise PacketError(f"malformed packet header: {exc}",
                          offset=offset) from exc


def _parse_packet_checked(
    data: bytes, offset: int, band_grids: list[tuple[int, int, int]]
) -> tuple[list[list[ParsedBlock]], int]:
    br = BitReader(data[offset:], stuffing=True)
    per_band: list[list[ParsedBlock]] = []
    if not br.read_bit():
        br.finish_stuffed()
        for rows, cols, nblocks in band_grids:
            per_band.append(
                [ParsedBlock(i // max(cols, 1), i % max(cols, 1), False)
                 for i in range(nblocks)]
            )
        return per_band, offset + br.byte_position
    header_blocks: list[list[ParsedBlock]] = []
    for rows, cols, nblocks in band_grids:
        parsed: list[ParsedBlock] = []
        if nblocks:
            if nblocks > rows * cols:
                raise PacketError(
                    f"band declares {nblocks} blocks for a {rows}x{cols} grid",
                    offset=offset,
                )
            incl_tree = TagTreeDecoder(rows, cols)
            zbp_tree = TagTreeDecoder(rows, cols)
            for i in range(nblocks):
                gr, gc = i // cols, i % cols
                included = incl_tree.decode(gr, gc, 1, br)
                blk = ParsedBlock(gr, gc, included)
                if included:
                    blk.zero_bitplanes = zbp_tree.decode_value(
                        gr, gc, br, MAX_ZERO_BITPLANES
                    )
                    blk.num_passes = _read_num_passes(br)
                    lblock = _LBLOCK_INIT
                    while br.read_bit():
                        lblock += 1
                        if lblock > MAX_LBLOCK:
                            raise PacketError(
                                f"packet header grows Lblock past {MAX_LBLOCK}",
                                offset=offset,
                            )
                    nbits = lblock + _floor_log2(blk.num_passes)
                    blk.length = br.read_bits(nbits)
                parsed.append(blk)
        header_blocks.append(parsed)
    br.finish_stuffed()
    pos = offset + br.byte_position
    for parsed in header_blocks:
        for blk in parsed:
            if blk.included:
                ln = blk.length
                if pos + ln > len(data):
                    raise PacketError(
                        f"packet body of {ln} bytes overruns the stream",
                        offset=pos,
                    )
                blk.data = data[pos : pos + ln]
                pos += ln
    return header_blocks, pos
