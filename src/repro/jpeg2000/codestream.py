"""JPEG2000 Part-1 codestream markers (T.800 Annex A).

Writes and parses the marker segments a Part-1 codestream needs: SOC,
SIZ, COD, QCD, TLM, SOT, SOD, EOC.  The parsed representation is a
:class:`CodestreamInfo` from which the decoder reconstructs every coding
parameter.

Single-tile codestreams (the default) are laid out exactly as previous
versions wrote them — main header, one SOT..SOD tile-part, EOC — so the
byte-identity gates keep holding.  When ``CodestreamInfo.tiles`` is set,
the image is partitioned on the SIZ tile grid (``XTsiz``/``YTsiz``) and
each tile is emitted as its own tile-part, preceded by a TLM marker in
the main header so readers can seek to any tile without scanning.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.jpeg2000.errors import (
    DEFAULT_LIMITS,
    CodestreamError,
    DecodeLimits,
    HeaderFieldError,
    LimitExceededError,
    MarkerError,
    TruncatedCodestreamError,
)

__all__ = [
    "CodestreamError",
    "CodestreamInfo",
    "DecodeLimits",
    "PROGRESSIONS",
    "SubbandQuantField",
    "parse_codestream",
    "tile_grid",
    "tlm_overhead",
    "write_codestream",
    "write_main_header",
]

MARKER_SOC = 0xFF4F
MARKER_SIZ = 0xFF51
MARKER_COD = 0xFF52
MARKER_TLM = 0xFF55
MARKER_QCD = 0xFF5C
MARKER_SOT = 0xFF90
MARKER_SOD = 0xFF93
MARKER_EOC = 0xFFD9

_QUANT_NONE = 0      # Sqcd style: reversible, exponents only
_QUANT_EXPOUNDED = 2  # Sqcd style: scalar expounded, exponent+mantissa

#: Progression order name -> COD SGcod progression value (T.800 Table A.16).
PROGRESSIONS = {"LRCP": 0, "RPCL": 2, "PCRL": 3}
_PROG_NAMES = {v: k for k, v in PROGRESSIONS.items()}

#: TLM entries per segment at ST=2/SP=1 (6 bytes each, 65535-byte Ltlm cap).
_TLM_CHUNK = (65535 - 2 - 2) // 6


@dataclass
class SubbandQuantField:
    """(exponent, mantissa) signalled for one subband, in QCD order."""

    exponent: int
    mantissa: int


@dataclass
class CodestreamInfo:
    """Everything the main header conveys."""

    width: int
    height: int
    num_components: int
    bit_depth: int
    signed: bool
    levels: int
    codeblock_size: int
    reversible: bool
    use_mct: bool
    num_layers: int
    guard_bits: int
    quant_fields: list[SubbandQuantField] = field(default_factory=list)
    tile_data: bytes = b""
    #: SIZ tile grid; ``None`` means one tile covering the image (legacy).
    tile_width: int | None = None
    tile_height: int | None = None
    #: COD progression order name (``PROGRESSIONS`` key).
    progression: str = "LRCP"
    #: Precinct edge at full resolution, or ``None`` for maximal precincts.
    precinct_size: int | None = None
    #: Per-tile bodies in raster order; ``None`` on the single-tile path.
    tiles: list[bytes] | None = None
    #: Emit a TLM tile-part index in the main header (multi-tile writes).
    write_tlm: bool = True
    #: Parser-filled: Ptlm lengths from TLM, SOT marker byte offsets.
    tlm_lengths: list[int] = field(default_factory=list)
    tile_part_offsets: list[int] = field(default_factory=list)

    def tile_grid(self) -> list[tuple[int, int, int, int]]:
        """Tile rectangles ``(row0, col0, height, width)`` in raster order."""
        return tile_grid(self.width, self.height, self.tile_width, self.tile_height)

    @property
    def num_tiles(self) -> int:
        tw = self.tile_width or self.width
        th = self.tile_height or self.height
        return ((self.width + tw - 1) // tw) * ((self.height + th - 1) // th)


def tile_grid(
    width: int, height: int, tile_width: int | None, tile_height: int | None
) -> list[tuple[int, int, int, int]]:
    """Raster-order tile rectangles ``(row0, col0, height, width)``."""
    tw = tile_width or width
    th = tile_height or height
    grid: list[tuple[int, int, int, int]] = []
    for row0 in range(0, height, th):
        for col0 in range(0, width, tw):
            grid.append(
                (row0, col0, min(th, height - row0), min(tw, width - col0))
            )
    return grid


def _marker(code: int, payload: bytes = b"") -> bytes:
    if payload:
        return struct.pack(">HH", code, len(payload) + 2) + payload
    return struct.pack(">H", code)


def tlm_overhead(ntiles: int) -> int:
    """Exact byte cost of the TLM segment(s) indexing ``ntiles`` tile-parts."""
    nseg = (ntiles + _TLM_CHUNK - 1) // _TLM_CHUNK
    return nseg * (2 + 2 + 2) + ntiles * 6  # marker + Ltlm + Ztlm/Stlm + entries


def _write_tlm(psots: list[int]) -> bytes:
    """TLM segments: Ztlm, Stlm=0x60 (ST=2, SP=1), (Ttlm:u16, Ptlm:u32)*."""
    out = bytearray()
    for z in range((len(psots) + _TLM_CHUNK - 1) // _TLM_CHUNK):
        chunk = psots[z * _TLM_CHUNK : (z + 1) * _TLM_CHUNK]
        payload = bytearray(struct.pack(">BB", z, 0x60))
        for i, psot in enumerate(chunk):
            payload += struct.pack(">HI", z * _TLM_CHUNK + i, psot)
        out += _marker(MARKER_TLM, bytes(payload))
    return bytes(out)


def write_main_header(info: CodestreamInfo) -> bytes:
    """Serialize SOC + SIZ + COD + QCD (plus TLM for multi-tile streams)."""
    out = bytearray(_marker(MARKER_SOC))

    ssiz = (info.bit_depth - 1) | (0x80 if info.signed else 0)
    siz = struct.pack(
        ">HIIIIIIIIH",
        0,  # Rsiz: baseline Part-1
        info.width, info.height, 0, 0,
        info.tile_width or info.width, info.tile_height or info.height, 0, 0,
        info.num_components,
    )
    siz += b"".join(struct.pack(">BBB", ssiz, 1, 1) for _ in range(info.num_components))
    out += _marker(MARKER_SIZ, siz)

    cb_exp = info.codeblock_size.bit_length() - 1
    scod = 1 if info.precinct_size is not None else 0
    cod = struct.pack(
        ">BBHBBBBBB",
        scod,                   # Scod: bit 0 = precincts signalled
        PROGRESSIONS[info.progression],
        info.num_layers,
        1 if info.use_mct else 0,
        info.levels,
        cb_exp - 2,             # code block width exponent - 2
        cb_exp - 2,             # code block height exponent - 2
        0,                      # code block style: all defaults
        1 if info.reversible else 0,
    )
    if info.precinct_size is not None:
        pp = info.precinct_size.bit_length() - 1
        cod += bytes([(pp << 4) | pp]) * (info.levels + 1)
    out += _marker(MARKER_COD, cod)

    style = _QUANT_NONE if info.reversible else _QUANT_EXPOUNDED
    sqcd = style | (info.guard_bits << 5)
    qcd = bytes([sqcd])
    for f in info.quant_fields:
        if info.reversible:
            qcd += bytes([f.exponent << 3])
        else:
            qcd += struct.pack(">H", (f.exponent << 11) | f.mantissa)
    out += _marker(MARKER_QCD, qcd)

    if info.tiles is not None and len(info.tiles) > 1 and info.write_tlm:
        out += _write_tlm([12 + 2 + len(body) for body in info.tiles])
    return bytes(out)


def write_codestream(info: CodestreamInfo) -> bytes:
    """Full codestream: main header, tile-part(s), EOC."""
    header = write_main_header(info)
    if info.tiles is None or len(info.tiles) == 1:
        body = info.tile_data if info.tiles is None else info.tiles[0]
        psot = 12 + 2 + len(body)  # SOT segment + SOD + data
        sot = struct.pack(">HIBB", 0, psot, 0, 1)
        return (
            header
            + _marker(MARKER_SOT, sot)
            + _marker(MARKER_SOD)
            + body
            + _marker(MARKER_EOC)
        )
    out = bytearray(header)
    for idx, body in enumerate(info.tiles):
        psot = 12 + 2 + len(body)
        out += _marker(MARKER_SOT, struct.pack(">HIBB", idx, psot, 0, 1))
        out += _marker(MARKER_SOD)
        out += body
    out += _marker(MARKER_EOC)
    return bytes(out)


def parse_codestream(
    data: bytes, limits: DecodeLimits | None = None
) -> CodestreamInfo:
    """Parse a codestream produced by :func:`write_codestream`.

    Every field that later sizes an allocation or a loop is validated
    against ``limits`` *here*, before the decoder touches it; malformed
    input raises a :class:`CodestreamError` subclass carrying the byte
    offset at which the problem was detected.
    """
    if limits is None:
        limits = DEFAULT_LIMITS
    pos = 0

    def read_marker() -> int:
        nonlocal pos
        if pos + 2 > len(data):
            raise TruncatedCodestreamError(
                "truncated codestream: no marker", offset=pos
            )
        (code,) = struct.unpack_from(">H", data, pos)
        if code >> 8 != 0xFF:
            raise MarkerError(f"invalid marker 0x{code:04X}", offset=pos)
        pos += 2
        return code

    def read_segment() -> tuple[bytes, int]:
        """Read one marker-segment payload; returns (payload, its offset)."""
        nonlocal pos
        if pos + 2 > len(data):
            raise TruncatedCodestreamError("truncated marker segment", offset=pos)
        (length,) = struct.unpack_from(">H", data, pos)
        if length < 2:
            raise HeaderFieldError(
                f"marker segment length {length} smaller than its own "
                "length field", offset=pos,
            )
        if pos + length > len(data):
            raise TruncatedCodestreamError(
                f"marker segment of {length} bytes overruns codestream",
                offset=pos,
            )
        payload = data[pos + 2 : pos + length]
        seg_offset = pos + 2
        pos += length
        return payload, seg_offset

    if read_marker() != MARKER_SOC:
        raise MarkerError("missing SOC marker", offset=0)

    info: CodestreamInfo | None = None
    cod_seen = qcd_seen = False
    reversible = True
    quant_fields: list[SubbandQuantField] = []
    guard_bits = 0
    ntiles = 1
    tile_parts: dict[int, bytearray] = {}
    part_lengths: list[int] = []
    tlm_lengths: list[int] = []
    tile_part_offsets: list[int] = []

    while True:
        marker_offset = pos
        code = read_marker()
        if code == MARKER_SIZ:
            seg, off = read_segment()
            if info is not None:
                raise MarkerError("duplicate SIZ marker", offset=marker_offset)
            if len(seg) < 38:
                raise TruncatedCodestreamError(
                    f"SIZ segment needs >= 38 bytes, got {len(seg)}", offset=off
                )
            (_rsiz, w, h, xo, yo, tw, th, txo, tyo, ncomp) = struct.unpack_from(
                ">HIIIIIIIIH", seg, 0
            )
            if ncomp < 1 or ncomp > limits.max_components:
                raise (
                    LimitExceededError if ncomp > limits.max_components
                    else HeaderFieldError
                )(f"component count {ncomp} outside [1, {limits.max_components}]",
                  offset=off)
            if len(seg) < 36 + 3 * ncomp:
                raise TruncatedCodestreamError(
                    f"SIZ segment truncated: {ncomp} components need "
                    f"{36 + 3 * ncomp} bytes, got {len(seg)}", offset=off,
                )
            if w < 1 or h < 1:
                raise HeaderFieldError(
                    f"image dimensions must be positive, got {w}x{h}", offset=off
                )
            if xo or yo:
                raise HeaderFieldError(
                    f"nonzero image offset ({xo}, {yo}) unsupported", offset=off
                )
            if w > limits.max_dimension or h > limits.max_dimension:
                raise LimitExceededError(
                    f"declared dimensions {w}x{h} exceed the "
                    f"{limits.max_dimension} cap", offset=off,
                )
            if w * h * ncomp > limits.max_samples:
                raise LimitExceededError(
                    f"declared size {w}x{h}x{ncomp} exceeds the "
                    f"{limits.max_samples}-sample cap", offset=off,
                )
            if tw < 1 or th < 1:
                raise HeaderFieldError(
                    f"tile dimensions must be positive, got {tw}x{th}",
                    offset=off,
                )
            if txo or tyo:
                raise HeaderFieldError(
                    f"nonzero tile offset ({txo}, {tyo}) unsupported", offset=off
                )
            ntiles = ((w + tw - 1) // tw) * ((h + th - 1) // th)
            if ntiles > limits.max_tiles:
                raise LimitExceededError(
                    f"declared tile grid has {ntiles} tiles, more than the "
                    f"{limits.max_tiles} cap", offset=off,
                )
            ssiz, xr, yr = struct.unpack_from(">BBB", seg, 36)
            for c in range(1, ncomp):
                if struct.unpack_from(">BBB", seg, 36 + 3 * c) != (ssiz, xr, yr):
                    raise HeaderFieldError(
                        "per-component SIZ fields must match component 0",
                        offset=off,
                    )
            if (xr, yr) != (1, 1):
                raise HeaderFieldError(
                    f"component subsampling {xr}x{yr} unsupported", offset=off
                )
            bit_depth = (ssiz & 0x7F) + 1
            if bit_depth > limits.max_bit_depth:
                raise LimitExceededError(
                    f"bit depth {bit_depth} exceeds the "
                    f"{limits.max_bit_depth}-bit cap", offset=off,
                )
            info = CodestreamInfo(
                width=w, height=h, num_components=ncomp,
                bit_depth=bit_depth, signed=bool(ssiz & 0x80),
                levels=0, codeblock_size=64, reversible=True,
                use_mct=False, num_layers=1, guard_bits=0,
                tile_width=None if (tw >= w and th >= h) else tw,
                tile_height=None if (tw >= w and th >= h) else th,
            )
        elif code == MARKER_COD:
            seg, off = read_segment()
            if info is None:
                raise MarkerError("COD before SIZ", offset=marker_offset)
            if len(seg) < 10:
                raise TruncatedCodestreamError(
                    f"COD segment needs >= 10 bytes, got {len(seg)}", offset=off
                )
            (scod, prog, layers, mct, levels, cbw, cbh, style, transform) = (
                struct.unpack_from(">BBHBBBBBB", seg, 0)
            )
            if scod not in (0, 1) or style != 0:
                raise HeaderFieldError(
                    f"unsupported COD options (Scod={scod}, style={style}); "
                    "this codec writes default style with optional precincts",
                    offset=off,
                )
            if prog not in _PROG_NAMES:
                raise HeaderFieldError(
                    f"unsupported progression order {prog}; this codec "
                    "writes LRCP, RPCL, or PCRL", offset=off,
                )
            if layers != 1:
                raise HeaderFieldError(
                    f"unsupported layer count {layers}; this codec writes a "
                    "single quality layer", offset=off,
                )
            if levels > limits.max_levels:
                raise LimitExceededError(
                    f"declared {levels} DWT levels exceed the "
                    f"{limits.max_levels} cap", offset=off,
                )
            if cbw != cbh or not (0 <= cbw <= 4):
                raise HeaderFieldError(
                    f"code block exponents ({cbw}, {cbh}) outside the square "
                    "4..64 range this codec writes", offset=off,
                )
            if transform not in (0, 1):
                raise HeaderFieldError(
                    f"unknown wavelet transform {transform}", offset=off
                )
            precinct_size: int | None = None
            if scod & 1:
                if len(seg) < 10 + levels + 1:
                    raise TruncatedCodestreamError(
                        f"COD precinct bytes truncated: {levels + 1} needed, "
                        f"got {len(seg) - 10}", offset=off,
                    )
                pps = seg[10 : 10 + levels + 1]
                ppx, ppy = pps[0] & 0x0F, pps[0] >> 4
                if ppx != ppy or any(b != pps[0] for b in pps):
                    raise HeaderFieldError(
                        "unsupported precinct layout; this codec writes one "
                        "square precinct size for all resolutions", offset=off,
                    )
                if ppx == 0:
                    raise HeaderFieldError(
                        "precinct exponent 0 smaller than any code block",
                        offset=off,
                    )
                precinct_size = 1 << ppx
            info.num_layers = layers
            info.use_mct = bool(mct)
            info.levels = levels
            info.codeblock_size = 1 << (cbw + 2)
            info.progression = _PROG_NAMES[prog]
            info.precinct_size = precinct_size
            reversible = transform == 1
            info.reversible = reversible
            cod_seen = True
        elif code == MARKER_TLM:
            seg, off = read_segment()
            if info is None:
                raise MarkerError("TLM before SIZ", offset=marker_offset)
            if len(seg) < 2:
                raise TruncatedCodestreamError(
                    f"TLM segment needs >= 2 bytes, got {len(seg)}", offset=off
                )
            stlm = seg[1]
            st = (stlm >> 4) & 0x3
            sp = (stlm >> 6) & 0x1
            if st == 3 or stlm & 0x8F:
                raise HeaderFieldError(
                    f"invalid TLM Stlm byte 0x{stlm:02X}", offset=off
                )
            entry = st + (4 if sp else 2)
            body = seg[2:]
            if len(body) % entry:
                raise HeaderFieldError(
                    f"TLM body of {len(body)} bytes is not a multiple of its "
                    f"{entry}-byte entries", offset=off,
                )
            for i in range(0, len(body), entry):
                p = i + st  # skip Ttlm (0, 1, or 2 bytes)
                if sp:
                    (length,) = struct.unpack_from(">I", body, p)
                else:
                    (length,) = struct.unpack_from(">H", body, p)
                tlm_lengths.append(length)
            if len(tlm_lengths) > limits.max_tiles:
                raise LimitExceededError(
                    f"TLM indexes {len(tlm_lengths)} tile-parts, more than "
                    f"the {limits.max_tiles} cap", offset=off,
                )
        elif code == MARKER_QCD:
            seg, off = read_segment()
            if not seg:
                raise TruncatedCodestreamError("empty QCD segment", offset=off)
            sqcd = seg[0]
            guard_bits = sqcd >> 5
            style = sqcd & 0x1F
            body = seg[1:]
            quant_fields = []
            if style == _QUANT_NONE:
                quant_fields = [SubbandQuantField(b >> 3, 0) for b in body]
            elif style == _QUANT_EXPOUNDED:
                if len(body) % 2:
                    raise TruncatedCodestreamError(
                        "expounded QCD body has an odd byte count", offset=off
                    )
                for i in range(0, len(body), 2):
                    (v,) = struct.unpack_from(">H", body, i)
                    quant_fields.append(SubbandQuantField(v >> 11, v & 0x7FF))
            else:
                raise HeaderFieldError(
                    f"unsupported quantization style {style}", offset=off
                )
            max_fields = 1 + 3 * limits.max_levels
            if len(quant_fields) > max_fields:
                raise LimitExceededError(
                    f"QCD signals {len(quant_fields)} subbands, more than "
                    f"{limits.max_levels} levels allow", offset=off,
                )
            qcd_seen = True
        elif code == MARKER_SOT:
            seg, off = read_segment()
            if len(seg) < 8:
                raise TruncatedCodestreamError(
                    f"SOT segment needs >= 8 bytes, got {len(seg)}", offset=off
                )
            (tile_idx, psot, _tpsot, _tnsot) = struct.unpack_from(">HIBB", seg, 0)
            if read_marker() != MARKER_SOD:
                raise MarkerError("expected SOD after SOT", offset=pos - 2)
            if info is None or not (cod_seen and qcd_seen):
                raise MarkerError(
                    "tile before complete main header", offset=marker_offset
                )
            if tile_idx >= ntiles:
                raise HeaderFieldError(
                    f"SOT tile index {tile_idx} outside the {ntiles}-tile "
                    "grid", offset=off,
                )
            if psot == 0:
                # Psot=0: the tile-part extends to the next SOT or to EOC
                # (T.800 A.4.2).  Tile bodies are bit-stuffed (packet
                # headers) and MQ byte-stuffed, so a raw FF90/FFD9 cannot
                # occur inside entropy-coded data.
                next_sot = data.find(b"\xff\x90", pos)
                next_eoc = data.find(b"\xff\xd9", pos)
                candidates = [c for c in (next_sot, next_eoc) if c != -1]
                if not candidates:
                    raise TruncatedCodestreamError(
                        "Psot=0 tile-part with no terminating SOT or EOC",
                        offset=marker_offset,
                    )
                data_len = min(candidates) - pos
            else:
                data_len = psot - 12 - 2
                if data_len < 0:
                    raise HeaderFieldError(
                        f"SOT Psot {psot} smaller than its own headers",
                        offset=off,
                    )
            if pos + data_len > len(data):
                raise TruncatedCodestreamError(
                    f"tile data of {data_len} bytes overruns codestream",
                    offset=pos,
                )
            tile_parts.setdefault(tile_idx, bytearray()).extend(
                data[pos : pos + data_len]
            )
            part_lengths.append(12 + 2 + data_len)
            tile_part_offsets.append(marker_offset)
            pos += data_len
        elif code == MARKER_EOC:
            break
        else:
            raise MarkerError(f"unexpected marker 0x{code:04X}", offset=marker_offset)

    if info is None or not cod_seen or not qcd_seen:
        raise MarkerError("incomplete main header", offset=pos)
    info.guard_bits = guard_bits
    info.quant_fields = quant_fields
    info.tlm_lengths = tlm_lengths
    info.tile_part_offsets = tile_part_offsets
    if tlm_lengths:
        if len(tlm_lengths) != len(part_lengths) or any(
            t != p for t, p in zip(tlm_lengths, part_lengths)
        ):
            raise HeaderFieldError(
                f"TLM tile-part lengths {tlm_lengths} do not match the "
                f"observed tile-parts {part_lengths}", offset=pos,
            )
    if ntiles == 1:
        info.tile_data = bytes(tile_parts.get(0, b""))
        info.tiles = None
    else:
        missing = [i for i in range(ntiles) if i not in tile_parts]
        if missing:
            raise MarkerError(
                f"codestream declares {ntiles} tiles but tile(s) "
                f"{missing[:8]} have no tile-part", offset=pos,
            )
        info.tiles = [bytes(tile_parts[i]) for i in range(ntiles)]
        info.tile_data = b""
    return info
