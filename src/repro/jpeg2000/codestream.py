"""JPEG2000 Part-1 codestream markers (T.800 Annex A).

Writes and parses the marker segments a single-tile Part-1 codestream
needs: SOC, SIZ, COD, QCD, SOT, SOD, EOC.  The parsed representation is a
:class:`CodestreamInfo` from which the decoder reconstructs every coding
parameter.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

MARKER_SOC = 0xFF4F
MARKER_SIZ = 0xFF51
MARKER_COD = 0xFF52
MARKER_QCD = 0xFF5C
MARKER_SOT = 0xFF90
MARKER_SOD = 0xFF93
MARKER_EOC = 0xFFD9

_QUANT_NONE = 0      # Sqcd style: reversible, exponents only
_QUANT_EXPOUNDED = 2  # Sqcd style: scalar expounded, exponent+mantissa


@dataclass
class SubbandQuantField:
    """(exponent, mantissa) signalled for one subband, in QCD order."""

    exponent: int
    mantissa: int


@dataclass
class CodestreamInfo:
    """Everything the main header conveys."""

    width: int
    height: int
    num_components: int
    bit_depth: int
    signed: bool
    levels: int
    codeblock_size: int
    reversible: bool
    use_mct: bool
    num_layers: int
    guard_bits: int
    quant_fields: list[SubbandQuantField] = field(default_factory=list)
    tile_data: bytes = b""


def _marker(code: int, payload: bytes = b"") -> bytes:
    if payload:
        return struct.pack(">HH", code, len(payload) + 2) + payload
    return struct.pack(">H", code)


def write_main_header(info: CodestreamInfo) -> bytes:
    """Serialize SOC + SIZ + COD + QCD."""
    out = bytearray(_marker(MARKER_SOC))

    ssiz = (info.bit_depth - 1) | (0x80 if info.signed else 0)
    siz = struct.pack(
        ">HIIIIIIIIH",
        0,  # Rsiz: baseline Part-1
        info.width, info.height, 0, 0,
        info.width, info.height, 0, 0,
        info.num_components,
    )
    siz += b"".join(struct.pack(">BBB", ssiz, 1, 1) for _ in range(info.num_components))
    out += _marker(MARKER_SIZ, siz)

    cb_exp = info.codeblock_size.bit_length() - 1
    cod = struct.pack(
        ">BBHBBBBBB",
        0,                      # Scod: default precincts, no SOP/EPH
        0,                      # progression: LRCP
        info.num_layers,
        1 if info.use_mct else 0,
        info.levels,
        cb_exp - 2,             # code block width exponent - 2
        cb_exp - 2,             # code block height exponent - 2
        0,                      # code block style: all defaults
        1 if info.reversible else 0,
    )
    out += _marker(MARKER_COD, cod)

    style = _QUANT_NONE if info.reversible else _QUANT_EXPOUNDED
    sqcd = style | (info.guard_bits << 5)
    qcd = bytes([sqcd])
    for f in info.quant_fields:
        if info.reversible:
            qcd += bytes([f.exponent << 3])
        else:
            qcd += struct.pack(">H", (f.exponent << 11) | f.mantissa)
    out += _marker(MARKER_QCD, qcd)
    return bytes(out)


def write_codestream(info: CodestreamInfo) -> bytes:
    """Full codestream: main header, one tile part, EOC."""
    header = write_main_header(info)
    psot = 12 + 2 + len(info.tile_data)  # SOT segment + SOD + data
    sot = struct.pack(">HIBB", 0, psot, 0, 1)
    return (
        header
        + _marker(MARKER_SOT, sot)
        + _marker(MARKER_SOD)
        + info.tile_data
        + _marker(MARKER_EOC)
    )


class CodestreamError(ValueError):
    """Raised on malformed codestreams."""


def parse_codestream(data: bytes) -> CodestreamInfo:
    """Parse a codestream produced by :func:`write_codestream`."""
    pos = 0

    def read_marker() -> int:
        nonlocal pos
        if pos + 2 > len(data):
            raise CodestreamError("truncated codestream: no marker")
        (code,) = struct.unpack_from(">H", data, pos)
        pos += 2
        return code

    def read_segment() -> bytes:
        nonlocal pos
        if pos + 2 > len(data):
            raise CodestreamError("truncated marker segment")
        (length,) = struct.unpack_from(">H", data, pos)
        if pos + length > len(data):
            raise CodestreamError("marker segment overruns codestream")
        payload = data[pos + 2 : pos + length]
        pos += length
        return payload

    if read_marker() != MARKER_SOC:
        raise CodestreamError("missing SOC marker")

    info: CodestreamInfo | None = None
    cod_seen = qcd_seen = False
    reversible = True
    quant_fields: list[SubbandQuantField] = []
    guard_bits = 0

    while True:
        code = read_marker()
        if code == MARKER_SIZ:
            seg = read_segment()
            (_rsiz, w, h, _xo, _yo, _tw, _th, _txo, _tyo, ncomp) = struct.unpack_from(
                ">HIIIIIIIIH", seg, 0
            )
            ssiz, _xr, _yr = struct.unpack_from(">BBB", seg, 36)
            info = CodestreamInfo(
                width=w, height=h, num_components=ncomp,
                bit_depth=(ssiz & 0x7F) + 1, signed=bool(ssiz & 0x80),
                levels=0, codeblock_size=64, reversible=True,
                use_mct=False, num_layers=1, guard_bits=0,
            )
        elif code == MARKER_COD:
            seg = read_segment()
            (_scod, _prog, layers, mct, levels, cbw, _cbh, _style, transform) = (
                struct.unpack_from(">BBHBBBBBB", seg, 0)
            )
            if info is None:
                raise CodestreamError("COD before SIZ")
            info.num_layers = layers
            info.use_mct = bool(mct)
            info.levels = levels
            info.codeblock_size = 1 << (cbw + 2)
            reversible = transform == 1
            info.reversible = reversible
            cod_seen = True
        elif code == MARKER_QCD:
            seg = read_segment()
            sqcd = seg[0]
            guard_bits = sqcd >> 5
            style = sqcd & 0x1F
            body = seg[1:]
            quant_fields = []
            if style == _QUANT_NONE:
                quant_fields = [SubbandQuantField(b >> 3, 0) for b in body]
            elif style == _QUANT_EXPOUNDED:
                for i in range(0, len(body), 2):
                    (v,) = struct.unpack_from(">H", body, i)
                    quant_fields.append(SubbandQuantField(v >> 11, v & 0x7FF))
            else:
                raise CodestreamError(f"unsupported quantization style {style}")
            qcd_seen = True
        elif code == MARKER_SOT:
            seg = read_segment()
            (_tile, psot, _tpsot, _tnsot) = struct.unpack_from(">HIBB", seg, 0)
            if read_marker() != MARKER_SOD:
                raise CodestreamError("expected SOD after SOT")
            data_len = psot - 12 - 2
            if pos + data_len > len(data):
                raise CodestreamError("tile data overruns codestream")
            if info is None or not (cod_seen and qcd_seen):
                raise CodestreamError("tile before complete main header")
            info.tile_data = data[pos : pos + data_len]
            pos += data_len
        elif code == MARKER_EOC:
            break
        else:
            raise CodestreamError(f"unexpected marker 0x{code:04X}")

    if info is None or not cod_seen or not qcd_seen:
        raise CodestreamError("incomplete main header")
    info.guard_bits = guard_bits
    info.quant_fields = quant_fields
    return info
