"""JPEG2000 Part-1 codestream markers (T.800 Annex A).

Writes and parses the marker segments a single-tile Part-1 codestream
needs: SOC, SIZ, COD, QCD, SOT, SOD, EOC.  The parsed representation is a
:class:`CodestreamInfo` from which the decoder reconstructs every coding
parameter.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.jpeg2000.errors import (
    DEFAULT_LIMITS,
    CodestreamError,
    DecodeLimits,
    HeaderFieldError,
    LimitExceededError,
    MarkerError,
    TruncatedCodestreamError,
)

__all__ = [
    "CodestreamError",
    "CodestreamInfo",
    "DecodeLimits",
    "SubbandQuantField",
    "parse_codestream",
    "write_codestream",
    "write_main_header",
]

MARKER_SOC = 0xFF4F
MARKER_SIZ = 0xFF51
MARKER_COD = 0xFF52
MARKER_QCD = 0xFF5C
MARKER_SOT = 0xFF90
MARKER_SOD = 0xFF93
MARKER_EOC = 0xFFD9

_QUANT_NONE = 0      # Sqcd style: reversible, exponents only
_QUANT_EXPOUNDED = 2  # Sqcd style: scalar expounded, exponent+mantissa


@dataclass
class SubbandQuantField:
    """(exponent, mantissa) signalled for one subband, in QCD order."""

    exponent: int
    mantissa: int


@dataclass
class CodestreamInfo:
    """Everything the main header conveys."""

    width: int
    height: int
    num_components: int
    bit_depth: int
    signed: bool
    levels: int
    codeblock_size: int
    reversible: bool
    use_mct: bool
    num_layers: int
    guard_bits: int
    quant_fields: list[SubbandQuantField] = field(default_factory=list)
    tile_data: bytes = b""


def _marker(code: int, payload: bytes = b"") -> bytes:
    if payload:
        return struct.pack(">HH", code, len(payload) + 2) + payload
    return struct.pack(">H", code)


def write_main_header(info: CodestreamInfo) -> bytes:
    """Serialize SOC + SIZ + COD + QCD."""
    out = bytearray(_marker(MARKER_SOC))

    ssiz = (info.bit_depth - 1) | (0x80 if info.signed else 0)
    siz = struct.pack(
        ">HIIIIIIIIH",
        0,  # Rsiz: baseline Part-1
        info.width, info.height, 0, 0,
        info.width, info.height, 0, 0,
        info.num_components,
    )
    siz += b"".join(struct.pack(">BBB", ssiz, 1, 1) for _ in range(info.num_components))
    out += _marker(MARKER_SIZ, siz)

    cb_exp = info.codeblock_size.bit_length() - 1
    cod = struct.pack(
        ">BBHBBBBBB",
        0,                      # Scod: default precincts, no SOP/EPH
        0,                      # progression: LRCP
        info.num_layers,
        1 if info.use_mct else 0,
        info.levels,
        cb_exp - 2,             # code block width exponent - 2
        cb_exp - 2,             # code block height exponent - 2
        0,                      # code block style: all defaults
        1 if info.reversible else 0,
    )
    out += _marker(MARKER_COD, cod)

    style = _QUANT_NONE if info.reversible else _QUANT_EXPOUNDED
    sqcd = style | (info.guard_bits << 5)
    qcd = bytes([sqcd])
    for f in info.quant_fields:
        if info.reversible:
            qcd += bytes([f.exponent << 3])
        else:
            qcd += struct.pack(">H", (f.exponent << 11) | f.mantissa)
    out += _marker(MARKER_QCD, qcd)
    return bytes(out)


def write_codestream(info: CodestreamInfo) -> bytes:
    """Full codestream: main header, one tile part, EOC."""
    header = write_main_header(info)
    psot = 12 + 2 + len(info.tile_data)  # SOT segment + SOD + data
    sot = struct.pack(">HIBB", 0, psot, 0, 1)
    return (
        header
        + _marker(MARKER_SOT, sot)
        + _marker(MARKER_SOD)
        + info.tile_data
        + _marker(MARKER_EOC)
    )


def parse_codestream(
    data: bytes, limits: DecodeLimits | None = None
) -> CodestreamInfo:
    """Parse a codestream produced by :func:`write_codestream`.

    Every field that later sizes an allocation or a loop is validated
    against ``limits`` *here*, before the decoder touches it; malformed
    input raises a :class:`CodestreamError` subclass carrying the byte
    offset at which the problem was detected.
    """
    if limits is None:
        limits = DEFAULT_LIMITS
    pos = 0

    def read_marker() -> int:
        nonlocal pos
        if pos + 2 > len(data):
            raise TruncatedCodestreamError(
                "truncated codestream: no marker", offset=pos
            )
        (code,) = struct.unpack_from(">H", data, pos)
        if code >> 8 != 0xFF:
            raise MarkerError(f"invalid marker 0x{code:04X}", offset=pos)
        pos += 2
        return code

    def read_segment() -> tuple[bytes, int]:
        """Read one marker-segment payload; returns (payload, its offset)."""
        nonlocal pos
        if pos + 2 > len(data):
            raise TruncatedCodestreamError("truncated marker segment", offset=pos)
        (length,) = struct.unpack_from(">H", data, pos)
        if length < 2:
            raise HeaderFieldError(
                f"marker segment length {length} smaller than its own "
                "length field", offset=pos,
            )
        if pos + length > len(data):
            raise TruncatedCodestreamError(
                f"marker segment of {length} bytes overruns codestream",
                offset=pos,
            )
        payload = data[pos + 2 : pos + length]
        seg_offset = pos + 2
        pos += length
        return payload, seg_offset

    if read_marker() != MARKER_SOC:
        raise MarkerError("missing SOC marker", offset=0)

    info: CodestreamInfo | None = None
    cod_seen = qcd_seen = False
    reversible = True
    quant_fields: list[SubbandQuantField] = []
    guard_bits = 0

    while True:
        marker_offset = pos
        code = read_marker()
        if code == MARKER_SIZ:
            seg, off = read_segment()
            if info is not None:
                raise MarkerError("duplicate SIZ marker", offset=marker_offset)
            if len(seg) < 38:
                raise TruncatedCodestreamError(
                    f"SIZ segment needs >= 38 bytes, got {len(seg)}", offset=off
                )
            (_rsiz, w, h, xo, yo, _tw, _th, _txo, _tyo, ncomp) = struct.unpack_from(
                ">HIIIIIIIIH", seg, 0
            )
            if ncomp < 1 or ncomp > limits.max_components:
                raise (
                    LimitExceededError if ncomp > limits.max_components
                    else HeaderFieldError
                )(f"component count {ncomp} outside [1, {limits.max_components}]",
                  offset=off)
            if len(seg) < 36 + 3 * ncomp:
                raise TruncatedCodestreamError(
                    f"SIZ segment truncated: {ncomp} components need "
                    f"{36 + 3 * ncomp} bytes, got {len(seg)}", offset=off,
                )
            if w < 1 or h < 1:
                raise HeaderFieldError(
                    f"image dimensions must be positive, got {w}x{h}", offset=off
                )
            if xo or yo:
                raise HeaderFieldError(
                    f"nonzero image offset ({xo}, {yo}) unsupported", offset=off
                )
            if w > limits.max_dimension or h > limits.max_dimension:
                raise LimitExceededError(
                    f"declared dimensions {w}x{h} exceed the "
                    f"{limits.max_dimension} cap", offset=off,
                )
            if w * h * ncomp > limits.max_samples:
                raise LimitExceededError(
                    f"declared size {w}x{h}x{ncomp} exceeds the "
                    f"{limits.max_samples}-sample cap", offset=off,
                )
            ssiz, xr, yr = struct.unpack_from(">BBB", seg, 36)
            for c in range(1, ncomp):
                if struct.unpack_from(">BBB", seg, 36 + 3 * c) != (ssiz, xr, yr):
                    raise HeaderFieldError(
                        "per-component SIZ fields must match component 0",
                        offset=off,
                    )
            if (xr, yr) != (1, 1):
                raise HeaderFieldError(
                    f"component subsampling {xr}x{yr} unsupported", offset=off
                )
            bit_depth = (ssiz & 0x7F) + 1
            if bit_depth > limits.max_bit_depth:
                raise LimitExceededError(
                    f"bit depth {bit_depth} exceeds the "
                    f"{limits.max_bit_depth}-bit cap", offset=off,
                )
            info = CodestreamInfo(
                width=w, height=h, num_components=ncomp,
                bit_depth=bit_depth, signed=bool(ssiz & 0x80),
                levels=0, codeblock_size=64, reversible=True,
                use_mct=False, num_layers=1, guard_bits=0,
            )
        elif code == MARKER_COD:
            seg, off = read_segment()
            if info is None:
                raise MarkerError("COD before SIZ", offset=marker_offset)
            if len(seg) < 10:
                raise TruncatedCodestreamError(
                    f"COD segment needs >= 10 bytes, got {len(seg)}", offset=off
                )
            (scod, prog, layers, mct, levels, cbw, cbh, style, transform) = (
                struct.unpack_from(">BBHBBBBBB", seg, 0)
            )
            if scod != 0 or prog != 0 or style != 0:
                raise HeaderFieldError(
                    f"unsupported COD options (Scod={scod}, progression="
                    f"{prog}, style={style}); this codec writes all-default "
                    "LRCP", offset=off,
                )
            if layers != 1:
                raise HeaderFieldError(
                    f"unsupported layer count {layers}; this codec writes a "
                    "single quality layer", offset=off,
                )
            if levels > limits.max_levels:
                raise LimitExceededError(
                    f"declared {levels} DWT levels exceed the "
                    f"{limits.max_levels} cap", offset=off,
                )
            if cbw != cbh or not (0 <= cbw <= 4):
                raise HeaderFieldError(
                    f"code block exponents ({cbw}, {cbh}) outside the square "
                    "4..64 range this codec writes", offset=off,
                )
            if transform not in (0, 1):
                raise HeaderFieldError(
                    f"unknown wavelet transform {transform}", offset=off
                )
            info.num_layers = layers
            info.use_mct = bool(mct)
            info.levels = levels
            info.codeblock_size = 1 << (cbw + 2)
            reversible = transform == 1
            info.reversible = reversible
            cod_seen = True
        elif code == MARKER_QCD:
            seg, off = read_segment()
            if not seg:
                raise TruncatedCodestreamError("empty QCD segment", offset=off)
            sqcd = seg[0]
            guard_bits = sqcd >> 5
            style = sqcd & 0x1F
            body = seg[1:]
            quant_fields = []
            if style == _QUANT_NONE:
                quant_fields = [SubbandQuantField(b >> 3, 0) for b in body]
            elif style == _QUANT_EXPOUNDED:
                if len(body) % 2:
                    raise TruncatedCodestreamError(
                        "expounded QCD body has an odd byte count", offset=off
                    )
                for i in range(0, len(body), 2):
                    (v,) = struct.unpack_from(">H", body, i)
                    quant_fields.append(SubbandQuantField(v >> 11, v & 0x7FF))
            else:
                raise HeaderFieldError(
                    f"unsupported quantization style {style}", offset=off
                )
            max_fields = 1 + 3 * limits.max_levels
            if len(quant_fields) > max_fields:
                raise LimitExceededError(
                    f"QCD signals {len(quant_fields)} subbands, more than "
                    f"{limits.max_levels} levels allow", offset=off,
                )
            qcd_seen = True
        elif code == MARKER_SOT:
            seg, off = read_segment()
            if len(seg) < 8:
                raise TruncatedCodestreamError(
                    f"SOT segment needs >= 8 bytes, got {len(seg)}", offset=off
                )
            (_tile, psot, _tpsot, _tnsot) = struct.unpack_from(">HIBB", seg, 0)
            if read_marker() != MARKER_SOD:
                raise MarkerError("expected SOD after SOT", offset=pos - 2)
            data_len = psot - 12 - 2
            if data_len < 0:
                raise HeaderFieldError(
                    f"SOT Psot {psot} smaller than its own headers", offset=off
                )
            if pos + data_len > len(data):
                raise TruncatedCodestreamError(
                    f"tile data of {data_len} bytes overruns codestream",
                    offset=pos,
                )
            if info is None or not (cod_seen and qcd_seen):
                raise MarkerError(
                    "tile before complete main header", offset=marker_offset
                )
            info.tile_data = data[pos : pos + data_len]
            pos += data_len
        elif code == MARKER_EOC:
            break
        else:
            raise MarkerError(f"unexpected marker 0x{code:04X}", offset=marker_offset)

    if info is None or not cod_seen or not qcd_seen:
        raise MarkerError("incomplete main header", offset=pos)
    info.guard_bits = guard_bits
    info.quant_fields = quant_fields
    return info
