"""High-level JPEG2000 decoder: Part-1 codestream in, image out.

Mirrors :mod:`repro.jpeg2000.encoder` exactly: marker parsing, packet
parsing, Tier-1 decoding, dequantization, inverse DWT, inverse MCT, level
unshift.  Lossless codestreams reconstruct bit exactly.

The decoder has the same backend ladder as the encoder and every rung is
sample-identical (differentially tested):

``reference``
    The original all-scalar path, preserved verbatim as the oracle
    (:func:`decode_reference`).
``vectorized``
    :func:`repro.jpeg2000.tier1_dec_vec.decode_codeblock_fast` per block
    (incremental context keys, inlined MQ decoding, native whole-block
    kernel where the C compiler is available) plus the fused inverse
    DWT + MCT front end (:func:`repro.jpeg2000.dwt_fast.run_inverse_frontend`).
``batched``
    The same fast block decoder driven through same-geometry stacking
    (:func:`repro.jpeg2000.tier1_dec_vec.decode_codeblocks_batched`), the
    default — code blocks are decoded per image, not per call.

``decode(..., workers=N)`` additionally fans blocks out over
:class:`repro.core.workpool.CodeBlockWorkQueue` (process pool with
sequence-numbered reassembly) and the inverse front end's chunk passes
over threads; both are deterministic for any worker count, and small
images auto-clamp to serial exactly like the encoder.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.jpeg2000 import mct
from repro.jpeg2000.codeblocks import partition_subband
from repro.jpeg2000.codestream import CodestreamInfo, parse_codestream
from repro.jpeg2000.dwt import Decomposition, inverse_dwt2d
from repro.jpeg2000.dwt_fast import DecodeStageTimings, run_inverse_frontend
from repro.jpeg2000.errors import (
    CodestreamError,
    DecodeLimits,
    HeaderFieldError,
    PacketError,
)
from repro.jpeg2000.quantize import dequantize, exponent_mantissa_to_step, nominal_range_bits
from repro.jpeg2000.tier1 import decode_codeblock
from repro.jpeg2000.tier2 import (
    iter_packets,
    parse_packet,
    precinct_band_window,
    precinct_cells,
    precinct_counts,
)

#: Largest ``exponent + guard_bits - 1`` bit-plane count a QCD field may
#: imply (5-bit exponent + 3-bit guard bits keeps well under this; anything
#: larger is a corrupt header, not a deep image).
_MAX_BITPLANES = 38

#: Environment variable consulted when the decode backend is ``"auto"``.
DEC_BACKEND_ENV_VAR = "REPRO_DEC_BACKEND"

#: Valid decoder backend names (all sample-identical).
DEC_BACKENDS = ("auto", "reference", "vectorized", "batched")


def resolve_dec_backend(backend: str | None) -> str:
    """Resolve a decode backend name, honouring :data:`DEC_BACKEND_ENV_VAR`.

    ``None``/``"auto"`` reads the environment and otherwise picks
    ``"batched"`` — the fastest path; every backend decodes to identical
    samples, so the choice is purely a speed knob.
    """
    if backend is None:
        backend = "auto"
    if backend not in DEC_BACKENDS:
        raise ValueError(
            f"unknown decode backend {backend!r}; expected one of {DEC_BACKENDS}"
        )
    if backend == "auto":
        env = os.environ.get(DEC_BACKEND_ENV_VAR, "")
        if env:
            if env not in DEC_BACKENDS:
                raise ValueError(
                    f"{DEC_BACKEND_ENV_VAR}={env!r} invalid; expected one of "
                    f"{DEC_BACKENDS}"
                )
            backend = env
    return "batched" if backend == "auto" else backend


@dataclass
class _SubbandLayout:
    band: str
    dlevel: int
    height: int
    width: int
    exponent: int
    mantissa: int


def _subband_layouts(
    info: CodestreamInfo,
    height: int | None = None,
    width: int | None = None,
) -> list[_SubbandLayout]:
    """Reconstruct subband geometry in codestream (QCD/packet) order.

    ``height``/``width`` give one tile's dimensions; they default to the
    whole image (the single-tile layout).  The subband *count* depends only
    on ``info.levels``, so the QCD consistency check is tile-independent.
    """
    shapes = []
    h = info.height if height is None else height
    w = info.width if width is None else width
    lvl = 0
    while lvl < info.levels:
        lo_h, hi_h = (h + 1) // 2, h // 2
        lo_w, hi_w = (w + 1) // 2, w // 2
        shapes.append(
            {
                "HL": (lo_h, hi_w),
                "LH": (hi_h, lo_w),
                "HH": (hi_h, hi_w),
            }
        )
        h, w = lo_h, lo_w
        lvl += 1
    layouts = [_SubbandLayout("LL", info.levels, h, w, 0, 0)]
    for i in range(info.levels - 1, -1, -1):
        dl = i + 1
        for band in ("HL", "LH", "HH"):
            bh, bw = shapes[i][band]
            layouts.append(_SubbandLayout(band, dl, bh, bw, 0, 0))
    if len(info.quant_fields) != len(layouts):
        raise HeaderFieldError(
            f"QCD signals {len(info.quant_fields)} subbands, geometry implies "
            f"{len(layouts)}"
        )
    for lay, qf in zip(layouts, info.quant_fields):
        num_bitplanes = qf.exponent + info.guard_bits - 1
        if not (0 <= num_bitplanes <= _MAX_BITPLANES):
            raise HeaderFieldError(
                f"subband {lay.band}{lay.dlevel} implies {num_bitplanes} "
                f"bit planes, outside [0, {_MAX_BITPLANES}]"
            )
        lay.exponent = qf.exponent
        lay.mantissa = qf.mantissa
    return layouts


def decode(
    codestream: bytes,
    limits: DecodeLimits | None = None,
    *,
    backend: str | None = None,
    workers: int | None = 1,
    timings: DecodeStageTimings | None = None,
    plan: object = None,
) -> np.ndarray:
    """Decode a codestream produced by :func:`repro.jpeg2000.encoder.encode`.

    ``limits`` caps every size a corrupt header could declare (see
    :class:`repro.jpeg2000.errors.DecodeLimits`).  Malformed input of any
    kind raises a :class:`repro.jpeg2000.errors.CodestreamError` subclass;
    no bare ``IndexError``/``struct.error``/``EOFError`` escapes, and no
    allocation is sized by an unvalidated field.

    ``backend`` selects the Tier-1 decode implementation (see
    :data:`DEC_BACKENDS`; ``None``/``"auto"`` honours
    ``REPRO_DEC_BACKEND`` then defaults to ``"batched"``).  ``workers``
    fans code blocks out over a process pool and the inverse front end
    over threads (``None`` = one per core); the output is sample-identical
    for every backend and worker count.  ``timings`` (a
    :class:`repro.jpeg2000.dwt_fast.DecodeStageTimings`) accumulates
    per-stage wall time.

    ``plan`` (``None``, ``"auto"``, or a :class:`repro.plan.ExecutionPlan`)
    lets the execution planner pick the backend and worker count from the
    parsed codestream's shape.  Precedence matches the encoder: an
    explicit ``backend``/``workers`` argument or the ``REPRO_DEC_BACKEND``
    environment variable always wins over the plan.  The decoded samples
    are identical under every plan.
    """
    t_start = time.perf_counter()
    info = parse_codestream(codestream, limits=limits)
    if plan is not None:
        backend, workers = _apply_decode_plan(plan, backend, workers, info)
    resolved = resolve_dec_backend(backend)
    try:
        if resolved == "reference":
            out = _decode_parsed(info)
        else:
            out = _decode_parsed_fast(info, resolved, workers, timings)
    except CodestreamError:
        raise
    except (ValueError, ArithmeticError, IndexError, KeyError, EOFError) as exc:
        # Defensive net: anything the typed checks above did not classify
        # still surfaces as a CodestreamError, never a raw traceback type.
        raise CodestreamError(f"malformed codestream content: {exc}") from exc
    if timings is not None:
        timings.total += time.perf_counter() - t_start
    return out


def decode_reference(
    codestream: bytes, limits: DecodeLimits | None = None
) -> np.ndarray:
    """The pinned scalar decode path (the oracle every backend must match)."""
    return decode(codestream, limits, backend="reference")


def _apply_decode_plan(plan, backend, workers, info):
    """Overlay a decode plan under explicit > env > plan precedence.

    ``backend`` is planner-fillable only when left on automatic (``None``
    or ``"auto"``) with ``REPRO_DEC_BACKEND`` unset; ``workers`` only at
    its default of 1 (mirroring the encoder's convention).  ``"auto"``
    derives the worker count from the planner's Tier-1 cutover on the
    parsed shape; an :class:`repro.plan.ExecutionPlan` is applied
    verbatim.
    """
    import os

    from repro.plan.model import ExecutionPlan, estimate_code_blocks

    backend_open = backend in (None, "auto") and not os.environ.get(
        DEC_BACKEND_ENV_VAR, ""
    )
    workers_open = workers == 1
    if isinstance(plan, ExecutionPlan):
        if backend_open:
            backend = plan.tier1_backend
        if workers_open:
            workers = plan.workers
        return backend, workers
    if plan != "auto":
        raise ValueError(
            f'plan must be None, "auto", or an ExecutionPlan, got {plan!r}'
        )
    if backend_open:
        backend = "batched"  # fastest decode rung on every calibrated box
    if workers_open:
        from repro.core.workpool import tier1_auto_workers

        blocks = estimate_code_blocks(
            (info.height, info.width, info.num_components),
            info.levels, info.codeblock_size,
        )
        workers = tier1_auto_workers(None, blocks)
    return backend, workers


def _tile_layout(info: CodestreamInfo) -> tuple[list[bytes], list[tuple[int, int, int, int]]]:
    """Tile bodies and their rectangles (one full-image entry when untiled)."""
    if info.tiles is None:
        return [info.tile_data], [(0, 0, info.height, info.width)]
    grid = info.tile_grid()
    if len(grid) != len(info.tiles):
        raise HeaderFieldError(
            f"SIZ tile grid implies {len(grid)} tiles but the codestream "
            f"carries {len(info.tiles)}"
        )
    return info.tiles, grid


def _empty_coeff(
    info: CodestreamInfo, layouts: list[_SubbandLayout]
) -> list[dict[tuple[str, int], np.ndarray]]:
    """Per-component, per-subband zeroed coefficient planes."""
    dtype = np.int32 if info.reversible else np.float64
    return [
        {
            (lay.band, lay.dlevel): np.zeros((lay.height, lay.width), dtype=dtype)
            for lay in layouts
        }
        for _ in range(info.num_components)
    ]


def _iter_tile_blocks(
    info: CodestreamInfo, layouts: list[_SubbandLayout], data: bytes
):
    """Walk one tile body's packets, yielding every included block.

    Yields ``(ci, lay, spec, blk, msbs, step)`` tuples in packet order —
    the progression/precinct geometry from the COD marker drives the walk,
    which reduces to the historical resolution-major, component-minor
    order for maximal-precinct LRCP streams.  Both decode paths consume
    this one generator, so header validation raises identical typed
    errors at identical points regardless of backend.
    """
    chroma_expanded = info.reversible and info.use_mct
    nres = info.levels + 1
    res_layouts: list[list[_SubbandLayout]] = []
    res_parts: list[list[tuple[list, int, int]]] = []
    for res in range(nres):
        if res == 0:
            lays = [layouts[0]]
        else:
            dl = info.levels - res + 1
            lays = [l for l in layouts if l.dlevel == dl and l.band != "LL"]
        res_layouts.append(lays)
        res_parts.append([
            partition_subband(l.height, l.width, info.codeblock_size)
            for l in lays
        ])
    pcb_by_res: list[int | None] = []
    pcols_by_res: list[int] = []
    nprec_by_res: list[int] = []
    for res in range(nres):
        pcb = precinct_cells(info.codeblock_size, info.precinct_size, res)
        grids = [(grows, gcols) for (_s, grows, gcols) in res_parts[res]]
        prows, pcols = precinct_counts(pcb, grids)
        pcb_by_res.append(pcb)
        pcols_by_res.append(pcols)
        nprec_by_res.append(prows * pcols)
    pos = 0
    for res, ci, p in iter_packets(
        info.levels, info.num_components, nprec_by_res, info.progression
    ):
        pcb = pcb_by_res[res]
        pcols = pcols_by_res[res]
        band_grids = []
        band_sel = []
        for (specs, grows, gcols) in res_parts[res]:
            (r_lo, r_hi, c_lo, c_hi), (lr, lc) = precinct_band_window(
                grows, gcols, pcb, pcols, p
            )
            sel = [
                specs[gr * gcols + gc]
                for gr in range(r_lo, r_hi)
                for gc in range(c_lo, c_hi)
            ]
            band_grids.append((lr, lc, len(sel)))
            band_sel.append(sel)
        parsed, pos = parse_packet(data, pos, band_grids)
        for lay, sel, blocks in zip(res_layouts[res], band_sel, parsed):
            rb = nominal_range_bits(info.bit_depth, lay.band, chroma_expanded)
            num_bitplanes = lay.exponent + info.guard_bits - 1
            step = (
                1.0
                if info.reversible
                else exponent_mantissa_to_step(lay.exponent, lay.mantissa, rb)
            )
            for spec, blk in zip(sel, blocks):
                if not blk.included:
                    continue
                msbs = num_bitplanes - blk.zero_bitplanes
                if msbs < 0:
                    raise PacketError(
                        f"block ({blk.grid_row}, {blk.grid_col}) signals "
                        f"{blk.zero_bitplanes} missing bit planes but the "
                        f"subband codes only {num_bitplanes}"
                    )
                max_passes = 1 + 3 * (msbs - 1) if msbs else 0
                if blk.num_passes > max_passes:
                    raise PacketError(
                        f"block ({blk.grid_row}, {blk.grid_col}) signals "
                        f"{blk.num_passes} coding passes but {msbs} bit "
                        f"planes allow at most {max_passes}"
                    )
                yield ci, lay, spec, blk, msbs, step


def _decode_tile_reference(
    info: CodestreamInfo, data: bytes, height: int, width: int
) -> list[np.ndarray]:
    """Scalar reference decode of one tile body to component planes.

    Per-sample Tier-1 (:func:`decode_codeblock`) and per-stage full-pass
    inverse DWT (:func:`inverse_dwt2d`) — the oracle the vectorized and
    batched paths are differentially tested against.
    """
    layouts = _subband_layouts(info, height, width)
    coeff = _empty_coeff(info, layouts)
    for ci, lay, spec, blk, msbs, step in _iter_tile_blocks(info, layouts, data):
        vals = decode_codeblock(
            blk.data, spec.height, spec.width, lay.band, msbs, blk.num_passes
        )
        out = vals if info.reversible else dequantize(vals, step)
        coeff[ci][(lay.band, lay.dlevel)][
            spec.row0 : spec.row0 + spec.height,
            spec.col0 : spec.col0 + spec.width,
        ] = out

    planes = []
    for ci in range(info.num_components):
        details = []
        for dl in range(1, info.levels + 1):
            details.append(
                (coeff[ci][("HL", dl)], coeff[ci][("LH", dl)], coeff[ci][("HH", dl)])
            )
        decomp = Decomposition(
            shape=(height, width), levels=info.levels,
            reversible=info.reversible,
            ll=coeff[ci][("LL", info.levels)], details=details,
        )
        planes.append(inverse_dwt2d(decomp))
    return mct.inverse_mct(planes, info.bit_depth, info.reversible)


def _decode_parsed(info: CodestreamInfo) -> np.ndarray:
    """Scalar reference decode; multi-tile streams decode tile by tile."""
    tiles, grid = _tile_layout(info)
    full: list[np.ndarray] | None = None
    for body, (row0, col0, t_h, t_w) in zip(tiles, grid):
        comps = _decode_tile_reference(info, body, t_h, t_w)
        if full is None:
            if info.tiles is None:
                return _stack_output(comps, info.bit_depth)
            full = [
                np.zeros((info.height, info.width), dtype=c.dtype)
                for c in comps
            ]
        for ci, c in enumerate(comps):
            full[ci][row0 : row0 + t_h, col0 : col0 + t_w] = c
    assert full is not None
    return _stack_output(full, info.bit_depth)


def _stack_output(comps: list[np.ndarray], bit_depth: int) -> np.ndarray:
    out_dtype = np.uint8 if bit_depth <= 8 else np.uint16
    if len(comps) == 1:
        return comps[0].astype(out_dtype)
    return np.stack([c.astype(out_dtype) for c in comps], axis=-1)


def _decode_parsed_fast(
    info: CodestreamInfo,
    backend: str,
    workers: int | None,
    timings: DecodeStageTimings | None,
) -> np.ndarray:
    """Vectorized/batched decode: collect blocks, decode per image, fuse.

    The packet walk (:func:`_iter_tile_blocks`, shared with the reference
    path) *collects* block tasks instead of decoding inline, so every
    typed error (header, packet, tag tree) is raised at the same point in
    the same order.  Tier-1 decoding itself is total for validated inputs
    — the MQ decoder treats truncation as an endless ``0xFF`` tail and
    never raises — so deferring it cannot reorder failures.  Blocks from
    *all tiles* decode in one batched call (or over the work queue) — a
    tiled stream parallelizes across spatial regions as well as blocks —
    then are dequantized, placed, and each tile's fused inverse front end
    reconstructs its components into the stitched output.
    """
    t0 = time.perf_counter()
    tiles, grid = _tile_layout(info)

    # Packet walk per tile: identical traversal and identical typed-error
    # ordering to the reference; blocks are recorded, not decoded.
    blocks_in: list[tuple[bytes, int, int, str, int, int]] = []
    placements: list[tuple[np.ndarray, object, float]] = []
    tile_coeffs = []
    for body, (_row0, _col0, t_h, t_w) in zip(tiles, grid):
        layouts = _subband_layouts(info, t_h, t_w)
        coeff = _empty_coeff(info, layouts)
        tile_coeffs.append(coeff)
        for ci, lay, spec, blk, msbs, step in _iter_tile_blocks(
            info, layouts, body
        ):
            blocks_in.append((
                blk.data, spec.height, spec.width, lay.band,
                msbs, blk.num_passes,
            ))
            placements.append((coeff[ci][(lay.band, lay.dlevel)], spec, step))
    t1 = time.perf_counter()

    # Tier-1: per image, not per block or per tile.  The work queue path
    # reassembles by sequence number, so results are identical at any
    # worker count; tiny images clamp to serial exactly like the encoder.
    from repro.core.workpool import CodeBlockWorkQueue, tier1_auto_workers

    eff_workers = tier1_auto_workers(workers, len(blocks_in))
    if eff_workers > 1:
        queue = CodeBlockWorkQueue(workers=eff_workers)
        results = queue.decode_all(blocks_in)
    elif backend == "batched":
        from repro.jpeg2000.tier1_dec_vec import decode_codeblocks_batched

        results = decode_codeblocks_batched(blocks_in)
    else:
        from repro.jpeg2000.tier1_dec_vec import decode_codeblock_fast

        results = [decode_codeblock_fast(*blk) for blk in blocks_in]
    t2 = time.perf_counter()

    # Dequantize + place (elementwise; identical to the reference's
    # inline per-block handling).
    for (target, spec, step), vals in zip(placements, results):
        if info.reversible:
            out = vals
        else:
            out = dequantize(vals, step)
        target[spec.row0 : spec.row0 + spec.height,
               spec.col0 : spec.col0 + spec.width] = out
    t3 = time.perf_counter()

    # Fused inverse DWT + inverse MCT + level unshift, per tile, stitched
    # into the full-image output planes.
    full: list[np.ndarray] | None = None
    out = None
    for coeff, (row0, col0, t_h, t_w) in zip(tile_coeffs, grid):
        decomps = []
        for ci in range(info.num_components):
            details = []
            for dl in range(1, info.levels + 1):
                details.append(
                    (coeff[ci][("HL", dl)], coeff[ci][("LH", dl)],
                     coeff[ci][("HH", dl)])
                )
            decomps.append(Decomposition(
                shape=(t_h, t_w), levels=info.levels,
                reversible=info.reversible,
                ll=coeff[ci][("LL", info.levels)], details=details,
            ))
        comps = run_inverse_frontend(
            decomps, info.bit_depth, info.reversible, workers=workers,
        )
        if info.tiles is None:
            out = _stack_output(comps, info.bit_depth)
            break
        if full is None:
            full = [
                np.zeros((info.height, info.width), dtype=c.dtype)
                for c in comps
            ]
        for ci, c in enumerate(comps):
            full[ci][row0 : row0 + t_h, col0 : col0 + t_w] = c
    if out is None:
        assert full is not None
        out = _stack_output(full, info.bit_depth)
    t4 = time.perf_counter()
    if timings is not None:
        timings.parse += t1 - t0
        timings.tier1 += t2 - t1
        timings.dequantize += t3 - t2
        timings.idwt_mct += t4 - t3
    return out
