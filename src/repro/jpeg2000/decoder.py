"""High-level JPEG2000 decoder: Part-1 codestream in, image out.

Mirrors :mod:`repro.jpeg2000.encoder` exactly: marker parsing, packet
parsing, Tier-1 decoding, dequantization, inverse DWT, inverse MCT, level
unshift.  Lossless codestreams reconstruct bit exactly.

The decoder has the same backend ladder as the encoder and every rung is
sample-identical (differentially tested):

``reference``
    The original all-scalar path, preserved verbatim as the oracle
    (:func:`decode_reference`).
``vectorized``
    :func:`repro.jpeg2000.tier1_dec_vec.decode_codeblock_fast` per block
    (incremental context keys, inlined MQ decoding, native whole-block
    kernel where the C compiler is available) plus the fused inverse
    DWT + MCT front end (:func:`repro.jpeg2000.dwt_fast.run_inverse_frontend`).
``batched``
    The same fast block decoder driven through same-geometry stacking
    (:func:`repro.jpeg2000.tier1_dec_vec.decode_codeblocks_batched`), the
    default — code blocks are decoded per image, not per call.

``decode(..., workers=N)`` additionally fans blocks out over
:class:`repro.core.workpool.CodeBlockWorkQueue` (process pool with
sequence-numbered reassembly) and the inverse front end's chunk passes
over threads; both are deterministic for any worker count, and small
images auto-clamp to serial exactly like the encoder.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.jpeg2000 import mct
from repro.jpeg2000.codeblocks import partition_subband
from repro.jpeg2000.codestream import CodestreamInfo, parse_codestream
from repro.jpeg2000.dwt import Decomposition, inverse_dwt2d
from repro.jpeg2000.dwt_fast import DecodeStageTimings, run_inverse_frontend
from repro.jpeg2000.errors import (
    CodestreamError,
    DecodeLimits,
    HeaderFieldError,
    PacketError,
)
from repro.jpeg2000.quantize import dequantize, exponent_mantissa_to_step, nominal_range_bits
from repro.jpeg2000.tier1 import decode_codeblock
from repro.jpeg2000.tier2 import parse_packet

#: Largest ``exponent + guard_bits - 1`` bit-plane count a QCD field may
#: imply (5-bit exponent + 3-bit guard bits keeps well under this; anything
#: larger is a corrupt header, not a deep image).
_MAX_BITPLANES = 38

#: Environment variable consulted when the decode backend is ``"auto"``.
DEC_BACKEND_ENV_VAR = "REPRO_DEC_BACKEND"

#: Valid decoder backend names (all sample-identical).
DEC_BACKENDS = ("auto", "reference", "vectorized", "batched")


def resolve_dec_backend(backend: str | None) -> str:
    """Resolve a decode backend name, honouring :data:`DEC_BACKEND_ENV_VAR`.

    ``None``/``"auto"`` reads the environment and otherwise picks
    ``"batched"`` — the fastest path; every backend decodes to identical
    samples, so the choice is purely a speed knob.
    """
    if backend is None:
        backend = "auto"
    if backend not in DEC_BACKENDS:
        raise ValueError(
            f"unknown decode backend {backend!r}; expected one of {DEC_BACKENDS}"
        )
    if backend == "auto":
        env = os.environ.get(DEC_BACKEND_ENV_VAR, "")
        if env:
            if env not in DEC_BACKENDS:
                raise ValueError(
                    f"{DEC_BACKEND_ENV_VAR}={env!r} invalid; expected one of "
                    f"{DEC_BACKENDS}"
                )
            backend = env
    return "batched" if backend == "auto" else backend


@dataclass
class _SubbandLayout:
    band: str
    dlevel: int
    height: int
    width: int
    exponent: int
    mantissa: int


def _subband_layouts(info: CodestreamInfo) -> list[_SubbandLayout]:
    """Reconstruct subband geometry in codestream (QCD/packet) order."""
    shapes = []
    h, w = info.height, info.width
    lvl = 0
    while lvl < info.levels:
        lo_h, hi_h = (h + 1) // 2, h // 2
        lo_w, hi_w = (w + 1) // 2, w // 2
        shapes.append(
            {
                "HL": (lo_h, hi_w),
                "LH": (hi_h, lo_w),
                "HH": (hi_h, hi_w),
            }
        )
        h, w = lo_h, lo_w
        lvl += 1
    layouts = [_SubbandLayout("LL", info.levels, h, w, 0, 0)]
    for i in range(info.levels - 1, -1, -1):
        dl = i + 1
        for band in ("HL", "LH", "HH"):
            bh, bw = shapes[i][band]
            layouts.append(_SubbandLayout(band, dl, bh, bw, 0, 0))
    if len(info.quant_fields) != len(layouts):
        raise HeaderFieldError(
            f"QCD signals {len(info.quant_fields)} subbands, geometry implies "
            f"{len(layouts)}"
        )
    for lay, qf in zip(layouts, info.quant_fields):
        num_bitplanes = qf.exponent + info.guard_bits - 1
        if not (0 <= num_bitplanes <= _MAX_BITPLANES):
            raise HeaderFieldError(
                f"subband {lay.band}{lay.dlevel} implies {num_bitplanes} "
                f"bit planes, outside [0, {_MAX_BITPLANES}]"
            )
        lay.exponent = qf.exponent
        lay.mantissa = qf.mantissa
    return layouts


def decode(
    codestream: bytes,
    limits: DecodeLimits | None = None,
    *,
    backend: str | None = None,
    workers: int | None = 1,
    timings: DecodeStageTimings | None = None,
    plan: object = None,
) -> np.ndarray:
    """Decode a codestream produced by :func:`repro.jpeg2000.encoder.encode`.

    ``limits`` caps every size a corrupt header could declare (see
    :class:`repro.jpeg2000.errors.DecodeLimits`).  Malformed input of any
    kind raises a :class:`repro.jpeg2000.errors.CodestreamError` subclass;
    no bare ``IndexError``/``struct.error``/``EOFError`` escapes, and no
    allocation is sized by an unvalidated field.

    ``backend`` selects the Tier-1 decode implementation (see
    :data:`DEC_BACKENDS`; ``None``/``"auto"`` honours
    ``REPRO_DEC_BACKEND`` then defaults to ``"batched"``).  ``workers``
    fans code blocks out over a process pool and the inverse front end
    over threads (``None`` = one per core); the output is sample-identical
    for every backend and worker count.  ``timings`` (a
    :class:`repro.jpeg2000.dwt_fast.DecodeStageTimings`) accumulates
    per-stage wall time.

    ``plan`` (``None``, ``"auto"``, or a :class:`repro.plan.ExecutionPlan`)
    lets the execution planner pick the backend and worker count from the
    parsed codestream's shape.  Precedence matches the encoder: an
    explicit ``backend``/``workers`` argument or the ``REPRO_DEC_BACKEND``
    environment variable always wins over the plan.  The decoded samples
    are identical under every plan.
    """
    t_start = time.perf_counter()
    info = parse_codestream(codestream, limits=limits)
    if plan is not None:
        backend, workers = _apply_decode_plan(plan, backend, workers, info)
    resolved = resolve_dec_backend(backend)
    try:
        if resolved == "reference":
            out = _decode_parsed(info)
        else:
            out = _decode_parsed_fast(info, resolved, workers, timings)
    except CodestreamError:
        raise
    except (ValueError, ArithmeticError, IndexError, KeyError, EOFError) as exc:
        # Defensive net: anything the typed checks above did not classify
        # still surfaces as a CodestreamError, never a raw traceback type.
        raise CodestreamError(f"malformed codestream content: {exc}") from exc
    if timings is not None:
        timings.total += time.perf_counter() - t_start
    return out


def decode_reference(
    codestream: bytes, limits: DecodeLimits | None = None
) -> np.ndarray:
    """The pinned scalar decode path (the oracle every backend must match)."""
    return decode(codestream, limits, backend="reference")


def _apply_decode_plan(plan, backend, workers, info):
    """Overlay a decode plan under explicit > env > plan precedence.

    ``backend`` is planner-fillable only when left on automatic (``None``
    or ``"auto"``) with ``REPRO_DEC_BACKEND`` unset; ``workers`` only at
    its default of 1 (mirroring the encoder's convention).  ``"auto"``
    derives the worker count from the planner's Tier-1 cutover on the
    parsed shape; an :class:`repro.plan.ExecutionPlan` is applied
    verbatim.
    """
    import os

    from repro.plan.model import ExecutionPlan, estimate_code_blocks

    backend_open = backend in (None, "auto") and not os.environ.get(
        DEC_BACKEND_ENV_VAR, ""
    )
    workers_open = workers == 1
    if isinstance(plan, ExecutionPlan):
        if backend_open:
            backend = plan.tier1_backend
        if workers_open:
            workers = plan.workers
        return backend, workers
    if plan != "auto":
        raise ValueError(
            f'plan must be None, "auto", or an ExecutionPlan, got {plan!r}'
        )
    if backend_open:
        backend = "batched"  # fastest decode rung on every calibrated box
    if workers_open:
        from repro.core.workpool import tier1_auto_workers

        blocks = estimate_code_blocks(
            (info.height, info.width, info.num_components),
            info.levels, info.codeblock_size,
        )
        workers = tier1_auto_workers(None, blocks)
    return backend, workers


def _decode_parsed(info: CodestreamInfo) -> np.ndarray:
    """Scalar reference decode: per-sample Tier-1, per-stage full passes.

    Deliberately untouched by the fast backends — this is the oracle the
    vectorized/batched paths are differentially tested against.
    """
    layouts = _subband_layouts(info)
    chroma_expanded = info.reversible and info.use_mct

    # Per component, per subband: decoded coefficient planes.
    coeff: list[dict[tuple[str, int], np.ndarray]] = [
        {} for _ in range(info.num_components)
    ]
    dtype = np.int32 if info.reversible else np.float64
    for ci in range(info.num_components):
        for lay in layouts:
            coeff[ci][(lay.band, lay.dlevel)] = np.zeros(
                (lay.height, lay.width), dtype=dtype
            )

    # Packets: resolution-major, component-minor; bands in QCD order.
    pos = 0
    data = info.tile_data
    for res in range(info.levels + 1):
        if res == 0:
            res_layouts = [layouts[0]]
        else:
            dl = info.levels - res + 1
            res_layouts = [l for l in layouts if l.dlevel == dl and l.band != "LL"]
        for ci in range(info.num_components):
            grids = []
            band_specs = []
            for lay in res_layouts:
                specs, grows, gcols = partition_subband(
                    lay.height, lay.width, info.codeblock_size
                )
                grids.append((grows, gcols, len(specs)))
                band_specs.append(specs)
            parsed, pos = parse_packet(data, pos, grids)
            for lay, specs, blocks in zip(res_layouts, band_specs, parsed):
                rb = nominal_range_bits(info.bit_depth, lay.band, chroma_expanded)
                num_bitplanes = lay.exponent + info.guard_bits - 1
                step = (
                    1.0
                    if info.reversible
                    else exponent_mantissa_to_step(lay.exponent, lay.mantissa, rb)
                )
                target = coeff[ci][(lay.band, lay.dlevel)]
                for spec, blk in zip(specs, blocks):
                    if not blk.included:
                        continue
                    msbs = num_bitplanes - blk.zero_bitplanes
                    if msbs < 0:
                        raise PacketError(
                            f"block ({blk.grid_row}, {blk.grid_col}) signals "
                            f"{blk.zero_bitplanes} missing bit planes but the "
                            f"subband codes only {num_bitplanes}"
                        )
                    max_passes = 1 + 3 * (msbs - 1) if msbs else 0
                    if blk.num_passes > max_passes:
                        raise PacketError(
                            f"block ({blk.grid_row}, {blk.grid_col}) signals "
                            f"{blk.num_passes} coding passes but {msbs} bit "
                            f"planes allow at most {max_passes}"
                        )
                    vals = decode_codeblock(
                        blk.data, spec.height, spec.width, lay.band,
                        msbs, blk.num_passes,
                    )
                    if info.reversible:
                        out = vals
                    else:
                        out = dequantize(vals, step)
                    target[spec.row0 : spec.row0 + spec.height,
                           spec.col0 : spec.col0 + spec.width] = out

    # Inverse DWT per component.
    planes = []
    for ci in range(info.num_components):
        details = []
        for dl in range(1, info.levels + 1):
            details.append(
                (coeff[ci][("HL", dl)], coeff[ci][("LH", dl)], coeff[ci][("HH", dl)])
            )
        decomp = Decomposition(
            shape=(info.height, info.width), levels=info.levels,
            reversible=info.reversible,
            ll=coeff[ci][("LL", info.levels)], details=details,
        )
        planes.append(inverse_dwt2d(decomp))

    comps = mct.inverse_mct(planes, info.bit_depth, info.reversible)
    return _stack_output(comps, info.bit_depth)


def _stack_output(comps: list[np.ndarray], bit_depth: int) -> np.ndarray:
    out_dtype = np.uint8 if bit_depth <= 8 else np.uint16
    if len(comps) == 1:
        return comps[0].astype(out_dtype)
    return np.stack([c.astype(out_dtype) for c in comps], axis=-1)


def _decode_parsed_fast(
    info: CodestreamInfo,
    backend: str,
    workers: int | None,
    timings: DecodeStageTimings | None,
) -> np.ndarray:
    """Vectorized/batched decode: collect blocks, decode per image, fuse.

    The packet walk below is a line-for-line copy of the reference's
    traversal that *collects* block tasks instead of decoding inline, so
    every typed error (header, packet, tag tree) is raised at the same
    point in the same order.  Tier-1 decoding itself is total for
    validated inputs — the MQ decoder treats truncation as an endless
    ``0xFF`` tail and never raises — so deferring it cannot reorder
    failures.  Blocks then decode in one batched call (or over the work
    queue), are dequantized and placed, and the fused inverse front end
    reconstructs the components.
    """
    t0 = time.perf_counter()
    layouts = _subband_layouts(info)
    chroma_expanded = info.reversible and info.use_mct

    coeff: list[dict[tuple[str, int], np.ndarray]] = [
        {} for _ in range(info.num_components)
    ]
    dtype = np.int32 if info.reversible else np.float64
    for ci in range(info.num_components):
        for lay in layouts:
            coeff[ci][(lay.band, lay.dlevel)] = np.zeros(
                (lay.height, lay.width), dtype=dtype
            )

    # Packet walk: identical traversal and identical typed-error ordering
    # to the reference; blocks are recorded, not decoded.
    blocks_in: list[tuple[bytes, int, int, str, int, int]] = []
    placements: list[tuple[np.ndarray, object, float]] = []
    pos = 0
    data = info.tile_data
    for res in range(info.levels + 1):
        if res == 0:
            res_layouts = [layouts[0]]
        else:
            dl = info.levels - res + 1
            res_layouts = [l for l in layouts if l.dlevel == dl and l.band != "LL"]
        for ci in range(info.num_components):
            grids = []
            band_specs = []
            for lay in res_layouts:
                specs, grows, gcols = partition_subband(
                    lay.height, lay.width, info.codeblock_size
                )
                grids.append((grows, gcols, len(specs)))
                band_specs.append(specs)
            parsed, pos = parse_packet(data, pos, grids)
            for lay, specs, blocks in zip(res_layouts, band_specs, parsed):
                rb = nominal_range_bits(info.bit_depth, lay.band, chroma_expanded)
                num_bitplanes = lay.exponent + info.guard_bits - 1
                step = (
                    1.0
                    if info.reversible
                    else exponent_mantissa_to_step(lay.exponent, lay.mantissa, rb)
                )
                target = coeff[ci][(lay.band, lay.dlevel)]
                for spec, blk in zip(specs, blocks):
                    if not blk.included:
                        continue
                    msbs = num_bitplanes - blk.zero_bitplanes
                    if msbs < 0:
                        raise PacketError(
                            f"block ({blk.grid_row}, {blk.grid_col}) signals "
                            f"{blk.zero_bitplanes} missing bit planes but the "
                            f"subband codes only {num_bitplanes}"
                        )
                    max_passes = 1 + 3 * (msbs - 1) if msbs else 0
                    if blk.num_passes > max_passes:
                        raise PacketError(
                            f"block ({blk.grid_row}, {blk.grid_col}) signals "
                            f"{blk.num_passes} coding passes but {msbs} bit "
                            f"planes allow at most {max_passes}"
                        )
                    blocks_in.append((
                        blk.data, spec.height, spec.width, lay.band,
                        msbs, blk.num_passes,
                    ))
                    placements.append((target, spec, step))
    t1 = time.perf_counter()

    # Tier-1: per image, not per block.  The work queue path reassembles
    # by sequence number, so results are identical at any worker count;
    # tiny images clamp to serial exactly like the encoder.
    from repro.core.workpool import CodeBlockWorkQueue, tier1_auto_workers

    eff_workers = tier1_auto_workers(workers, len(blocks_in))
    if eff_workers > 1:
        queue = CodeBlockWorkQueue(workers=eff_workers)
        results = queue.decode_all(blocks_in)
    elif backend == "batched":
        from repro.jpeg2000.tier1_dec_vec import decode_codeblocks_batched

        results = decode_codeblocks_batched(blocks_in)
    else:
        from repro.jpeg2000.tier1_dec_vec import decode_codeblock_fast

        results = [decode_codeblock_fast(*blk) for blk in blocks_in]
    t2 = time.perf_counter()

    # Dequantize + place (elementwise; identical to the reference's
    # inline per-block handling).
    for (target, spec, step), vals in zip(placements, results):
        if info.reversible:
            out = vals
        else:
            out = dequantize(vals, step)
        target[spec.row0 : spec.row0 + spec.height,
               spec.col0 : spec.col0 + spec.width] = out
    t3 = time.perf_counter()

    # Fused inverse DWT + inverse MCT + level unshift.
    decomps = []
    for ci in range(info.num_components):
        details = []
        for dl in range(1, info.levels + 1):
            details.append(
                (coeff[ci][("HL", dl)], coeff[ci][("LH", dl)], coeff[ci][("HH", dl)])
            )
        decomps.append(Decomposition(
            shape=(info.height, info.width), levels=info.levels,
            reversible=info.reversible,
            ll=coeff[ci][("LL", info.levels)], details=details,
        ))
    comps = run_inverse_frontend(
        decomps, info.bit_depth, info.reversible, workers=workers,
    )
    out = _stack_output(comps, info.bit_depth)
    t4 = time.perf_counter()
    if timings is not None:
        timings.parse += t1 - t0
        timings.tier1 += t2 - t1
        timings.dequantize += t3 - t2
        timings.idwt_mct += t4 - t3
    return out
