"""Deadzone scalar quantization and step-size signalling (T.800 Annex E).

The reversible (lossless) path performs no quantization — coefficients are
coded exactly — but still needs per-subband dynamic-range exponents for the
QCD marker and for sizing the Tier-1 bit-plane count.  The irreversible
path quantizes each subband with a deadzone scalar quantizer whose step is
inversely proportional to the subband's synthesis L2 gain (uniform noise
weighting), signalled as an (exponent, mantissa) pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.jpeg2000.dwt import GAIN_LOG2, synthesis_gain_sq

#: Mantissa precision of the step signalling format (T.800 eq. E-3).
_MANTISSA_BITS = 11


@dataclass(frozen=True)
class SubbandQuant:
    """Quantization parameters of one subband."""

    band: str
    dlevel: int
    step: float          # quantizer step (1.0 for reversible)
    exponent: int        # epsilon_b, 5 bits
    mantissa: int        # mu_b, 11 bits (0 for reversible)
    nominal_bits: int    # R_b: nominal dynamic range in bits
    num_bitplanes: int   # M_b: magnitude bit planes coded by Tier-1


def nominal_range_bits(bit_depth: int, band: str, chroma_expanded: bool) -> int:
    """R_b: sample bit depth + MCT expansion + 5/3 subband gain bits.

    ``chroma_expanded`` marks RCT chroma components, whose dynamic range is
    one bit wider than the input samples.
    """
    if band not in GAIN_LOG2:
        raise ValueError(f"unknown band {band!r}")
    return bit_depth + (1 if chroma_expanded else 0) + GAIN_LOG2[band]


def step_to_exponent_mantissa(step: float, nominal_bits: int) -> tuple[int, int]:
    """Encode ``step`` as (epsilon_b, mu_b) per T.800 eq. E-3.

    ``step = 2**(nominal_bits - epsilon) * (1 + mantissa / 2**11)``.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    exponent = nominal_bits - math.floor(math.log2(step))
    mantissa = int(round((step / 2.0 ** (nominal_bits - exponent) - 1.0) * (1 << _MANTISSA_BITS)))
    if mantissa == 1 << _MANTISSA_BITS:  # rounded up to the next power of two
        mantissa = 0
        exponent -= 1
    if not (0 <= exponent <= 31):
        raise ValueError(
            f"step {step} needs exponent {exponent} outside the 5-bit field"
        )
    return exponent, mantissa


def exponent_mantissa_to_step(exponent: int, mantissa: int, nominal_bits: int) -> float:
    """Decode (epsilon_b, mu_b) back to the real step size."""
    if not (0 <= exponent <= 31):
        raise ValueError(f"exponent out of range: {exponent}")
    if not (0 <= mantissa < (1 << _MANTISSA_BITS)):
        raise ValueError(f"mantissa out of range: {mantissa}")
    return 2.0 ** (nominal_bits - exponent) * (1.0 + mantissa / (1 << _MANTISSA_BITS))


def derive_quant(
    band: str,
    dlevel: int,
    bit_depth: int,
    lossless: bool,
    guard_bits: int,
    base_step: float,
    chroma_expanded: bool = False,
) -> SubbandQuant:
    """Quantization parameters for one subband.

    Lossy steps follow the uniform-visual-weighting rule ``base_step /
    sqrt(G_b)`` where ``G_b`` is the squared synthesis L2 gain, so each
    subband contributes equal reconstruction MSE per unit of quantizer
    noise.
    """
    rb = nominal_range_bits(bit_depth, band, chroma_expanded)
    if lossless:
        exponent = rb
        step = 1.0
        mantissa = 0
    else:
        gain = math.sqrt(synthesis_gain_sq(band, dlevel, reversible=False))
        step = base_step * 2.0**bit_depth / gain
        exponent, mantissa = step_to_exponent_mantissa(step, rb)
        step = exponent_mantissa_to_step(exponent, mantissa, rb)  # signalled value
    num_bitplanes = exponent + guard_bits - 1
    return SubbandQuant(
        band=band, dlevel=dlevel, step=step, exponent=exponent,
        mantissa=mantissa, nominal_bits=rb, num_bitplanes=num_bitplanes,
    )


def quantize(coeffs: np.ndarray, step: float) -> np.ndarray:
    """Deadzone scalar quantization: ``sign(c) * floor(|c| / step)``."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    c = np.asarray(coeffs, dtype=np.float64)
    return (np.sign(c) * np.floor(np.abs(c) / step)).astype(np.int32)


def dequantize(indices: np.ndarray, step: float, reconstruction_bias: float = 0.5) -> np.ndarray:
    """Midpoint reconstruction: ``sign(q) * (|q| + bias) * step`` for q != 0."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if not (0.0 <= reconstruction_bias < 1.0):
        raise ValueError(f"bias must be in [0, 1), got {reconstruction_bias}")
    q = np.asarray(indices, dtype=np.float64)
    mag = np.abs(q)
    return np.where(q != 0, np.sign(q) * (mag + reconstruction_bias) * step, 0.0)
