"""Whole-image batched EBCOT Tier-1 encoder backend.

:mod:`repro.jpeg2000.tier1_vec` already replaced the per-sample Python
loops of the reference coder with whole-array NumPy passes — but it still
pays the fixed per-call NumPy overhead (array allocation, ufunc dispatch,
fixpoint bookkeeping) once per code block per bit plane.  For images cut
into many small code blocks that fixed cost dominates, which is exactly
the overhead the paper amortizes by streaming many code blocks through a
single SPE kernel instead of dispatching them one at a time (Section 3.2).

This module batches *across blocks*: all same-geometry ``(h, w)`` code
blocks of an image — across every subband and component — are stacked into
3-D arrays ``(nblocks, h, w)`` and the SPP/MRP/CUP context-modelling
passes run over the whole stack per bit plane.  The per-plane NumPy cost
is then paid once per *image*, not once per block.

Correctness requirements and how they are met:

* **Byte identity.**  Code blocks are statistically independent (each has
  its own MQ coder and significance state), so stacking only batches the
  arithmetic; every per-block decision stream is sliced back out of the
  stacked emission in scan order and fed to that block's own
  :class:`~repro.jpeg2000.mq.MQEncoder` — the same ``encode_run`` loop and
  pass bookkeeping as the vectorized backend, hence byte-identical
  :class:`~repro.jpeg2000.tier1.CodeBlockResult`\\ s (``pass_dist``
  included: per-block distortion terms are summed left to right in scan
  order exactly like the reference).
* **Ragged edges.**  Edge blocks batch with each other: the group key is
  the block geometry ``(h, w)``, so an image contributes one big group of
  full-size blocks plus small groups for each distinct edge geometry.
* **Bit-depth skew.**  Blocks in a group start coding at different bit
  planes (their own ``msbs``).  Sorting each group by ``msbs`` descending
  makes the active set at plane ``p`` a contiguous *prefix* of the stack,
  so the per-plane passes operate on plain ``stack[:k]`` views — no
  gather/scatter masking — and a block simply drops out of planes above
  its MSB.  A block at its top plane joins the cleanup pass only (its
  significance state is still empty), exactly like the reference.
* **Mixed bands.**  Significance-context LUTs differ per band; groups
  carry a per-block LUT stack and gather contexts with
  ``np.take_along_axis`` (collapsing to a single shared LUT when the whole
  group agrees, which is the common case for the large full-size group
  only when one band dominates — mixed groups cost one extra gather).

The iteration structure (blocks of a group advance through planes in lock
step, each draining its own MQ state) is the software analogue of the
paper's time-shared Tier-1 SPE kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.jpeg2000 import tier1_geom
from repro.jpeg2000.mq import MQEncoder
from repro.jpeg2000.tier1 import (
    INITIAL_STATES,
    NUM_CONTEXTS,
    PASS_CLEAN,
    PASS_REF,
    PASS_SIG,
    CTX_RUNLEN,
    CTX_UNIFORM,
    CodeBlockResult,
    _validate_block,
)
from repro.jpeg2000.tier1_vec import (
    _dist_become,
    _dist_refine,
    _sign_grids,
)

_OFFSETS = tier1_geom.NEIGHBOUR_OFFSETS


@dataclass
class BatchOccupancy:
    """How well the batched backend packed blocks into stacks."""

    groups: int = 0        # distinct (h, w) geometry groups
    blocks: int = 0        # code blocks batched
    largest_group: int = 0

    @property
    def mean_blocks_per_group(self) -> float:
        return (self.blocks / self.groups) if self.groups else 0.0


def _pad3(arr: np.ndarray) -> np.ndarray:
    m, h, w = arr.shape
    out = np.zeros((m, h + 2, w + 2), dtype=arr.dtype)
    out[:, 1:-1, 1:-1] = arr
    return out


def _views3(padded: np.ndarray, h: int, w: int) -> list[np.ndarray]:
    return [padded[:, 1 + dr:1 + dr + h, 1 + dc:1 + dc + w]
            for dr, dc in _OFFSETS]


def _split_scan_sums(vals: np.ndarray, counts) -> list[float]:
    """Per-block left-to-right float sums of block-major ``vals``.

    Matches the reference's scan-order accumulation (and
    ``tier1_vec._scan_sum``) bit for bit per block.
    """
    lst = vals.tolist()
    out = []
    o = 0
    for c in counts:
        c = int(c)
        out.append(float(sum(lst[o:o + c])))
        o += c
    return out


_CANONICAL_BAND = {"LL": "LL", "LH": "LL", "HL": "HL", "HH": "HH"}


def _encode_group(
    arrs: list[np.ndarray],
    bands: list[str],
    indices: list[int],
    results: list,
) -> None:
    """Encode one same-geometry group of code blocks in lock step."""
    h, w = arrs[0].shape
    n = h * w

    signed_all = np.stack([a.astype(np.int64) for a in arrs])
    mag_all = np.abs(signed_all)
    maxv = mag_all.reshape(len(arrs), -1).max(axis=1)
    msbs_all = [int(v).bit_length() for v in maxv]

    # Blocks with no magnitude bits produce the canonical empty result and
    # are dropped from the stack.
    live = [j for j, ms in enumerate(msbs_all) if ms > 0]
    for j, ms in enumerate(msbs_all):
        if ms == 0:
            results[indices[j]] = CodeBlockResult(data=b"", num_passes=0,
                                                  msbs=0)
    if not live:
        return

    # Sort by msbs descending (stable) so the blocks active at plane p are
    # always the prefix [:k] of the stack.
    live.sort(key=lambda j: -msbs_all[j])
    signed = signed_all[live]
    mag = mag_all[live]
    msbs_np = np.asarray([msbs_all[j] for j in live], dtype=np.int64)
    nb = len(live)

    geo = tier1_geom.geometry(h, w)
    order = geo.order
    earlier_self = geo.earlier_self
    earlier_top = geo.earlier_top

    # Per-block significance LUTs; collapse to one shared LUT when the
    # whole group codes the same band class (LL/LH share a table).
    canon = [_CANONICAL_BAND.get(bands[j]) for j in live]
    single_lut = None
    luts = None
    if len(set(canon)) == 1:
        single_lut = tier1_geom.sig_lut_array(bands[live[0]])
    else:
        luts = np.stack([tier1_geom.sig_lut_array(bands[j]) for j in live])

    def ctx_grid(eff, m):
        hc = eff[0].astype(np.int16) + eff[1]
        vc = eff[2].astype(np.int16) + eff[3]
        dc = eff[4].astype(np.int16) + eff[5] + eff[6] + eff[7]
        code = hc * 15 + vc * 5 + dc
        if single_lut is not None:
            return single_lut[code]
        flat = np.take_along_axis(
            luts[:m], code.reshape(m, n).astype(np.intp), axis=1
        )
        return flat.reshape(m, h, w)

    sgn_u8 = (signed < 0).view(np.uint8)
    signw_views = _views3(
        _pad3(np.where(signed < 0, -1, 1).astype(np.int8)), h, w
    )[:4]

    sig = np.zeros((nb, h, w), dtype=bool)
    visited = np.zeros((nb, h, w), dtype=bool)
    refined = np.zeros((nb, h, w), dtype=bool)

    mqs = [MQEncoder(NUM_CONTEXTS, INITIAL_STATES) for _ in range(nb)]
    res = [CodeBlockResult(data=b"", num_passes=0, msbs=int(ms))
           for ms in msbs_np]

    def end_pass(j: int, kind: str, nsym: int, dist: float) -> None:
        r = res[j]
        r.pass_types.append(kind)
        r.pass_lengths.append(mqs[j].safe_length())
        r.pass_dist.append(dist)
        r.pass_symbols.append(nsym)

    def emit(starts, tot_b, out_b, out_c, kind, dists, m) -> None:
        """Feed each block its slice of the stacked decision stream."""
        for j in range(m):
            t = int(tot_b[j])
            if t:
                s0 = int(starts[j])
                mqs[j].encode_run(out_b[s0:s0 + t], out_c[s0:s0 + t])
            end_pass(j, kind, t, dists[j])

    def sig_prop_pass(p: int, m: int, bitp: np.ndarray) -> None:
        s = sig[:m]
        cand = ~s
        sig_sh = _views3(_pad3(s), h, w)
        newly = np.zeros((m, h, w), dtype=bool)
        # Same least-fixpoint as tier1_vec, over the whole stack.  Extra
        # iterations past a given block's convergence are no-ops for it
        # (the per-block map is monotone and stable at its fixpoint), so
        # the stack converging as a whole preserves per-block results.
        while True:
            new_sh = _views3(_pad3(newly), h, w)
            eff = [sv | (nv & e)
                   for sv, nv, e in zip(sig_sh, new_sh, earlier_self)]
            ctx = ctx_grid(eff, m)
            coded = cand & (ctx != 0)
            newly2 = coded & bitp
            if np.array_equal(newly2, newly):
                break
            newly = newly2

        cv = coded.reshape(m, n)[:, order]
        bi, sp = np.nonzero(cv)           # block-major, scan order inside
        ci = order[sp]
        flat = bi * n + ci
        bits = bitp.reshape(-1)[flat].view(np.uint8)
        nly = bits.view(bool)
        ndec_b = np.bincount(bi, minlength=m)
        nsig_b = np.bincount(bi[nly], minlength=m)
        tot_b = ndec_b + nsig_b
        total = int(tot_b.sum())
        dists = [0.0] * m
        if total:
            cxs = ctx.reshape(-1)[flat]
            out_b = np.empty(total, dtype=np.uint8)
            out_c = np.empty(total, dtype=np.uint8)
            pos = np.arange(bits.size, dtype=np.int64)
            nsig = int(nsig_b.sum())
            if nsig:
                pos[1:] += np.cumsum(nly[:-1])
            out_b[pos] = bits
            out_c[pos] = cxs
            if nsig:
                sbit, sctx = _sign_grids(
                    eff, [v[:m] for v in signw_views], sgn_u8[:m]
                )
                ni = flat[nly]
                spos = pos[nly] + 1
                out_b[spos] = sbit.reshape(-1)[ni]
                out_c[spos] = sctx.reshape(-1)[ni]
                dists = _split_scan_sums(
                    _dist_become(mag.reshape(-1)[ni], p), nsig_b
                )
            starts = np.concatenate(([0], np.cumsum(tot_b[:-1])))
            emit(starts, tot_b, out_b, out_c, PASS_SIG, dists, m)
        else:
            for j in range(m):
                end_pass(j, PASS_SIG, 0, 0.0)
        sig[:m] |= newly
        visited[:m] = coded

    def mag_ref_pass(p: int, m: int, bitp: np.ndarray) -> None:
        s = sig[:m]
        cand = s & ~visited[:m]
        cv = cand.reshape(m, n)[:, order]
        bi, sp = np.nonzero(cv)
        ndec_b = np.bincount(bi, minlength=m)
        dists = [0.0] * m
        if bi.size:
            flat = bi * n + order[sp]
            sig_sh = _views3(_pad3(s), h, w)
            anysig = sig_sh[0].copy()
            for sv in sig_sh[1:]:
                anysig |= sv
            ctx = np.where(refined[:m], np.uint8(16),
                           np.where(anysig, np.uint8(15), np.uint8(14)))
            bits = bitp.reshape(-1)[flat].view(np.uint8)
            cxs = ctx.reshape(-1)[flat]
            dists = _split_scan_sums(
                _dist_refine(mag.reshape(-1)[flat], p), ndec_b
            )
            starts = np.concatenate(([0], np.cumsum(ndec_b[:-1])))
            emit(starts, ndec_b, bits, cxs, PASS_REF, dists, m)
            refined[:m] |= cand
        else:
            for j in range(m):
                end_pass(j, PASS_REF, 0, 0.0)

    def cleanup_pass(p: int, m: int, bitp: np.ndarray) -> None:
        s = sig[:m]
        cand = ~s & ~visited[:m]
        newly = cand & bitp
        sig_sh = _views3(_pad3(s), h, w)
        new_sh = _views3(_pad3(newly), h, w)
        eff = [sv | (nv & e)
               for sv, nv, e in zip(sig_sh, new_sh, earlier_self)]
        ctx = ctx_grid(eff, m)

        normal = cand.copy()
        rl_zero_top = np.zeros((m, h, w), dtype=bool)
        rl_esc_top = np.zeros((m, h, w), dtype=bool)
        is_f = np.zeros((m, h, w), dtype=bool)
        tail = np.zeros((m, h, w), dtype=bool)
        fhi = np.zeros((m, h, w), dtype=np.uint8)
        flo = np.zeros((m, h, w), dtype=np.uint8)

        nfull = h // 4
        if nfull:
            h4 = nfull * 4
            eff_t = [sv | (nv & e)
                     for sv, nv, e in zip(sig_sh, new_sh, earlier_top)]
            ctx_t = ctx_grid(eff_t, m)
            c4 = cand[:, :h4].reshape(m, nfull, 4, w)
            b4 = bitp[:, :h4].reshape(m, nfull, 4, w)
            z4 = ctx_t[:, :h4].reshape(m, nfull, 4, w) == 0
            rl = c4.all(axis=2) & z4.all(axis=2)           # (m, nfull, w)
            has1 = b4.any(axis=2)
            f = np.argmax(b4, axis=2)
            rl_z = rl & ~has1
            rl_e = rl & has1
            karr = np.arange(4, dtype=np.int64)[None, None, :, None]
            in_rl = np.broadcast_to(rl[:, :, None, :], (m, nfull, 4, w))
            normal[:, :h4] &= ~in_rl.reshape(m, h4, w)
            top = karr == 0
            rl_zero_top[:, :h4] = (rl_z[:, :, None, :] & top
                                   ).reshape(m, h4, w)
            rl_esc_top[:, :h4] = (rl_e[:, :, None, :] & top
                                  ).reshape(m, h4, w)
            is_f[:, :h4] = (rl_e[:, :, None, :] & (karr == f[:, :, None, :])
                            ).reshape(m, h4, w)
            tail[:, :h4] = (rl_e[:, :, None, :] & (karr > f[:, :, None, :])
                            ).reshape(m, h4, w)
            toprows = np.arange(nfull) * 4
            fhi[:, toprows, :] = ((f >> 1) & 1).astype(np.uint8)
            flo[:, toprows, :] = (f & 1).astype(np.uint8)

        cnt = np.zeros((m, h, w), dtype=np.int64)
        cnt[normal] = 1 + bitp[normal]
        cnt[rl_zero_top] = 1
        cnt[rl_esc_top] += 3
        cnt[is_f] += 1
        cnt[tail] += 1 + bitp[tail]

        cnt_v = cnt.reshape(m, n)[:, order]
        tot_b = cnt_v.sum(axis=1)
        total = int(tot_b.sum())
        if total == 0:
            for j in range(m):
                end_pass(j, PASS_CLEAN, 0, 0.0)
            return
        # Block-major global offsets: the exclusive cumsum over the
        # concatenated scan-ordered counts lands block j's stream at
        # starts[j] with per-sample offsets inside it.
        offs2 = np.empty((m, n), dtype=np.int64)
        flat_counts = cnt_v.reshape(-1)
        offs2[:, order] = np.concatenate(
            ([0], np.cumsum(flat_counts[:-1]))
        ).reshape(m, n)
        offs = offs2.reshape(-1)
        out_b = np.empty(total, dtype=np.uint8)
        out_c = np.empty(total, dtype=np.uint8)
        bitp_f = bitp.reshape(-1).view(np.uint8)
        ctx_f = ctx.reshape(-1)
        newly_f = newly.reshape(-1)
        sbit, sctx = _sign_grids(
            eff, [v[:m] for v in signw_views], sgn_u8[:m]
        )
        sbit_f = sbit.reshape(-1)
        sctx_f = sctx.reshape(-1)

        msk = normal.reshape(-1)
        pos = offs[msk]
        out_b[pos] = bitp_f[msk]
        out_c[pos] = ctx_f[msk]
        mn = msk & newly_f
        out_b[offs[mn] + 1] = sbit_f[mn]
        out_c[offs[mn] + 1] = sctx_f[mn]

        msk = rl_zero_top.reshape(-1)
        out_b[offs[msk]] = 0
        out_c[offs[msk]] = CTX_RUNLEN

        msk = rl_esc_top.reshape(-1)
        o = offs[msk]
        out_b[o] = 1
        out_c[o] = CTX_RUNLEN
        out_b[o + 1] = fhi.reshape(-1)[msk]
        out_c[o + 1] = CTX_UNIFORM
        out_b[o + 2] = flo.reshape(-1)[msk]
        out_c[o + 2] = CTX_UNIFORM

        msk = is_f.reshape(-1)
        spos = offs[msk] + np.where(rl_esc_top.reshape(-1)[msk], 3, 0)
        out_b[spos] = sbit_f[msk]
        out_c[spos] = sctx_f[msk]

        msk = tail.reshape(-1)
        pos = offs[msk]
        out_b[pos] = bitp_f[msk]
        out_c[pos] = ctx_f[msk]
        mt = msk & newly_f
        out_b[offs[mt] + 1] = sbit_f[mt]
        out_c[offs[mt] + 1] = sctx_f[mt]

        nv_scan = newly.reshape(m, n)[:, order]
        bi, sp = np.nonzero(nv_scan)
        dists = [0.0] * m
        if bi.size:
            ni = bi * n + order[sp]
            dists = _split_scan_sums(
                _dist_become(mag.reshape(-1)[ni], p),
                np.bincount(bi, minlength=m),
            )
        starts = np.concatenate(([0], np.cumsum(tot_b[:-1])))
        emit(starts, tot_b, out_b, out_c, PASS_CLEAN, dists, m)
        sig[:m] |= newly

    max_p = int(msbs_np[0])
    for p in range(max_p - 1, -1, -1):
        # Active prefixes: k blocks code plane p at all; the first k2 of
        # them started at a higher plane and therefore run SPP/MRP too.
        k = int(np.count_nonzero(msbs_np > p))
        k2 = int(np.count_nonzero(msbs_np > p + 1))
        bitp = ((mag[:k] >> p) & 1).astype(bool)
        if k2:
            sig_prop_pass(p, k2, bitp[:k2])
            mag_ref_pass(p, k2, bitp[:k2])
        cleanup_pass(p, k, bitp)

    for j, gj in enumerate(live):
        r = res[j]
        data = mqs[j].flush()
        r.data = data
        r.num_passes = len(r.pass_types)
        r.pass_lengths = [min(pl, len(data)) for pl in r.pass_lengths]
        if r.pass_lengths:
            r.pass_lengths[-1] = len(data)
        results[indices[gj]] = r


def encode_codeblocks_batched(
    blocks, occupancy: BatchOccupancy | None = None
) -> list[CodeBlockResult]:
    """Tier-1 encode many code blocks at once, batched by geometry.

    ``blocks`` is a sequence of ``(coeffs, band)`` pairs; the returned
    list of :class:`CodeBlockResult` matches the input order and is
    byte-identical to encoding each block with either per-block backend.
    ``occupancy`` (optional) is filled with batching statistics.
    """
    arrs = []
    bands = []
    groups: dict[tuple[int, int], list[int]] = {}
    for i, (coeffs, band) in enumerate(blocks):
        arr = _validate_block(coeffs)
        tier1_geom.sig_lut_for_band(band)  # raises on unknown bands
        arrs.append(arr)
        bands.append(band)
        groups.setdefault(arr.shape, []).append(i)

    results: list[CodeBlockResult | None] = [None] * len(arrs)
    largest = 0
    for (h, w), idxs in groups.items():
        largest = max(largest, len(idxs))
        if h * w == 0:
            for i in idxs:
                results[i] = CodeBlockResult(data=b"", num_passes=0, msbs=0)
            continue
        _encode_group([arrs[i] for i in idxs], [bands[i] for i in idxs],
                      idxs, results)

    if occupancy is not None:
        occupancy.groups = len(groups)
        occupancy.blocks = len(arrs)
        occupancy.largest_group = largest
    return results


def group_shard_count(nblocks: int, workers: int,
                      target_shards: int = 0) -> int:
    """Blocks per shard when geometry groups fan out across a worker pool.

    The default policy splits the image's blocks into about ``2 * workers``
    shards — enough shards that the dynamic queue can balance the
    data-dependent load imbalance, few enough that each worker still
    amortizes its NumPy overhead over a stack.  ``target_shards`` (from an
    :class:`repro.plan.ExecutionPlan`'s ``batch_group_shards``) overrides
    the shard target.  Returns the shard *size* (blocks per task), >= 1.
    """
    shards = target_shards if target_shards > 0 else 2 * max(1, workers)
    return max(1, -(-nblocks // shards))
