"""Shared per-geometry artifacts for the Tier-1 coder backends.

Every Tier-1 backend needs the same static data for an ``h x w`` code
block: the T.800 stripe scan order, "scanned earlier" neighbour masks,
flat neighbour index arrays, and the significance/sign context LUTs.
Before this module each backend cached its own copies behind separate
``lru_cache``s; now there is one process-wide cache keyed by geometry,
reused by the scalar reference coder (:mod:`repro.jpeg2000.tier1`), the
per-block vectorized coder (:mod:`repro.jpeg2000.tier1_vec`), and the
whole-image batched coder (:mod:`repro.jpeg2000.tier1_batch`).

The cache keeps hit/miss counters (surfaced through
:func:`repro.jpeg2000.tier1_stats.geometry_cache_stats` and the service
``/stats`` endpoint): an encode of a typical image touches only a handful
of distinct geometries, so the hit rate should sit near 100% — a low rate
means block partitioning went pathological.

Everything returned here is read-only NumPy data; callers share the same
objects, never copies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

#: Neighbour offsets in (dr, dc) form: W, E, N, S, NW, NE, SW, SE.
NEIGHBOUR_OFFSETS = ((0, -1), (0, 1), (-1, 0), (1, 0),
                     (-1, -1), (-1, 1), (1, -1), (1, 1))


def _build_sig_luts():
    """Significance context LUTs indexed by ``h*15 + v*5 + d``.

    ``h``/``v`` are the counts of significant horizontal/vertical neighbours
    (0-2) and ``d`` of diagonal neighbours (0-4).  Returns (ll_lh, hl, hh)
    flat tuples of 45 entries each (T.800 Table D.1).
    """
    ll = [0] * 45
    hh = [0] * 45
    for h in range(3):
        for v in range(3):
            for d in range(5):
                if h == 2:
                    c = 8
                elif h == 1:
                    c = 7 if v >= 1 else (6 if d >= 1 else 5)
                elif v == 2:
                    c = 4
                elif v == 1:
                    c = 3
                else:
                    c = 2 if d >= 2 else (1 if d == 1 else 0)
                ll[h * 15 + v * 5 + d] = c
                hv = h + v
                if d >= 3:
                    c = 8
                elif d == 2:
                    c = 7 if hv >= 1 else 6
                elif d == 1:
                    c = 5 if hv >= 2 else (4 if hv == 1 else 3)
                else:
                    c = 2 if hv >= 2 else (1 if hv == 1 else 0)
                hh[h * 15 + v * 5 + d] = c
    # HL swaps the roles of horizontal and vertical neighbours.
    hl = [0] * 45
    for h in range(3):
        for v in range(3):
            for d in range(5):
                hl[h * 15 + v * 5 + d] = ll[v * 15 + h * 5 + d]
    return tuple(ll), tuple(hl), tuple(hh)


SIG_LL, SIG_HL, SIG_HH = _build_sig_luts()


def sig_lut_for_band(band: str):
    """The flat 45-entry significance LUT for ``band`` (tuple of ints)."""
    if band in ("LL", "LH"):
        return SIG_LL
    if band == "HL":
        return SIG_HL
    if band == "HH":
        return SIG_HH
    raise ValueError(f"unknown band {band!r}")


def _build_sign_lut():
    """Sign context and XOR bit from clipped (H, V) contributions (D.3)."""
    table = {}
    for hc in (-1, 0, 1):
        for vc in (-1, 0, 1):
            if hc == 1:
                ctx, xor = {1: (13, 0), 0: (12, 0), -1: (11, 0)}[vc]
            elif hc == 0:
                ctx, xor = {1: (10, 0), 0: (9, 0), -1: (10, 1)}[vc]
            else:
                ctx, xor = {1: (11, 1), 0: (12, 1), -1: (13, 1)}[vc]
            table[(hc + 1) * 3 + (vc + 1)] = (ctx, xor)
    return tuple(table[k] for k in range(9))


SIGN_LUT = _build_sign_lut()

#: NumPy views of :data:`SIGN_LUT` for vectorized gathers.
SIGN_CTX = np.asarray([c for c, _ in SIGN_LUT], dtype=np.uint8)
SIGN_XOR = np.asarray([x for _, x in SIGN_LUT], dtype=np.uint8)
SIGN_CTX.setflags(write=False)
SIGN_XOR.setflags(write=False)

_SIG_LUT_ARRAYS: dict[str, np.ndarray] = {}


def sig_lut_array(band: str) -> np.ndarray:
    """Read-only uint8 array form of :func:`sig_lut_for_band`."""
    arr = _SIG_LUT_ARRAYS.get(band)
    if arr is None:
        arr = np.asarray(sig_lut_for_band(band), dtype=np.uint8)
        arr.setflags(write=False)
        _SIG_LUT_ARRAYS[band] = arr
    return arr


@dataclass(frozen=True)
class BlockGeometry:
    """Immutable static scan geometry of an ``h x w`` code block.

    Attributes
    ----------
    order:
        Flat sample indices in T.800 scan order (4-row stripes,
        column-major within a stripe); shape ``(h*w,)``.
    scanpos:
        Inverse of ``order``: scan position of each sample; shape ``(h, w)``.
    earlier_self:
        8 bool grids (W, E, N, S, NW, NE, SW, SE): neighbour ``d`` of each
        sample is inside the block and scanned strictly before the sample.
    earlier_top:
        Same, but "before the sample's stripe-column start" (where the
        cleanup pass evaluates run-length eligibility).
    nbr:
        Flat neighbour indices per sample, shape ``(h*w, 8)`` int32;
        out-of-block neighbours point at the sentinel slot ``h*w``.
    """

    height: int
    width: int
    order: np.ndarray
    scanpos: np.ndarray
    earlier_self: tuple
    earlier_top: tuple
    nbr: np.ndarray


_CACHE: dict[tuple[int, int], BlockGeometry] = {}
_CACHE_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0


def _build_geometry(h: int, w: int) -> BlockGeometry:
    n = h * w
    idx = np.arange(n, dtype=np.int64).reshape(h, w)
    parts = []
    for top in range(0, h, 4):
        parts.append(idx[top:top + 4].T.ravel())
    order = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    scanpos = np.empty(n, dtype=np.int64)
    scanpos[order] = np.arange(n, dtype=np.int64)
    scanpos = scanpos.reshape(h, w)
    toprows = (np.arange(h) // 4) * 4
    tpos = scanpos[toprows, :]
    padded = np.full((h + 2, w + 2), n + 1, dtype=np.int64)
    padded[1:-1, 1:-1] = scanpos
    earlier_self = []
    earlier_top = []
    for dr, dc in NEIGHBOUR_OFFSETS:
        nb = padded[1 + dr:1 + dr + h, 1 + dc:1 + dc + w]
        earlier_self.append(nb < scanpos)
        earlier_top.append(nb < tpos)
    nbr_padded = np.full((h + 2, w + 2), n, dtype=np.int32)
    nbr_padded[1:-1, 1:-1] = idx.astype(np.int32)
    nbr = np.empty((n, 8), dtype=np.int32)
    for k, (dr, dc) in enumerate(NEIGHBOUR_OFFSETS):
        nbr[:, k] = nbr_padded[1 + dr:1 + dr + h, 1 + dc:1 + dc + w].ravel()
    for a in [order, scanpos, nbr] + earlier_self + earlier_top:
        a.setflags(write=False)
    return BlockGeometry(
        height=h, width=w, order=order, scanpos=scanpos,
        earlier_self=tuple(earlier_self), earlier_top=tuple(earlier_top),
        nbr=nbr,
    )


def geometry(h: int, w: int) -> BlockGeometry:
    """The cached :class:`BlockGeometry` for an ``h x w`` block."""
    global _HITS, _MISSES
    key = (h, w)
    with _CACHE_LOCK:
        geo = _CACHE.get(key)
        if geo is not None:
            _HITS += 1
            return geo
        _MISSES += 1
    # Build outside the lock (pure function; a racing duplicate build is
    # harmless and the first one stored wins).
    geo = _build_geometry(h, w)
    with _CACHE_LOCK:
        return _CACHE.setdefault(key, geo)


def cache_stats() -> dict:
    """JSON-ready hit/miss counters of the shared geometry cache."""
    with _CACHE_LOCK:
        total = _HITS + _MISSES
        return {
            "hits": _HITS,
            "misses": _MISSES,
            "entries": len(_CACHE),
            "hit_rate": (_HITS / total) if total else 0.0,
        }


def reset_cache_stats() -> None:
    """Zero the hit/miss counters (tests); cached geometries are kept."""
    global _HITS, _MISSES
    with _CACHE_LOCK:
        _HITS = 0
        _MISSES = 0
