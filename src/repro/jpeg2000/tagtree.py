"""Tag trees (T.800 B.10.2) — the Tier-2 quad-tree integer coder.

Packet headers use tag trees for two purposes: first-inclusion layers and
missing-bit-plane counts of code blocks.  A tag tree codes a 2-D array of
non-negative integers relative to increasing thresholds; bits are emitted
into the packet-header :class:`~repro.utils.bitio.BitWriter` stream.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitio import BitReader, BitWriter


def _level_dims(rows: int, cols: int) -> list[tuple[int, int]]:
    dims = [(rows, cols)]
    while dims[-1] != (1, 1):
        r, c = dims[-1]
        dims.append(((r + 1) // 2, (c + 1) // 2))
    return dims


class _TagTreeBase:
    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError(f"tag tree dims must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._dims = _level_dims(rows, cols)
        self._offsets = []
        total = 0
        for r, c in self._dims:
            self._offsets.append(total)
            total += r * c
        self._num_nodes = total
        self._low = [0] * total
        self._known = [False] * total

    def _path(self, r: int, c: int) -> list[int]:
        """Node indices from the root down to leaf (r, c)."""
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise IndexError(f"leaf ({r}, {c}) outside {self.rows}x{self.cols}")
        path = []
        for lvl, (lr, lc) in enumerate(self._dims):
            path.append(self._offsets[lvl] + r * lc + c)
            r >>= 1
            c >>= 1
        path.reverse()
        return path


class TagTreeEncoder(_TagTreeBase):
    """Encodes leaf values against thresholds.  Set all values first."""

    def __init__(self, rows: int, cols: int) -> None:
        super().__init__(rows, cols)
        self._value = [0] * self._num_nodes
        self._finalized = False

    def set_value(self, r: int, c: int, value: int) -> None:
        if self._finalized:
            raise RuntimeError("tag tree already finalized by an encode call")
        if value < 0:
            raise ValueError(f"tag tree values must be non-negative, got {value}")
        self._value[self._offsets[0] + r * self.cols + c] = value

    def set_values(self, values) -> None:
        """Set every leaf at once from a ``rows x cols`` array-like.

        The bulk analogue of :meth:`set_value`; Tier-2 packet coding (and
        the rate-control loop's length pricing, which rebuilds these trees
        per iteration) fills whole grids, never single leaves.
        """
        if self._finalized:
            raise RuntimeError("tag tree already finalized by an encode call")
        arr = np.asarray(values)
        if arr.shape != (self.rows, self.cols):
            raise ValueError(
                f"expected a {self.rows}x{self.cols} grid, got shape {arr.shape}"
            )
        if arr.size and int(arr.min()) < 0:
            raise ValueError("tag tree values must be non-negative")
        base = self._offsets[0]
        self._value[base : base + self.rows * self.cols] = (
            int(v) for v in arr.ravel()
        )

    def _finalize(self) -> None:
        """Fill internal node values with the min of their children.

        Vectorized: each level is a 2x2 min-reduction of the level below,
        with out-of-range children padded by a sentinel so ragged edges
        take the min over the children that exist — exactly the original
        per-node loop.
        """
        if self._finalized:
            return
        sentinel = np.iinfo(np.int64).max
        for lvl in range(1, len(self._dims)):
            pr, pc = self._dims[lvl]
            cr, cc = self._dims[lvl - 1]
            off = self._offsets[lvl - 1]
            child = np.asarray(
                self._value[off : off + cr * cc], dtype=np.int64
            ).reshape(cr, cc)
            padded = np.full((2 * pr, 2 * pc), sentinel, dtype=np.int64)
            padded[:cr, :cc] = child
            parent = padded.reshape(pr, 2, pc, 2).min(axis=(1, 3))
            off = self._offsets[lvl]
            self._value[off : off + pr * pc] = parent.ravel().tolist()
        self._finalized = True

    def encode(self, r: int, c: int, threshold: int, bw: BitWriter) -> None:
        """Emit the bits identifying whether value(r, c) < ``threshold``."""
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._finalize()
        low = 0
        for node in self._path(r, c):
            if low > self._low[node]:
                self._low[node] = low
            while not self._known[node] and self._low[node] < threshold:
                if self._value[node] > self._low[node]:
                    bw.write_bit(0)
                    self._low[node] += 1
                else:
                    bw.write_bit(1)
                    self._known[node] = True
            low = self._low[node]


class TagTreeDecoder(_TagTreeBase):
    """Mirror of :class:`TagTreeEncoder`; reconstructs values from bits."""

    def decode(self, r: int, c: int, threshold: int, br: BitReader) -> bool:
        """Consume bits; True iff value(r, c) is determined and < threshold."""
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        low = 0
        leaf = -1
        for node in self._path(r, c):
            if low > self._low[node]:
                self._low[node] = low
            while not self._known[node] and self._low[node] < threshold:
                if br.read_bit():
                    self._known[node] = True
                else:
                    self._low[node] += 1
            low = self._low[node]
            leaf = node
        return self._known[leaf] and self._low[leaf] < threshold

    def value(self, r: int, c: int) -> int:
        """Exact value of leaf (r, c); valid only once determined."""
        leaf = self._path(r, c)[-1]
        if not self._known[leaf]:
            raise RuntimeError(f"leaf ({r}, {c}) value not yet determined")
        return self._low[leaf]

    def decode_value(self, r: int, c: int, br: BitReader, max_value: int) -> int:
        """Decode leaf (r, c) exactly by raising the threshold until it pins.

        This is how packet headers recover missing-bit-plane counts.  On a
        well-formed stream the loop ends quickly; on adversarial input it
        would otherwise climb one threshold per round until the bit stream
        runs dry, so ``max_value`` bounds the climb — a value past the cap
        raises ``ValueError`` (callers translate it into their typed
        error).
        """
        if max_value < 0:
            raise ValueError(f"max_value must be non-negative, got {max_value}")
        threshold = 1
        while not self.decode(r, c, threshold, br):
            threshold += 1
            if threshold > max_value + 1:
                raise ValueError(
                    f"tag tree value at ({r}, {c}) exceeds the cap {max_value}"
                )
        return self.value(r, c)
