"""Tag trees (T.800 B.10.2) — the Tier-2 quad-tree integer coder.

Packet headers use tag trees for two purposes: first-inclusion layers and
missing-bit-plane counts of code blocks.  A tag tree codes a 2-D array of
non-negative integers relative to increasing thresholds; bits are emitted
into the packet-header :class:`~repro.utils.bitio.BitWriter` stream.
"""

from __future__ import annotations

from repro.utils.bitio import BitReader, BitWriter


def _level_dims(rows: int, cols: int) -> list[tuple[int, int]]:
    dims = [(rows, cols)]
    while dims[-1] != (1, 1):
        r, c = dims[-1]
        dims.append(((r + 1) // 2, (c + 1) // 2))
    return dims


class _TagTreeBase:
    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError(f"tag tree dims must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._dims = _level_dims(rows, cols)
        self._offsets = []
        total = 0
        for r, c in self._dims:
            self._offsets.append(total)
            total += r * c
        self._num_nodes = total
        self._low = [0] * total
        self._known = [False] * total

    def _path(self, r: int, c: int) -> list[int]:
        """Node indices from the root down to leaf (r, c)."""
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise IndexError(f"leaf ({r}, {c}) outside {self.rows}x{self.cols}")
        path = []
        for lvl, (lr, lc) in enumerate(self._dims):
            path.append(self._offsets[lvl] + r * lc + c)
            r >>= 1
            c >>= 1
        path.reverse()
        return path


class TagTreeEncoder(_TagTreeBase):
    """Encodes leaf values against thresholds.  Set all values first."""

    def __init__(self, rows: int, cols: int) -> None:
        super().__init__(rows, cols)
        self._value = [0] * self._num_nodes
        self._finalized = False

    def set_value(self, r: int, c: int, value: int) -> None:
        if self._finalized:
            raise RuntimeError("tag tree already finalized by an encode call")
        if value < 0:
            raise ValueError(f"tag tree values must be non-negative, got {value}")
        self._value[self._offsets[0] + r * self.cols + c] = value

    def _finalize(self) -> None:
        """Fill internal node values with the min of their children."""
        if self._finalized:
            return
        for lvl in range(1, len(self._dims)):
            pr, pc = self._dims[lvl]
            cr, cc = self._dims[lvl - 1]
            for r in range(pr):
                for c in range(pc):
                    children = [
                        self._value[self._offsets[lvl - 1] + rr * cc + ccol]
                        for rr in (2 * r, 2 * r + 1) if rr < cr
                        for ccol in (2 * c, 2 * c + 1) if ccol < cc
                    ]
                    self._value[self._offsets[lvl] + r * pc + c] = min(children)
        self._finalized = True

    def encode(self, r: int, c: int, threshold: int, bw: BitWriter) -> None:
        """Emit the bits identifying whether value(r, c) < ``threshold``."""
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._finalize()
        low = 0
        for node in self._path(r, c):
            if low > self._low[node]:
                self._low[node] = low
            while not self._known[node] and self._low[node] < threshold:
                if self._value[node] > self._low[node]:
                    bw.write_bit(0)
                    self._low[node] += 1
                else:
                    bw.write_bit(1)
                    self._known[node] = True
            low = self._low[node]


class TagTreeDecoder(_TagTreeBase):
    """Mirror of :class:`TagTreeEncoder`; reconstructs values from bits."""

    def decode(self, r: int, c: int, threshold: int, br: BitReader) -> bool:
        """Consume bits; True iff value(r, c) is determined and < threshold."""
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        low = 0
        leaf = -1
        for node in self._path(r, c):
            if low > self._low[node]:
                self._low[node] = low
            while not self._known[node] and self._low[node] < threshold:
                if br.read_bit():
                    self._known[node] = True
                else:
                    self._low[node] += 1
            low = self._low[node]
            leaf = node
        return self._known[leaf] and self._low[leaf] < threshold

    def value(self, r: int, c: int) -> int:
        """Exact value of leaf (r, c); valid only once determined."""
        leaf = self._path(r, c)[-1]
        if not self._known[leaf]:
            raise RuntimeError(f"leaf ({r}, {c}) value not yet determined")
        return self._low[leaf]
