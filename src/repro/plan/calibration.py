"""One-shot host calibration: measure the machine, cache the constants.

:mod:`repro.core.calibration` holds the *Cell's* constants — cycle-level
facts about SPEs that the simulator prices timelines with.  This module is
its host-side twin: the handful of measured seconds-per-unit constants the
execution planner (:mod:`repro.plan.model`) needs to predict what a real
encode will cost *on this machine* — per-sample Tier-1 throughput per
backend, DWT chunk-pass cost per backend and filter, worker fork/dispatch
overhead, and shared-memory publish cost.

Calibration runs once (``repro calibrate`` or the first
:func:`measure_calibration` call) and persists to a versioned JSON cache —
``~/.cache/repro/calibration.json`` by default,
``REPRO_CALIBRATION_PATH`` to relocate it (tests point this at tmp paths).
The cache is invalidated when the schema version or the machine
fingerprint (CPU count, platform, Python, NumPy) changes.  Loading is
strictly measurement-free and fast (<100 ms, asserted by
``benchmarks/bench_planner.py``): a missing or stale cache falls back to
:data:`DEFAULT_HOST_CALIBRATION`, pinned from a reference dev box, so no
request ever pays a calibration cost it did not ask for.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field, replace

#: Bump when the field set or the measurement method changes; cached files
#: written under an older schema are ignored (never migrated).
#: v2: added the large-image Tier-1 anchors (``t1_per_sample_large``,
#: ``t1_anchor_small``, ``t1_anchor_large``) — the batched backend's
#: stacked working set falls out of cache on multi-megapixel images and a
#: single per-sample constant cannot represent that crossover.
SCHEMA_VERSION = 2

#: Environment override for the cache file location.
CALIBRATION_PATH_ENV = "REPRO_CALIBRATION_PATH"

#: Tier-1 backends the planner models (``"auto"`` resolves to one of them,
#: ``"reference"`` is kept so ``repro plan`` can show why it never wins).
TIER1_BACKENDS = ("reference", "vectorized", "batched")

#: Front-end backends the planner models.
DWT_BACKENDS = ("reference", "fused")


def default_cache_path() -> str:
    """``$REPRO_CALIBRATION_PATH`` or ``~/.cache/repro/calibration.json``."""
    env = os.environ.get(CALIBRATION_PATH_ENV, "")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "calibration.json")


def machine_fingerprint() -> str:
    """Stable digest of everything that would invalidate the constants."""
    import numpy as np

    raw = "|".join([
        str(os.cpu_count()),
        platform.machine(),
        platform.system(),
        platform.python_version(),
        np.__version__,
    ])
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class HostCalibration:
    """Measured seconds-per-unit constants of one machine.

    All times are seconds.  ``*_per_sample`` values are per coefficient
    sample (one pixel of one component); Tier-1 constants are calibrated
    on realistic synthetic imagery, so they bake in the typical pass/
    significance mix rather than worst-case noise.
    """

    # --- Tier-1 -----------------------------------------------------------
    #: Seconds per coefficient sample, per backend, measured on a full
    #: whole-image encode (includes the block mix a real image produces).
    t1_per_sample: dict = field(default_factory=lambda: {
        "reference": 8.1e-6, "vectorized": 2.2e-6, "batched": 1.8e-6,
    })
    #: Seconds per coefficient sample once the image is large enough that
    #: the working set no longer fits in cache.  The batched backend
    #: stacks every same-geometry code block into one array, so its
    #: per-sample cost *degrades* with image size while the per-block
    #: vectorized path stays flat — this is what lets the model predict
    #: the batched->vectorized crossover on multi-megapixel images.
    t1_per_sample_large: dict = field(default_factory=lambda: {
        "reference": 8.1e-6, "vectorized": 1.6e-6, "batched": 4.2e-6,
    })
    #: Sample counts the small/large per-sample constants are anchored at;
    #: the model log-interpolates between them and clamps outside.
    t1_anchor_small: float = 65536.0  # 256 x 256
    t1_anchor_large: float = float(4 << 20)  # 2048 x 2048
    #: Fixed per-code-block overhead per backend (setup, state init).
    t1_per_block: dict = field(default_factory=lambda: {
        "reference": 3.0e-4, "vectorized": 2.4e-3, "batched": 8.0e-4,
    })
    #: Mean coding passes per code block on 8-bit imagery (rate-control
    #: work scales with passes examined).
    t1_passes_per_block: float = 12.0

    # --- DWT front end ----------------------------------------------------
    #: Seconds per input sample for the fused / reference front end, 5/3.
    dwt_per_sample: dict = field(default_factory=lambda: {
        "reference": 1.5e-8, "fused": 8.0e-9,
    })
    #: Multiplier for the irreversible 9/7 path (four lifting steps +
    #: float arithmetic + deadzone quantization).
    dwt_97_factor: dict = field(default_factory=lambda: {
        "reference": 4.9, "fused": 3.7,
    })
    #: Fixed cost of fanning chunk passes out to threads instead of running
    #: them inline (thread submission, GIL contention, chunk-boundary
    #: traffic).  Default pinned so the serial cutover reproduces the
    #: hand-tuned 2^21-sample clamp this model replaces.
    dwt_fanout_s: float = (1 << 21) * 8.0e-9 / 2  # 0.0839 s
    #: Per chunk-task submission cost on the thread queue.
    chunk_task_s: float = 5.0e-5

    # --- Worker pool ------------------------------------------------------
    #: Per-process spawn cost (fork + import + warm-up) of a pool worker.
    pool_spawn_s: float = 1.3e-2
    #: Per-task dispatch cost (pickle + queue + wake-up) once warm.
    pool_task_s: float = 2.7e-5
    #: Shared-memory plane publish: fixed cost plus per-byte copy.
    shm_base_s: float = 2.0e-4
    shm_per_byte_s: float = 2.5e-10

    # --- Back end ---------------------------------------------------------
    #: Rate-control cost per coding pass examined (vectorized PCRD-opt).
    rate_per_pass_s: float = 4.6e-6
    #: Tier-2 cost per code block (tag trees + header pricing).
    tier2_per_block_s: float = 2.6e-5

    # --- Provenance -------------------------------------------------------
    #: ``"default"`` (pinned constants) or ``"measured"`` (this machine).
    source: str = "default"
    #: Unix time the measurement ran (0 for defaults).
    created_at: float = 0.0
    #: Fingerprint the measurement is valid for ("" for defaults).
    fingerprint: str = ""
    #: Wall seconds the calibration suite took (observability).
    measure_seconds: float = 0.0

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["schema_version"] = SCHEMA_VERSION
        return payload

    @staticmethod
    def from_json(payload: dict) -> "HostCalibration | None":
        """Parse a cached payload; None when the schema does not match."""
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != SCHEMA_VERSION:
            return None
        fields = {k: v for k, v in payload.items() if k != "schema_version"}
        try:
            calib = HostCalibration(**fields)
        except TypeError:
            return None
        # Every modelled backend must be priced, else predictions KeyError.
        if set(calib.t1_per_sample) < set(TIER1_BACKENDS):
            return None
        if set(calib.t1_per_sample_large) < set(TIER1_BACKENDS):
            return None
        if set(calib.dwt_per_sample) < set(DWT_BACKENDS):
            return None
        return calib

    @property
    def age_seconds(self) -> float | None:
        """Seconds since measurement; None for pinned defaults."""
        if not self.created_at:
            return None
        return max(0.0, time.time() - self.created_at)


#: Constants pinned from a reference development box; used whenever no
#: valid measured cache exists.  Never triggers measurement.
DEFAULT_HOST_CALIBRATION = HostCalibration()


def save_calibration(calib: HostCalibration, path: str | None = None) -> str:
    """Persist ``calib`` (atomic rename) and refresh the in-process memo."""
    out = path or default_cache_path()
    os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
    tmp = out + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(calib.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, out)
    _set_memo(calib)
    return out


def load_calibration(path: str | None = None) -> HostCalibration | None:
    """Load the cached calibration; None when missing, stale, or corrupt.

    Strictly measurement-free: this is the per-process startup path and
    must stay well under the 100 ms budget the planner bench asserts.
    """
    src = path or default_cache_path()
    try:
        with open(src) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    calib = HostCalibration.from_json(payload)
    if calib is None:
        return None
    if calib.fingerprint != machine_fingerprint():
        return None  # different machine (or toolchain): stale
    return calib


_memo: list = []  # [HostCalibration] once resolved for this process


def _set_memo(calib: HostCalibration) -> None:
    _memo.clear()
    _memo.append(calib)


def invalidate_memo() -> None:
    """Forget the per-process calibration memo (tests, recalibration)."""
    _memo.clear()


def get_calibration() -> HostCalibration:
    """The calibration every planner consumer shares: cached file if valid
    for this machine, pinned defaults otherwise.  Never measures."""
    if not _memo:
        _set_memo(load_calibration() or DEFAULT_HOST_CALIBRATION)
    return _memo[0]


# ---------------------------------------------------------------------------
# The measurement suite
# ---------------------------------------------------------------------------


def _median_time(fn, repeats: int) -> float:
    import statistics

    fn()  # warm caches / JIT'd LUT builds
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def measure_calibration(quick: bool = False) -> HostCalibration:
    """Run the micro-benchmark suite and return measured constants.

    ``quick`` trims repeats and shapes for tests/CI (seconds instead of
    tens of seconds).  Heavy modules are imported lazily so merely
    importing :mod:`repro.plan` stays cheap.
    """
    import numpy as np

    from repro.image.synthetic import watch_face_image
    from repro.jpeg2000.dwt_fast import run_frontend
    from repro.jpeg2000.encoder import encode
    from repro.jpeg2000.params import EncoderParams

    t_suite = time.perf_counter()
    reps = 1 if quick else 3
    side = 128 if quick else 256
    img = watch_face_image(side, side, channels=3)
    samples = side * side * 3

    # Tier-1 + back end: instrumented whole-image encodes per backend.
    # Per-block overhead is separated with a second, small-code-block run
    # (same pixels, 4x the blocks), solving the 2x2 linear system.
    t1_per_sample: dict = {}
    t1_per_block: dict = {}
    passes_per_block = DEFAULT_HOST_CALIBRATION.t1_passes_per_block
    rate_per_pass = DEFAULT_HOST_CALIBRATION.rate_per_pass_s
    tier2_per_block = DEFAULT_HOST_CALIBRATION.tier2_per_block_s
    for backend in TIER1_BACKENDS:
        t1_reps = 1 if backend == "reference" else reps

        def run(cb: int, _b=backend) -> "object":
            return encode(img, EncoderParams(
                tier1_backend=_b, dwt_backend="fused", codeblock_size=cb,
            ))

        n64 = len(run(64).stats.blocks)
        t64 = _encode_tier1_time(run, 64, t1_reps)
        t16 = _encode_tier1_time(run, 16, t1_reps)
        n16 = _count_blocks(run, 16)
        if n16 == n64:  # degenerate tiny shape; fold everything per-sample
            per_block = DEFAULT_HOST_CALIBRATION.t1_per_block[backend]
        else:
            per_block = max(1e-7, (t16 - t64) / (n16 - n64))
        per_sample = max(1e-9, (t64 - per_block * n64) / samples)
        t1_per_sample[backend] = per_sample
        t1_per_block[backend] = per_block

    # Large-image anchor: the batched backend's stacked working set falls
    # out of cache on multi-megapixel images, so its per-sample cost there
    # is a *different* constant.  Quick mode cannot afford a megapixel
    # encode; it scales the measured small constants by the pinned
    # large/small ratios instead (shape preserved, level measured).
    t1_per_sample_large: dict = {}
    anchor_small = float(samples)
    defaults = DEFAULT_HOST_CALIBRATION
    if quick:
        anchor_large = defaults.t1_anchor_large
        for backend in TIER1_BACKENDS:
            ratio = (defaults.t1_per_sample_large[backend]
                     / defaults.t1_per_sample[backend])
            t1_per_sample_large[backend] = t1_per_sample[backend] * ratio
    else:
        large_img = watch_face_image(1024, 1024, channels=1)
        anchor_large = float(large_img.size)
        n_large = None
        for backend in ("vectorized", "batched"):
            result = encode(large_img, EncoderParams(
                tier1_backend=backend, dwt_backend="fused",
            ))
            if n_large is None:
                n_large = len(result.stats.blocks)
            t_large = result.timings.tier1 if result.timings else 0.0
            t1_per_sample_large[backend] = max(
                1e-9,
                (t_large - t1_per_block[backend] * n_large) / anchor_large,
            )
        # The reference coder touches one sample at a time — no stacked
        # working set, so its cost stays flat with size.
        t1_per_sample_large["reference"] = t1_per_sample["reference"]

    # Rate control + Tier-2 from one instrumented lossy encode.
    lossy = encode(img, EncoderParams(
        lossless=False, rate=0.25, tier1_backend="batched",
    ))
    total_passes = sum(b.num_passes for b in lossy.stats.blocks)
    nblocks = len(lossy.stats.blocks)
    if total_passes and lossy.timings is not None:
        rate_per_pass = max(1e-9, lossy.timings.rate_control / total_passes)
        passes_per_block = total_passes / max(1, nblocks)
    if nblocks and lossy.timings is not None and lossy.timings.tier2 > 0:
        tier2_per_block = lossy.timings.tier2 / nblocks

    # DWT front end: per-sample cost per backend and filter.
    comps = [img[:, :, c] for c in range(3)]
    dwt_per_sample: dict = {}
    dwt_97_factor: dict = {}
    for backend in DWT_BACKENDS:
        t53 = _median_time(
            lambda _b=backend: run_frontend(
                comps, 8, EncoderParams(), backend=_b, workers=1
            ),
            reps,
        )
        t97 = _median_time(
            lambda _b=backend: run_frontend(
                comps, 8, EncoderParams(lossless=False, rate=0.25),
                backend=_b, workers=1,
            ),
            reps,
        )
        dwt_per_sample[backend] = max(1e-10, t53 / samples)
        dwt_97_factor[backend] = max(1.0, t97 / t53)

    # Thread fan-out tax: fused front end with 2 chunk threads vs serial on
    # a shape below the historical cutover — the measured *loss* is the
    # fixed cost parallelism must amortize.  (On saturated or single-core
    # boxes the loss can be large; it is clamped, not trusted blindly.)
    t_ser = _median_time(
        lambda: run_frontend(comps, 8, EncoderParams(), backend="fused",
                             workers=1),
        reps,
    )
    # The auto-serial clamp would turn the parallel probe back into the
    # serial one on sub-cutover shapes; disable it for the measurement.
    prev_env = os.environ.get("REPRO_DWT_AUTO_SERIAL_SAMPLES")
    os.environ["REPRO_DWT_AUTO_SERIAL_SAMPLES"] = "0"
    try:
        t_par = _median_time(
            lambda: run_frontend(comps, 8, EncoderParams(), backend="fused",
                                 workers=2, chunk_cols=64),
            reps,
        )
    finally:
        if prev_env is None:
            os.environ.pop("REPRO_DWT_AUTO_SERIAL_SAMPLES", None)
        else:
            os.environ["REPRO_DWT_AUTO_SERIAL_SAMPLES"] = prev_env
    dwt_fanout = min(0.5, max(1e-3, t_par - t_ser))

    # Chunk-task submission cost on the thread queue.
    from repro.core.workpool import ChunkWorkQueue

    ntasks = 64
    with ChunkWorkQueue(2) as q:
        q.run([lambda: None])
        chunk_task = max(
            1e-6, _median_time(lambda: q.run([(lambda: None)] * ntasks), reps)
            / ntasks,
        )

    # Process-pool spawn and warm per-task dispatch costs.
    import multiprocessing

    t0 = time.perf_counter()
    with multiprocessing.Pool(1) as pool:
        pool.apply(_noop, (0,))
        pool_spawn = time.perf_counter() - t0
        pool_task = max(
            1e-6,
            _median_time(lambda: pool.map(_noop, range(64), chunksize=1),
                         reps) / 64,
        )

    # Shared-memory publish: fixed + per-byte, from two payload sizes.
    shm_base, shm_per_byte = _measure_shm(reps)

    calib = HostCalibration(
        t1_per_sample=t1_per_sample,
        t1_per_sample_large=t1_per_sample_large,
        t1_anchor_small=anchor_small,
        t1_anchor_large=anchor_large,
        t1_per_block=t1_per_block,
        t1_passes_per_block=passes_per_block,
        dwt_per_sample=dwt_per_sample,
        dwt_97_factor=dwt_97_factor,
        dwt_fanout_s=dwt_fanout,
        chunk_task_s=chunk_task,
        pool_spawn_s=pool_spawn,
        pool_task_s=pool_task,
        shm_base_s=shm_base,
        shm_per_byte_s=shm_per_byte,
        rate_per_pass_s=rate_per_pass,
        tier2_per_block_s=tier2_per_block,
        source="measured",
        created_at=time.time(),
        fingerprint=machine_fingerprint(),
    )
    return replace(calib, measure_seconds=time.perf_counter() - t_suite)


def _noop(x):  # top-level: must pickle into pool workers
    return x


def _encode_tier1_time(run, cb: int, reps: int) -> float:
    run(cb)
    samples = []
    for _ in range(reps):
        result = run(cb)
        samples.append(result.timings.tier1 if result.timings else 0.0)
    samples.sort()
    return samples[len(samples) // 2]


def _count_blocks(run, cb: int) -> int:
    return len(run(cb).stats.blocks)


def _measure_shm(reps: int) -> tuple[float, float]:
    try:
        from repro.core.workpool import publish_shared_bytes, read_shared_bytes
        from multiprocessing import shared_memory  # noqa: F401  (support probe)
    except ImportError:
        return (DEFAULT_HOST_CALIBRATION.shm_base_s,
                DEFAULT_HOST_CALIBRATION.shm_per_byte_s)

    def roundtrip(nbytes: int) -> None:
        seg, desc = publish_shared_bytes(bytes(nbytes))
        try:
            read_shared_bytes(desc)
        finally:
            seg.close()
            try:
                seg.unlink()
            except (OSError, FileNotFoundError):
                pass

    try:
        small, big = 64 * 1024, 4 * 1024 * 1024
        t_small = _median_time(lambda: roundtrip(small), reps)
        t_big = _median_time(lambda: roundtrip(big), reps)
        per_byte = max(1e-12, (t_big - t_small) / (big - small))
        base = max(1e-6, t_small - per_byte * small)
        return base, per_byte
    except Exception:
        return (DEFAULT_HOST_CALIBRATION.shm_base_s,
                DEFAULT_HOST_CALIBRATION.shm_per_byte_s)


