"""The planner's cost model: shape in, :class:`ExecutionPlan` out.

This is the paper's Section 2 decomposition argument promoted to a
load-bearing runtime component: instead of hand-tuned clamps and seven
``REPRO_*`` environment variables, the per-request configuration (Tier-1
backend, DWT backend and chunk width, worker count, dispatch path) is
*chosen* by predicting each candidate's per-stage seconds from the
machine's measured constants (:mod:`repro.plan.calibration`) and the
request's shape.  Every candidate produces byte-identical codestreams —
the repo's central invariant — so the model only ever trades time, never
correctness; the existing cross-backend identity gates keep it honest.

Chunk widths come from the paper's own decomposition scheme
(:func:`repro.core.decomposition.plan_decomposition`): the chosen worker
count plays the SPE count, and the resulting cache-line-multiple chunk
width is handed to the fused front end.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.plan.calibration import (
    DWT_BACKENDS,
    TIER1_BACKENDS,
    HostCalibration,
    get_calibration,
)

#: Planner stage keys (predicted seconds).  ``frontend`` covers level
#: shift + MCT + DWT + quantize — the fused front end runs them as one
#: set of chunk passes, so the model prices them together.
PLAN_STAGES = ("frontend", "tier1", "rate_control", "tier2")


@dataclass(frozen=True)
class RequestShape:
    """Everything about a request the cost model conditions on."""

    height: int
    width: int
    components: int = 1
    lossless: bool = True
    levels: int = 5
    codeblock_size: int = 64
    rate: float | None = None
    tile_size: int | None = None

    @property
    def samples(self) -> int:
        return self.height * self.width * self.components

    @property
    def raw_bytes(self) -> int:
        return self.samples  # planner models 8-bit input; 16-bit ~2x

    def code_blocks(self) -> int:
        if self.tile_size is None:
            return estimate_code_blocks(
                (self.height, self.width, self.components),
                self.levels, self.codeblock_size,
            )
        # Tiled: each tile runs its own decomposition, so block counts
        # are per tile (edge tiles are smaller), then summed.
        total = 0
        for r0 in range(0, self.height, self.tile_size):
            th = min(self.tile_size, self.height - r0)
            for c0 in range(0, self.width, self.tile_size):
                tw = min(self.tile_size, self.width - c0)
                total += estimate_code_blocks(
                    (th, tw, self.components),
                    self.levels, self.codeblock_size,
                )
        return total

    @staticmethod
    def from_request(shape, params) -> "RequestShape":
        """Build from an image shape tuple and an ``EncoderParams``."""
        h, w = int(shape[0]), int(shape[1])
        comps = int(shape[2]) if len(shape) == 3 else 1
        return RequestShape(
            height=h, width=w, components=comps,
            lossless=params.lossless, levels=params.levels,
            codeblock_size=params.codeblock_size, rate=params.rate,
            tile_size=getattr(params, "tile_size", None),
        )


def estimate_code_blocks(shape, levels: int, codeblock_size: int) -> int:
    """Code blocks a ``shape`` image yields (all components, all subbands).

    Mirrors the tiling the encoder performs without running it: level
    ``l`` has an LL quadrant of ceil(h/2^l) x ceil(w/2^l); the three
    detail bands at level ``l`` share the LL(l-1) split.  (Moved here from
    the micro-batcher so every consumer shares one estimator.)
    """
    h, w = int(shape[0]), int(shape[1])
    channels = int(shape[2]) if len(shape) == 3 else 1

    def blocks_in(bh: int, bw: int) -> int:
        if bh <= 0 or bw <= 0:
            return 0
        return -(-bh // codeblock_size) * -(-bw // codeblock_size)

    per_component = 0
    lh, lw = h, w
    for _ in range(levels):
        hh, hw = lh - lh // 2, lw - lw // 2  # ceil halves (low-pass)
        dh, dw = lh // 2, lw // 2  # floor halves (high-pass)
        per_component += blocks_in(hh, dw) + blocks_in(dh, hw) + blocks_in(dh, dw)
        lh, lw = hh, hw
    per_component += blocks_in(lh, lw)  # final LL
    return per_component * channels


def choose_tile_size(
    height: int, width: int, components: int, mem_budget: int
) -> int | None:
    """Pick a tile size so one streaming tile row fits ``mem_budget`` bytes.

    Mirrors the encoder's measured working-set estimate
    (:data:`repro.jpeg2000.params.TILE_WORKSET_BYTES` per sample): a row
    of ``ceil(w/ts)`` tiles costs about ``w * ts * components *
    TILE_WORKSET_BYTES`` bytes.  Returns ``None`` when the whole image
    already fits — tiling then only adds header overhead — otherwise the
    largest power-of-two tile size (>= 64) whose row fits.
    """
    from repro.jpeg2000.params import TILE_WORKSET_BYTES

    if mem_budget <= 0:
        raise ValueError(f"mem_budget must be > 0, got {mem_budget}")
    per_sample = components * TILE_WORKSET_BYTES
    if height * width * per_sample <= mem_budget:
        return None
    ts = 64
    while ts * 2 <= min(height, width) and \
            width * (ts * 2) * per_sample <= mem_budget:
        ts *= 2
    return ts


@dataclass(frozen=True)
class ExecutionPlan:
    """One full execution configuration, with its predicted cost.

    Frozen and hashable (predictions ride as a tuple) so a plan can sit
    inside the frozen ``EncoderParams``.  ``batch_group_shards`` sizes the
    batched backend's geometry-group sharding (0 keeps the default
    ``2 * workers`` policy).
    """

    tier1_backend: str = "batched"
    dwt_backend: str = "fused"
    dwt_chunk_cols: int | None = None
    workers: int = 1
    #: Informational: the dispatch path the model expects the encoder to
    #: take ("serial" or "pool"); the encoder's own shm-vs-pickle fallback
    #: still applies at run time.
    dispatch: str = "serial"
    batch_group_shards: int = 0
    #: Predicted per-stage seconds, ``((stage, seconds), ...)``.
    predicted_s: tuple = ()
    #: ``"model"`` (chosen by the planner) or ``"fixed"`` (caller-built).
    source: str = "model"

    @property
    def predicted_total(self) -> float:
        return sum(s for _, s in self.predicted_s)

    def predicted(self) -> dict:
        return dict(self.predicted_s)

    def summary(self) -> str:
        chunk = self.dwt_chunk_cols if self.dwt_chunk_cols else "auto"
        out = (
            f"tier1={self.tier1_backend} dwt={self.dwt_backend} "
            f"chunk={chunk} workers={self.workers} dispatch={self.dispatch}"
        )
        if self.predicted_s:
            out += f" predicted={self.predicted_total * 1e3:.1f}ms"
        return out

    def header_value(self) -> str:
        """Compact form for the ``X-Plan`` response header."""
        chunk = self.dwt_chunk_cols if self.dwt_chunk_cols else "auto"
        return (
            f"t1={self.tier1_backend};dwt={self.dwt_backend};chunk={chunk};"
            f"workers={self.workers};dispatch={self.dispatch};src={self.source}"
        )

    def as_dict(self) -> dict:
        return {
            "tier1_backend": self.tier1_backend,
            "dwt_backend": self.dwt_backend,
            "dwt_chunk_cols": self.dwt_chunk_cols,
            "workers": self.workers,
            "dispatch": self.dispatch,
            "batch_group_shards": self.batch_group_shards,
            "predicted_s": dict(self.predicted_s),
            "source": self.source,
        }


def available_cores() -> int:
    return max(1, os.cpu_count() or 1)


def t1_per_sample_eff(
    calib: HostCalibration, backend: str, samples: int
) -> float:
    """Effective Tier-1 seconds per sample at ``samples`` image size.

    Log-interpolates between the calibrated small and large anchors and
    clamps outside them.  This is the one deliberately non-linear term in
    the model: the batched backend's per-sample cost *grows* with image
    size (its stacked same-geometry arrays fall out of cache), so batched
    wins small images and loses multi-megapixel ones — a crossover a
    single constant could never rank correctly.
    """
    small = calib.t1_per_sample[backend]
    large = calib.t1_per_sample_large.get(backend, small)
    lo, hi = calib.t1_anchor_small, calib.t1_anchor_large
    if samples <= lo or hi <= lo or small <= 0:
        return small
    if samples >= hi:
        return large
    f = (math.log(samples) - math.log(lo)) / (math.log(hi) - math.log(lo))
    return small * (large / small) ** f


def predict_stage_seconds(
    shape: RequestShape,
    tier1_backend: str,
    dwt_backend: str,
    workers: int,
    calib: HostCalibration | None = None,
    corrections=None,
    pool_warm: bool = False,
) -> dict:
    """Predicted seconds per stage for one candidate configuration.

    The model is deliberately first-order — linear in samples and blocks
    with fixed per-task overheads — because its job is *ranking*
    configurations, not absolute accuracy; online corrections
    (:mod:`repro.plan.corrections`) absorb the residual bias per machine.
    The one exception is :func:`t1_per_sample_eff`'s size interpolation,
    without which the batched/vectorized crossover is unrankable.
    """
    if tier1_backend not in TIER1_BACKENDS:
        raise ValueError(f"unknown tier1 backend {tier1_backend!r}")
    if dwt_backend not in DWT_BACKENDS:
        raise ValueError(f"unknown dwt backend {dwt_backend!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    c = calib or get_calibration()
    cores = available_cores()
    samples = shape.samples
    blocks = shape.code_blocks()

    # --- front end: level shift + MCT + DWT + quantize -------------------
    per_sample = c.dwt_per_sample[dwt_backend]
    if not shape.lossless:
        per_sample *= c.dwt_97_factor[dwt_backend]
    frontend = samples * per_sample
    dwt_threads = min(workers, cores) if dwt_backend == "fused" else 1
    if dwt_threads > 1:
        # Chunk threads: imperfect scaling plus the measured fan-out tax.
        nchunks = 2 * dwt_threads * (shape.levels + 1)
        frontend = (frontend / dwt_threads + c.dwt_fanout_s
                    + nchunks * c.chunk_task_s)

    # --- Tier-1 -----------------------------------------------------------
    serial = (samples * t1_per_sample_eff(c, tier1_backend, samples)
              + blocks * c.t1_per_block[tier1_backend])
    eff = min(workers, cores)
    if eff <= 1 or blocks < 2:
        tier1 = serial
    else:
        if tier1_backend == "batched":
            ntasks = min(blocks, 2 * eff)  # geometry-group shards
        else:
            ntasks = blocks
        spawn = 0.0 if pool_warm else eff * c.pool_spawn_s
        shm = c.shm_base_s + samples * 4 * c.shm_per_byte_s  # int32 planes
        tier1 = serial / eff + spawn + ntasks * c.pool_task_s + shm

    # --- back end ---------------------------------------------------------
    rate = 0.0
    if shape.rate is not None:
        rate = blocks * c.t1_passes_per_block * c.rate_per_pass_s
    tier2 = blocks * c.tier2_per_block_s

    out = {
        "frontend": frontend, "tier1": tier1,
        "rate_control": rate, "tier2": tier2,
    }
    if corrections is not None:
        out = {stage: corrections.corrected(stage, s)
               for stage, s in out.items()}
    return out


def _chunk_cols_for(shape: RequestShape, workers: int) -> int | None:
    """Chunk width from the paper's decomposition plan (Section 2).

    ``workers`` plays the SPE count; the aligned plan's constant-width SPE
    chunks are cache-line multiples by construction.  Serial runs keep the
    whole-plane default (``None``) — one pass, no boundaries to amortize.
    """
    if workers <= 1:
        return None
    from repro.core.decomposition import plan_decomposition

    plan = plan_decomposition(
        height=shape.height, width=shape.width, elem_bytes=4,
        num_spes=2 * workers,
    )
    widths = [ch.width for ch in plan.chunks if ch.owner != "PPE"]
    return max(widths) if widths else None


def candidate_configs(max_workers: int | None = None) -> list:
    """The (tier1, workers) grid the planner ranks.

    The reference coders are never candidates — they exist as differential
    oracles, and the model (correctly) prices them an order of magnitude
    slower; ``repro plan`` still shows them for explanation.
    """
    cores = available_cores()
    cap = cores if max_workers is None else max(1, min(max_workers, cores))
    workers = [1]
    w = 2
    while w <= cap:
        workers.append(w)
        w *= 2
    if cap > 1 and cap not in workers:
        workers.append(cap)
    return [
        (t1, w) for t1 in ("vectorized", "batched") for w in workers
    ]


def choose_plan(
    shape: RequestShape,
    calib: HostCalibration | None = None,
    max_workers: int | None = None,
    corrections=None,
    pool_warm: bool = False,
) -> ExecutionPlan:
    """Rank every candidate configuration and return the cheapest.

    Deterministic for a fixed calibration: ties break toward fewer
    workers, then the batched backend (lower constant overhead at scale).
    """
    calib = calib or get_calibration()
    best: tuple | None = None
    for t1, w in candidate_configs(max_workers):
        pred = predict_stage_seconds(
            shape, t1, "fused", w, calib=calib,
            corrections=corrections, pool_warm=pool_warm,
        )
        total = sum(pred.values())
        rank = (total, w, 0 if t1 == "batched" else 1)
        if best is None or rank < best[0]:
            best = (rank, t1, w, pred)
    _, t1, w, pred = best
    return ExecutionPlan(
        tier1_backend=t1,
        dwt_backend="fused",
        dwt_chunk_cols=_chunk_cols_for(shape, w),
        workers=w,
        dispatch="serial" if min(w, available_cores()) <= 1 else "pool",
        batch_group_shards=0 if w <= 1 else 2 * w,
        predicted_s=tuple(sorted(pred.items())),
        source="model",
    )


def explain(
    shape: RequestShape,
    calib: HostCalibration | None = None,
    max_workers: int | None = None,
) -> str:
    """Human-oriented candidate table for ``repro plan <shape>``."""
    calib = calib or get_calibration()
    chosen = choose_plan(shape, calib=calib, max_workers=max_workers)
    lines = [
        f"shape: {shape.height}x{shape.width}x{shape.components}  "
        f"{'lossless' if shape.lossless else f'lossy rate={shape.rate}'}  "
        f"levels={shape.levels} cb={shape.codeblock_size}  "
        f"({shape.samples} samples, {shape.code_blocks()} code blocks)",
        f"calibration: {calib.source}"
        + (f", age {calib.age_seconds:.0f}s" if calib.age_seconds is not None
           else " (pinned constants; run `repro calibrate`)"),
        "",
        f"{'tier1':>11} {'dwt':>10} {'workers':>7} "
        f"{'frontend':>9} {'tier1_s':>9} {'rate':>8} {'tier2':>8} "
        f"{'total':>9}",
    ]
    worker_grid = sorted({w for _, w in candidate_configs(max_workers)})
    for t1 in TIER1_BACKENDS:
        for dwt in DWT_BACKENDS:
            for w in worker_grid:
                pred = predict_stage_seconds(shape, t1, dwt, w, calib=calib)
                mark = " <- chosen" if (
                    t1 == chosen.tier1_backend and dwt == chosen.dwt_backend
                    and w == chosen.workers
                ) else ""
                lines.append(
                    f"{t1:>11} {dwt:>10} {w:>7} "
                    f"{pred['frontend']:>8.4f}s {pred['tier1']:>8.4f}s "
                    f"{pred['rate_control']:>7.4f}s {pred['tier2']:>7.4f}s "
                    f"{sum(pred.values()):>8.4f}s{mark}"
                )
    lines.append("")
    lines.append(f"plan: {chosen.summary()}")
    return "\n".join(lines)
