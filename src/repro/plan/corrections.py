"""Online correction of the cost model from live stage timings.

The calibrated constants are measured once on an idle machine; a serving
shard sees a different reality (co-tenants, thermal state, content mix).
Rather than re-calibrating — expensive and disruptive — each shard keeps
one multiplicative correction factor per predicted stage and nudges it
toward the observed actual/predicted ratio with an exponentially-weighted
moving average.  Factors are bounded so a single pathological request
(page-cache miss storm, swap stall) cannot poison future plans, and the
EWMA forgets old regimes at a rate set by ``alpha``.

Corrections adjust *predictions only*.  They never touch the persisted
calibration file and never change what a plan is allowed to choose — a
wrong factor costs some latency until the average recovers, nothing more.
"""

from __future__ import annotations

import threading


class OnlineCorrections:
    """Per-stage multiplicative EWMA corrections, bounded and thread-safe."""

    #: Default smoothing weight: one observation moves a factor 20 % of
    #: the way to the new ratio — fast enough to track a regime change in
    #: ~10 requests, slow enough to shrug off one outlier.
    DEFAULT_ALPHA = 0.2
    #: A stage prediction can be scaled by at most 4x in either direction.
    FACTOR_MIN = 0.25
    FACTOR_MAX = 4.0

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._factors: dict[str, float] = {}
        self._samples: dict[str, int] = {}
        self._lock = threading.Lock()

    def observe(self, stage: str, predicted_s: float, actual_s: float) -> None:
        """Fold one (predicted, actual) pair into the stage's factor.

        Non-positive inputs are ignored: a stage that did not run (e.g.
        rate control on a lossless request) carries no signal.
        """
        if predicted_s <= 0.0 or actual_s <= 0.0:
            return
        ratio = actual_s / predicted_s
        ratio = min(self.FACTOR_MAX, max(self.FACTOR_MIN, ratio))
        with self._lock:
            prev = self._factors.get(stage, 1.0)
            factor = (1.0 - self.alpha) * prev + self.alpha * ratio
            self._factors[stage] = min(
                self.FACTOR_MAX, max(self.FACTOR_MIN, factor)
            )
            self._samples[stage] = self._samples.get(stage, 0) + 1

    def factor(self, stage: str) -> float:
        with self._lock:
            return self._factors.get(stage, 1.0)

    def corrected(self, stage: str, predicted_s: float) -> float:
        """``predicted_s`` scaled by the stage's current factor."""
        return predicted_s * self.factor(stage)

    def snapshot(self) -> dict:
        """Factors + observation counts for ``/stats`` and debugging."""
        with self._lock:
            return {
                stage: {
                    "factor": round(self._factors[stage], 4),
                    "samples": self._samples.get(stage, 0),
                }
                for stage in sorted(self._factors)
            }

    def reset(self) -> None:
        with self._lock:
            self._factors.clear()
            self._samples.clear()
