"""Self-tuning execution planner.

The reproduction now has three Tier-1 backends, two front ends, worker
pools, chunk widths, and two transports — historically wired up by seven
``REPRO_*`` environment variables and hand-tuned clamps.  This package
turns the paper's "match granularity to the machine" argument (Section 2)
into the component that *makes* those choices:

- :mod:`repro.plan.calibration` — measure the machine once, cache the
  constants (versioned JSON, fingerprint-invalidated).
- :mod:`repro.plan.model` — predict per-stage seconds per candidate
  configuration; :func:`choose_plan` returns the cheapest
  :class:`ExecutionPlan`.
- :mod:`repro.plan.cutovers` — model-derived serial/parallel thresholds
  that subsume the old magic constants.
- :mod:`repro.plan.corrections` — bounded EWMA feedback from live stage
  timings back into the predictions (service shards).

Precedence is strict and uniform: **explicit > env > plan**.  A field the
caller set on :class:`~repro.jpeg2000.params.EncoderParams`, or an
environment override, always wins; the plan only fills what was left on
automatic.  Plans change execution strategy only — every plan produces
the byte-identical codestream, guarded by the existing verify layer.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, replace

from repro.plan.calibration import (
    CALIBRATION_PATH_ENV,
    DEFAULT_HOST_CALIBRATION,
    HostCalibration,
    default_cache_path,
    get_calibration,
    invalidate_memo,
    load_calibration,
    measure_calibration,
    save_calibration,
)
from repro.plan.corrections import OnlineCorrections
from repro.plan.cutovers import (
    dwt_serial_cutover_samples,
    tier1_serial_cutover_blocks,
)
from repro.plan.model import (
    ExecutionPlan,
    RequestShape,
    choose_plan,
    choose_tile_size,
    estimate_code_blocks,
    explain,
    predict_stage_seconds,
)

__all__ = [
    "CALIBRATION_PATH_ENV",
    "DEFAULT_HOST_CALIBRATION",
    "ExecutionPlan",
    "HostCalibration",
    "OnlineCorrections",
    "PlanDecision",
    "RequestShape",
    "ServicePlanner",
    "apply_plan",
    "choose_plan",
    "choose_tile_size",
    "default_cache_path",
    "dwt_serial_cutover_samples",
    "estimate_code_blocks",
    "explain",
    "get_calibration",
    "invalidate_memo",
    "load_calibration",
    "measure_calibration",
    "predict_stage_seconds",
    "resolve_plan",
    "save_calibration",
    "tier1_serial_cutover_blocks",
]

#: Environment variables that pin a field against the planner (the
#: backend resolvers consult these; the planner must not fight them).
_TIER1_ENV = "REPRO_TIER1_BACKEND"
_DWT_ENV = "REPRO_DWT_BACKEND"


@dataclass(frozen=True)
class PlanDecision:
    """What the planner decided for one request, and what it was allowed
    to touch.

    ``applied`` lists the param fields the plan actually set; ``pinned``
    lists the fields held by an explicit parameter or environment
    override (precedence: explicit > env > plan).
    """

    plan: ExecutionPlan
    applied: tuple = ()
    pinned: tuple = ()

    def as_dict(self) -> dict:
        return {
            "plan": self.plan.as_dict(),
            "applied": list(self.applied),
            "pinned": list(self.pinned),
        }


def apply_plan(params, plan: ExecutionPlan) -> tuple:
    """Overlay ``plan`` onto ``params`` under explicit > env > plan.

    A field counts as *explicit* when the caller moved it off its
    automatic default (``tier1_backend="auto"``, ``dwt_backend="auto"``,
    ``dwt_chunk_cols=None``, ``workers=1``); an env override pins the
    backend fields the same way.  ``workers=1`` is the one debatable case
    — 1 is both the default and a meaningful value — and the planner
    treats it as *unset*: callers who need to force a serial encode under
    ``plan="auto"`` pass an explicit fixed plan instead (documented in
    README).  Returns ``(new_params, PlanDecision)``.
    """
    applied: list = []
    pinned: list = []
    updates: dict = {}

    if params.tier1_backend != "auto":
        pinned.append("tier1_backend:explicit")
    elif os.environ.get(_TIER1_ENV, ""):
        pinned.append("tier1_backend:env")
    else:
        updates["tier1_backend"] = plan.tier1_backend
        applied.append("tier1_backend")

    if params.dwt_backend != "auto":
        pinned.append("dwt_backend:explicit")
    elif os.environ.get(_DWT_ENV, ""):
        pinned.append("dwt_backend:env")
    else:
        updates["dwt_backend"] = plan.dwt_backend
        applied.append("dwt_backend")

    if params.dwt_chunk_cols is not None:
        pinned.append("dwt_chunk_cols:explicit")
    elif plan.dwt_chunk_cols is not None:
        updates["dwt_chunk_cols"] = plan.dwt_chunk_cols
        applied.append("dwt_chunk_cols")

    if params.workers != 1:
        pinned.append("workers:explicit")
    else:
        updates["workers"] = plan.workers
        applied.append("workers")

    new_params = replace(params, **updates) if updates else params
    return new_params, PlanDecision(
        plan=plan, applied=tuple(applied), pinned=tuple(pinned)
    )


def resolve_plan(
    shape,
    params,
    corrections: OnlineCorrections | None = None,
    pool_warm: bool = False,
) -> tuple:
    """Resolve ``params.plan`` for an image of ``shape``.

    Returns ``(effective_params, PlanDecision | None)`` — ``None`` when
    no plan was requested.  ``"auto"`` runs the cost model;
    a caller-built :class:`ExecutionPlan` is applied verbatim (source
    ``"fixed"``).  The returned params have ``plan=None`` so downstream
    code never re-enters the planner.
    """
    requested = getattr(params, "plan", None)
    if requested is None:
        return params, None
    if isinstance(requested, ExecutionPlan):
        plan = requested if requested.source == "fixed" else replace(
            requested, source="fixed"
        )
    elif requested == "auto":
        req = RequestShape.from_request(shape, params)
        plan = choose_plan(
            req, corrections=corrections, pool_warm=pool_warm
        )
    else:
        raise ValueError(
            f'plan must be None, "auto", or an ExecutionPlan, '
            f"got {requested!r}"
        )
    base = replace(params, plan=None)
    return apply_plan(base, plan)


class ServicePlanner:
    """Per-process planner state for the encode service.

    Owns the :class:`OnlineCorrections` the shard feeds from live stage
    timings, counts which backends the model selects (for ``/stats``),
    and knows the service keeps a warm worker pool (no spawn cost in the
    predictions).
    """

    #: Stages of :class:`~repro.jpeg2000.dwt_fast.StageTimings` summed
    #: into each planner stage when feeding corrections.
    _STAGE_MAP = {
        "frontend": ("levelshift_mct", "dwt", "quantize"),
        "tier1": ("tier1",),
        "rate_control": ("rate_control",),
        "tier2": ("tier2",),
    }

    def __init__(self) -> None:
        self.corrections = OnlineCorrections()
        self._selections: dict[str, int] = {}
        self._decisions = 0
        self._lock = threading.Lock()

    def decide(self, shape, params) -> tuple:
        """``resolve_plan`` with this shard's corrections and warm pool."""
        eff, decision = resolve_plan(
            shape, params, corrections=self.corrections, pool_warm=True
        )
        if decision is not None:
            with self._lock:
                self._decisions += 1
                key = decision.plan.tier1_backend
                self._selections[key] = self._selections.get(key, 0) + 1
        return eff, decision

    def observe(self, decision: PlanDecision | None, timings) -> None:
        """Fold one encode's actual stage timings back into the model."""
        if decision is None or timings is None:
            return
        predicted = decision.plan.predicted()
        for stage, parts in self._STAGE_MAP.items():
            pred = predicted.get(stage, 0.0)
            actual = sum(getattr(timings, p, 0.0) for p in parts)
            self.corrections.observe(stage, pred, actual)

    def stats(self) -> dict:
        calib = get_calibration()
        age = calib.age_seconds
        with self._lock:
            selections = dict(self._selections)
            decisions = self._decisions
        return {
            "decisions": decisions,
            "selections": selections,
            "calibration": {
                "source": calib.source,
                "age_seconds": round(age, 1) if age is not None else None,
                "fingerprint": calib.fingerprint or None,
            },
            "corrections": self.corrections.snapshot(),
            "cutovers": {
                "dwt_serial_samples": dwt_serial_cutover_samples(calib),
                "tier1_serial_blocks": tier1_serial_cutover_blocks(calib),
            },
        }
