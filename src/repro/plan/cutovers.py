"""Model-derived serial/parallel cutovers.

These two functions subsume the hand-tuned clamps that used to live as
module constants (``dwt_fast.AUTO_SERIAL_MIN_SAMPLES = 1 << 21`` and
``workpool.TIER1_AUTO_SERIAL_MIN_BLOCKS = 24``): the thresholds are now
*derived* from the host calibration, so a machine with cheap forks or an
expensive GIL gets a cutover that matches its measurements instead of a
constant tuned on someone else's box.  With the pinned default
calibration both derivations reproduce the legacy values exactly, so
behaviour is unchanged until ``repro calibrate`` has run.

Both results are clamped to a sane range: calibration runs on loaded or
virtualised machines can produce wild overhead numbers, and a cutover is
a guardrail, not a precision instrument.
"""

from __future__ import annotations

from repro.plan.calibration import HostCalibration, get_calibration

#: Clamp range for the DWT serial cutover (input samples).  2^18 keeps
#: tiny images serial even on fork-cheap machines; 2^23 guarantees
#: multi-megapixel images may parallelize even if calibration measured a
#: pathological fan-out tax.
DWT_CUTOVER_MIN_SAMPLES = 1 << 18
DWT_CUTOVER_MAX_SAMPLES = 1 << 23

#: Clamp range for the Tier-1 serial cutover (code blocks).
TIER1_CUTOVER_MIN_BLOCKS = 8
TIER1_CUTOVER_MAX_BLOCKS = 96

#: Break-even safety margin for process-pool parallelism.  The
#: microbenchmark measures pool costs on an idle queue; under real load
#: (page-cache pressure, sibling shards, COW faults on fork) the
#: effective overhead is a small multiple of that.  Pinned so the default
#: calibration reproduces the legacy 24-block clamp.
TIER1_PARALLEL_MARGIN = 3.7

#: Nominal code block the Tier-1 break-even is priced against (full-size
#: 64x64 block; smaller subband blocks only push the cutover higher,
#: which the margin already covers).
_NOMINAL_BLOCK_SAMPLES = 64 * 64


def dwt_serial_cutover_samples(calib: HostCalibration | None = None) -> int:
    """Input samples below which the fused front end should stay serial.

    Break-even: threads save at most half the serial chunk-pass time (the
    two-worker case — larger fan-outs only help above the threshold), so
    parallelism pays off once ``samples * per_sample / 2`` exceeds the
    measured fan-out tax.  Defaults reproduce the legacy ``1 << 21``.
    """
    c = calib or get_calibration()
    per_sample = c.dwt_per_sample["fused"]
    cutover = c.dwt_fanout_s / (per_sample * 0.5)
    return int(min(DWT_CUTOVER_MAX_SAMPLES,
                   max(DWT_CUTOVER_MIN_SAMPLES, round(cutover))))


def tier1_serial_cutover_blocks(calib: HostCalibration | None = None) -> int:
    """Code blocks below which Tier-1 should stay serial.

    Break-even against the two-worker pool: overhead is two spawns plus a
    plane publish; the best case saves half the serial coding time, and
    the margin demands the saving exceed ``TIER1_PARALLEL_MARGIN`` times
    the overhead before committing.  Defaults reproduce the legacy 24.
    """
    c = calib or get_calibration()
    overhead = 2.0 * c.pool_spawn_s + c.shm_base_s
    block_s = (_NOMINAL_BLOCK_SAMPLES * c.t1_per_sample["batched"]
               + c.t1_per_block["batched"])
    cutover = 2.0 * TIER1_PARALLEL_MARGIN * overhead / block_s
    return int(min(TIER1_CUTOVER_MAX_BLOCKS,
                   max(TIER1_CUTOVER_MIN_BLOCKS, round(cutover))))
