"""Image I/O and synthetic test-image generation.

The paper transcodes a 28.3 MB BMP photograph (``waltham_dial.bmp``) to
JPEG2000.  This subpackage provides a BMP reader/writer compatible with that
workflow, PNM support for convenience, and a deterministic synthetic
"watch-face" generator used as a stand-in for the unavailable test photo.
"""

from __future__ import annotations

import numpy as np

from repro.image.bmp import parse_bmp, read_bmp, write_bmp
from repro.image.errors import ImageFormatError
from repro.image.pnm import parse_pnm, read_pnm, write_pnm
from repro.image.synthetic import (
    gradient_image,
    noise_image,
    watch_face_image,
)


def sniff_format(data: bytes) -> str | None:
    """Identify raw image bytes: ``"bmp"``, ``"pnm"``, or ``None``."""
    if data[:2] == b"BM":
        return "bmp"
    if data[:2] in (b"P5", b"P6"):
        return "pnm"
    return None


def parse_image(data: bytes) -> np.ndarray:
    """Parse BMP or binary PNM bytes into a uint8 array (HTTP upload path)."""
    fmt = sniff_format(data)
    if fmt == "bmp":
        return parse_bmp(data)
    if fmt == "pnm":
        return parse_pnm(data)
    raise ImageFormatError(
        f"unrecognized image format (magic {data[:2]!r}); expected BMP or "
        "binary PGM/PPM", reason="bad-magic",
    )


__all__ = [
    "ImageFormatError",
    "gradient_image",
    "noise_image",
    "parse_bmp",
    "parse_image",
    "parse_pnm",
    "read_bmp",
    "read_pnm",
    "sniff_format",
    "watch_face_image",
    "write_bmp",
    "write_pnm",
]
