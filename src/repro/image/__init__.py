"""Image I/O and synthetic test-image generation.

The paper transcodes a 28.3 MB BMP photograph (``waltham_dial.bmp``) to
JPEG2000.  This subpackage provides a BMP reader/writer compatible with that
workflow, PNM support for convenience, and a deterministic synthetic
"watch-face" generator used as a stand-in for the unavailable test photo.
"""

from repro.image.bmp import read_bmp, write_bmp
from repro.image.pnm import read_pnm, write_pnm
from repro.image.synthetic import (
    gradient_image,
    noise_image,
    watch_face_image,
)

__all__ = [
    "gradient_image",
    "noise_image",
    "read_bmp",
    "read_pnm",
    "watch_face_image",
    "write_bmp",
    "write_pnm",
]
