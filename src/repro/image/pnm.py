"""PGM (P5) and PPM (P6) binary reader/writer for 8- and 16-bit images.

Per the Netpbm spec, samples are one byte when ``maxval <= 255`` and two
big-endian bytes when ``256 <= maxval <= 65535``; the reader accepts
both, the writer emits ``maxval`` 255 for uint8 input and 65535 for
uint16.  Genuinely unsupported headers raise the typed
:class:`~repro.image.errors.ImageFormatError` so the HTTP layer can
answer with a structured 4xx instead of a generic failure.
"""

from __future__ import annotations

import numpy as np

from repro.image.errors import ImageFormatError


def dump_pnm(image: np.ndarray) -> bytes:
    """Serialize a uint8/uint16 gray (P5) or RGB (P6) image to PNM bytes."""
    img = np.asarray(image)
    if img.dtype == np.uint8:
        maxval = 255
    elif img.dtype == np.uint16:
        maxval = 65535
    else:
        raise ValueError(
            f"PNM writer requires uint8 or uint16 pixels, got {img.dtype}"
        )
    if img.ndim == 2:
        magic = b"P5"
        h, w = img.shape
    elif img.ndim == 3 and img.shape[2] == 3:
        magic = b"P6"
        h, w = img.shape[:2]
    else:
        raise ValueError(f"unsupported image shape {img.shape}")
    header = magic + b"\n%d %d\n%d\n" % (w, h, maxval)
    if maxval > 255:
        body = np.ascontiguousarray(img.astype(">u2")).tobytes()
    else:
        body = np.ascontiguousarray(img).tobytes()
    return header + body


def write_pnm(path: str, image: np.ndarray) -> None:
    """Write a uint8/uint16 gray (P5) or RGB (P6) image."""
    with open(path, "wb") as fh:
        fh.write(dump_pnm(image))


def read_pnm(path: str) -> np.ndarray:
    """Read a binary PGM/PPM file into a uint8 or uint16 array."""
    with open(path, "rb") as fh:
        return parse_pnm(fh.read())


def parse_pnm(data: bytes) -> np.ndarray:
    """Parse binary PGM/PPM bytes (e.g. an HTTP body) into a pixel array.

    Returns uint8 for ``maxval <= 255`` and uint16 (decoded from the
    spec's big-endian two-byte samples) for ``maxval`` up to 65535.
    """
    if data[:2] not in (b"P5", b"P6"):
        raise ImageFormatError(
            f"not a binary PNM file (magic {data[:2]!r})", reason="bad-magic"
        )
    channels = 1 if data[:2] == b"P5" else 3

    # Parse header tokens, skipping '#' comments.
    pos = 2
    tokens: list[int] = []
    while len(tokens) < 3:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if pos < len(data) and data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        if start == pos:
            raise ImageFormatError("truncated PNM header", reason="truncated")
        try:
            tokens.append(int(data[start:pos]))
        except ValueError:
            raise ImageFormatError(
                f"non-numeric PNM header token {data[start:pos]!r}",
                reason="bad-header",
            ) from None
    pos += 1  # single whitespace after maxval
    width, height, maxval = tokens
    if width <= 0 or height <= 0:
        raise ImageFormatError(
            f"bad PNM dimensions {width}x{height}", reason="bad-dimensions"
        )
    if not 1 <= maxval <= 65535:
        raise ImageFormatError(
            f"PNM maxval must be in [1, 65535], got {maxval}",
            reason="bad-maxval",
        )
    dtype = np.dtype(">u2") if maxval > 255 else np.dtype(np.uint8)
    count = width * height * channels
    if pos + count * dtype.itemsize > len(data):
        raise ImageFormatError(
            f"PNM pixel data truncated: header promises {count} "
            f"{dtype.itemsize}-byte samples", reason="truncated",
        )
    pixels = np.frombuffer(data, dtype=dtype, count=count, offset=pos)
    if maxval > 255:
        pixels = pixels.astype(np.uint16)
    if channels == 1:
        return pixels.reshape(height, width).copy()
    return pixels.reshape(height, width, 3).copy()
