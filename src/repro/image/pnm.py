"""PGM (P5) and PPM (P6) binary reader/writer for 8-bit images."""

from __future__ import annotations

import numpy as np


def dump_pnm(image: np.ndarray) -> bytes:
    """Serialize a uint8 gray (P5) or RGB (P6) image to PNM bytes."""
    img = np.asarray(image)
    if img.dtype != np.uint8:
        raise ValueError(f"PNM writer requires uint8 pixels, got {img.dtype}")
    if img.ndim == 2:
        magic = b"P5"
        h, w = img.shape
    elif img.ndim == 3 and img.shape[2] == 3:
        magic = b"P6"
        h, w = img.shape[:2]
    else:
        raise ValueError(f"unsupported image shape {img.shape}")
    header = magic + b"\n%d %d\n255\n" % (w, h)
    return header + np.ascontiguousarray(img).tobytes()


def write_pnm(path: str, image: np.ndarray) -> None:
    """Write a uint8 gray (P5) or RGB (P6) image."""
    with open(path, "wb") as fh:
        fh.write(dump_pnm(image))


def read_pnm(path: str) -> np.ndarray:
    """Read a binary PGM/PPM file into a uint8 array."""
    with open(path, "rb") as fh:
        return parse_pnm(fh.read())


def parse_pnm(data: bytes) -> np.ndarray:
    """Parse binary PGM/PPM bytes (e.g. an HTTP body) into a uint8 array."""
    if data[:2] not in (b"P5", b"P6"):
        raise ValueError(f"not a binary PNM file (magic {data[:2]!r})")
    channels = 1 if data[:2] == b"P5" else 3

    # Parse header tokens, skipping '#' comments.
    pos = 2
    tokens: list[int] = []
    while len(tokens) < 3:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if pos < len(data) and data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        if start == pos:
            raise ValueError("truncated PNM header")
        tokens.append(int(data[start:pos]))
    pos += 1  # single whitespace after maxval
    width, height, maxval = tokens
    if maxval != 255:
        raise ValueError(f"only 8-bit PNM supported, maxval={maxval}")
    count = width * height * channels
    pixels = np.frombuffer(data, dtype=np.uint8, count=count, offset=pos)
    if channels == 1:
        return pixels.reshape(height, width).copy()
    return pixels.reshape(height, width, 3).copy()
