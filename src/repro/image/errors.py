"""Typed errors for the image-parsing layer.

The HTTP front end feeds untrusted upload bytes straight into the image
parsers, so "this is not an image we support" must be distinguishable
from a genuine programming error: the former is a client-side 4xx, the
latter a 500.  :class:`ImageFormatError` subclasses :class:`ValueError`
so existing ``except ValueError`` call sites keep working, while letting
the service map format rejections to a structured response.
"""

from __future__ import annotations


class ImageFormatError(ValueError):
    """Raised when upload bytes are not a supported BMP/PNM image.

    ``reason`` is a short machine-readable slug (``"bad-magic"``,
    ``"bad-maxval"``, ``"truncated"``, ...) surfaced in the structured
    HTTP error body alongside the human-readable message.
    """

    def __init__(self, message: str, reason: str = "unsupported"):
        super().__init__(message)
        self.reason = reason
