"""Minimal BMP (Windows DIB) reader and writer.

Supports the formats the Jasper workflow in the paper needs: uncompressed
24-bit BGR and 8-bit grayscale (with a gray palette), BITMAPINFOHEADER.
Images are exchanged as ``uint8`` arrays of shape ``(H, W)`` (gray) or
``(H, W, 3)`` (RGB, channel order R,G,B).
"""

from __future__ import annotations

import struct

import numpy as np

_FILE_HEADER = struct.Struct("<2sIHHI")
_INFO_HEADER = struct.Struct("<IiiHHIIiiII")
_INFO_HEADER_SIZE = 40


def write_bmp(path: str, image: np.ndarray) -> None:
    """Write ``image`` (uint8, gray or RGB) to ``path`` as an uncompressed BMP."""
    img = np.asarray(image)
    if img.dtype != np.uint8:
        raise ValueError(f"BMP writer requires uint8 pixels, got {img.dtype}")
    if img.ndim == 2:
        _write_gray8(path, img)
    elif img.ndim == 3 and img.shape[2] == 3:
        _write_rgb24(path, img)
    else:
        raise ValueError(f"unsupported image shape {img.shape}")


def _row_stride(width: int, bytes_per_pixel: int) -> int:
    return (width * bytes_per_pixel + 3) & ~3


def _write_rgb24(path: str, img: np.ndarray) -> None:
    height, width = img.shape[:2]
    stride = _row_stride(width, 3)
    rows = np.zeros((height, stride), dtype=np.uint8)
    # BMP stores rows bottom-up in BGR order.
    rows[:, : width * 3] = img[::-1, :, ::-1].reshape(height, width * 3)
    pixel_bytes = rows.tobytes()
    offset = _FILE_HEADER.size + _INFO_HEADER_SIZE
    with open(path, "wb") as fh:
        fh.write(_FILE_HEADER.pack(b"BM", offset + len(pixel_bytes), 0, 0, offset))
        fh.write(
            _INFO_HEADER.pack(
                _INFO_HEADER_SIZE, width, height, 1, 24, 0, len(pixel_bytes), 2835, 2835, 0, 0
            )
        )
        fh.write(pixel_bytes)


def _write_gray8(path: str, img: np.ndarray) -> None:
    height, width = img.shape
    stride = _row_stride(width, 1)
    rows = np.zeros((height, stride), dtype=np.uint8)
    rows[:, :width] = img[::-1]
    pixel_bytes = rows.tobytes()
    palette = bytes(
        b for v in range(256) for b in (v, v, v, 0)
    )
    offset = _FILE_HEADER.size + _INFO_HEADER_SIZE + len(palette)
    with open(path, "wb") as fh:
        fh.write(_FILE_HEADER.pack(b"BM", offset + len(pixel_bytes), 0, 0, offset))
        fh.write(
            _INFO_HEADER.pack(
                _INFO_HEADER_SIZE, width, height, 1, 8, 0, len(pixel_bytes), 2835, 2835, 256, 0
            )
        )
        fh.write(palette)
        fh.write(pixel_bytes)


def read_bmp(path: str) -> np.ndarray:
    """Read an uncompressed 24-bit or 8-bit BMP into a uint8 array."""
    with open(path, "rb") as fh:
        return parse_bmp(fh.read())


def parse_bmp(data: bytes) -> np.ndarray:
    """Parse uncompressed BMP bytes (e.g. an HTTP body) into a uint8 array."""
    if len(data) < _FILE_HEADER.size + _INFO_HEADER_SIZE:
        raise ValueError("file too short to be a BMP")
    magic, _size, _r1, _r2, offset = _FILE_HEADER.unpack_from(data, 0)
    if magic != b"BM":
        raise ValueError(f"not a BMP file (magic {magic!r})")
    (
        header_size,
        width,
        height,
        _planes,
        bpp,
        compression,
        _img_size,
        _xppm,
        _yppm,
        palette_count,
        _important,
    ) = _INFO_HEADER.unpack_from(data, _FILE_HEADER.size)
    if header_size < _INFO_HEADER_SIZE:
        raise ValueError(f"unsupported DIB header size {header_size}")
    if compression != 0:
        raise ValueError(f"unsupported BMP compression {compression}")
    bottom_up = height > 0
    height = abs(height)
    if width <= 0 or height <= 0:
        raise ValueError(f"invalid BMP dimensions {width}x{height}")

    if bpp == 24:
        stride = _row_stride(width, 3)
        raw = np.frombuffer(data, dtype=np.uint8, count=stride * height, offset=offset)
        rows = raw.reshape(height, stride)[:, : width * 3].reshape(height, width, 3)
        img = rows[:, :, ::-1]  # BGR -> RGB
    elif bpp == 8:
        stride = _row_stride(width, 1)
        raw = np.frombuffer(data, dtype=np.uint8, count=stride * height, offset=offset)
        idx = raw.reshape(height, stride)[:, :width]
        pal_off = _FILE_HEADER.size + header_size
        count = palette_count or 256
        pal = np.frombuffer(data, dtype=np.uint8, count=count * 4, offset=pal_off)
        pal = pal.reshape(count, 4)[:, :3][:, ::-1]  # BGRA -> RGB
        if np.all(pal[:, 0] == pal[:, 1]) and np.all(pal[:, 1] == pal[:, 2]):
            img = pal[idx, 0]
        else:
            img = pal[idx]
    else:
        raise ValueError(f"unsupported BMP bit depth {bpp}")
    if bottom_up:
        img = img[::-1]
    return np.ascontiguousarray(img)
