"""Deterministic synthetic test images.

The paper's test input is a 28.3 MB photograph of a watch dial
(``waltham_dial.bmp``) that is no longer distributable.  ``watch_face_image``
synthesizes an image with the statistics that matter for JPEG2000 behaviour:

* smooth large-scale luminance gradients (energy concentrated in the low
  DWT subbands, good compressibility),
* strong local structure — dial ring, tick marks, hands — producing the
  spatially *non-uniform* Tier-1 coding cost that motivates the paper's
  dynamic work queue (Section 3.2), and
* fine-grained texture/noise so high-frequency subbands are not trivially
  empty.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np


def gradient_image(height: int, width: int, channels: int = 1) -> np.ndarray:
    """Smooth diagonal gradient; maximally compressible, useful for tests."""
    _check_dims(height, width)
    y = np.linspace(0.0, 1.0, height, dtype=np.float64)[:, None]
    x = np.linspace(0.0, 1.0, width, dtype=np.float64)[None, :]
    base = (0.5 * y + 0.5 * x) * 255.0
    img = base.astype(np.uint8)
    if channels == 1:
        return img
    out = np.empty((height, width, channels), dtype=np.uint8)
    for c in range(channels):
        out[:, :, c] = np.clip(base * (0.8 + 0.1 * c), 0, 255).astype(np.uint8)
    return out


def noise_image(height: int, width: int, channels: int = 1, seed: int = 0) -> np.ndarray:
    """Uniform random noise; incompressible worst case."""
    _check_dims(height, width)
    rng = np.random.default_rng(seed)
    shape = (height, width) if channels == 1 else (height, width, channels)
    return rng.integers(0, 256, size=shape, dtype=np.uint8)


def watch_face_image(
    height: int = 512,
    width: int = 512,
    channels: int = 3,
    seed: int = 2008,
) -> np.ndarray:
    """Synthetic watch-dial photograph (stand-in for ``waltham_dial.bmp``)."""
    _check_dims(height, width)
    if channels not in (1, 3):
        raise ValueError(f"channels must be 1 or 3, got {channels}")
    rng = np.random.default_rng(seed)

    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    cy, cx = (height - 1) / 2.0, (width - 1) / 2.0
    r = np.hypot((yy - cy) / (height / 2.0), (xx - cx) / (width / 2.0))
    theta = np.arctan2(yy - cy, xx - cx)

    # Soft studio-lighting gradient.
    lum = 170.0 - 60.0 * ((yy / height) ** 1.2) + 25.0 * np.cos(np.pi * xx / width)

    # Dial plate: bright disc with a brushed-metal radial texture.
    dial = r < 0.82
    lum = np.where(dial, 205.0 + 12.0 * np.sin(24.0 * theta) * r, lum)

    # Bezel ring.
    ring = (r > 0.82) & (r < 0.92)
    lum = np.where(ring, 60.0 + 40.0 * np.cos(6.0 * theta), lum)

    # Minute ticks: 60 dark radial marks near the dial edge.
    tick_phase = np.abs(((theta * 60.0 / (2 * np.pi)) % 1.0) - 0.5)
    ticks = dial & (r > 0.68) & (r < 0.78) & (tick_phase > 0.44)
    lum = np.where(ticks, 35.0, lum)

    # Hour numerals: 12 dark blobs.
    for k in range(12):
        ang = 2 * np.pi * k / 12.0
        ny, nx = cy + 0.58 * (height / 2.0) * np.sin(ang), cx + 0.58 * (width / 2.0) * np.cos(ang)
        blob = ((yy - ny) ** 2 + (xx - nx) ** 2) < (0.02 * height) ** 2
        lum = np.where(blob, 25.0, lum)

    # Watch hands: two dark tapered bars.
    for ang, length, half_w in ((0.7, 0.62, 0.012), (2.4, 0.45, 0.02)):
        ux, uy = np.cos(ang), np.sin(ang)
        proj = ((xx - cx) * ux + (yy - cy) * uy) / (width / 2.0)
        perp = np.abs(((xx - cx) * -uy + (yy - cy) * ux)) / (width / 2.0)
        hand = (proj > -0.06) & (proj < length) & (perp < half_w * (1.2 - proj))
        lum = np.where(hand & dial, 20.0, lum)

    # Fine film-grain noise everywhere, heavier on the dial texture.
    lum = lum + rng.normal(0.0, 1.2, size=lum.shape) + np.where(
        dial, rng.normal(0.0, 0.8, size=lum.shape), 0.0
    )
    lum = np.clip(lum, 0.0, 255.0)

    if channels == 1:
        return lum.astype(np.uint8)

    # Warm metal tint: slightly different channel gains plus chroma noise.
    out = np.empty((height, width, 3), dtype=np.uint8)
    gains = (1.02, 0.99, 0.92)
    for c, g in enumerate(gains):
        chan = lum * g + rng.normal(0.0, 0.5, size=lum.shape)
        out[:, :, c] = np.clip(chan, 0.0, 255.0).astype(np.uint8)
    return out


def _check_dims(height: int, width: int) -> None:
    if height <= 0 or width <= 0:
        raise ValueError(f"image dimensions must be positive, got {height}x{width}")
