"""Command-line interface: encode / decode / simulate / serve / verify /
fuzz / calibrate / plan.

    python -m repro encode  input.bmp output.j2c [--lossy] [--rate 0.1]
                              [--plan auto]
    python -m repro decode  input.j2c output.bmp [--backend batched]
                              [--workers auto] [--plan auto]
    python -m repro calibrate [--quick] [--output PATH]
    python -m repro plan    2048x2048x3 [--rate 0.1] [--max-workers N]
    python -m repro simulate input.bmp [--spes 8] [--ppe-threads 1]
                              [--chips 1] [--lossy] [--rate 0.1] [--estimate]
    python -m repro serve   [--port 8000] [--workers auto] [--cache-mb 64]
                              [--max-queue 32] [--admission reject|block]
                              [--shards N] [--batch-window off|auto|SECONDS]
                              [--shed-target-p95 SECONDS]
    python -m repro verify  [--quick] [--rates 0.1,0.25,1.0] [--workers 1,2]
    python -m repro fuzz    [--cases 10000] [--seed 2008] [--artifacts DIR]

``simulate`` prints the per-stage Cell/B.E. timeline for encoding the
image; ``--estimate`` uses the fast Tier-1 workload estimator instead of
the exact coder (recommended above ~512x512).  ``serve`` runs the
long-running encode service (persistent worker pool + HTTP front end);
see the README "Serving" section.  ``verify`` and ``fuzz`` run the
round-trip and decoder-robustness gates (README "Verification").
``calibrate`` measures this machine's planner constants and caches them;
``plan`` explains which execution configuration the planner would pick
for a shape (README "Execution planner").

Operational failures — malformed input files, undecodable codestreams,
failed verification — exit 1 with a one-line ``error:`` message, never a
traceback.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.cell.machine import CellMachine
from repro.core.pipeline import PipelineModel
from repro.image.bmp import read_bmp, write_bmp
from repro.image.pnm import read_pnm, write_pnm
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.errors import CodestreamError
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.tier1_stats import estimate_workload


def _read_image(path: str):
    import os

    if not os.path.exists(path):
        raise SystemExit(f"input file not found: {path}")
    if path.lower().endswith(".bmp"):
        return read_bmp(path)
    if path.lower().endswith((".pgm", ".ppm", ".pnm")):
        return read_pnm(path)
    raise SystemExit(f"unsupported input format: {path} (use .bmp/.pgm/.ppm)")


def _write_image(path: str, image) -> None:
    if path.lower().endswith(".bmp"):
        write_bmp(path, image)
    elif path.lower().endswith((".pgm", ".ppm", ".pnm")):
        write_pnm(path, image)
    else:
        raise SystemExit(f"unsupported output format: {path} (use .bmp/.pgm/.ppm)")


def _workers(value: str) -> int | None:
    if value.lower() in ("auto", "all", "0"):
        return None  # one worker per CPU core
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"workers must be >= 1, got {n}")
    return n


def _params(args, image=None) -> EncoderParams:
    mem_budget = getattr(args, "mem_budget", None)
    if mem_budget is not None:
        mem_budget *= 2**20
    tile = getattr(args, "tile", None)
    if tile is None and mem_budget is not None and image is not None:
        # --mem-budget without --tile: let the planner size the tiles so a
        # streaming tile row fits the budget.
        from repro.plan.model import choose_tile_size

        ncomp = 1 if image.ndim == 2 else image.shape[2]
        tile = choose_tile_size(
            image.shape[0], image.shape[1], ncomp, mem_budget
        )
    common = dict(levels=args.levels, codeblock_size=args.codeblock,
                  tier1_backend=args.tier1_backend, workers=args.workers,
                  dwt_backend=args.dwt_backend,
                  dwt_chunk_cols=args.dwt_chunk,
                  tile_size=tile,
                  precinct_size=getattr(args, "precinct", None),
                  progression=getattr(args, "progression", "lrcp").upper(),
                  mem_budget=mem_budget,
                  self_check=args.self_check,
                  plan="auto" if getattr(args, "plan", "fixed") == "auto"
                  else None)
    if args.lossy or args.rate is not None:
        return EncoderParams(lossless=False, rate=args.rate, **common)
    return EncoderParams(lossless=True, **common)


def _add_coding_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--lossy", action="store_true",
                   help="irreversible 9/7 + ICT path (-O mode=real)")
    p.add_argument("--rate", type=float, default=None,
                   help="target compressed fraction of raw size (implies --lossy)")
    p.add_argument("--levels", type=int, default=5, help="DWT levels")
    p.add_argument("--codeblock", type=int, default=64,
                   help="code block size (64 = paper, 32 = Muta et al.)")
    p.add_argument("--workers", type=_workers, default=1, metavar="N",
                   help="Tier-1 worker processes; 'auto' = one per core "
                        "(codestream is identical for any value)")
    p.add_argument("--tier1-backend", default="auto",
                   choices=("auto", "reference", "vectorized", "batched"),
                   help="Tier-1 coder implementation (all are bit-exact); "
                        "'batched' stacks same-geometry code blocks and "
                        "codes them per image")
    p.add_argument("--dwt-backend", default="auto",
                   choices=("auto", "reference", "fused"),
                   help="front-end (MCT+DWT+quantize) implementation; "
                        "'fused' = interleaved lifting over column chunks "
                        "(byte-identical to 'reference')")
    p.add_argument("--dwt-chunk", type=int, default=None, metavar="COLS",
                   help="fused front-end chunk width in samples (rounded up "
                        "to a multiple of 32); default: automatic")
    p.add_argument("--tile", type=int, default=None, metavar="SIZE",
                   help="tile the image into SIZExSIZE tiles, each an "
                        "independent codestream tile (random spatial access "
                        "via TLM; tiles encode in parallel and stream in "
                        "rows under --mem-budget)")
    p.add_argument("--precinct", type=int, default=None, metavar="SIZE",
                   help="precinct size in samples (power of two >= the code "
                        "block size); partitions each resolution into "
                        "independently addressable packets")
    p.add_argument("--progression", default="lrcp",
                   choices=("lrcp", "rpcl", "pcrl"),
                   help="Tier-2 packet progression order (default lrcp)")
    p.add_argument("--mem-budget", type=int, default=None, metavar="MIB",
                   help="cap encoder working-set: tiles are encoded in "
                        "batches sized to this budget; without --tile, "
                        "picks a tile size so one tile row fits")
    p.add_argument("--self-check", action="store_true",
                   help="decode the output before writing it and verify the "
                        "round trip (bit-exact lossless / PSNR-floored lossy); "
                        "roughly doubles encode time")
    p.add_argument("--plan", default="fixed", choices=("auto", "fixed"),
                   help="'auto' lets the execution planner pick backends, "
                        "workers, and chunking from its calibrated cost "
                        "model (explicit flags and REPRO_* env vars still "
                        "win); 'fixed' (default) keeps the classic knobs. "
                        "The codestream is identical either way")


def cmd_encode(args) -> int:
    image = _read_image(args.input)
    t0 = time.perf_counter()
    result = encode(image, _params(args, image))
    wall = time.perf_counter() - t0
    with open(args.output, "wb") as fh:
        fh.write(result.codestream)
    workers = result.params.workers
    from repro.core.workpool import default_workers

    workers_used = default_workers() if workers is None else workers
    print(f"{args.input} -> {args.output}: {len(result.codestream)} bytes "
          f"({result.compression_ratio:.2f}:1), "
          f"{len(result.stats.blocks)} blocks, "
          f"{workers_used} worker(s), {wall:.2f}s")
    if result.timings is not None:
        print(f"  stages: {result.timings.summary()}")
    if result.plan is not None:
        decision = result.plan
        print(f"  plan: {decision.plan.summary()}")
        if decision.pinned:
            print(f"  plan pinned by overrides: {', '.join(decision.pinned)}")
    return 0


def cmd_decode(args) -> int:
    from repro.jpeg2000.dwt_fast import DecodeStageTimings

    with open(args.input, "rb") as fh:
        codestream = fh.read()
    timings = DecodeStageTimings()
    t0 = time.perf_counter()
    image = decode(codestream, backend=args.backend, workers=args.workers,
                   timings=timings,
                   plan="auto" if args.plan == "auto" else None)
    wall = time.perf_counter() - t0
    if image.dtype.itemsize == 2 and not args.output.lower().endswith(
        (".pgm", ".ppm", ".pnm")
    ):
        raise SystemExit("16-bit output requires a PGM/PPM path")
    if image.dtype.itemsize > 2:
        raise SystemExit("only 8/16-bit output images are supported")
    _write_image(args.output, image)
    print(f"{args.input} -> {args.output}: {image.shape}, {wall:.2f}s")
    print(f"  stages: {timings.summary()}")
    return 0


def cmd_simulate(args) -> int:
    image = _read_image(args.input)
    params = _params(args, image)
    if args.estimate:
        stats = estimate_workload(image, params)
    else:
        stats = encode(image, params).stats
    machine = CellMachine(chips=args.chips, num_spes=args.spes,
                          num_ppe_threads=args.ppe_threads)
    timeline = PipelineModel(machine, stats).simulate()
    print(timeline.report())
    return 0


def cmd_serve(args) -> int:
    # Imported lazily: encode/decode/simulate must not pay for the service
    # stack (threads, http.server) they never use.
    from repro.service import ServiceConfig
    from repro.service.http import run_server

    batch_window: str | float | None
    if args.batch_window == "off":
        batch_window = None
    elif args.batch_window == "auto":
        batch_window = "auto"
    else:
        batch_window = float(args.batch_window)

    workers = args.workers
    if args.shards > 1 and workers is None:
        # Split the cores between the shards instead of letting every
        # shard's pool claim all of them.
        import os

        workers = max(1, (os.cpu_count() or 1) // args.shards)

    config = ServiceConfig(
        workers=workers,
        backend=args.tier1_backend,
        cache_bytes=args.cache_mb * 2**20,
        max_queue=args.max_queue,
        admission_policy=args.admission,
        shed_target_p95_s=args.shed_target_p95,
        batch_window=batch_window,
        batch_max=args.batch_max,
        plan="auto" if args.plan == "auto" else None,
    )
    if args.shards > 1:
        from repro.service.sharding import ShardClusterConfig, run_sharded_server

        cluster = ShardClusterConfig(
            shards=args.shards,
            host=args.host,
            port=args.port,
            service=config,
            quiet=args.quiet,
            listener=args.listener,
            bus_cache_bytes=args.bus_cache_mb * 2**20,
        )
        return run_sharded_server(cluster)
    return run_server(config, host=args.host, port=args.port, quiet=args.quiet)


def cmd_verify(args) -> int:
    # Imported lazily: repro.verify pulls in the decoder and corpus stack.
    from repro.verify.roundtrip import run_corpus

    rates = tuple(float(r) for r in args.rates.split(","))
    workers = tuple(int(w) for w in args.workers.split(","))
    backends = tuple(args.backends.split(","))
    report = run_corpus(
        rates=rates, backends=backends, workers=workers,
        quick=args.quick, progress=None if args.quiet else print,
    )
    print(report.summary())
    if not report.ok:
        for check in report.failures:
            print(f"FAIL {check.name}: {check.detail}", file=sys.stderr)
        return 1
    return 0


def cmd_calibrate(args) -> int:
    # Imported lazily: the planner is optional for every other command.
    from repro.plan import default_cache_path, measure_calibration, save_calibration

    print("measuring host calibration "
          f"({'quick' if args.quick else 'full'} suite)...")
    calib = measure_calibration(quick=args.quick)
    path = args.output or default_cache_path()
    save_calibration(calib, path)
    print(f"wrote {path} ({calib.measure_seconds:.1f}s measured, "
          f"fingerprint {calib.fingerprint})")
    t1 = ", ".join(
        f"{k}={v * 1e6:.2f}us" for k, v in sorted(calib.t1_per_sample.items())
    )
    dwt = ", ".join(
        f"{k}={v * 1e9:.1f}ns" for k, v in sorted(calib.dwt_per_sample.items())
    )
    print(f"  tier1 per-sample: {t1}")
    print(f"  dwt per-sample:   {dwt}")
    print(f"  pool spawn {calib.pool_spawn_s * 1e3:.1f}ms, "
          f"task {calib.pool_task_s * 1e6:.0f}us, "
          f"shm base {calib.shm_base_s * 1e6:.0f}us, "
          f"dwt fan-out {calib.dwt_fanout_s * 1e3:.1f}ms")
    from repro.plan import dwt_serial_cutover_samples, tier1_serial_cutover_blocks

    print(f"  cutovers: dwt serial below {dwt_serial_cutover_samples(calib)} "
          f"samples, tier1 serial below "
          f"{tier1_serial_cutover_blocks(calib)} blocks")
    return 0


def _parse_shape(text: str) -> tuple:
    try:
        parts = tuple(int(p) for p in text.lower().split("x"))
    except ValueError:
        raise SystemExit(
            f"invalid shape {text!r}; expected HxW or HxWxC (e.g. 2048x2048x3)"
        ) from None
    if len(parts) not in (2, 3) or any(p < 1 for p in parts):
        raise SystemExit(
            f"invalid shape {text!r}; expected HxW or HxWxC (e.g. 2048x2048x3)"
        )
    return parts


def cmd_plan(args) -> int:
    from repro.plan import RequestShape, explain

    parts = _parse_shape(args.shape)
    lossless = not (args.lossy or args.rate is not None)
    shape = RequestShape(
        height=parts[0], width=parts[1],
        components=parts[2] if len(parts) == 3 else 1,
        lossless=lossless,
        rate=args.rate if not lossless else None,
        levels=args.levels, codeblock_size=args.codeblock,
    )
    print(explain(shape, max_workers=args.max_workers))
    return 0


def cmd_fuzz(args) -> int:
    from repro.verify.fuzz import run_fuzz

    report = run_fuzz(
        cases=args.cases, seed=args.seed,
        progress=None if args.quiet else print,
    )
    print(report.summary())
    if not report.ok:
        if args.artifacts:
            for path in report.write_artifacts(args.artifacts):
                print(f"wrote {path}", file=sys.stderr)
        for crash in report.crashes:
            print(
                f"CRASH case {crash.case} (base {crash.base_name}, "
                f"mutators {'+'.join(crash.mutators)}): "
                f"{crash.exc_type}: {crash.message}",
                file=sys.stderr,
            )
        return 1
    return 0


def _package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JPEG2000 on the Cell Broadband Engine (ICPP 2008) "
                    "reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("encode", help="encode BMP/PNM to a JPEG2000 codestream")
    p.add_argument("input")
    p.add_argument("output")
    _add_coding_options(p)
    p.set_defaults(func=cmd_encode)

    p = sub.add_parser("decode", help="decode a codestream to BMP/PNM")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--backend", default="auto",
                   choices=("auto", "reference", "vectorized", "batched"),
                   help="decoder implementation (all are sample-identical); "
                        "'auto' honours REPRO_DEC_BACKEND then picks "
                        "'batched', which decodes same-geometry code blocks "
                        "stacked per image")
    p.add_argument("--workers", type=_workers, default=1, metavar="N",
                   help="Tier-1 decode worker processes; 'auto' = one per "
                        "core (output is identical for any value)")
    p.add_argument("--plan", default="fixed", choices=("auto", "fixed"),
                   help="'auto' lets the execution planner pick the decode "
                        "backend and workers from the parsed shape "
                        "(explicit flags and REPRO_DEC_BACKEND still win)")
    p.set_defaults(func=cmd_decode)

    p = sub.add_parser("simulate", help="simulated Cell/B.E. encode timeline")
    p.add_argument("input")
    _add_coding_options(p)
    p.add_argument("--spes", type=int, default=8)
    p.add_argument("--ppe-threads", type=int, default=1)
    p.add_argument("--chips", type=int, default=1)
    p.add_argument("--estimate", action="store_true",
                   help="use the fast Tier-1 workload estimator")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "serve",
        help="run the long-running encode service (HTTP front end)",
        description="Persistent-pool encode server: POST /encode with a "
                    "BMP/PGM/PPM body returns the .j2c codestream; "
                    "GET /healthz, /metrics, /stats observe it.  "
                    "SIGTERM drains gracefully.  --shards N pre-forks N "
                    "shard processes accepting on one port with a "
                    "cross-shard result cache (README 'Scaling out').",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000)
    p.add_argument("--workers", type=_workers, default=None, metavar="N",
                   help="pool worker processes; 'auto' (default) = one per core")
    p.add_argument("--tier1-backend", default="auto",
                   choices=("auto", "reference", "vectorized", "batched"))
    p.add_argument("--cache-mb", type=int, default=64,
                   help="result-cache byte budget in MiB (0 disables)")
    p.add_argument("--max-queue", type=int, default=32,
                   help="max admitted-but-unfinished encode jobs")
    p.add_argument("--admission", default="reject",
                   choices=("reject", "block"),
                   help="policy when the queue is full: fail fast (503) "
                        "or make the client wait")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="shard processes accepting on one port; 1 (default) "
                        "runs the single-process server")
    p.add_argument("--listener", default="auto",
                   choices=("auto", "reuseport", "inherit"),
                   help="how shards share the port: SO_REUSEPORT or an "
                        "inherited listening socket (auto picks per kernel)")
    p.add_argument("--bus-cache-mb", type=int, default=64,
                   help="cross-shard result-cache budget in MiB "
                        "(sharded mode only)")
    p.add_argument("--shed-target-p95", type=float, default=None,
                   metavar="SECONDS",
                   help="p95 latency objective; above it uncached requests "
                        "are shed with 503 + Retry-After (default: off)")
    p.add_argument("--batch-window", default="off", metavar="off|auto|SECONDS",
                   help="micro-batch sub-threshold encodes into one pool "
                        "dispatch per window; 'auto' sizes the window from "
                        "live encode latency (default: off)")
    p.add_argument("--batch-max", type=int, default=8,
                   help="flush a micro-batch early at this many requests")
    p.add_argument("--plan", default="fixed", choices=("auto", "fixed"),
                   help="'auto' consults the execution planner for every "
                        "uncached encode and feeds live stage timings back "
                        "as corrections (per-request ?plan=auto works "
                        "either way)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-request access logs")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "verify",
        help="round-trip gate: every corpus encode must decode back",
        description="Encodes the verification corpus and a per-rate sweep, "
                    "decodes everything, and checks bit-exactness (lossless), "
                    "PSNR floors + monotonicity (lossy), and byte identity "
                    "across Tier-1 backends and worker counts.  Exits 1 on "
                    "any failed check.",
    )
    p.add_argument("--rates", default="0.1,0.25,1.0",
                   help="comma-separated lossy rates to sweep")
    p.add_argument("--workers", default="1,2",
                   help="comma-separated worker counts for byte identity")
    p.add_argument("--backends", default="vectorized,reference,batched",
                   help="comma-separated Tier-1 backends for byte identity")
    p.add_argument("--quick", action="store_true",
                   help="trim the backend x workers sweep to one combination")
    p.add_argument("--quiet", action="store_true",
                   help="print only the final summary")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "calibrate",
        help="measure this machine's planner calibration and cache it",
        description="Runs the planner's micro-benchmark suite (Tier-1 "
                    "per-sample throughput per backend, DWT chunk-pass "
                    "cost, fork/dispatch overhead, shm publish cost) and "
                    "writes the versioned JSON cache the execution planner "
                    "loads (<100 ms, no re-measurement) on every later run. "
                    "The cache invalidates itself when the machine or "
                    "schema changes; REPRO_CALIBRATION_PATH relocates it.",
    )
    p.add_argument("--quick", action="store_true",
                   help="trimmed suite (seconds instead of tens of seconds); "
                        "noisier constants")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="write the calibration JSON here instead of the "
                        "default cache path")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser(
        "plan",
        help="explain the execution plan for an image shape",
        description="Prints the planner's per-candidate predicted stage "
                    "costs for HxW[xC] and the configuration it would pick "
                    "(repro plan 2048x2048x3 --rate 0.1).",
    )
    p.add_argument("shape", help="image shape as HxW or HxWxC")
    p.add_argument("--lossy", action="store_true",
                   help="price the irreversible 9/7 path")
    p.add_argument("--rate", type=float, default=None,
                   help="lossy target rate (implies --lossy)")
    p.add_argument("--levels", type=int, default=5, help="DWT levels")
    p.add_argument("--codeblock", type=int, default=64, help="code block size")
    p.add_argument("--max-workers", type=int, default=None, metavar="N",
                   help="cap the candidate worker grid (default: CPU cores)")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser(
        "fuzz",
        help="mutation-fuzz the decoder; typed errors only",
        description="Mutates corpus codestreams (bit flips, truncations, "
                    "length-field corruption, marker reordering, packet "
                    "garbage) and decodes each case: decode() must succeed "
                    "or raise a CodestreamError subclass.  Deterministic in "
                    "--seed; exits 1 and writes --artifacts on any other "
                    "exception.",
    )
    p.add_argument("--cases", type=int, default=1000,
                   help="number of mutated inputs to decode (CI runs 10000)")
    p.add_argument("--seed", type=int, default=2008,
                   help="base seed; case N reproduces from (seed, N) alone")
    p.add_argument("--artifacts", default=None, metavar="DIR",
                   help="directory for crashing inputs (original + minimized "
                        "+ index.json), written only on failure")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines")
    p.set_defaults(func=cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (CodestreamError, OSError, ValueError) as exc:
        # Operational failures (bad input file, malformed codestream,
        # invalid parameter combination) are user errors, not bugs: one
        # line on stderr, exit 1, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:
        from repro.verify.roundtrip import VerificationError

        if isinstance(exc, VerificationError):
            print(f"error: {exc}", file=sys.stderr)
            return 1
        raise


if __name__ == "__main__":
    sys.exit(main())
