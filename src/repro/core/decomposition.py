"""The paper's data decomposition scheme (Section 2, Figure 1).

Given a 2-D array of arbitrary width and height whose rows can be
partitioned freely:

1. pad every row so each row's start address is cache-line aligned;
2. split the array into column chunks — every chunk except the last has a
   width that is a multiple of the cache line; all chunks span the full
   height;
3. distribute the constant-width chunks to the SPEs; the PPE processes the
   arbitrary-width remainder chunk;
4. inside an SPE, a single row of its chunk is the unit of DMA transfer and
   computation, giving a constant Local Store footprint.

The plan is used two ways: *functionally* (``apply_rowwise`` really
processes NumPy arrays chunk by chunk, proving the partition computes the
same answer) and *for timing* (the chunk geometry defines every DMA
transfer the SPEs issue, which the simulator validates and prices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cell.dma import DmaTransfer
from repro.utils.alignment import CACHE_LINE_BYTES, is_aligned, padded_width, round_down

PPE_OWNER = "PPE"


@dataclass(frozen=True)
class Chunk:
    """One column chunk of the decomposition."""

    start_col: int     # element column within the (padded) array
    width: int         # elements
    owner: str         # "SPE<i>" or "PPE"

    def __post_init__(self) -> None:
        if self.start_col < 0 or self.width <= 0:
            raise ValueError(f"invalid chunk geometry: {self}")


@dataclass(frozen=True)
class DecompositionPlan:
    """Full decomposition of one 2-D array."""

    height: int
    width: int            # original width in elements
    elem_bytes: int
    num_spes: int
    aligned: bool         # False for the naive (ablation) variant
    padded_cols: int      # padded row width in elements
    chunks: tuple[Chunk, ...] = field(default=())

    @property
    def row_bytes(self) -> int:
        return self.padded_cols * self.elem_bytes

    def chunks_for(self, owner: str) -> list[Chunk]:
        return [c for c in self.chunks if c.owner == owner]

    def spe_owners(self) -> list[str]:
        return sorted({c.owner for c in self.chunks if c.owner != PPE_OWNER})

    def validate(self) -> None:
        """Coverage and disjointness of the original columns."""
        cover = np.zeros(self.width, dtype=np.int32)
        for c in self.chunks:
            if c.start_col + c.width > self.width:
                raise ValueError(f"chunk {c} overruns width {self.width}")
            cover[c.start_col : c.start_col + c.width] += 1
        if not np.all(cover == 1):
            raise ValueError("chunks do not tile the array exactly once")

    def row_transfer(self, chunk: Chunk, row: int, is_get: bool = True) -> DmaTransfer:
        """The MFC command an SPE issues for one row of ``chunk``.

        Main-memory addresses are modelled relative to a cache-line aligned
        array base, which the row padding guarantees for every row start.
        """
        main = (row * self.padded_cols + chunk.start_col) * self.elem_bytes
        size = chunk.width * self.elem_bytes
        if not self.aligned:
            # The naive layout produces arbitrary addresses/sizes that the
            # MFC rejects; the "additional programming" the paper mentions
            # rounds each transfer out to a quadword-aligned covering window.
            lo = main - (main % 16)
            hi = main + size
            hi += (-hi) % 16
            main, size = lo, hi - lo
        return DmaTransfer(
            size=size,
            local_addr=main % CACHE_LINE_BYTES if not self.aligned else 0,
            main_addr=main,
            is_get=is_get,
        )


def plan_decomposition(
    height: int,
    width: int,
    elem_bytes: int,
    num_spes: int,
    line_bytes: int = CACHE_LINE_BYTES,
) -> DecompositionPlan:
    """Build the paper's aligned decomposition plan."""
    if height <= 0 or width <= 0:
        raise ValueError(f"array dims must be positive, got {height}x{width}")
    if num_spes < 0:
        raise ValueError(f"num_spes must be non-negative, got {num_spes}")
    line_elems = line_bytes // elem_bytes
    padded = padded_width(width, elem_bytes, line_bytes)
    chunks: list[Chunk] = []
    full = round_down(width, line_elems)
    if num_spes == 0:
        chunks.append(Chunk(0, width, PPE_OWNER))
    else:
        if full > 0:
            lines = full // line_elems
            base, extra = divmod(lines, num_spes)
            col = 0
            for s in range(num_spes):
                w = (base + (1 if s < extra else 0)) * line_elems
                if w == 0:
                    continue
                chunks.append(Chunk(col, w, f"SPE{s}"))
                col += w
        if width - full > 0:
            chunks.append(Chunk(full, width - full, PPE_OWNER))
    plan = DecompositionPlan(
        height=height, width=width, elem_bytes=elem_bytes, num_spes=num_spes,
        aligned=True, padded_cols=padded, chunks=tuple(chunks),
    )
    plan.validate()
    return plan


def plan_naive_decomposition(
    height: int, width: int, elem_bytes: int, num_spes: int
) -> DecompositionPlan:
    """Ablation baseline: equal-width chunks ignoring alignment.

    Rows are not padded and chunk boundaries fall at arbitrary byte offsets,
    so SPE DMA transfers straddle extra cache lines and adjacent PEs touch
    the same line (the false-sharing/efficiency costs Section 2 eliminates).
    """
    if height <= 0 or width <= 0:
        raise ValueError(f"array dims must be positive, got {height}x{width}")
    if num_spes < 0:
        raise ValueError(f"num_spes must be non-negative, got {num_spes}")
    workers = max(1, num_spes)
    base, extra = divmod(width, workers)
    chunks = []
    col = 0
    for s in range(workers):
        w = base + (1 if s < extra else 0)
        if w == 0:
            continue
        owner = f"SPE{s}" if num_spes > 0 else PPE_OWNER
        chunks.append(Chunk(col, w, owner))
        col += w
    plan = DecompositionPlan(
        height=height, width=width, elem_bytes=elem_bytes, num_spes=num_spes,
        aligned=False, padded_cols=width, chunks=tuple(chunks),
    )
    plan.validate()
    return plan


def apply_rowwise(
    plan: DecompositionPlan,
    array: np.ndarray,
    fn: Callable[[np.ndarray], np.ndarray],
) -> np.ndarray:
    """Apply an elementwise/row-chunk function the way the machine would.

    Each owner processes its chunk row by row (the SPE unit of transfer and
    computation).  ``fn`` maps a 1-D row segment to a same-length segment.
    Returns the reassembled array — used by tests to prove the decomposition
    is functionally transparent.
    """
    if array.shape != (plan.height, plan.width):
        raise ValueError(
            f"array shape {array.shape} does not match plan "
            f"({plan.height}, {plan.width})"
        )
    out = np.empty_like(array)
    for chunk in plan.chunks:
        sl = slice(chunk.start_col, chunk.start_col + chunk.width)
        for r in range(plan.height):
            seg = fn(array[r, sl])
            if np.shape(seg) != (chunk.width,):
                raise ValueError("fn must preserve segment length")
            out[r, sl] = seg
    return out


def dma_row_alignment_report(plan: DecompositionPlan) -> dict[str, float]:
    """Fraction of row transfers that are fully cache-line aligned, and the
    bus-efficiency (payload/bus bytes) of one full array sweep."""
    payload = 0
    bus = 0
    aligned_cnt = 0
    total = 0
    for chunk in plan.chunks:
        if chunk.owner == PPE_OWNER:
            continue  # PPE accesses memory through its cache, not DMA
        for row in range(plan.height):
            tr = plan.row_transfer(chunk, row)
            total += 1
            payload += tr.size
            bus += tr.bus_bytes
            if tr.fully_aligned:
                aligned_cnt += 1
    return {
        "aligned_fraction": aligned_cnt / total if total else 1.0,
        "bus_efficiency": payload / bus if bus else 1.0,
    }
