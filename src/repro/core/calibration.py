"""Every tunable constant of the performance model, with its derivation.

The simulator's *mechanisms* (SIMD lanes, dual issue, DMA alignment,
bandwidth contention, work-queue scheduling, Amdahl stages) are structural;
this module holds the handful of scalar constants those mechanisms need.
No constant is fitted to a single figure — all experiments share this one
set.

Derivation notes
----------------
``dwt_simd_efficiency``
    A hand-tuned SPE lifting kernel sustains roughly 0.9-1.0 GB/s of
    processed samples per SPE (Bader & Kang report comparable rates in
    "Computing discrete transforms on the Cell Broadband Engine", Parallel
    Computing 35, 2009).  At 4 B/sample that is ~4.4 ns per sample-visit ≈
    14 SPE cycles, while the ideal dual-issue SIMD bound for the ~12-op
    lifting visit is ~3.5 cycles: efficiency ≈ 0.25.  The gap is shuffles
    for lane re-alignment, software pipelining overhead, and buffer
    rotation.
``tier1_*``
    A Tier-1 symbol (context formation + MQ coder update) costs ~40-60
    dependent scalar operations.  On the SPE the data-dependent branches
    miss a static hint ~30% of the time at 18 cycles each; on the PPE the
    dynamic predictor removes ~94% of those.  These give the paper's
    observed ordering: 1 PPE thread outruns 1 SPE on Tier-1, but 8 SPEs
    win by brute force.
``p4_*``
    Pentium IV (Prescott) 3.2 GHz: deep OoO pipeline with effective
    sustained IPC ~1.4 on compiled integer code, a good branch predictor
    (~1.1x the PPE's), 2 MB L2 and hardware prefetch.  Jasper on the P4 is
    *not* vectorized (paper Section 5.3) and performs the real-number path
    in fixed point, whose 32-bit multiplies are native (imul ~10 cycles,
    pipelined).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    # --- DWT kernels -------------------------------------------------------
    #: Achieved fraction of ideal SIMD speedup for lifting kernels (see above).
    dwt_simd_efficiency: float = 0.40
    #: In-order latency exposure on the lifting recurrences.
    dwt_dependency_factor: float = 0.15
    #: Same for the trivially vectorizable pixel kernels (level shift, MCT,
    #: quantize): streaming, no lane shuffles.
    pixel_simd_efficiency: float = 0.60

    # --- Tier-1 ------------------------------------------------------------
    #: Dynamic scalar operations per coded binary decision (context gather,
    #: LUT lookups, MQ interval update, state write-back).
    tier1_ops_per_symbol: float = 46.0
    #: Of which loads/stores (odd pipe on the SPE).
    tier1_mem_fraction: float = 0.40
    #: Conditional branches per symbol and their data-dependent miss rate
    #: under static prediction.
    tier1_branches_per_symbol: float = 3.0
    tier1_branch_miss_rate: float = 0.30
    #: Latency exposure of the MQ-coder dependence chain on in-order cores.
    tier1_dependency_factor: float = 0.25
    #: Per code block fixed overhead (setup, state init, result write), s.
    tier1_block_overhead_s: float = 4.0e-6
    #: Work-queue dequeue cost (atomic + mailbox signalling).
    queue_dequeue_s: float = 1.5e-6
    #: Muta et al.'s centralized distribution: PPE-side cost to dispatch one
    #: code block to an SPE (mailbox round trip + buffer setup).  This
    #: serial duty is why "their EBCOT implementation ... does not scale
    #: above a single Cell/B.E. processor" (paper Section 1) — the PPE
    #: dispatcher, not the SPEs, is the bottleneck.
    muta_dispatch_s: float = 35e-6

    # --- Stage-level constants ---------------------------------------------
    #: Fraction of the read-component/type-conversion stage that stays
    #: sequential on the PPE (stream parsing); the rest is "partially
    #: parallelized" (paper Figure 2).
    readconv_sequential_fraction: float = 0.35
    #: Rate-control cost per coding pass examined (slope computation,
    #: hull/bisection bookkeeping) on the PPE, seconds.
    rate_control_per_pass_s: float = 300e-9
    #: Bisection sweeps over all passes (lambda search iterations).
    rate_control_sweeps: float = 9.0
    #: Tier-2 cost per code block (tag-tree updates + header bits), s.
    tier2_per_block_s: float = 2.2e-6
    #: Stream output cost per byte on the PPE (buffered write), s.
    stream_io_per_byte_s: float = 0.9e-9
    #: Fraction of stream I/O that is parallelizable gather work.
    stream_io_parallel_fraction: float = 0.5

    # --- SPE/PPE core knobs (defaults live on the core classes) -------------
    #: Barrier/synchronization cost between pipeline stages, seconds.
    stage_barrier_s: float = 8.0e-6

    # --- Pentium IV model ----------------------------------------------------
    p4_clock_hz: float = 3.2e9
    #: Sustained IPC on compiled scalar code (OoO, but Prescott's long pipe).
    p4_ipc: float = 1.5
    #: Branch mispredict penalty (Prescott ~31 stages).
    p4_branch_miss_penalty: float = 28.0
    #: Dynamic predictor quality: fraction of static misses removed.
    p4_predictor_hit_rate: float = 0.95
    #: Effective memory stall per L2 line miss (prefetch-adjusted), cycles.
    p4_miss_penalty_cycles: float = 90.0
    #: L2 size (bytes) for the streaming-miss model.
    p4_l2_bytes: int = 2 * 1024 * 1024
    #: Sustained streaming bandwidth (DDR-400 era, mixed-stride access).
    p4_stream_bw: float = 2.2e9

    def __post_init__(self) -> None:
        for name in (
            "dwt_simd_efficiency", "pixel_simd_efficiency",
            "tier1_branch_miss_rate", "readconv_sequential_fraction",
            "stream_io_parallel_fraction", "p4_predictor_hit_rate",
        ):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.tier1_ops_per_symbol <= 0 or self.p4_ipc <= 0:
            raise ValueError("ops/ipc constants must be positive")


DEFAULT_CALIBRATION = Calibration()
