"""The paper's contributions: data decomposition, pipeline parallelization.

* :mod:`repro.core.decomposition` — the cache-line-aligned constant-width
  chunking scheme of Section 2 (Figure 1).
* :mod:`repro.core.pipeline` — the Figure-2 stage graph mapped onto a
  :class:`~repro.cell.machine.CellMachine`, producing a simulated
  :class:`~repro.cell.timeline.Timeline`.
* :mod:`repro.core.parallel_encoder` — functional encode + simulated
  schedule in one call.
* :mod:`repro.core.calibration` — every tunable constant of the
  performance model, with its derivation.

Submodules are loaded lazily (PEP 562) because the kernel characterizations
in :mod:`repro.kernels` import :mod:`repro.core.calibration` while the
pipeline imports the kernels.
"""

from typing import Any

__all__ = [
    "CellJPEG2000Encoder",
    "Chunk",
    "DecompositionPlan",
    "ParallelEncodeResult",
    "PipelineModel",
    "PipelineOptions",
    "plan_decomposition",
]

_EXPORTS = {
    "Chunk": ("repro.core.decomposition", "Chunk"),
    "DecompositionPlan": ("repro.core.decomposition", "DecompositionPlan"),
    "plan_decomposition": ("repro.core.decomposition", "plan_decomposition"),
    "PipelineModel": ("repro.core.pipeline", "PipelineModel"),
    "PipelineOptions": ("repro.core.pipeline", "PipelineOptions"),
    "CellJPEG2000Encoder": ("repro.core.parallel_encoder", "CellJPEG2000Encoder"),
    "ParallelEncodeResult": ("repro.core.parallel_encoder", "ParallelEncodeResult"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
