"""The Figure-2 encoder pipeline mapped onto a simulated Cell machine.

Stages (paper Section 3.2):

1. ``read+convert``  — partially parallelized stream read / type widening
2. ``levelshift+mct`` — merged, fully parallel, data-decomposed
3. ``dwt``            — vertical + horizontal lifting per level, per comp
4. ``quantize``       — lossy only, fully parallel
5. ``tier1``          — dynamic work queue over code blocks (SPEs + PPE)
6. ``rate_control``   — lossy only, sequential on the PPE
7. ``tier2``          — sequential on the PPE
8. ``stream_io``      — partially parallel output assembly

Element counts come from a real encode's :class:`WorkloadStats`; the model
prices compute with the ISA core models and memory with the DMA/EIB models
under the chosen data decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cell.buffering import buffered_loop_time
from repro.cell.isa import InstructionMix
from repro.cell.machine import CellMachine
from repro.cell.timeline import StageTiming, Timeline
from repro.cell.workqueue import WorkerSpec, simulate_work_queue
from repro.core.calibration import Calibration, DEFAULT_CALIBRATION
from repro.core.decomposition import (
    PPE_OWNER,
    plan_decomposition,
    plan_naive_decomposition,
)
from repro.jpeg2000.encoder import WorkloadStats
from repro.kernels.dwt_kernels import DwtVariant, dwt_mix, vertical_dma_passes
from repro.kernels.levelshift import levelshift_mct_mix
from repro.kernels.quantize_kernel import quantize_mix
from repro.kernels.readconv import readconv_mix
from repro.kernels.tier1_kernel import tier1_block_cost_s

_ELEM_BYTES = 4  # all pipeline arrays are int32/float32


@dataclass(frozen=True)
class PipelineOptions:
    """Implementation choices the paper evaluates."""

    dwt_variant: DwtVariant = DwtVariant.MERGED
    buffers: int = 4
    fixed_point: bool = False       # Jasper's fixed-point real path
    use_workqueue: bool = True      # False = static block distribution
    aligned_decomposition: bool = True
    calibration: Calibration = DEFAULT_CALIBRATION


@dataclass
class PipelineModel:
    """Prices one encode workload on one machine configuration."""

    machine: CellMachine
    stats: WorkloadStats
    options: PipelineOptions = field(default_factory=PipelineOptions)

    # -- helpers -------------------------------------------------------------

    def _plan(self, height: int, width: int):
        if self.options.aligned_decomposition:
            return plan_decomposition(height, width, _ELEM_BYTES, self.machine.num_spes)
        return plan_naive_decomposition(height, width, _ELEM_BYTES, self.machine.num_spes)

    def _ppe_thread_factors(self, count: int) -> list[float]:
        """Per-PPE-thread slowdown factors (1.0 = full core).

        Threads fill chips first (one full-speed thread per chip), then the
        second SMT context of each PPE at reduced throughput.
        """
        m = self.machine
        factors = []
        smt_penalty = 2.0 / (1.0 + m.ppe.smt_efficiency)
        for t in range(count):
            factors.append(1.0 if t < m.chips else smt_penalty)
        return factors

    def _tier1_ppe_workers(self) -> int:
        """PPE threads that pull Tier-1 work from the queue.

        In the base N-SPE configurations the first PPE thread orchestrates
        (queue feeding, stage control) and does not encode; the paper's
        "+1 PPE" / "+2 PPE" variants add PPE threads that "participate in
        Tier-1" (Figures 4/5).  A machine with no SPEs runs Tier-1 entirely
        on its PPE threads.
        """
        m = self.machine
        if m.num_spes == 0:
            return m.num_ppe_threads
        return max(0, m.num_ppe_threads - 1)

    def _bus_factor(self) -> float:
        """Bus bytes per payload byte under the chosen decomposition.

        Aligned chunks move exactly their payload; the naive layout's
        transfers straddle one extra 128-byte line each and duplicate
        boundary lines between neighbouring PEs.
        """
        if self.options.aligned_decomposition:
            return 1.0
        plan = self._plan(self.stats.height, max(2, self.stats.width))
        spe_chunks = [c for c in plan.chunks if c.owner != PPE_OWNER]
        if not spe_chunks:
            return 1.0
        payload = 0
        bus = 0
        for c in spe_chunks:
            tr = plan.row_transfer(c, 1)
            payload += c.width * _ELEM_BYTES
            bus += tr.bus_bytes
        return bus / payload if payload else 1.0

    def _ppe_stream_time(
        self, mix: InstructionMix, elements: int,
        payload_bytes_per_elem: float, smt_threads: int = 1,
    ) -> float:
        """PPE time for a streaming sweep: compute overlapped with the
        cache-hierarchy bandwidth (hardware prefetch hides the smaller term)."""
        m = self.machine
        compute = m.ppe.kernel_time(mix, elements, smt_threads=smt_threads)
        mem = elements * payload_bytes_per_elem / m.ppe.stream_bw
        return max(compute, mem) + 0.15 * min(compute, mem)

    def _parallel_stage(
        self,
        name: str,
        height: int,
        width: int,
        per_component: int,
        mix: InstructionMix,
        payload_bytes_per_elem: float,
        notes: str = "",
    ) -> StageTiming:
        """Price a fully data-parallel stage over ``per_component`` planes."""
        m = self.machine
        cal = self.options.calibration
        elements = height * width * per_component
        if m.num_spes == 0:
            t = self._ppe_stream_time(mix, elements, payload_bytes_per_elem,
                                      smt_threads=min(2, max(1, m.num_ppe_threads)))
            return StageTiming(name, t + cal.stage_barrier_s, ppe_busy_s=t, notes=notes)
        plan = self._plan(height, width)
        bus_factor = self._bus_factor()
        spe_sec = m.spe.seconds_per_element(mix)
        per_spe_bw = m.per_spe_bandwidth()
        spe_walls = []
        spe_busy = 0.0
        dma_bytes = 0
        for owner in plan.spe_owners():
            elems = sum(c.width for c in plan.chunks_for(owner)) * height
            chunk_w = max(c.width for c in plan.chunks_for(owner))
            rows = height * per_component
            compute_row = chunk_w * spe_sec
            payload_row = chunk_w * payload_bytes_per_elem
            dma_row = payload_row * bus_factor / per_spe_bw
            bt = buffered_loop_time(rows, compute_row, dma_row,
                                    buffers=self.options.buffers)
            spe_walls.append(bt.total_s)
            spe_busy += elems * per_component * spe_sec
            dma_bytes += int(payload_row * bus_factor * rows)
        ppe_elems = sum(c.width for c in plan.chunks_for(PPE_OWNER)) * height
        ppe_t = self._ppe_stream_time(mix, ppe_elems * per_component,
                                      payload_bytes_per_elem)
        wall = max(spe_walls + [ppe_t]) + cal.stage_barrier_s
        return StageTiming(
            name, wall, spe_busy_s=spe_busy, ppe_busy_s=ppe_t,
            dma_bus_bytes=dma_bytes, notes=notes,
        )

    # -- stages ---------------------------------------------------------------

    def stage_readconv(self) -> StageTiming:
        cal = self.options.calibration
        m = self.machine
        mix = readconv_mix(cal)
        elements = self.stats.num_pixels * self.stats.num_components
        seq = cal.readconv_sequential_fraction
        seq_t = m.ppe.kernel_time(mix, int(elements * seq))
        par = self._parallel_stage(
            "read+convert(par)", self.stats.height, self.stats.width,
            self.stats.num_components, mix, 2.0 + _ELEM_BYTES,
        )
        frac = 1.0 - seq
        return StageTiming(
            "read+convert", seq_t + par.wall_s * frac,
            spe_busy_s=par.spe_busy_s * frac,
            ppe_busy_s=seq_t + par.ppe_busy_s * frac,
            dma_bus_bytes=int(par.dma_bus_bytes * frac),
            notes=f"{seq:.0%} sequential",
        )

    def stage_levelshift_mct(self) -> StageTiming:
        mix = levelshift_mct_mix(self.stats.lossless, self.stats.num_components,
                                 self.options.calibration)
        return self._parallel_stage(
            "levelshift+mct", self.stats.height, self.stats.width,
            self.stats.num_components, mix, 2.0 * _ELEM_BYTES,
            notes="merged stage",
        )

    def stage_dwt(self) -> StageTiming:
        mix = dwt_mix(self.stats.lossless, self.options.fixed_point,
                      self.options.calibration)
        passes_v = vertical_dma_passes(self.options.dwt_variant, self.stats.lossless)
        total = StageTiming("dwt", 0.0)
        h, w = self.stats.height, self.stats.width
        wall = 0.0
        for _lvl in range(self.stats.levels):
            if h <= 1 and w <= 1:
                break
            vert = self._parallel_stage(
                "dwt-v", h, w, self.stats.num_components, mix,
                passes_v * 2.0 * _ELEM_BYTES,
            )
            horiz = self._parallel_stage(
                "dwt-h", h, w, self.stats.num_components, mix,
                1.0 * 2.0 * _ELEM_BYTES,
            )
            wall += vert.wall_s + horiz.wall_s
            total.spe_busy_s += vert.spe_busy_s + horiz.spe_busy_s
            total.ppe_busy_s += vert.ppe_busy_s + horiz.ppe_busy_s
            total.dma_bus_bytes += vert.dma_bus_bytes + horiz.dma_bus_bytes
            h, w = (h + 1) // 2, (w + 1) // 2
        total.wall_s = wall
        total.notes = f"{self.options.dwt_variant.value} lifting"
        return total

    def stage_quantize(self) -> StageTiming:
        if self.stats.lossless:
            return StageTiming("quantize", 0.0, notes="skipped (lossless)")
        mix = quantize_mix(self.options.calibration)
        return self._parallel_stage(
            "quantize", self.stats.height, self.stats.width,
            self.stats.num_components, mix, 2.0 * _ELEM_BYTES,
        )

    def stage_tier1(self) -> StageTiming:
        m = self.machine
        cal = self.options.calibration
        blocks = self.stats.blocks
        n = len(blocks)
        per_spe_bw = m.per_spe_bandwidth() if m.num_spes else 0.0
        spe_costs = []
        for b in blocks:
            c = tier1_block_cost_s(b.total_symbols, b.height * b.width, m.spe, cal)
            if per_spe_bw > 0:
                c += (b.height * b.width * _ELEM_BYTES + b.coded_bytes) / per_spe_bw
            spe_costs.append(c)
        ppe_costs = [
            tier1_block_cost_s(b.total_symbols, b.height * b.width, m.ppe, cal)
            for b in blocks
        ]
        workers = []
        for s in range(m.num_spes):
            workers.append(WorkerSpec(f"SPE{s}", tuple(spe_costs),
                                      dequeue_overhead_s=cal.queue_dequeue_s))
        for t, factor in enumerate(self._ppe_thread_factors(self._tier1_ppe_workers())):
            workers.append(
                WorkerSpec(f"PPE{t}", tuple(c * factor for c in ppe_costs),
                           dequeue_overhead_s=cal.queue_dequeue_s)
            )
        if not workers:
            raise RuntimeError("no processing elements for Tier-1")
        if self.options.use_workqueue:
            result = simulate_work_queue(n, workers)
            makespan = result.makespan_s
            busy = result.per_worker_busy_s
        else:
            # Static distribution: "merely distributing an identical number
            # of code blocks to the processing elements" (Section 3.2) —
            # contiguous ranges, so spatially correlated costs pile up.
            per_worker = {w.name: 0.0 for w in workers}
            chunk = (n + len(workers) - 1) // max(1, len(workers))
            for wi, w in enumerate(workers):
                for i in range(wi * chunk, min(n, (wi + 1) * chunk)):
                    per_worker[w.name] += w.item_costs[i]
            makespan = max(per_worker.values()) if per_worker else 0.0
            busy = per_worker
        spe_busy = sum(v for k, v in busy.items() if k.startswith("SPE"))
        ppe_busy = sum(v for k, v in busy.items() if k.startswith("PPE"))
        sched = "work queue" if self.options.use_workqueue else "static"
        return StageTiming("tier1", makespan, spe_busy_s=spe_busy,
                           ppe_busy_s=ppe_busy, notes=sched)

    def stage_rate_control(self) -> StageTiming:
        if self.stats.lossless:
            return StageTiming("rate_control", 0.0, notes="skipped (lossless)")
        cal = self.options.calibration
        total_passes = sum(b.num_passes for b in self.stats.blocks)
        t = total_passes * cal.rate_control_per_pass_s * cal.rate_control_sweeps
        return StageTiming("rate_control", t, ppe_busy_s=t, notes="sequential PPE")

    def stage_tier2(self) -> StageTiming:
        cal = self.options.calibration
        t = (
            len(self.stats.blocks) * cal.tier2_per_block_s
            + self.stats.codestream_bytes * cal.stream_io_per_byte_s
        )
        return StageTiming("tier2", t, ppe_busy_s=t, notes="sequential PPE")

    def stage_stream_io(self) -> StageTiming:
        cal = self.options.calibration
        m = self.machine
        bytes_out = self.stats.codestream_bytes
        seq = bytes_out * (1 - cal.stream_io_parallel_fraction) * cal.stream_io_per_byte_s
        par = bytes_out * cal.stream_io_parallel_fraction * cal.stream_io_per_byte_s
        pes = max(1, m.num_spes + m.num_ppe_threads)
        t = seq + par / pes
        return StageTiming("stream_io", t, ppe_busy_s=seq, notes="partially parallel")

    # -- whole pipeline -------------------------------------------------------

    def simulate(self) -> Timeline:
        tl = Timeline(machine_name=self._machine_desc())
        tl.add(self.stage_readconv())
        tl.add(self.stage_levelshift_mct())
        tl.add(self.stage_dwt())
        tl.add(self.stage_quantize())
        tl.add(self.stage_tier1())
        tl.add(self.stage_rate_control())
        tl.add(self.stage_tier2())
        tl.add(self.stage_stream_io())
        return tl

    def _machine_desc(self) -> str:
        m = self.machine
        return f"{m.name} ({m.num_spes} SPE + {m.num_ppe_threads} PPE thread)"
