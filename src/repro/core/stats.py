"""Reporting helpers: speedups, scaling tables, figure-style rows."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.timeline import Timeline


@dataclass(frozen=True)
class ScalingRow:
    """One row of a Figure-4/5-style scaling table."""

    num_spes: int
    num_ppe_threads: int
    time_s: float
    speedup_vs_one_spe: float


def speedup(baseline: Timeline, improved: Timeline) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    if improved.total_s <= 0:
        raise ValueError("improved timeline has non-positive total time")
    return baseline.total_s / improved.total_s


def scaling_table(timelines: dict[int, Timeline], ppe_threads: int = 1) -> list[ScalingRow]:
    """Build scaling rows keyed by SPE count, normalized to the 1-SPE case."""
    if not timelines:
        return []
    base_key = min(timelines)
    base = timelines[base_key].total_s
    rows = []
    for n in sorted(timelines):
        t = timelines[n].total_s
        rows.append(ScalingRow(n, ppe_threads, t, base / t if t > 0 else float("inf")))
    return rows


def format_scaling_table(rows: list[ScalingRow], title: str) -> str:
    lines = [title, f"{'SPEs':>5} {'PPE thr':>8} {'time (ms)':>11} {'speedup':>9}"]
    for r in rows:
        lines.append(
            f"{r.num_spes:>5} {r.num_ppe_threads:>8} "
            f"{r.time_s * 1e3:>11.2f} {r.speedup_vs_one_spe:>9.2f}"
        )
    return "\n".join(lines)
