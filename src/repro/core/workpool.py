"""Real multi-core work queue over Tier-1 code blocks.

This is the *executable* counterpart of the simulated SPE work queue in
:mod:`repro.cell.workqueue`: the paper's Section 3 parallelizes EBCOT
Tier-1 by treating each code block as an independent work item that idle
SPEs pull from a dynamic queue.  Code blocks really are independent — the
MQ coder state is per-block — so the same scheme works verbatim on host
cores with :mod:`multiprocessing`.

Determinism is non-negotiable: the codestream must be byte-identical for
any worker count.  Workers may *finish* blocks in any order (that is the
point of dynamic scheduling), so every task carries a sequence number and
results are re-assembled into submission order before the encoder sees
them.  Tier-1 itself is bit-exact across backends (differentially tested),
so scheduling is the only ordering concern.

The pool path is only worth its process start-up and pickling cost for
real encodes; callers pass ``workers=1`` (the default) to stay serial.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.jpeg2000.tier1 import CodeBlockResult, encode_codeblock, resolve_backend

#: Below this many blocks a pool cannot amortize worker start-up; encode
#: serially no matter what ``workers`` says.
MIN_BLOCKS_FOR_POOL = 2

#: Set to ``"0"`` to force the pickled-block dispatch path even where
#: ``multiprocessing.shared_memory`` is available.
SHM_ENV = "REPRO_SHM_DISPATCH"

#: Environment override for the Tier-1 auto-serial clamp.  ``"0"`` disables
#: the clamp entirely (tests/benchmarks that need the parallel path on
#: small inputs or single-core machines); any other integer replaces the
#: block-count threshold.
TIER1_AUTO_SERIAL_ENV = "REPRO_TIER1_AUTO_SERIAL"


def tier1_serial_threshold() -> int:
    """Code blocks below which the Tier-1 pool cannot win.

    Precedence: the :data:`TIER1_AUTO_SERIAL_ENV` override wins;
    otherwise the planner's model-derived cutover
    (:func:`repro.plan.cutovers.tier1_serial_cutover_blocks`), which with
    the pinned default calibration reproduces the hand-tuned 24-block
    clamp this function replaced — process start-up plus per-block
    pickling costs more than the blocks themselves below it (BENCH_tier1
    measured 0.70-0.76x *slowdowns* at workers>1 before the clamp
    existed).  ``0`` (env only) disables the clamp.
    """
    env = os.environ.get(TIER1_AUTO_SERIAL_ENV, "")
    if env:
        try:
            return int(env)
        except ValueError:
            raise ValueError(
                f"{TIER1_AUTO_SERIAL_ENV}={env!r} invalid; expected an integer"
            ) from None
    from repro.plan.cutovers import tier1_serial_cutover_blocks  # lazy: cycle

    return tier1_serial_cutover_blocks()


def tier1_auto_workers(workers: int | None, blocks: int) -> int:
    """Clamp Tier-1 dispatch to serial where a pool cannot win.

    Returns ``1`` when the machine has a single core or ``blocks`` falls
    below :func:`tier1_serial_threshold`, otherwise ``workers`` resolved
    (``None`` means one per core).  ``REPRO_TIER1_AUTO_SERIAL=0`` disables
    the clamp (including the single-core check); any other integer
    replaces the block threshold.
    """
    if workers is None:
        workers = default_workers()
    if workers <= 1:
        return 1
    threshold = tier1_serial_threshold()
    if threshold == 0:
        return workers
    if (os.cpu_count() or 1) <= 1:
        return 1
    if blocks < threshold:
        return 1
    return workers


@dataclass(frozen=True)
class CodeBlockTask:
    """One unit of Tier-1 work: a coefficient block and its subband."""

    seq: int
    coeffs: np.ndarray
    band: str


@dataclass(frozen=True)
class PlaneBlockTask:
    """One unit of Tier-1 work described as a slice of a published plane.

    Instead of carrying the coefficients, the task names the plane (by
    index into the list handed to :meth:`CodeBlockWorkQueue.encode_plane_blocks`)
    and the block's offsets/shape within it — the paper's DMA-minimizing
    move of shipping each coefficient plane to the workers once and letting
    them slice blocks locally.
    """

    seq: int
    plane: int
    row0: int
    col0: int
    height: int
    width: int
    band: str

    def slice_of(self, plane: np.ndarray) -> np.ndarray:
        return plane[self.row0 : self.row0 + self.height,
                     self.col0 : self.col0 + self.width]


@dataclass(frozen=True)
class PlaneGroupTask:
    """A *group* of plane-described blocks dispatched as one work item.

    The batched Tier-1 backend amortizes NumPy overhead across blocks, so
    sharding per block would throw that away — the unit of parallel work
    is a geometry group (or a shard of a large one).  ``seqs[i]`` is the
    submission sequence number of ``blocks[i]``; each block is
    ``(plane, row0, col0, height, width, band)`` in the same plane-index
    convention as :class:`PlaneBlockTask`.
    """

    seqs: tuple[int, ...]
    blocks: tuple[tuple[int, int, int, int, int, str], ...]


@dataclass
class QueueStats:
    """Observed scheduling behaviour of one :meth:`encode_all` run."""

    workers: int
    blocks: int
    #: Blocks completed per worker process (keyed by pid; a single serial
    #: run keys by this process).  Uneven counts on a busy machine are the
    #: dynamic queue doing its job — the paper's Table 1 load imbalance.
    blocks_per_worker: dict[int, int] = field(default_factory=dict)
    #: How blocks reached the workers: ``"serial"`` (no pool), ``"pickle"``
    #: (coefficients serialized per task), or ``"shared_memory"`` (planes
    #: published once, tasks carry descriptors).
    dispatch: str = "serial"


def _encode_task(payload):
    """Worker entry point; module-level so it pickles under spawn."""
    seq, coeffs, band, backend = payload
    return seq, os.getpid(), encode_codeblock(coeffs, band, backend=backend)


def _decode_block_task(payload):
    """Worker entry point for Tier-1 *decode*; module-level for spawn.

    Lazy import keeps the decoder stack out of encode-only workers.
    """
    from repro.jpeg2000.tier1_dec_vec import decode_codeblock_fast

    seq, data, height, width, band, msbs, num_passes = payload
    return seq, os.getpid(), decode_codeblock_fast(
        data, height, width, band, msbs, num_passes
    )


def shared_memory_available() -> bool:
    """True when plane dispatch can use ``multiprocessing.shared_memory``."""
    if os.environ.get(SHM_ENV, "1") == "0":
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return True


class _SharedPlanes:
    """Subband planes published once as named shared-memory segments.

    The parent copies each plane into a segment at construction; workers
    attach by name (:func:`_attach_plane`).  :meth:`close` unlinks every
    segment — callers must invoke it on success, error, and interrupt, so
    construction itself cleans up if it fails partway.
    """

    def __init__(self, planes: list[np.ndarray]) -> None:
        from multiprocessing import shared_memory

        self.segments = []
        #: Per-plane ``(name, shape, dtype str)`` — all a worker needs.
        self.descs: list[tuple[str, tuple[int, ...], str]] = []
        try:
            for plane in planes:
                arr = np.ascontiguousarray(plane)
                seg = shared_memory.SharedMemory(
                    create=True, size=max(1, arr.nbytes)
                )
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                del view
                self.segments.append(seg)
                self.descs.append((seg.name, arr.shape, arr.dtype.str))
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Release and unlink every segment (idempotent, error-swallowing)."""
        segments, self.segments = self.segments, []
        for seg in segments:
            try:
                seg.close()
            except OSError:
                pass
            try:
                seg.unlink()
            except (OSError, FileNotFoundError):
                pass


def publish_shared_bytes(data: bytes):
    """Publish ``data`` as one shared-memory segment; returns (segment, desc).

    The generic single-blob sibling of :class:`_SharedPlanes`: the cache
    bus (:mod:`repro.service.sharding.cachebus`) publishes codestream
    values this way so a hit on any shard is served to every shard
    without re-sending the bytes through a socket.  The caller owns the
    returned segment and must ``close()`` + ``unlink()`` it (eviction or
    shutdown); ``desc`` is the picklable ``(name, size)`` readers use.
    """
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(create=True, size=max(1, len(data)))
    seg.buf[: len(data)] = data
    return seg, (seg.name, len(data))


def read_shared_bytes(desc) -> bytes | None:
    """Copy a published blob out of its segment; ``None`` if it vanished.

    Attach-copy-close, mirroring :func:`_encode_plane_task`'s discipline
    of never keeping a live view pinned to the segment buffer.  A
    concurrently evicted (unlinked) segment reads as ``None`` — callers
    treat that as a cache miss.
    """
    from multiprocessing import shared_memory

    name, size = desc
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return None
    try:
        return bytes(seg.buf[:size])
    finally:
        seg.close()


#: Worker-side cache of attached segments, keyed by segment name.  Bounded
#: (LRU) so a long-lived worker serving many encodes cannot accumulate
#: stale maps; one encode's planes comfortably fit.
_ATTACH_CACHE: OrderedDict[str, tuple] = OrderedDict()
_ATTACH_CACHE_MAX = 32


def _attach_plane(desc) -> np.ndarray:
    """Attach (or reuse) the named segment and view it as an array."""
    from multiprocessing import shared_memory

    name, shape, dtype = desc
    cached = _ATTACH_CACHE.get(name)
    if cached is not None:
        _ATTACH_CACHE.move_to_end(name)
        return cached[1]
    # Attaching re-registers the name with the resource tracker, but the
    # tracker (and its name cache, a set) is shared with the parent, so
    # that is an idempotent no-op; the parent's unlink after the encode
    # removes the single entry.  Unregistering here instead would race the
    # other workers and the parent for that one entry.
    seg = shared_memory.SharedMemory(name=name)
    arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
    while len(_ATTACH_CACHE) >= _ATTACH_CACHE_MAX:
        _, (old_seg, old_arr) = _ATTACH_CACHE.popitem(last=False)
        del old_arr  # release the exported buffer before closing
        try:
            old_seg.close()
        except (BufferError, OSError):
            pass
    _ATTACH_CACHE[name] = (seg, arr)
    return arr


def _encode_plane_task(payload):
    """Worker entry point for shared-memory plane dispatch.

    Copies the block slice out of the attached plane (so no live view pins
    the segment buffer) and runs the ordinary Tier-1 encode.
    """
    seq, desc, row0, col0, height, width, band, backend = payload
    plane = _attach_plane(desc)
    coeffs = np.array(plane[row0 : row0 + height, col0 : col0 + width])
    return seq, os.getpid(), encode_codeblock(coeffs, band, backend=backend)


def _encode_plane_group_task(payload):
    """Worker entry point for shared-memory *group* dispatch.

    Slices every block of the group out of the attached planes and runs
    the batched stack coder over them in one call.
    """
    from repro.jpeg2000.tier1_batch import encode_codeblocks_batched

    seqs, blocks = payload
    items = []
    for desc, row0, col0, height, width, band in blocks:
        plane = _attach_plane(desc)
        items.append(
            (np.array(plane[row0 : row0 + height, col0 : col0 + width]), band)
        )
    return seqs, os.getpid(), encode_codeblocks_batched(items)


def _encode_block_group_task(payload):
    """Pickled-coefficients fallback of :func:`_encode_plane_group_task`."""
    from repro.jpeg2000.tier1_batch import encode_codeblocks_batched

    seqs, items = payload
    return seqs, os.getpid(), encode_codeblocks_batched(list(items))


def default_workers() -> int:
    """Worker count used for ``workers=None``: one per available core."""
    return max(1, os.cpu_count() or 1)


class ReusableWorkerPool:
    """A lazily started process pool reused across dispatch rounds.

    Tiled encodes dispatch Tier-1 once per tile batch; a one-shot
    ``ctx.Pool`` per dispatch would pay worker fork/startup for every
    batch.  Handing a ``ReusableWorkerPool`` to
    :class:`CodeBlockWorkQueue` (the ``mp_pool`` argument) makes every
    dispatch run through the same workers.  Unlike an injected per-block
    executor (the ``pool`` argument), this is a raw pool: the queue sends
    it whatever task function the dispatch path needs, so per-block,
    geometry-group, and decode payloads all work.

    The pool starts on first use and must be released by the owner:
    ``close()`` after a clean run, ``terminate()`` on error (both
    idempotent; the context-manager form does this automatically).
    """

    def __init__(self, workers: int | None = None,
                 mp_context: str | None = None) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.mp_context = mp_context
        self._pool = None

    def pool(self):
        """The live ``multiprocessing`` pool, started on first call."""
        if self._pool is None:
            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context
                else multiprocessing.get_context()
            )
            self._pool = ctx.Pool(processes=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the workers down cleanly (waits for them to exit)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Kill the workers immediately (error paths / interrupts)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ReusableWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()


class CodeBlockWorkQueue:
    """Dynamic code-block queue with deterministic reassembly.

    Parameters
    ----------
    workers:
        Number of encoder processes.  ``1`` (default) encodes serially in
        this process; ``None`` means one per CPU core.
    backend:
        Tier-1 backend name forwarded to every worker (resolved once here
        so children do not re-read the environment).
    mp_context:
        Optional :func:`multiprocessing.get_context` name (``"fork"``,
        ``"spawn"``, ...).  Default: the platform default.
    pool:
        Optional injected block executor that *outlives* this queue: any
        object with a ``workers`` attribute and an ``imap_unordered(payloads)``
        method yielding ``(seq, pid, CodeBlockResult)`` tuples (e.g.
        :class:`repro.service.pool.PersistentWorkerPool`, or a scheduler
        job handle).  When given, ``encode_all`` submits through it instead
        of spawning a one-shot pool, and never closes it — the owner does.
    mp_pool:
        Optional :class:`ReusableWorkerPool` used in place of the one-shot
        ``ctx.Pool`` every parallel dispatch would otherwise create (and
        never closed here — the owner releases it).  Mutually exclusive
        with ``pool``.
    """

    def __init__(
        self,
        workers: int | None = 1,
        backend: str | None = None,
        mp_context: str | None = None,
        pool=None,
        use_shared_memory: bool | None = None,
        mp_pool: "ReusableWorkerPool | None" = None,
    ) -> None:
        if pool is not None and mp_pool is not None:
            raise ValueError("pool and mp_pool are mutually exclusive")
        if pool is not None:
            workers = pool.workers
        elif mp_pool is not None:
            workers = mp_pool.workers
        elif workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        # Resolve "auto"+env once in the parent; workers get an explicit
        # name so codestreams cannot depend on per-child environments.
        resolved = resolve_backend(backend)
        self.backend: str = resolved
        self.mp_context = mp_context
        self.pool = pool
        self.mp_pool = mp_pool
        #: ``None`` defers to platform/env detection at dispatch time.
        self.use_shared_memory = use_shared_memory
        self.last_stats: QueueStats | None = None

    def _run_pool(self, task_fn, payloads, consume) -> None:
        """Drive ``payloads`` through the reusable or a one-shot pool."""
        if self.mp_pool is not None:
            try:
                consume(
                    self.mp_pool.pool().imap_unordered(
                        task_fn, payloads, chunksize=1
                    )
                )
            except BaseException:
                # A failed dispatch leaves the shared pool in an unknown
                # state; kill it so the owner's cleanup cannot hang.
                self.mp_pool.terminate()
                raise
            return
        ctx = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else multiprocessing.get_context()
        )
        pool = ctx.Pool(processes=self.workers)
        try:
            consume(pool.imap_unordered(task_fn, payloads, chunksize=1))
            pool.close()
        except BaseException:
            # KeyboardInterrupt (and any other failure) must not leave
            # orphaned encoder processes: kill the children before
            # propagating so the CLI exits promptly.
            pool.terminate()
            raise
        finally:
            pool.join()

    def encode_all(self, tasks: list[CodeBlockTask]) -> list[CodeBlockResult]:
        """Encode every task, returning results in *submission* order.

        Work is handed out block-by-block (``chunksize=1``): whichever
        worker frees up first takes the next block, exactly like the
        paper's SPEs pulling from the PPE-side queue.  Completion order is
        nondeterministic; the returned list is not.
        """
        stats = QueueStats(workers=self.workers, blocks=len(tasks))
        self.last_stats = stats
        if not tasks:
            return []
        if self.pool is None and (
            self.workers == 1 or len(tasks) < MIN_BLOCKS_FOR_POOL
        ):
            pid = os.getpid()
            stats.blocks_per_worker[pid] = len(tasks)
            return [
                encode_codeblock(t.coeffs, t.band, backend=self.backend)
                for t in tasks
            ]
        stats.dispatch = "pickle"
        payloads = [(t.seq, t.coeffs, t.band, self.backend) for t in tasks]
        return self._run_payloads(tasks, payloads, _encode_task, stats)

    def encode_plane_blocks(
        self, planes: list[np.ndarray], tasks: list[PlaneBlockTask]
    ) -> list[CodeBlockResult]:
        """Encode plane-described blocks, results in submission order.

        Publishes every plane once via ``multiprocessing.shared_memory``
        and hands workers ``(seq, plane descriptor, offsets, shape)``
        tuples; workers slice blocks out of the attached planes locally.
        Falls back to the pickled-block path when shared memory is
        unavailable, disabled (``REPRO_SHM_DISPATCH=0``), or the blocks go
        through an injected pool that does not advertise
        ``supports_shared_memory``.  Codestreams are byte-identical on
        every path.
        """
        stats = QueueStats(workers=self.workers, blocks=len(tasks))
        self.last_stats = stats
        if not tasks:
            return []
        if self.pool is None and (
            self.workers == 1 or len(tasks) < MIN_BLOCKS_FOR_POOL
        ):
            pid = os.getpid()
            stats.blocks_per_worker[pid] = len(tasks)
            return [
                encode_codeblock(t.slice_of(planes[t.plane]), t.band,
                                 backend=self.backend)
                for t in tasks
            ]
        want_shm = (
            self.use_shared_memory
            if self.use_shared_memory is not None
            else shared_memory_available()
        )
        pool_ok = self.pool is None or getattr(
            self.pool, "supports_shared_memory", False
        )
        if not (want_shm and pool_ok and shared_memory_available()):
            stats.dispatch = "pickle"
            payloads = [
                (t.seq, t.slice_of(planes[t.plane]), t.band, self.backend)
                for t in tasks
            ]
            return self._run_payloads(tasks, payloads, _encode_task, stats)
        stats.dispatch = "shared_memory"
        shared = _SharedPlanes(planes)
        try:
            payloads = [
                (t.seq, shared.descs[t.plane], t.row0, t.col0,
                 t.height, t.width, t.band, self.backend)
                for t in tasks
            ]
            return self._run_payloads(tasks, payloads, _encode_plane_task, stats)
        finally:
            # Unlink on success, error, and KeyboardInterrupt alike: the
            # segments must never outlive the encode.
            shared.close()

    def encode_plane_groups(
        self, planes: list[np.ndarray], tasks: list[PlaneGroupTask]
    ) -> list[CodeBlockResult]:
        """Encode geometry groups via the batched backend, one per task.

        Results come back indexed by each block's sequence number (which
        must form ``0..n-1`` across the groups), so the returned list is
        in submission order regardless of completion order.  Planes are
        published once over shared memory exactly like
        :meth:`encode_plane_blocks`; the pickled fallback ships each
        group's coefficient slices instead.  Injected pools are per-block
        executors and cannot run group payloads — callers route around
        them (see :func:`repro.jpeg2000.encoder._encode_pending`).
        """
        if self.pool is not None:
            raise ValueError(
                "group dispatch requires a one-shot pool; injected pools "
                "are per-block executors"
            )
        nblocks = sum(len(t.seqs) for t in tasks)
        stats = QueueStats(workers=self.workers, blocks=nblocks)
        self.last_stats = stats
        if not tasks:
            return []
        all_seqs = [s for t in tasks for s in t.seqs]
        if sorted(all_seqs) != list(range(nblocks)):
            raise ValueError("group task seqs must cover 0..n-1 exactly once")
        results: list[CodeBlockResult | None] = [None] * nblocks

        def _consume(iterator) -> None:
            for seqs, pid, group_results in iterator:
                for s, r in zip(seqs, group_results):
                    results[s] = r
                stats.blocks_per_worker[pid] = (
                    stats.blocks_per_worker.get(pid, 0) + len(seqs)
                )

        want_shm = (
            self.use_shared_memory
            if self.use_shared_memory is not None
            else shared_memory_available()
        )
        if not (want_shm and shared_memory_available()):
            stats.dispatch = "pickle"
            payloads = [
                (
                    t.seqs,
                    tuple(
                        (
                            np.array(planes[p][r0 : r0 + ht, c0 : c0 + wd]),
                            band,
                        )
                        for p, r0, c0, ht, wd, band in t.blocks
                    ),
                )
                for t in tasks
            ]
            task_fn = _encode_block_group_task
            shared = None
        else:
            stats.dispatch = "shared_memory"
            shared = _SharedPlanes(planes)
            payloads = [
                (
                    t.seqs,
                    tuple(
                        (shared.descs[p], r0, c0, ht, wd, band)
                        for p, r0, c0, ht, wd, band in t.blocks
                    ),
                )
                for t in tasks
            ]
            task_fn = _encode_plane_group_task
        try:
            self._run_pool(task_fn, payloads, _consume)
        finally:
            if shared is not None:
                shared.close()
        missing = sum(r is None for r in results)
        if missing:
            raise RuntimeError(f"work queue lost {missing} block results")
        return results  # type: ignore[return-value]

    def decode_all(self, blocks) -> list:
        """Decode code blocks, returning int32 planes in submission order.

        ``blocks`` is a list of ``(data, height, width, band, msbs,
        num_passes)`` tuples — exactly the arguments of
        :func:`repro.jpeg2000.tier1_dec_vec.decode_codeblock_fast`.  Code
        blocks are as independent on decode as on encode (per-block MQ
        state), so the same dynamic queue applies: workers pull blocks
        one at a time and results are re-assembled into submission order,
        making the output sample-identical for any worker count.  The
        serial path runs the batched stack decoder (the fastest
        single-process route); the pool path ships each block's bytes
        (cheap: compressed data, not coefficient planes).
        """
        if self.pool is not None:
            raise ValueError(
                "decode dispatch requires a one-shot pool; injected pools "
                "are encode executors"
            )
        stats = QueueStats(workers=self.workers, blocks=len(blocks))
        self.last_stats = stats
        if not blocks:
            return []
        from repro.jpeg2000.tier1_dec_vec import decode_codeblocks_batched

        if self.workers == 1 or len(blocks) < MIN_BLOCKS_FOR_POOL:
            stats.blocks_per_worker[os.getpid()] = len(blocks)
            return decode_codeblocks_batched(list(blocks))
        stats.dispatch = "pickle"
        payloads = [(seq,) + tuple(blk) for seq, blk in enumerate(blocks)]
        results: list = [None] * len(blocks)

        def _consume(iterator) -> None:
            for seq, pid, res in iterator:
                results[seq] = res
                stats.blocks_per_worker[pid] = (
                    stats.blocks_per_worker.get(pid, 0) + 1
                )

        self._run_pool(_decode_block_task, payloads, _consume)
        missing = sum(r is None for r in results)
        if missing:
            raise RuntimeError(f"work queue lost {missing} block results")
        return results

    def _run_payloads(self, tasks, payloads, task_fn, stats) -> list[CodeBlockResult]:
        """Drive payloads through the injected or one-shot pool."""
        seq_to_pos = {t.seq: i for i, t in enumerate(tasks)}
        if len(seq_to_pos) != len(tasks):
            raise ValueError("duplicate task sequence numbers")
        results: list[CodeBlockResult | None] = [None] * len(tasks)

        def _consume(iterator) -> None:
            for seq, pid, res in iterator:
                results[seq_to_pos[seq]] = res
                stats.blocks_per_worker[pid] = (
                    stats.blocks_per_worker.get(pid, 0) + 1
                )

        if self.pool is not None:
            # Injected persistent pool: submit and leave it running.
            _consume(self.pool.imap_unordered(payloads))
        else:
            self._run_pool(task_fn, payloads, _consume)
        missing = sum(r is None for r in results)
        if missing:
            raise RuntimeError(f"work queue lost {missing} block results")
        return results  # type: ignore[return-value]


class ChunkWorkQueue:
    """Threaded fan-out for DWT plane-chunk kernels (shared memory).

    The paper's Section 2 decomposition hands constant-width column chunks
    of a component plane to the SPEs; the executable analogue here hands
    them to host threads rather than the process pool Tier-1 uses.  The
    split is deliberate: Tier-1 code blocks are Python-bytecode bound (the
    MQ coder), so they need processes, while chunk kernels are NumPy slice
    ops that release the GIL — threads parallelize them with zero pickling,
    the shared-memory option of the chunk scheme.

    Determinism is by construction, not reassembly: every task writes a
    disjoint slice of a preallocated output, so completion order cannot
    influence the result and outputs are byte-identical for any worker
    count.  Errors are re-raised in task submission order.
    """

    def __init__(self, workers: int | None = 1) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor = None
        self.rounds = 0
        self.tasks_run = 0

    def run(self, tasks) -> None:
        """Execute every zero-argument task; returns when all are done."""
        tasks = list(tasks)
        self.rounds += 1
        self.tasks_run += len(tasks)
        if self.workers == 1 or len(tasks) < 2:
            for task in tasks:
                task()
            return
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="dwt-chunk"
            )
        futures = [self._executor.submit(task) for task in tasks]
        first_exc = None
        for fut in futures:
            exc = fut.exception()
            if exc is not None and first_exc is None:
                first_exc = exc
        if first_exc is not None:
            raise first_exc

    def close(self) -> None:
        """Stop the worker threads (idempotent; queue reusable via lazy start)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ChunkWorkQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def encode_blocks(
    blocks: list[tuple[np.ndarray, str]],
    workers: int | None = 1,
    backend: str | None = None,
) -> list[CodeBlockResult]:
    """Convenience wrapper: encode ``(coeffs, band)`` pairs in order."""
    queue = CodeBlockWorkQueue(workers=workers, backend=backend)
    tasks = [
        CodeBlockTask(seq=i, coeffs=coeffs, band=band)
        for i, (coeffs, band) in enumerate(blocks)
    ]
    return queue.encode_all(tasks)
