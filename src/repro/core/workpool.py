"""Real multi-core work queue over Tier-1 code blocks.

This is the *executable* counterpart of the simulated SPE work queue in
:mod:`repro.cell.workqueue`: the paper's Section 3 parallelizes EBCOT
Tier-1 by treating each code block as an independent work item that idle
SPEs pull from a dynamic queue.  Code blocks really are independent — the
MQ coder state is per-block — so the same scheme works verbatim on host
cores with :mod:`multiprocessing`.

Determinism is non-negotiable: the codestream must be byte-identical for
any worker count.  Workers may *finish* blocks in any order (that is the
point of dynamic scheduling), so every task carries a sequence number and
results are re-assembled into submission order before the encoder sees
them.  Tier-1 itself is bit-exact across backends (differentially tested),
so scheduling is the only ordering concern.

The pool path is only worth its process start-up and pickling cost for
real encodes; callers pass ``workers=1`` (the default) to stay serial.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field

import numpy as np

from repro.jpeg2000.tier1 import CodeBlockResult, encode_codeblock, resolve_backend

#: Below this many blocks a pool cannot amortize worker start-up; encode
#: serially no matter what ``workers`` says.
MIN_BLOCKS_FOR_POOL = 2


@dataclass(frozen=True)
class CodeBlockTask:
    """One unit of Tier-1 work: a coefficient block and its subband."""

    seq: int
    coeffs: np.ndarray
    band: str


@dataclass
class QueueStats:
    """Observed scheduling behaviour of one :meth:`encode_all` run."""

    workers: int
    blocks: int
    #: Blocks completed per worker process (keyed by pid; a single serial
    #: run keys by this process).  Uneven counts on a busy machine are the
    #: dynamic queue doing its job — the paper's Table 1 load imbalance.
    blocks_per_worker: dict[int, int] = field(default_factory=dict)


def _encode_task(payload):
    """Worker entry point; module-level so it pickles under spawn."""
    seq, coeffs, band, backend = payload
    return seq, os.getpid(), encode_codeblock(coeffs, band, backend=backend)


def default_workers() -> int:
    """Worker count used for ``workers=None``: one per available core."""
    return max(1, os.cpu_count() or 1)


class CodeBlockWorkQueue:
    """Dynamic code-block queue with deterministic reassembly.

    Parameters
    ----------
    workers:
        Number of encoder processes.  ``1`` (default) encodes serially in
        this process; ``None`` means one per CPU core.
    backend:
        Tier-1 backend name forwarded to every worker (resolved once here
        so children do not re-read the environment).
    mp_context:
        Optional :func:`multiprocessing.get_context` name (``"fork"``,
        ``"spawn"``, ...).  Default: the platform default.
    pool:
        Optional injected block executor that *outlives* this queue: any
        object with a ``workers`` attribute and an ``imap_unordered(payloads)``
        method yielding ``(seq, pid, CodeBlockResult)`` tuples (e.g.
        :class:`repro.service.pool.PersistentWorkerPool`, or a scheduler
        job handle).  When given, ``encode_all`` submits through it instead
        of spawning a one-shot pool, and never closes it — the owner does.
    """

    def __init__(
        self,
        workers: int | None = 1,
        backend: str | None = None,
        mp_context: str | None = None,
        pool=None,
    ) -> None:
        if pool is not None:
            workers = pool.workers
        elif workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        # Resolve "auto"+env once in the parent; workers get an explicit
        # name so codestreams cannot depend on per-child environments.
        resolved = resolve_backend(backend)
        self.backend: str = resolved
        self.mp_context = mp_context
        self.pool = pool
        self.last_stats: QueueStats | None = None

    def encode_all(self, tasks: list[CodeBlockTask]) -> list[CodeBlockResult]:
        """Encode every task, returning results in *submission* order.

        Work is handed out block-by-block (``chunksize=1``): whichever
        worker frees up first takes the next block, exactly like the
        paper's SPEs pulling from the PPE-side queue.  Completion order is
        nondeterministic; the returned list is not.
        """
        stats = QueueStats(workers=self.workers, blocks=len(tasks))
        self.last_stats = stats
        if not tasks:
            return []
        if self.pool is None and (
            self.workers == 1 or len(tasks) < MIN_BLOCKS_FOR_POOL
        ):
            pid = os.getpid()
            stats.blocks_per_worker[pid] = len(tasks)
            return [
                encode_codeblock(t.coeffs, t.band, backend=self.backend)
                for t in tasks
            ]
        payloads = [(t.seq, t.coeffs, t.band, self.backend) for t in tasks]
        seq_to_pos = {t.seq: i for i, t in enumerate(tasks)}
        if len(seq_to_pos) != len(tasks):
            raise ValueError("duplicate task sequence numbers")
        results: list[CodeBlockResult | None] = [None] * len(tasks)

        def _consume(iterator) -> None:
            for seq, pid, res in iterator:
                results[seq_to_pos[seq]] = res
                stats.blocks_per_worker[pid] = (
                    stats.blocks_per_worker.get(pid, 0) + 1
                )

        if self.pool is not None:
            # Injected persistent pool: submit and leave it running.
            _consume(self.pool.imap_unordered(payloads))
        else:
            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context
                else multiprocessing.get_context()
            )
            pool = ctx.Pool(processes=self.workers)
            try:
                _consume(pool.imap_unordered(_encode_task, payloads, chunksize=1))
                pool.close()
            except BaseException:
                # KeyboardInterrupt (and any other failure) must not leave
                # orphaned encoder processes: kill the children before
                # propagating so the CLI exits promptly.
                pool.terminate()
                raise
            finally:
                pool.join()
        missing = sum(r is None for r in results)
        if missing:
            raise RuntimeError(f"work queue lost {missing} block results")
        return results  # type: ignore[return-value]


class ChunkWorkQueue:
    """Threaded fan-out for DWT plane-chunk kernels (shared memory).

    The paper's Section 2 decomposition hands constant-width column chunks
    of a component plane to the SPEs; the executable analogue here hands
    them to host threads rather than the process pool Tier-1 uses.  The
    split is deliberate: Tier-1 code blocks are Python-bytecode bound (the
    MQ coder), so they need processes, while chunk kernels are NumPy slice
    ops that release the GIL — threads parallelize them with zero pickling,
    the shared-memory option of the chunk scheme.

    Determinism is by construction, not reassembly: every task writes a
    disjoint slice of a preallocated output, so completion order cannot
    influence the result and outputs are byte-identical for any worker
    count.  Errors are re-raised in task submission order.
    """

    def __init__(self, workers: int | None = 1) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor = None
        self.rounds = 0
        self.tasks_run = 0

    def run(self, tasks) -> None:
        """Execute every zero-argument task; returns when all are done."""
        tasks = list(tasks)
        self.rounds += 1
        self.tasks_run += len(tasks)
        if self.workers == 1 or len(tasks) < 2:
            for task in tasks:
                task()
            return
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="dwt-chunk"
            )
        futures = [self._executor.submit(task) for task in tasks]
        first_exc = None
        for fut in futures:
            exc = fut.exception()
            if exc is not None and first_exc is None:
                first_exc = exc
        if first_exc is not None:
            raise first_exc

    def close(self) -> None:
        """Stop the worker threads (idempotent; queue reusable via lazy start)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ChunkWorkQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def encode_blocks(
    blocks: list[tuple[np.ndarray, str]],
    workers: int | None = 1,
    backend: str | None = None,
) -> list[CodeBlockResult]:
    """Convenience wrapper: encode ``(coeffs, band)`` pairs in order."""
    queue = CodeBlockWorkQueue(workers=workers, backend=backend)
    tasks = [
        CodeBlockTask(seq=i, coeffs=coeffs, band=band)
        for i, (coeffs, band) in enumerate(blocks)
    ]
    return queue.encode_all(tasks)
