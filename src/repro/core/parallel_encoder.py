"""One-call facade: functionally encode an image *and* price the schedule.

This is what a user of the paper's library would call: it produces a real
JPEG2000 codestream (via :mod:`repro.jpeg2000`) and the simulated Cell/B.E.
execution timeline for the requested machine configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cell.machine import CellMachine, SINGLE_CELL
from repro.cell.timeline import Timeline
from repro.core.pipeline import PipelineModel, PipelineOptions
from repro.jpeg2000.encoder import EncodeResult, encode
from repro.jpeg2000.params import EncoderParams


@dataclass
class ParallelEncodeResult:
    """Functional output plus simulated timing."""

    encode_result: EncodeResult
    timeline: Timeline
    machine: CellMachine

    @property
    def codestream(self) -> bytes:
        return self.encode_result.codestream

    @property
    def simulated_seconds(self) -> float:
        return self.timeline.total_s

    def report(self) -> str:
        er = self.encode_result
        head = (
            f"{er.stats.width}x{er.stats.height}x{er.stats.num_components} "
            f"{'lossless' if er.stats.lossless else 'lossy'} -> "
            f"{len(er.codestream)} bytes "
            f"(ratio {er.compression_ratio:.2f}:1)"
        )
        return head + "\n" + self.timeline.report()


@dataclass
class CellJPEG2000Encoder:
    """The paper's encoder: Jasper-equivalent codec + Cell parallelization.

    ``workers`` sets the *real* Tier-1 process count used for the
    functional encode (see :mod:`repro.core.workpool`); the simulated
    timeline is still priced for ``machine``.  ``None`` defers to the
    ``EncoderParams`` passed to :meth:`encode`.
    """

    machine: CellMachine = SINGLE_CELL
    options: PipelineOptions = field(default_factory=PipelineOptions)
    workers: int | None = None

    def encode(
        self, image: np.ndarray, params: EncoderParams | None = None
    ) -> ParallelEncodeResult:
        """Encode ``image`` and simulate the machine's execution time."""
        if self.workers is not None:
            params = replace(params or EncoderParams.lossless_default(),
                             workers=self.workers)
        er = encode(image, params)
        timeline = self.simulate(er)
        return ParallelEncodeResult(encode_result=er, timeline=timeline,
                                    machine=self.machine)

    def simulate(self, encode_result: EncodeResult) -> Timeline:
        """Price an existing encode's workload on this machine."""
        model = PipelineModel(self.machine, encode_result.stats, self.options)
        return model.simulate()

    def scaling_study(
        self,
        encode_result: EncodeResult,
        spe_counts: list[int],
        ppe_threads: int = 1,
    ) -> dict[int, Timeline]:
        """Re-price one workload across SPE counts (Figures 4/5)."""
        out = {}
        for n in spe_counts:
            machine = self.machine.with_pes(n, ppe_threads)
            out[n] = PipelineModel(machine, encode_result.stats, self.options).simulate()
        return out
