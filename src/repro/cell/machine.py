"""Machine configurations: single Cell/B.E. chip and the IBM QS20 blade."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cell.eib import MemorySystem
from repro.cell.ppe import PPECore
from repro.cell.spe import SPECore


@dataclass(frozen=True)
class CellMachine:
    """A Cell/B.E. system: one or two chips sharing a workload.

    ``num_spes``/``num_ppe_threads`` are the processing elements actually
    *used* (the paper sweeps 1-16 SPEs and 0-2 extra PPE threads); ``chips``
    scales the off-chip bandwidth, since each chip owns its own XDR
    interface.
    """

    name: str = "Cell/B.E."
    clock_hz: float = 3.2e9
    chips: int = 1
    spes_per_chip: int = 8
    num_spes: int = 8
    num_ppe_threads: int = 1
    memory: MemorySystem = MemorySystem()

    def __post_init__(self) -> None:
        if self.chips < 1:
            raise ValueError(f"chips must be >= 1, got {self.chips}")
        if not (0 <= self.num_spes <= self.chips * self.spes_per_chip):
            raise ValueError(
                f"num_spes {self.num_spes} outside 0..{self.chips * self.spes_per_chip}"
            )
        if not (0 <= self.num_ppe_threads <= 2 * self.chips):
            raise ValueError(
                f"num_ppe_threads {self.num_ppe_threads} outside 0..{2 * self.chips}"
            )
        if self.num_spes == 0 and self.num_ppe_threads == 0:
            raise ValueError("machine needs at least one processing element")

    @property
    def spe(self) -> SPECore:
        return SPECore(clock_hz=self.clock_hz)

    @property
    def ppe(self) -> PPECore:
        return PPECore(clock_hz=self.clock_hz)

    @property
    def total_offchip_bw(self) -> float:
        """Aggregate off-chip bandwidth across chips (bytes/s)."""
        return self.memory.offchip_bw * self.chips

    def spes_on_chip(self, chip: int) -> int:
        """SPEs in use on ``chip`` when filling chips in order."""
        if not (0 <= chip < self.chips):
            raise IndexError(f"chip {chip} outside 0..{self.chips - 1}")
        used_before = min(self.num_spes, chip * self.spes_per_chip)
        return min(self.spes_per_chip, self.num_spes - used_before)

    def per_spe_bandwidth(self) -> float:
        """Sustained bytes/s per active SPE, accounting for chip placement."""
        if self.num_spes == 0:
            return 0.0
        worst = float("inf")
        for chip in range(self.chips):
            on_chip = self.spes_on_chip(chip)
            if on_chip > 0:
                worst = min(worst, self.memory.per_stream_bandwidth(on_chip))
        return worst

    def with_pes(self, num_spes: int, num_ppe_threads: int) -> "CellMachine":
        """Same hardware, different number of active processing elements."""
        return replace(self, num_spes=num_spes, num_ppe_threads=num_ppe_threads)


#: The paper's main platform: one chip of the QS20 at 3.2 GHz, 8 SPEs.
SINGLE_CELL = CellMachine(name="Cell/B.E. 3.2 GHz", chips=1, num_spes=8,
                          num_ppe_threads=1)

#: IBM QS20 blade: two Cell/B.E. 3.2 GHz chips (Section 5 scaling study).
QS20_BLADE = CellMachine(name="IBM QS20", chips=2, num_spes=16,
                         num_ppe_threads=2)

#: Muta et al. used 2.4 GHz parts (Section 5.2 caveat list).
MUTA_BLADE = CellMachine(name="Cell blade 2.4 GHz", clock_hz=2.4e9, chips=2,
                         num_spes=16, num_ppe_threads=2)
