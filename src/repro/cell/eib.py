"""EIB and off-chip memory bandwidth with contention.

Paper Section 4: "As the number of SPEs increases, the limited off-chip
memory bandwidth becomes a bottleneck and nullifies the performance
enhancement achieved by vectorization."  This module prices the bus bytes
reported by :class:`~repro.cell.dma.DmaEngine`:

* the EIB itself sustains ~96 bytes/cycle (~204.8 GB/s at 3.2 GHz) — rarely
  the limit for this workload;
* the XDR off-chip interface sustains 25.6 GB/s per chip; concurrent SPE
  streams share it;
* a single SPE's MFC sustains at most ~16 GB/s on its own.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemorySystem:
    """Bandwidth model of one Cell/B.E. chip's path to main memory."""

    offchip_bw: float = 25.6e9      # XDR sustained, bytes/s per chip
    single_stream_bw: float = 16.0e9  # one MFC's sustainable GET/PUT rate
    eib_bw: float = 204.8e9         # on-chip ring aggregate

    def __post_init__(self) -> None:
        if min(self.offchip_bw, self.single_stream_bw, self.eib_bw) <= 0:
            raise ValueError("bandwidths must be positive")

    def per_stream_bandwidth(self, active_streams: int) -> float:
        """Sustained bytes/s available to each of ``active_streams``."""
        if active_streams <= 0:
            raise ValueError(f"active_streams must be positive, got {active_streams}")
        fair_share = min(self.offchip_bw, self.eib_bw) / active_streams
        return min(self.single_stream_bw, fair_share)

    def transfer_time(self, bus_bytes: int, active_streams: int = 1) -> float:
        """Seconds to move ``bus_bytes`` for one stream among many."""
        if bus_bytes < 0:
            raise ValueError(f"bus_bytes must be non-negative, got {bus_bytes}")
        if bus_bytes == 0:
            return 0.0
        return bus_bytes / self.per_stream_bandwidth(active_streams)

    def aggregate_time(self, total_bus_bytes: int) -> float:
        """Seconds for the chip to move ``total_bus_bytes`` at full tilt."""
        if total_bus_bytes < 0:
            raise ValueError("total_bus_bytes must be non-negative")
        return total_bus_bytes / min(self.offchip_bw, self.eib_bw)
