"""Cell Broadband Engine performance simulator.

The Cell/B.E. hardware the paper runs on (IBM QS20 blade, two 3.2 GHz
Cell/B.E. chips) no longer exists, and Python cannot express SIMD intrinsics
or explicit DMA.  This subpackage substitutes a parameterized performance
model exposing exactly the mechanisms the paper's results hinge on:

* per-instruction SPE/PPE latency and issue modelling (Table 1),
* a 256 KB Local Store with explicit allocation,
* a DMA engine enforcing the real alignment/size rules with an efficiency
  model that rewards cache-line-aligned, line-multiple transfers,
* EIB / off-chip XDR bandwidth with contention across active SPEs,
* single/double/N-buffer pipelining of compute against DMA,
* a dynamic work-queue scheduler (Tier-1 load balancing).

Functional results come from :mod:`repro.jpeg2000`; this layer computes
*time*.
"""

from repro.cell.isa import SPE_ISA, PPE_ISA, InstrClass
from repro.cell.localstore import LocalStore, LocalStoreError
from repro.cell.dma import DmaEngine, DmaError, DmaTransfer
from repro.cell.eib import MemorySystem
from repro.cell.spe import SPECore
from repro.cell.ppe import PPECore
from repro.cell.machine import CellMachine, QS20_BLADE, SINGLE_CELL

__all__ = [
    "CellMachine",
    "DmaEngine",
    "DmaError",
    "DmaTransfer",
    "InstrClass",
    "LocalStore",
    "LocalStoreError",
    "MemorySystem",
    "PPECore",
    "PPE_ISA",
    "QS20_BLADE",
    "SINGLE_CELL",
    "SPECore",
    "SPE_ISA",
]
