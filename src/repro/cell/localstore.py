"""SPE Local Store model: 256 KB, explicitly managed, 16-byte granularity.

The paper's data decomposition scheme exists largely because of this
memory: "the Local Store space requirement becomes constant independent of
the data array size" (Section 2).  Buffer sizing decisions in the kernels
(buffer depth, column-group width) are validated against this allocator so
an infeasible configuration fails loudly instead of silently modelling
impossible hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.alignment import QUADWORD_BYTES, round_up

LOCAL_STORE_BYTES = 256 * 1024

#: Space the SPE program itself occupies.  The paper stresses that "shorter
#: code size also saves the Local Store space"; our default reserves a
#: realistic footprint for code + stack + runtime.
DEFAULT_CODE_BYTES = 48 * 1024


class LocalStoreError(RuntimeError):
    """Raised when an allocation cannot fit in the Local Store."""


@dataclass
class _Allocation:
    name: str
    offset: int
    size: int


@dataclass
class LocalStore:
    """Bump allocator over the 256 KB Local Store."""

    capacity: int = LOCAL_STORE_BYTES
    code_bytes: int = DEFAULT_CODE_BYTES
    _allocations: list[_Allocation] = field(default_factory=list)
    _top: int = 0

    def __post_init__(self) -> None:
        if not (0 < self.capacity <= LOCAL_STORE_BYTES):
            raise ValueError(f"capacity must be in (0, 256 KiB], got {self.capacity}")
        if self.code_bytes < 0 or self.code_bytes >= self.capacity:
            raise ValueError(f"code_bytes out of range: {self.code_bytes}")
        self._top = round_up(self.code_bytes, QUADWORD_BYTES)

    @property
    def used(self) -> int:
        return self._top

    @property
    def free(self) -> int:
        return self.capacity - self._top

    def alloc(self, name: str, size: int, align: int = QUADWORD_BYTES) -> int:
        """Allocate ``size`` bytes; returns the Local Store offset."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        offset = round_up(self._top, align)
        if offset + size > self.capacity:
            raise LocalStoreError(
                f"Local Store overflow: {name!r} needs {size} B at offset "
                f"{offset}, capacity {self.capacity} B "
                f"({self.free} B free before alignment)"
            )
        self._allocations.append(_Allocation(name, offset, size))
        self._top = offset + size
        return offset

    def reset(self) -> None:
        """Free all data allocations (keeps the code footprint)."""
        self._allocations.clear()
        self._top = round_up(self.code_bytes, QUADWORD_BYTES)

    def fits(self, size: int, align: int = QUADWORD_BYTES) -> bool:
        """Whether ``size`` bytes could currently be allocated."""
        return round_up(self._top, align) + size <= self.capacity

    def report(self) -> list[tuple[str, int, int]]:
        """(name, offset, size) of every live allocation."""
        return [(a.name, a.offset, a.size) for a in self._allocations]


def max_buffer_depth(row_bytes: int, ls: LocalStore | None = None,
                     reserve: int = 16 * 1024) -> int:
    """How many row buffers of ``row_bytes`` fit in the Local Store.

    This realizes the paper's point that the constant per-row footprint
    lets buffering depth be raised until the Local Store is full
    ("we can increase the level of buffering to a higher value that fits
    within the Local Store").
    """
    if row_bytes <= 0:
        raise ValueError(f"row_bytes must be positive, got {row_bytes}")
    ls = ls or LocalStore()
    usable = ls.free - reserve
    per_buf = round_up(row_bytes, QUADWORD_BYTES)
    return max(0, usable // per_buf)
