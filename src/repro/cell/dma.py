"""DMA engine model: the MFC transfer rules and their cost.

Paper Section 2: "DMA on the Cell/B.E. requires 1, 2, 4, 8 byte alignment
to transfer 1, 2, 4, 8 bytes of data and 16 byte alignment to transfer a
multiple of 16 bytes.  DMA data transfer becomes most efficient if data
addresses are cache line aligned in both main memory and the SPE Local
Store, and data transfer size is an even multiple of the cache line size."

The cost model charges each transfer for the memory-bus *lines touched*
(misaligned transfers straddle extra 128-byte lines) plus a fixed issue
latency, which is exactly the mechanism that makes the paper's aligned
decomposition faster than Muta et al.'s overlapped tiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.alignment import (
    CACHE_LINE_BYTES,
    DMA_MAX_TRANSFER_BYTES,
    QUADWORD_BYTES,
    SMALL_DMA_SIZES,
    is_aligned,
)


class DmaError(ValueError):
    """Raised for transfers the MFC hardware would reject."""


@dataclass(frozen=True)
class DmaTransfer:
    """One MFC GET or PUT command."""

    size: int
    local_addr: int
    main_addr: int
    is_get: bool = True

    def validate(self) -> None:
        """Apply the MFC alignment/size rules (raises :class:`DmaError`)."""
        if self.size <= 0:
            raise DmaError(f"DMA size must be positive, got {self.size}")
        if self.size > DMA_MAX_TRANSFER_BYTES:
            raise DmaError(
                f"DMA size {self.size} exceeds the 16 KiB single-command limit"
            )
        if self.size in SMALL_DMA_SIZES:
            need = self.size
            if not (is_aligned(self.local_addr, need) and is_aligned(self.main_addr, need)):
                raise DmaError(
                    f"{self.size}-byte DMA requires {need}-byte alignment "
                    f"(local 0x{self.local_addr:x}, main 0x{self.main_addr:x})"
                )
            # Additionally the low 4 bits of both addresses must match.
            if (self.local_addr & 0xF) != (self.main_addr & 0xF):
                raise DmaError(
                    "small DMA requires identical low-order address bits "
                    f"(local 0x{self.local_addr:x}, main 0x{self.main_addr:x})"
                )
        elif self.size % QUADWORD_BYTES == 0:
            if not (
                is_aligned(self.local_addr, QUADWORD_BYTES)
                and is_aligned(self.main_addr, QUADWORD_BYTES)
            ):
                raise DmaError(
                    f"{self.size}-byte DMA requires 16-byte alignment "
                    f"(local 0x{self.local_addr:x}, main 0x{self.main_addr:x})"
                )
        else:
            raise DmaError(
                f"DMA size {self.size} must be 1/2/4/8 or a multiple of 16"
            )

    @property
    def lines_touched(self) -> int:
        """128-byte memory lines this transfer occupies on the bus."""
        start = self.main_addr - (self.main_addr % CACHE_LINE_BYTES)
        end = self.main_addr + self.size
        return (end - start + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES

    @property
    def fully_aligned(self) -> bool:
        """Cache-line aligned on both sides with line-multiple size."""
        return (
            is_aligned(self.main_addr, CACHE_LINE_BYTES)
            and is_aligned(self.local_addr, CACHE_LINE_BYTES)
            and self.size % CACHE_LINE_BYTES == 0
        )

    @property
    def bus_bytes(self) -> int:
        """Bytes that actually move on the memory bus (whole lines)."""
        return self.lines_touched * CACHE_LINE_BYTES


@dataclass
class DmaStats:
    transfers: int = 0
    payload_bytes: int = 0
    bus_bytes: int = 0
    unaligned_transfers: int = 0


@dataclass
class DmaEngine:
    """Per-SPE MFC cost model.

    ``issue_cycles`` is the SPE-side cost of enqueueing a command;
    ``latency_s`` the round-trip latency of a transfer not hidden by
    buffering.  Bandwidth is *not* applied here — sustained bandwidth under
    contention is the :class:`~repro.cell.eib.MemorySystem`'s job; the
    engine reports bus bytes so the memory system can price them.
    """

    issue_cycles: int = 16
    latency_s: float = 250e-9
    stats: DmaStats = field(default_factory=DmaStats)

    def submit(self, transfer: DmaTransfer) -> None:
        """Validate and account one transfer."""
        transfer.validate()
        self.stats.transfers += 1
        self.stats.payload_bytes += transfer.size
        self.stats.bus_bytes += transfer.bus_bytes
        if not transfer.fully_aligned:
            self.stats.unaligned_transfers += 1

    @property
    def efficiency(self) -> float:
        """Payload / bus bytes moved so far (1.0 = perfectly aligned)."""
        if self.stats.bus_bytes == 0:
            return 1.0
        return self.stats.payload_bytes / self.stats.bus_bytes


def row_transfer_plan(
    row_bytes: int, main_addr: int, local_addr: int, is_get: bool = True
) -> list[DmaTransfer]:
    """Split one row into valid MFC commands (16 KiB max each)."""
    if row_bytes <= 0:
        raise DmaError(f"row_bytes must be positive, got {row_bytes}")
    out = []
    off = 0
    while off < row_bytes:
        chunk = min(DMA_MAX_TRANSFER_BYTES, row_bytes - off)
        if chunk not in SMALL_DMA_SIZES and chunk % QUADWORD_BYTES:
            # keep remainder expressible: cut at a quadword boundary
            chunk -= chunk % QUADWORD_BYTES
            if chunk == 0:
                raise DmaError(
                    f"row tail of {row_bytes - off} bytes is not DMA-expressible"
                )
        out.append(
            DmaTransfer(
                size=chunk,
                local_addr=local_addr + off,
                main_addr=main_addr + off,
                is_get=is_get,
            )
        )
        off += chunk
    return out
