"""Compute/DMA overlap under single, double, or N-level buffering.

Paper Section 2: "double buffering or multi-level buffering is an efficient
technique for hiding latency but increases the Local Store space
requirement at the same time.  However, owing to the constant memory
requirement in our data decomposition scheme, we can increase the level of
buffering to a higher value that fits within the Local Store."
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BufferedLoopTime:
    """Steady-state timing of a unit-at-a-time SPE processing loop."""

    total_s: float
    compute_s: float
    dma_s: float
    overlapped: bool

    @property
    def dma_hidden_fraction(self) -> float:
        """How much of the DMA time the buffering hid."""
        if self.dma_s == 0:
            return 1.0
        exposed = self.total_s - self.compute_s
        return max(0.0, 1.0 - exposed / self.dma_s)


def buffered_loop_time(
    units: int,
    compute_per_unit_s: float,
    dma_per_unit_s: float,
    buffers: int = 2,
    dma_latency_s: float = 250e-9,
) -> BufferedLoopTime:
    """Total time for ``units`` iterations of a (DMA in, compute, DMA out) loop.

    With one buffer, DMA and compute serialize.  With ``buffers >= 2``,
    steady-state cost per unit is ``max(compute, dma)``; deeper buffering
    additionally rides out the fixed DMA latency (up to ``buffers - 1``
    transfers in flight).
    """
    if units < 0:
        raise ValueError(f"units must be non-negative, got {units}")
    if compute_per_unit_s < 0 or dma_per_unit_s < 0:
        raise ValueError("per-unit times must be non-negative")
    if buffers < 1:
        raise ValueError(f"buffers must be >= 1, got {buffers}")
    if units == 0:
        return BufferedLoopTime(0.0, 0.0, 0.0, buffers >= 2)
    compute_total = compute_per_unit_s * units
    dma_total = dma_per_unit_s * units
    if buffers == 1:
        total = compute_total + dma_total + dma_latency_s * units
        return BufferedLoopTime(total, compute_total, dma_total, False)
    # Steady state: per-unit max(compute, dma).  The fixed DMA latency is
    # exposed only when (buffers - 1) in-flight transfers cannot cover it;
    # the pipeline fill pays one full transfer up front.
    steady_unit = max(compute_per_unit_s, dma_per_unit_s)
    steady = steady_unit * (units - 1)
    if dma_per_unit_s > 0:
        exposed_per_unit = max(0.0, dma_latency_s - (buffers - 1) * steady_unit)
        exposed_latency = exposed_per_unit * units + dma_latency_s
    else:
        exposed_latency = 0.0
    fill = dma_per_unit_s + compute_per_unit_s
    total = steady + fill + exposed_latency
    return BufferedLoopTime(total, compute_total, dma_total, True)
