"""Instruction latency/issue tables for the SPE and PPE cores.

Table 1 of the paper gives the latencies that drive its fixed-point vs
floating-point argument:

=========  =========================================  ========
``mpyh``   two-byte integer multiply high             7 cycles
``mpyu``   two-byte integer multiply unsigned         7 cycles
``a``      (word) add                                 2 cycles
``fm``     single-precision floating point multiply   6 cycles
=========  =========================================  ========

The remaining SPE entries follow the Cell BE Handbook (v1.1, Table B-2
class latencies): fixed-point unit 2 cycles, shuffle/quad-rotate 4, load 6,
single-precision FP 6.  Each instruction is tagged with the SPE pipe it
issues on (even = arithmetic, odd = load/store/permute/branch) because the
SPE dual-issues one instruction per pipe per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Pipe(Enum):
    EVEN = "even"
    ODD = "odd"


class InstrClass(str, Enum):
    """Instruction classes used by kernel instruction mixes."""

    ADD = "a"            # word add/sub/compare/logical
    SHIFT = "shl"        # shifts and rotates (element)
    MPYH = "mpyh"        # 16-bit multiply high
    MPYU = "mpyu"        # 16-bit multiply unsigned
    FM = "fm"            # single-precision FP multiply
    FA = "fa"            # single-precision FP add
    FMA = "fma"          # fused multiply-add
    CVT = "cvt"          # int<->float conversion
    LOAD = "lqd"         # quadword load
    STORE = "stqd"       # quadword store
    SHUFFLE = "shufb"    # byte permute
    BRANCH = "br"        # branch


@dataclass(frozen=True)
class InstrSpec:
    latency: int
    pipe: Pipe


@dataclass(frozen=True)
class IsaTable:
    """Latency table plus core-level penalties."""

    name: str
    instrs: dict[InstrClass, InstrSpec]
    branch_miss_penalty: int

    def latency(self, instr: InstrClass) -> int:
        return self.instrs[instr].latency

    def pipe(self, instr: InstrClass) -> Pipe:
        return self.instrs[instr].pipe


SPE_ISA = IsaTable(
    name="SPE",
    instrs={
        InstrClass.ADD: InstrSpec(2, Pipe.EVEN),      # Table 1: a = 2 cycles
        InstrClass.SHIFT: InstrSpec(4, Pipe.EVEN),
        InstrClass.MPYH: InstrSpec(7, Pipe.EVEN),     # Table 1
        InstrClass.MPYU: InstrSpec(7, Pipe.EVEN),     # Table 1
        InstrClass.FM: InstrSpec(6, Pipe.EVEN),       # Table 1
        InstrClass.FA: InstrSpec(6, Pipe.EVEN),
        InstrClass.FMA: InstrSpec(6, Pipe.EVEN),
        InstrClass.CVT: InstrSpec(7, Pipe.EVEN),
        InstrClass.LOAD: InstrSpec(6, Pipe.ODD),
        InstrClass.STORE: InstrSpec(6, Pipe.ODD),
        InstrClass.SHUFFLE: InstrSpec(4, Pipe.ODD),
        InstrClass.BRANCH: InstrSpec(4, Pipe.ODD),
    },
    # SPE has no dynamic branch prediction: a taken branch that was not
    # hinted costs ~18 cycles of fetch bubble.
    branch_miss_penalty=18,
)

#: The PPE is a 2-way in-order SMT PowerPC with a conventional dynamic
#: branch predictor.  Latencies are similar per class; the difference is in
#: the core model (scalar-dominant issue, predictor, cache hierarchy).
PPE_ISA = IsaTable(
    name="PPE",
    instrs={
        InstrClass.ADD: InstrSpec(2, Pipe.EVEN),
        InstrClass.SHIFT: InstrSpec(2, Pipe.EVEN),
        InstrClass.MPYH: InstrSpec(9, Pipe.EVEN),
        InstrClass.MPYU: InstrSpec(9, Pipe.EVEN),
        InstrClass.FM: InstrSpec(10, Pipe.EVEN),
        InstrClass.FA: InstrSpec(10, Pipe.EVEN),
        InstrClass.FMA: InstrSpec(10, Pipe.EVEN),
        InstrClass.CVT: InstrSpec(10, Pipe.EVEN),
        InstrClass.LOAD: InstrSpec(4, Pipe.ODD),
        InstrClass.STORE: InstrSpec(4, Pipe.ODD),
        InstrClass.SHUFFLE: InstrSpec(4, Pipe.ODD),
        InstrClass.BRANCH: InstrSpec(1, Pipe.ODD),
    },
    branch_miss_penalty=23,  # deep in-order pipeline refill
)


@dataclass(frozen=True)
class InstructionMix:
    """Dynamic instruction mix of a kernel, per *element* processed.

    ``ops`` counts instructions by class for one scalar element's worth of
    work.  ``vectorizable`` kernels process SIMD-width elements per
    instruction on cores with vector units.  ``dependency_limited`` kernels
    (tight recurrences that cannot be unrolled, e.g. the MQ coder) pay
    instruction *latency* instead of issue throughput.  ``branches`` counts
    conditional branches per element with ``branch_miss_rate`` the fraction
    a static (SPE) or dynamic (PPE/P4) predictor gets wrong.
    """

    ops: dict[InstrClass, float]
    vectorizable: bool = True
    dependency_limited: bool = False
    branches: float = 0.0
    branch_miss_rate: float = 0.0
    #: Fraction of the ideal SIMD speedup actually achieved.  Kernels that
    #: must shuffle data between lanes (transposes, interleaved lifting) or
    #: handle alignment boundaries sustain well below peak; 1.0 = perfect.
    simd_efficiency: float = 1.0
    #: Fraction of the (latency - throughput) gap an *in-order* core exposes
    #: on this kernel's dependence chains.  0.0 = fully unrollable streams,
    #: 1.0 = one long serial chain (equivalent to ``dependency_limited``).
    #: Out-of-order cores (the Pentium IV model) ignore this.
    dependency_factor: float = 0.0

    def scaled(self, factor: float) -> "InstructionMix":
        """Mix with all dynamic counts multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return InstructionMix(
            ops={k: v * factor for k, v in self.ops.items()},
            vectorizable=self.vectorizable,
            dependency_limited=self.dependency_limited,
            branches=self.branches * factor,
            branch_miss_rate=self.branch_miss_rate,
            simd_efficiency=self.simd_efficiency,
            dependency_factor=self.dependency_factor,
        )

    def merged(self, other: "InstructionMix") -> "InstructionMix":
        """Elementwise sum of two mixes (kernel fusion)."""
        ops = dict(self.ops)
        for k, v in other.ops.items():
            ops[k] = ops.get(k, 0.0) + v
        total_br = self.branches + other.branches
        miss = 0.0
        if total_br > 0:
            miss = (
                self.branches * self.branch_miss_rate
                + other.branches * other.branch_miss_rate
            ) / total_br
        return InstructionMix(
            ops=ops,
            vectorizable=self.vectorizable and other.vectorizable,
            dependency_limited=self.dependency_limited or other.dependency_limited,
            branches=total_br,
            branch_miss_rate=miss,
            simd_efficiency=min(self.simd_efficiency, other.simd_efficiency),
            dependency_factor=max(self.dependency_factor, other.dependency_factor),
        )


def int32_multiply_mix() -> dict[InstrClass, float]:
    """SPE emulation of a 32x32-bit integer multiply (paper Section 4).

    "the SPE instruction set architecture does not support four byte integer
    multiplication; thus four byte integer multiplication needs to be
    emulated by two byte integer multiplications and additions" — the
    standard sequence is two ``mpyh`` + one ``mpyu`` + two adds.
    """
    return {
        InstrClass.MPYH: 2.0,
        InstrClass.MPYU: 1.0,
        InstrClass.ADD: 2.0,
    }
