"""SPE core model: 4-lane SIMD, dual-issue in-order, static branching.

Converts a kernel :class:`~repro.cell.isa.InstructionMix` into cycles per
element.  The modelling choices mirror what the paper exploits:

* vectorizable kernels amortize each instruction over 4 32-bit lanes;
* throughput-bound loops (unrolled by the compiler thanks to the constant
  trip counts the data decomposition guarantees — paper Section 2) are
  limited by per-pipe issue, one even + one odd instruction per cycle;
* dependency-limited code (Tier-1/MQ recurrences) pays full latencies;
* every branch costs the 18-cycle hint-miss bubble at the kernel's miss
  rate, because the SPE "lacks dynamic branch prediction" (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.isa import SPE_ISA, InstrClass, InstructionMix, IsaTable, Pipe


@dataclass(frozen=True)
class SPECore:
    """One Synergistic Processing Element."""

    clock_hz: float = 3.2e9
    simd_lanes: int = 4
    isa: IsaTable = SPE_ISA
    #: Residual stall fraction on throughput-bound code (imperfect
    #: scheduling, loop overhead); 1.0 would be a perfect compiler.
    schedule_overhead: float = 1.15

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.simd_lanes < 1:
            raise ValueError(f"simd_lanes must be >= 1, got {self.simd_lanes}")
        if self.schedule_overhead < 1.0:
            raise ValueError("schedule_overhead cannot beat perfect scheduling")

    def cycles_per_element(self, mix: InstructionMix) -> float:
        """Cycles to process one element of a kernel with mix ``mix``."""
        if not (0.0 < mix.simd_efficiency <= 1.0):
            raise ValueError(
                f"simd_efficiency must be in (0, 1], got {mix.simd_efficiency}"
            )
        even = 0.0
        odd = 0.0
        latency = 0.0
        for instr, count in mix.ops.items():
            if count < 0:
                raise ValueError(f"negative op count for {instr}")
            spec = self.isa.instrs[instr]
            if spec.pipe is Pipe.EVEN:
                even += count
            else:
                odd += count
            latency += count * spec.latency
        throughput = max(even, odd) * self.schedule_overhead
        if mix.dependency_limited:
            core = latency
        else:
            core = throughput + mix.dependency_factor * max(0.0, latency - throughput)
        if mix.vectorizable:
            core /= self.simd_lanes * mix.simd_efficiency
        # Branches are scalar control flow: never vectorized.
        core += mix.branches * (
            1.0 + mix.branch_miss_rate * self.isa.branch_miss_penalty
        )
        return core

    def seconds_per_element(self, mix: InstructionMix) -> float:
        return self.cycles_per_element(mix) / self.clock_hz

    def kernel_time(self, mix: InstructionMix, num_elements: int) -> float:
        """Seconds of pure compute for ``num_elements``."""
        if num_elements < 0:
            raise ValueError(f"num_elements must be non-negative, got {num_elements}")
        return self.seconds_per_element(mix) * num_elements
