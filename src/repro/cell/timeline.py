"""Stage timeline: barriers between pipeline stages, per-PE accounting.

The paper's encoder (Figure 2) is a sequence of stages with an implicit
barrier between consecutive stages (each stage consumes the previous
stage's full output array).  The timeline records, per stage, how long each
class of processing element worked and the resulting wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageTiming:
    """Wall time and attribution of one pipeline stage."""

    name: str
    wall_s: float
    spe_busy_s: float = 0.0
    ppe_busy_s: float = 0.0
    dma_bus_bytes: int = 0
    notes: str = ""

    def __post_init__(self) -> None:
        if self.wall_s < 0:
            raise ValueError(f"stage {self.name!r} has negative wall time")


@dataclass
class Timeline:
    """Ordered stage timings with summary helpers."""

    machine_name: str
    stages: list[StageTiming] = field(default_factory=list)

    def add(self, stage: StageTiming) -> None:
        self.stages.append(stage)

    @property
    def total_s(self) -> float:
        return sum(s.wall_s for s in self.stages)

    def stage(self, name: str) -> StageTiming:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}")

    def fraction(self, name: str) -> float:
        """Share of total wall time spent in ``name``."""
        total = self.total_s
        return self.stage(name).wall_s / total if total > 0 else 0.0

    def report(self) -> str:
        """Human-readable per-stage table."""
        lines = [f"Timeline on {self.machine_name} — total {self.total_s * 1e3:.2f} ms"]
        for s in self.stages:
            pct = 100.0 * s.wall_s / self.total_s if self.total_s else 0.0
            lines.append(
                f"  {s.name:<28} {s.wall_s * 1e3:9.3f} ms ({pct:5.1f}%)"
                + (f"  [{s.notes}]" if s.notes else "")
            )
        return "\n".join(lines)
