"""Dynamic work-queue scheduling simulation (the paper's Tier-1 strategy).

Paper Section 3.2: "the processing time for Tier-1 encoding is dependent on
the input data characteristics, and we cannot achieve load balancing by
merely distributing an identical number of code blocks to the processing
elements" — hence a shared queue that PPE and SPE threads pull from.

The simulator is an event-driven greedy list scheduler: whenever a
processing element becomes free it dequeues the next item, paying a
per-dequeue synchronization cost.  This reproduces both the load-balancing
benefit and the contention penalty that smaller code blocks (Muta's 32x32)
incur through 4x the queue traffic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkerSpec:
    """One processing element pulling from the queue."""

    name: str
    #: Seconds this worker needs per item, parallel to the items list.
    item_costs: tuple[float, ...]
    #: Synchronization cost per dequeue (atomic op + signalling).
    dequeue_overhead_s: float = 2e-6


@dataclass
class WorkQueueResult:
    makespan_s: float
    per_worker_busy_s: dict[str, float]
    per_worker_items: dict[str, int]
    schedule: list[tuple[str, int, float, float]] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        if self.makespan_s <= 0 or not self.per_worker_busy_s:
            return 1.0
        busy = sum(self.per_worker_busy_s.values())
        return busy / (self.makespan_s * len(self.per_worker_busy_s))


def simulate_work_queue(
    num_items: int, workers: list[WorkerSpec], record_schedule: bool = False
) -> WorkQueueResult:
    """Greedy pull scheduling of ``num_items`` FIFO items over ``workers``."""
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    if not workers:
        raise ValueError("need at least one worker")
    for w in workers:
        if len(w.item_costs) != num_items:
            raise ValueError(
                f"worker {w.name!r} has {len(w.item_costs)} costs for "
                f"{num_items} items"
            )
    busy = {w.name: 0.0 for w in workers}
    count = {w.name: 0 for w in workers}
    schedule: list[tuple[str, int, float, float]] = []
    if num_items == 0:
        return WorkQueueResult(0.0, busy, count, schedule)

    # (time_free, tiebreak, worker) — earliest-free worker takes next item.
    heap = [(0.0, i, w) for i, w in enumerate(workers)]
    heapq.heapify(heap)
    next_item = 0
    makespan = 0.0
    while next_item < num_items:
        t_free, tie, worker = heapq.heappop(heap)
        cost = worker.item_costs[next_item] + worker.dequeue_overhead_s
        t_end = t_free + cost
        busy[worker.name] += cost
        count[worker.name] += 1
        if record_schedule:
            schedule.append((worker.name, next_item, t_free, t_end))
        makespan = max(makespan, t_end)
        next_item += 1
        heapq.heappush(heap, (t_end, tie, worker))
    return WorkQueueResult(makespan, busy, count, schedule)
