"""PPE core model: in-order 2-way PowerPC with dynamic branch prediction.

The paper runs scalar compiled C on the PPE (the Jasper code is not
VMX-vectorized), so the PPE model issues scalar instructions.  Its strength
is exactly what the paper observes for Tier-1: "the EBCOT algorithm is
branchy and integer based, [so] the PPE runs the code faster than the SPE"
— the dynamic predictor converts most of the SPE's 18-cycle bubbles into
~1-cycle branches, and the L1/L2 hierarchy hides irregular access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.isa import PPE_ISA, InstructionMix, IsaTable, Pipe


@dataclass(frozen=True)
class PPECore:
    """One PPE hardware thread.

    ``smt_efficiency`` is the throughput of the *second* SMT thread
    relative to the first when both run (the PPE is 2-way SMT over mostly
    shared issue resources).
    """

    clock_hz: float = 3.2e9
    isa: IsaTable = PPE_ISA
    issue_width: float = 2.0
    #: In-order stall factor: dependent scalar code does not dual-issue
    #: cleanly on the PPE's simple pipeline.
    schedule_overhead: float = 2.1
    #: Sustained streaming bandwidth through the PPE cache hierarchy for
    #: data-parallel sweeps whose working set spills the 512 KB L2.
    stream_bw: float = 2.8e9
    branch_predictor_hit_rate: float = 0.94
    smt_efficiency: float = 0.45

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")
        if not (0.0 <= self.branch_predictor_hit_rate <= 1.0):
            raise ValueError("branch_predictor_hit_rate must be in [0, 1]")
        if not (0.0 < self.smt_efficiency <= 1.0):
            raise ValueError("smt_efficiency must be in (0, 1]")

    def cycles_per_element(self, mix: InstructionMix) -> float:
        """Cycles for one element; scalar issue, no vector lanes."""
        total_ops = 0.0
        latency = 0.0
        for instr, count in mix.ops.items():
            if count < 0:
                raise ValueError(f"negative op count for {instr}")
            total_ops += count
            latency += count * self.isa.instrs[instr].latency
        throughput = total_ops / self.issue_width * self.schedule_overhead
        if mix.dependency_limited:
            core = latency
        else:
            core = throughput + mix.dependency_factor * max(0.0, latency - throughput)
        # The dynamic predictor eats most branch cost; the kernel's inherent
        # unpredictability (mix.branch_miss_rate) is scaled by the predictor.
        effective_miss = mix.branch_miss_rate * (1.0 - self.branch_predictor_hit_rate)
        core += mix.branches * (1.0 + effective_miss * self.isa.branch_miss_penalty)
        return core

    def seconds_per_element(self, mix: InstructionMix) -> float:
        return self.cycles_per_element(mix) / self.clock_hz

    def kernel_time(self, mix: InstructionMix, num_elements: int,
                    smt_threads: int = 1) -> float:
        """Seconds of compute for ``num_elements`` using 1 or 2 SMT threads."""
        if num_elements < 0:
            raise ValueError(f"num_elements must be non-negative, got {num_elements}")
        if smt_threads not in (1, 2):
            raise ValueError(f"PPE supports 1 or 2 SMT threads, got {smt_threads}")
        base = self.seconds_per_element(mix) * num_elements
        if smt_threads == 2:
            base /= 1.0 + self.smt_efficiency
        return base
