"""Buffering pipeline and work-queue scheduler tests."""

import pytest

from repro.cell.buffering import buffered_loop_time
from repro.cell.workqueue import WorkerSpec, simulate_work_queue


class TestBuffering:
    def test_single_buffer_serializes(self):
        bt = buffered_loop_time(100, 1e-6, 1e-6, buffers=1)
        assert bt.total_s >= 200e-6
        assert not bt.overlapped

    def test_double_buffering_overlaps(self):
        """Section 2: double buffering hides the smaller of compute/DMA."""
        serial = buffered_loop_time(1000, 1e-6, 1e-6, buffers=1)
        double = buffered_loop_time(1000, 1e-6, 1e-6, buffers=2)
        assert double.total_s < 0.62 * serial.total_s

    def test_compute_bound_loop_unaffected_by_dma(self):
        bt = buffered_loop_time(1000, 10e-6, 1e-6, buffers=2)
        assert bt.total_s == pytest.approx(1000 * 10e-6, rel=0.01)

    def test_dma_bound_loop(self):
        bt = buffered_loop_time(1000, 1e-6, 10e-6, buffers=2)
        assert bt.total_s == pytest.approx(1000 * 10e-6, rel=0.01)

    def test_deeper_buffering_rides_out_long_latency(self):
        # latency longer than a unit: two buffers expose it, eight hide it
        two = buffered_loop_time(100, 1e-6, 1e-6, buffers=2, dma_latency_s=5e-6)
        eight = buffered_loop_time(100, 1e-6, 1e-6, buffers=8, dma_latency_s=5e-6)
        assert eight.total_s < 0.5 * two.total_s

    def test_two_buffers_hide_short_latency(self):
        # latency below the unit time is already covered at depth 2
        two = buffered_loop_time(100, 1e-6, 1e-6, buffers=2, dma_latency_s=0.5e-6)
        eight = buffered_loop_time(100, 1e-6, 1e-6, buffers=8, dma_latency_s=0.5e-6)
        assert two.total_s == eight.total_s

    def test_dma_hidden_fraction(self):
        bt = buffered_loop_time(1000, 10e-6, 1e-6, buffers=4)
        assert bt.dma_hidden_fraction > 0.8

    def test_zero_units(self):
        assert buffered_loop_time(0, 1e-6, 1e-6).total_s == 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            buffered_loop_time(-1, 1e-6, 1e-6)
        with pytest.raises(ValueError):
            buffered_loop_time(1, -1e-6, 1e-6)
        with pytest.raises(ValueError):
            buffered_loop_time(1, 1e-6, 1e-6, buffers=0)


def uniform_worker(name, n, cost, overhead=0.0):
    return WorkerSpec(name, tuple([cost] * n), dequeue_overhead_s=overhead)


class TestWorkQueue:
    def test_single_worker_sums_costs(self):
        res = simulate_work_queue(10, [uniform_worker("w", 10, 1.0)])
        assert res.makespan_s == pytest.approx(10.0)

    def test_equal_workers_split_evenly(self):
        workers = [uniform_worker(f"w{i}", 100, 1.0) for i in range(4)]
        res = simulate_work_queue(100, workers)
        assert res.makespan_s == pytest.approx(25.0)
        assert res.utilization == pytest.approx(1.0)

    def test_load_balancing_beats_static_on_skew(self):
        """Section 3.2: identical block counts do not balance a skewed load."""
        costs = tuple([10.0] + [1.0] * 99)
        workers = [WorkerSpec(f"w{i}", costs) for i in range(4)]
        res = simulate_work_queue(100, workers)
        # static round-robin would put item0's 10.0 plus 24 more on worker 0
        static_makespan = 10.0 + 24 * 1.0
        assert res.makespan_s < static_makespan

    def test_heterogeneous_workers(self):
        fast = uniform_worker("fast", 60, 1.0)
        slow = WorkerSpec("slow", tuple([3.0] * 60))
        res = simulate_work_queue(60, [fast, slow])
        # fast worker should take roughly 3x the items
        assert res.per_worker_items["fast"] > 2 * res.per_worker_items["slow"]

    def test_dequeue_overhead_counted(self):
        res = simulate_work_queue(
            100, [uniform_worker("w", 100, 1.0, overhead=0.5)]
        )
        assert res.makespan_s == pytest.approx(150.0)

    def test_all_items_processed_exactly_once(self):
        workers = [uniform_worker(f"w{i}", 37, 1.0) for i in range(3)]
        res = simulate_work_queue(37, workers, record_schedule=True)
        items = sorted(i for _, i, _, _ in res.schedule)
        assert items == list(range(37))

    def test_schedule_times_consistent(self):
        workers = [uniform_worker(f"w{i}", 20, 1.0) for i in range(2)]
        res = simulate_work_queue(20, workers, record_schedule=True)
        for name, _, start, end in res.schedule:
            assert end > start
        assert max(e for _, _, _, e in res.schedule) == pytest.approx(res.makespan_s)

    def test_zero_items(self):
        res = simulate_work_queue(0, [uniform_worker("w", 0, 1.0)])
        assert res.makespan_s == 0.0

    def test_rejects_cost_length_mismatch(self):
        with pytest.raises(ValueError):
            simulate_work_queue(5, [uniform_worker("w", 4, 1.0)])

    def test_rejects_no_workers(self):
        with pytest.raises(ValueError):
            simulate_work_queue(5, [])
