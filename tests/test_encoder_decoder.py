"""Integration tests: full encode -> decode round trips."""

import numpy as np
import pytest

from repro.image.synthetic import gradient_image, noise_image, watch_face_image
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.encoder import encode, scale_workload
from repro.jpeg2000.params import EncoderParams


def psnr(a: np.ndarray, b: np.ndarray, peak: float = 255.0) -> float:
    mse = np.mean((a.astype(np.float64) - b.astype(np.float64)) ** 2)
    return float("inf") if mse == 0 else 10 * np.log10(peak * peak / mse)


class TestLossless:
    def test_gray_bit_exact(self, watch_gray_64, encoded_lossless_gray):
        assert np.array_equal(decode(encoded_lossless_gray.codestream), watch_gray_64)

    def test_rgb_bit_exact(self, watch_rgb_96, encoded_lossless_rgb):
        assert np.array_equal(decode(encoded_lossless_rgb.codestream), watch_rgb_96)

    @pytest.mark.parametrize("shape", [(1, 1), (1, 40), (40, 1), (5, 9), (31, 33)])
    def test_odd_shapes(self, shape):
        img = noise_image(*shape, seed=shape[0] * shape[1])
        res = encode(img, EncoderParams(lossless=True))
        assert np.array_equal(decode(res.codestream), img)

    def test_gradient_compresses_well(self):
        img = gradient_image(128, 128)
        res = encode(img, EncoderParams(lossless=True))
        assert res.compression_ratio > 10
        assert np.array_equal(decode(res.codestream), img)

    def test_noise_still_roundtrips(self):
        img = noise_image(48, 48, seed=1)
        res = encode(img, EncoderParams(lossless=True))
        assert res.compression_ratio < 1.2  # noise is incompressible
        assert np.array_equal(decode(res.codestream), img)

    def test_16bit_gray(self):
        img = (watch_face_image(24, 24, 1).astype(np.uint16) * 257)
        res = encode(img, EncoderParams(lossless=True, levels=2))
        out = decode(res.codestream)
        assert out.dtype == np.uint16
        assert np.array_equal(out, img)

    def test_zero_levels(self):
        img = watch_face_image(32, 32, 1)
        res = encode(img, EncoderParams(lossless=True, levels=0))
        assert np.array_equal(decode(res.codestream), img)

    def test_codeblock_32(self):
        img = watch_face_image(48, 48, 1)
        res = encode(img, EncoderParams(lossless=True, levels=2, codeblock_size=32))
        assert np.array_equal(decode(res.codestream), img)

    def test_extreme_values_image(self):
        img = np.zeros((16, 16), dtype=np.uint8)
        img[::2, ::2] = 255
        res = encode(img, EncoderParams(lossless=True, levels=2))
        assert np.array_equal(decode(res.codestream), img)


class TestLossy:
    def test_high_quality_no_rate(self, watch_gray_64, encoded_lossy_gray):
        out = decode(encoded_lossy_gray.codestream)
        assert psnr(out, watch_gray_64) > 40

    def test_rate_target_met(self, watch_rgb_96, encoded_lossy_rate):
        target = 0.15 * watch_rgb_96.nbytes
        assert len(encoded_lossy_rate.codestream) <= target * 1.02

    def test_rate_controlled_quality_reasonable(self, watch_rgb_96, encoded_lossy_rate):
        out = decode(encoded_lossy_rate.codestream)
        assert psnr(out, watch_rgb_96) > 22

    def test_lower_rate_gives_lower_quality_and_size(self):
        img = watch_face_image(96, 96, 1)
        hi = encode(img, EncoderParams.lossy_rate(0.5))
        lo = encode(img, EncoderParams.lossy_rate(0.08))
        assert len(lo.codestream) < len(hi.codestream)
        assert psnr(decode(lo.codestream), img) < psnr(decode(hi.codestream), img)

    def test_finer_base_step_improves_quality(self):
        img = watch_face_image(48, 48, 1)
        coarse = encode(img, EncoderParams(lossless=False, base_quant_step=1 / 8))
        fine = encode(img, EncoderParams(lossless=False, base_quant_step=1 / 64))
        assert psnr(decode(fine.codestream), img) > psnr(decode(coarse.codestream), img)

    def test_rgb_lossy(self):
        img = watch_face_image(48, 48, 3)
        res = encode(img, EncoderParams(lossless=False, levels=3))
        out = decode(res.codestream)
        assert out.shape == img.shape
        assert psnr(out, img) > 38


class TestWorkloadStats:
    def test_stats_describe_image(self, encoded_lossless_rgb):
        st = encoded_lossless_rgb.stats
        assert (st.height, st.width, st.num_components) == (96, 96, 3)
        assert st.lossless and st.levels == 3

    def test_subband_count(self, encoded_lossless_rgb):
        st = encoded_lossless_rgb.stats
        assert len(st.subbands) == 3 * (1 + 3 * 3)

    def test_block_symbols_positive_for_natural_image(self, encoded_lossless_rgb):
        st = encoded_lossless_rgb.stats
        assert sum(b.total_symbols for b in st.blocks) > st.num_pixels

    def test_raw_and_coded_sizes(self, encoded_lossless_rgb):
        st = encoded_lossless_rgb.stats
        assert st.raw_bytes == 96 * 96 * 3
        assert st.codestream_bytes == len(encoded_lossless_rgb.codestream)

    def test_scale_workload(self, encoded_lossless_rgb):
        st = encoded_lossless_rgb.stats
        big = scale_workload(st, 4)
        assert big.height == st.height * 4 and big.width == st.width * 4
        assert len(big.blocks) == 16 * len(st.blocks)
        assert big.raw_bytes == 16 * st.raw_bytes
        assert big.subbands[0].height == st.subbands[0].height * 4

    def test_scale_identity(self, encoded_lossless_rgb):
        assert scale_workload(encoded_lossless_rgb.stats, 1) is encoded_lossless_rgb.stats

    def test_scale_rejects_bad_factor(self, encoded_lossless_rgb):
        with pytest.raises(ValueError):
            scale_workload(encoded_lossless_rgb.stats, 0)


class TestInputValidation:
    def test_rejects_float_image(self):
        with pytest.raises(ValueError):
            encode(np.zeros((8, 8), dtype=np.float32))

    def test_rejects_two_channels(self):
        with pytest.raises(ValueError):
            encode(np.zeros((8, 8, 2), dtype=np.uint8))

    def test_rejects_rate_with_lossless(self):
        with pytest.raises(ValueError):
            EncoderParams(lossless=True, rate=0.5)

    def test_rejects_bad_codeblock(self):
        with pytest.raises(ValueError):
            EncoderParams(codeblock_size=48)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            EncoderParams(lossless=False, rate=1.5)
