"""Cross-module property-based tests (hypothesis).

Module-local property tests live next to their units; this file holds the
end-to-end invariants that span the whole codec and the model layer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.decomposition import apply_rowwise, plan_decomposition
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.dwt import forward_dwt2d, inverse_dwt2d
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.tier1 import decode_codeblock, encode_codeblock


@given(
    hnp.arrays(np.uint8, st.tuples(st.integers(1, 24), st.integers(1, 24)),
               elements=st.integers(0, 255)),
    st.integers(0, 3),
)
@settings(max_examples=25, deadline=None)
def test_lossless_encode_decode_identity(image, levels):
    """Any uint8 image of any small shape round-trips bit exactly."""
    res = encode(image, EncoderParams(lossless=True, levels=levels))
    assert np.array_equal(decode(res.codestream), image)


@given(
    hnp.arrays(np.uint8, st.tuples(st.integers(4, 20), st.integers(4, 20)),
               elements=st.integers(0, 255)),
)
@settings(max_examples=15, deadline=None)
def test_lossy_error_bounded_by_quantizer(image):
    """Irreversible coding error stays within a few quantizer steps."""
    res = encode(image, EncoderParams(lossless=False, levels=2,
                                      base_quant_step=1 / 64))
    out = decode(res.codestream)
    assert np.abs(out.astype(int) - image.astype(int)).max() <= 24


@given(
    st.integers(1, 6), st.integers(1, 6),
    st.integers(0, 2**32 - 1), st.integers(0, 4),
)
@settings(max_examples=40, deadline=None)
def test_dwt_then_tier1_roundtrip(hb, wb, seed, levels):
    """The DWT -> Tier-1 composition is lossless for any block content."""
    rng = np.random.default_rng(seed)
    plane = rng.integers(-128, 128, size=(hb * 8, wb * 8)).astype(np.int32)
    d = forward_dwt2d(plane, levels, reversible=True)
    for sb in d.subbands():
        if sb.data.size == 0:
            continue
        block = sb.data[:64, :64].astype(np.int32)
        res = encode_codeblock(block, sb.band)
        out = decode_codeblock(res.data, block.shape[0], block.shape[1],
                               sb.band, res.msbs, res.num_passes)
        assert np.array_equal(out, block)
    assert np.array_equal(inverse_dwt2d(d), plane)


@given(
    st.integers(1, 40), st.integers(1, 400), st.integers(0, 12),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_decomposition_never_changes_results(h, w, spes, seed):
    """Processing through any chunk plan equals direct processing."""
    rng = np.random.default_rng(seed)
    arr = rng.integers(-1000, 1000, (h, w)).astype(np.int32)
    plan = plan_decomposition(h, w, 4, spes)
    out = apply_rowwise(plan, arr, lambda seg: seg * 3 - 7)
    assert np.array_equal(out, arr * 3 - 7)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_compression_ratio_sane(seed):
    """Codestreams are never absurdly larger than the raw image."""
    rng = np.random.default_rng(seed)
    img = rng.integers(0, 256, (16, 16)).astype(np.uint8)
    res = encode(img, EncoderParams(lossless=True, levels=2))
    # headers dominate tiny images; 3x raw is a generous ceiling
    assert len(res.codestream) < 3 * img.nbytes + 256
