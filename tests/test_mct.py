"""Level shift and RCT/ICT component transform tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.jpeg2000.mct import (
    forward_ict,
    forward_mct,
    forward_rct,
    inverse_ict,
    inverse_mct,
    inverse_rct,
    level_shift,
    level_unshift,
)


class TestLevelShift:
    def test_shift_centres_range(self):
        x = np.array([0, 128, 255], dtype=np.uint8)
        assert level_shift(x, 8).tolist() == [-128, 0, 127]

    def test_unshift_inverts(self):
        x = np.arange(256, dtype=np.uint8)
        assert np.array_equal(level_unshift(level_shift(x, 8), 8), x)

    def test_unshift_clamps(self):
        assert level_unshift(np.array([1000]), 8)[0] == 255
        assert level_unshift(np.array([-1000]), 8)[0] == 0

    def test_16bit(self):
        x = np.array([0, 65535], dtype=np.uint16)
        s = level_shift(x, 16)
        assert s.tolist() == [-32768, 32767]

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            level_shift(np.zeros(3), 0)
        with pytest.raises(ValueError):
            level_unshift(np.zeros(3), 17)


class TestRct:
    def test_exact_roundtrip_exhaustive_corners(self):
        vals = np.array([-128, -1, 0, 1, 127], dtype=np.int32)
        r, g, b = np.meshgrid(vals, vals, vals, indexing="ij")
        y, u, v = forward_rct(r, g, b)
        r2, g2, b2 = inverse_rct(y, u, v)
        assert np.array_equal(r, r2) and np.array_equal(g, g2) and np.array_equal(b, b2)

    def test_gray_maps_to_zero_chroma(self):
        g = np.array([[10, -50]], dtype=np.int32)
        y, u, v = forward_rct(g, g, g)
        assert np.array_equal(y, g)
        assert not u.any() and not v.any()

    @given(hnp.arrays(np.int32, (4, 3), elements=st.integers(-32768, 32767)))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, rgb_plane):
        r = rgb_plane[:, 0:1]
        g = rgb_plane[:, 1:2]
        b = rgb_plane[:, 2:3]
        out = inverse_rct(*forward_rct(r, g, b))
        assert all(np.array_equal(a, b_) for a, b_ in zip((r, g, b), out))

    def test_chroma_range_expands_one_bit(self):
        # |u|, |v| can reach 2x the input range but no more
        vals = np.array([-128, 127], dtype=np.int32)
        r, g, b = np.meshgrid(vals, vals, vals, indexing="ij")
        _, u, v = forward_rct(r, g, b)
        assert max(abs(u).max(), abs(v).max()) <= 255


class TestIct:
    def test_roundtrip_close(self):
        rng = np.random.default_rng(0)
        r, g, b = (rng.uniform(-128, 127, (8, 8)) for _ in range(3))
        out = inverse_ict(*forward_ict(r, g, b))
        for a, b_ in zip((r, g, b), out):
            assert np.allclose(a, b_, atol=1e-10)

    def test_luma_weights_sum_to_one(self):
        ones = np.ones((2, 2))
        y, cb, cr = forward_ict(ones, ones, ones)
        assert np.allclose(y, 1.0)
        # the T.800 constants are rounded to 5 decimals, so chroma of a gray
        # pixel is ~1e-5, not exactly zero
        assert np.allclose(cb, 0.0, atol=1e-4) and np.allclose(cr, 0.0, atol=1e-4)


class TestForwardInverseMct:
    def test_lossless_rgb_roundtrip(self):
        rng = np.random.default_rng(1)
        comps = [rng.integers(0, 256, (9, 7)).astype(np.uint8) for _ in range(3)]
        planes = forward_mct(comps, 8, lossless=True)
        out = inverse_mct(planes, 8, lossless=True)
        for a, b in zip(comps, out):
            assert np.array_equal(a, b.astype(np.uint8))

    def test_lossy_rgb_roundtrip_close(self):
        rng = np.random.default_rng(2)
        comps = [rng.integers(0, 256, (9, 7)).astype(np.uint8) for _ in range(3)]
        planes = forward_mct(comps, 8, lossless=False)
        out = inverse_mct(planes, 8, lossless=False)
        for a, b in zip(comps, out):
            assert np.abs(a.astype(int) - b).max() <= 1

    def test_single_component(self):
        x = np.arange(12, dtype=np.uint8).reshape(3, 4)
        planes = forward_mct([x], 8, lossless=True)
        assert len(planes) == 1
        out = inverse_mct(planes, 8, lossless=True)
        assert np.array_equal(out[0].astype(np.uint8), x)

    def test_lossless_planes_are_int(self):
        comps = [np.zeros((2, 2), dtype=np.uint8)] * 3
        planes = forward_mct(comps, 8, lossless=True)
        assert all(p.dtype == np.int32 for p in planes)

    def test_lossy_planes_are_float(self):
        comps = [np.zeros((2, 2), dtype=np.uint8)] * 3
        planes = forward_mct(comps, 8, lossless=False)
        assert all(p.dtype == np.float64 for p in planes)

    def test_rejects_two_components(self):
        comps = [np.zeros((2, 2), dtype=np.uint8)] * 2
        with pytest.raises(ValueError):
            forward_mct(comps, 8, lossless=True)
        with pytest.raises(ValueError):
            inverse_mct([np.zeros((2, 2))] * 2, 8, lossless=True)
