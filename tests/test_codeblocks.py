"""Subband-to-code-block partition tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg2000.codeblocks import partition_subband


class TestPartition:
    def test_exact_tiling(self):
        blocks, gr, gc = partition_subband(128, 128, 64)
        assert (gr, gc) == (2, 2) and len(blocks) == 4
        assert all(b.height == 64 and b.width == 64 for b in blocks)

    def test_ragged_edges(self):
        blocks, gr, gc = partition_subband(100, 70, 64)
        assert (gr, gc) == (2, 2)
        assert blocks[-1].height == 36 and blocks[-1].width == 6

    def test_smaller_than_block(self):
        blocks, gr, gc = partition_subband(10, 10, 64)
        assert len(blocks) == 1
        assert blocks[0].height == 10 and blocks[0].width == 10

    def test_degenerate_subband(self):
        blocks, gr, gc = partition_subband(0, 10, 64)
        assert blocks == [] and gr == 0 and gc == 0

    def test_raster_order_matches_grid(self):
        blocks, _, gc = partition_subband(130, 130, 64)
        for i, b in enumerate(blocks):
            assert (b.grid_row, b.grid_col) == (i // gc, i % gc)

    def test_32_gives_4x_blocks_of_64(self):
        b64, _, _ = partition_subband(256, 256, 64)
        b32, _, _ = partition_subband(256, 256, 32)
        assert len(b32) == 4 * len(b64)

    def test_rejects_bad_cb_size(self):
        with pytest.raises(ValueError):
            partition_subband(10, 10, 0)

    @given(st.integers(1, 300), st.integers(1, 300), st.sampled_from([4, 16, 32, 64]))
    @settings(max_examples=150, deadline=None)
    def test_coverage_property(self, h, w, cb):
        blocks, gr, gc = partition_subband(h, w, cb)
        assert len(blocks) == gr * gc
        # total samples covered exactly once
        assert sum(b.num_samples for b in blocks) == h * w
        seen = set()
        for b in blocks:
            assert 0 < b.height <= cb and 0 < b.width <= cb
            assert b.row0 + b.height <= h and b.col0 + b.width <= w
            key = (b.row0, b.col0)
            assert key not in seen
            seen.add(key)
