"""Multi-tile codestreams: differential suite against the single-tile path.

The tiling tentpole must not disturb anything the seed guaranteed, so
every property here is stated differentially: tiled output decodes to the
same pixels as untiled at lossless, tiled bytes are identical at any
worker count and any memory-budget batching, TLM entries point at real
SOT markers, and malformed tile-part boundaries fail through the typed
error taxonomy — never through a raw exception.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.codestream import (
    PROGRESSIONS,
    parse_codestream,
    tile_grid,
    tlm_overhead,
)
from repro.jpeg2000.decoder import decode, decode_reference
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.errors import (
    CodestreamError,
    DecodeLimits,
    HeaderFieldError,
    LimitExceededError,
    TruncatedCodestreamError,
)
from repro.jpeg2000.params import EncoderParams


@pytest.fixture(scope="module")
def rgb_img() -> np.ndarray:
    return watch_face_image(70, 90, channels=3)


@pytest.fixture(scope="module")
def gray_img() -> np.ndarray:
    return watch_face_image(65, 47, channels=1)


@pytest.fixture(scope="module")
def tiled_rgb(rgb_img) -> bytes:
    return encode(rgb_img, EncoderParams(tile_size=32)).codestream


# -- tile grid math -----------------------------------------------------------


class TestTileGrid:
    def test_exact_division(self):
        grid = tile_grid(64, 64, 32, 32)
        assert grid == [(0, 0, 32, 32), (0, 32, 32, 32),
                        (32, 0, 32, 32), (32, 32, 32, 32)]

    def test_ragged_edges(self):
        grid = tile_grid(70, 50, 32, 32)
        assert len(grid) == 3 * 2
        assert grid[-1] == (32, 64, 18, 6)  # bottom-right remainder

    def test_none_means_single_tile(self):
        assert tile_grid(70, 50, None, None) == [(0, 0, 50, 70)]

    def test_grid_covers_every_sample_once(self):
        cover = np.zeros((37, 53), dtype=int)
        for r0, c0, h, w in tile_grid(53, 37, 16, 16):
            cover[r0:r0 + h, c0:c0 + w] += 1
        assert (cover == 1).all()


# -- lossless pixel equality --------------------------------------------------


class TestTiledRoundtrip:
    @pytest.mark.parametrize("tile", [16, 32, 64])
    def test_rgb_lossless_matches_untiled(self, rgb_img, tile):
        tiled = encode(rgb_img, EncoderParams(tile_size=tile)).codestream
        assert np.array_equal(decode(tiled), rgb_img)
        assert np.array_equal(decode_reference(tiled), rgb_img)

    def test_gray_lossless(self, gray_img):
        cs = encode(gray_img, EncoderParams(tile_size=32)).codestream
        assert np.array_equal(decode(cs), gray_img)
        assert np.array_equal(decode_reference(cs), gray_img)

    def test_tile_larger_than_image_is_byte_identical_to_untiled(self, rgb_img):
        base = encode(rgb_img, EncoderParams()).codestream
        big = encode(rgb_img, EncoderParams(tile_size=128)).codestream
        assert big == base

    @pytest.mark.parametrize("progression", sorted(PROGRESSIONS))
    def test_progression_orders_roundtrip(self, rgb_img, progression):
        cs = encode(
            rgb_img, EncoderParams(tile_size=32, progression=progression)
        ).codestream
        assert np.array_equal(decode(cs), rgb_img)
        assert np.array_equal(decode_reference(cs), rgb_img)

    def test_precincts_roundtrip(self, rgb_img):
        cs = encode(
            rgb_img,
            EncoderParams(tile_size=64, precinct_size=128,
                          progression="RPCL"),
        ).codestream
        info = parse_codestream(cs)
        assert info.precinct_size == 128
        assert np.array_equal(decode(cs), rgb_img)
        assert np.array_equal(decode_reference(cs), rgb_img)

    def test_precincts_without_tiles_roundtrip(self, rgb_img):
        cs = encode(rgb_img, EncoderParams(precinct_size=64)).codestream
        assert np.array_equal(decode(cs), rgb_img)
        assert np.array_equal(decode_reference(cs), rgb_img)

    def test_lossy_tiled_decoders_agree(self, rgb_img):
        cs = encode(
            rgb_img, EncoderParams(lossless=False, rate=0.5, tile_size=32)
        ).codestream
        assert np.array_equal(decode(cs), decode_reference(cs))

    def test_lossy_rate_budget_holds_when_tiled(self, rgb_img):
        raw = rgb_img.size
        cs = encode(
            rgb_img, EncoderParams(lossless=False, rate=0.5, tile_size=32)
        ).codestream
        assert len(cs) <= raw * 0.5 * 1.05  # same 5% tolerance as untiled


# -- byte identity across execution strategy ----------------------------------


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_do_not_change_bytes(self, rgb_img, tiled_rgb, workers):
        cs = encode(
            rgb_img, EncoderParams(tile_size=32, workers=workers)
        ).codestream
        assert cs == tiled_rgb

    @pytest.mark.parametrize("budget_mib", [1, 4])
    def test_mem_budget_does_not_change_bytes(
        self, rgb_img, tiled_rgb, budget_mib
    ):
        cs = encode(
            rgb_img,
            EncoderParams(tile_size=32, mem_budget=budget_mib * 2**20),
        ).codestream
        assert cs == tiled_rgb

    def test_tier1_backends_agree(self, rgb_img, tiled_rgb):
        cs = encode(
            rgb_img, EncoderParams(tile_size=32, tier1_backend="reference")
        ).codestream
        assert cs == tiled_rgb


# -- TLM conformance ----------------------------------------------------------


class TestTLM:
    def test_offsets_point_at_real_sots(self, tiled_rgb):
        info = parse_codestream(tiled_rgb)
        assert info.num_tiles == 9  # ceil(90/32) * ceil(70/32)
        assert len(info.tile_part_offsets) == info.num_tiles
        for off in info.tile_part_offsets:
            assert tiled_rgb[off:off + 2] == b"\xff\x90"

    def test_tlm_lengths_match_tile_parts(self, tiled_rgb):
        info = parse_codestream(tiled_rgb)
        assert len(info.tlm_lengths) == info.num_tiles
        # Each Ptlm is the full tile-part length: SOT segment + SOD + body.
        offs = info.tile_part_offsets
        spans = [b - a for a, b in zip(offs, offs[1:])]
        spans.append(len(tiled_rgb) - 2 - offs[-1])  # last ends at EOC
        assert info.tlm_lengths == spans

    def test_tlm_seeks_to_any_tile(self, tiled_rgb):
        """TLM is the random-access contract: offsets are derivable from
        the main header alone, without scanning tile-parts."""
        info = parse_codestream(tiled_rgb)
        first = info.tile_part_offsets[0]
        derived = [first]
        for length in info.tlm_lengths[:-1]:
            derived.append(derived[-1] + length)
        assert derived == info.tile_part_offsets

    def test_tlm_overhead_is_exact(self, rgb_img, tiled_rgb):
        info = parse_codestream(tiled_rgb)
        tlm_at = tiled_rgb.find(b"\xff\x55")
        assert tlm_at > 0
        (ltlm,) = struct.unpack_from(">H", tiled_rgb, tlm_at + 2)
        assert 2 + ltlm == tlm_overhead(info.num_tiles)

    def test_corrupt_tlm_length_is_typed(self, tiled_rgb):
        info = parse_codestream(tiled_rgb)
        mutated = bytearray(tiled_rgb)
        tlm_at = tiled_rgb.find(b"\xff\x55")
        # First entry's Ptlm (u32) lives after Ztlm/Stlm + Ttlm (u16).
        p = tlm_at + 4 + 2 + 2
        struct.pack_into(">I", mutated, p, info.tlm_lengths[0] + 1)
        with pytest.raises(HeaderFieldError):
            parse_codestream(bytes(mutated))

    def test_single_tile_has_no_tlm(self, rgb_img):
        cs = encode(rgb_img, EncoderParams()).codestream
        assert b"\xff\x55" not in cs.split(b"\xff\x90")[0]


# -- Psot=0 (spec-legal open-ended tile-parts) --------------------------------


def _zero_psot(cs: bytes, which: int = 0) -> bytes:
    """Zero the Psot field of the ``which``-th SOT segment."""
    out = bytearray(cs)
    pos = 0
    for _ in range(which + 1):
        pos = out.find(b"\xff\x90", pos)
        assert pos >= 0
        sot_at = pos
        pos += 2
    out[sot_at + 6:sot_at + 10] = b"\x00\x00\x00\x00"
    return bytes(out)


class TestPsotZero:
    def test_last_tile_part_decodes(self, rgb_img):
        cs = encode(rgb_img, EncoderParams()).codestream
        assert np.array_equal(decode(_zero_psot(cs)), rgb_img)

    def test_interior_tile_part_decodes(self, rgb_img, tiled_rgb):
        for which in (0, 4, 8):
            assert np.array_equal(decode(_zero_psot(tiled_rgb, which)),
                                  rgb_img)

    def test_every_psot_zeroed_decodes(self, rgb_img, tiled_rgb):
        info = parse_codestream(tiled_rgb)
        cs = tiled_rgb
        for which in range(info.num_tiles):
            cs = _zero_psot(cs, which)
        # TLM now disagrees with nothing: parse still sees the same
        # boundaries, because the scan lands on the very next SOT.
        assert np.array_equal(decode(cs), rgb_img)

    def test_unterminated_psot_zero_is_typed(self, rgb_img):
        cs = _zero_psot(encode(rgb_img, EncoderParams()).codestream)
        # Strip the EOC: an open-ended tile-part must end *somewhere*.
        truncated = cs[:-2]
        body = truncated[truncated.find(b"\xff\x93"):]
        if b"\xff\x90" not in body and b"\xff\xd9" not in body:
            with pytest.raises(TruncatedCodestreamError):
                decode(truncated)

    def test_fuzz_mutator_is_registered(self):
        from repro.verify.fuzz import MUTATORS

        assert "psot_zero" in dict(MUTATORS)


# -- malformed tile-part boundaries -------------------------------------------


class TestMalformedTiles:
    def test_truncation_at_every_boundary_is_typed(self, tiled_rgb):
        info = parse_codestream(tiled_rgb)
        cuts = [off for off in info.tile_part_offsets]
        cuts += [off + 5 for off in info.tile_part_offsets]
        for cut in cuts:
            with pytest.raises(CodestreamError):
                decode(tiled_rgb[:cut])

    def test_missing_tile_part_is_typed(self, tiled_rgb):
        info = parse_codestream(tiled_rgb)
        a = info.tile_part_offsets[3]
        b = info.tile_part_offsets[4]
        with pytest.raises(CodestreamError):
            decode(tiled_rgb[:a] + tiled_rgb[b:])

    def test_out_of_range_tile_index_is_typed(self, tiled_rgb):
        info = parse_codestream(tiled_rgb)
        mutated = bytearray(tiled_rgb)
        off = info.tile_part_offsets[0]
        struct.pack_into(">H", mutated, off + 4, info.num_tiles)  # Isot
        with pytest.raises(HeaderFieldError):
            parse_codestream(bytes(mutated))

    def test_tile_count_cap_is_enforced(self, rgb_img):
        cs = encode(rgb_img, EncoderParams(tile_size=16)).codestream
        limits = DecodeLimits(max_tiles=4)
        with pytest.raises(LimitExceededError):
            decode(cs, limits=limits)

    def test_fuzz_over_tiled_base_stays_typed(self, tiled_rgb):
        from repro.verify.fuzz import run_fuzz

        report = run_fuzz(
            cases=250, seed=2008, bases=[("tiled_rgb", tiled_rgb)]
        )
        assert report.ok, report.summary()


# -- parameter validation -----------------------------------------------------


class TestParamValidation:
    def test_tiny_tile_rejected(self):
        with pytest.raises(ValueError):
            EncoderParams(tile_size=8)

    def test_bad_progression_rejected(self):
        with pytest.raises(ValueError):
            EncoderParams(progression="RLCP")

    def test_precinct_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            EncoderParams(precinct_size=100)

    def test_precinct_smaller_than_codeblock_rejected(self):
        with pytest.raises(ValueError):
            EncoderParams(codeblock_size=64, precinct_size=32)

    def test_tiny_mem_budget_rejected(self):
        with pytest.raises(ValueError):
            EncoderParams(mem_budget=1024)


# -- planner and cache integration --------------------------------------------


class TestPlannerSurface:
    def test_choose_tile_size_fits_budget(self):
        from repro.jpeg2000.params import TILE_WORKSET_BYTES
        from repro.plan.model import choose_tile_size

        ts = choose_tile_size(8192, 8192, 3, 256 * 2**20)
        assert ts is not None and ts >= 64
        assert ts & (ts - 1) == 0
        assert 8192 * ts * 3 * TILE_WORKSET_BYTES <= 256 * 2**20

    def test_choose_tile_size_none_when_image_fits(self):
        from repro.plan.model import choose_tile_size

        assert choose_tile_size(64, 64, 3, 1 << 30) is None

    def test_request_shape_counts_tiled_blocks(self):
        from repro.plan.model import RequestShape

        untiled = RequestShape(height=512, width=512, components=3)
        tiled = RequestShape(height=512, width=512, components=3,
                             tile_size=128)
        assert tiled.code_blocks() > untiled.code_blocks()

    def test_cache_key_distinguishes_tiling(self, rgb_img):
        from repro.service.cache import cache_key

        plain = cache_key(rgb_img, EncoderParams())
        tiled = cache_key(rgb_img, EncoderParams(tile_size=32))
        rpcl = cache_key(rgb_img, EncoderParams(tile_size=32,
                                                progression="RPCL"))
        assert len({plain, tiled, rpcl}) == 3

    def test_cache_key_ignores_mem_budget(self, rgb_img):
        from repro.service.cache import cache_key

        a = cache_key(rgb_img, EncoderParams(tile_size=32))
        b = cache_key(rgb_img, EncoderParams(tile_size=32,
                                             mem_budget=64 * 2**20))
        assert a == b


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_tile_flag_roundtrip(self, tmp_path, rgb_img):
        from repro.cli import main
        from repro.image.pnm import read_pnm, write_pnm

        src = tmp_path / "in.ppm"
        out = tmp_path / "out.j2c"
        back = tmp_path / "back.ppm"
        write_pnm(str(src), rgb_img)
        assert main(["encode", str(src), str(out), "--tile", "32",
                     "--progression", "rpcl"]) == 0
        cs = out.read_bytes()
        info = parse_codestream(cs)
        assert info.num_tiles == 9 and info.progression == "RPCL"
        assert main(["decode", str(out), str(back)]) == 0
        assert np.array_equal(read_pnm(str(back)), rgb_img)

    def test_mem_budget_without_tile_picks_one(self, tmp_path):
        from repro.cli import main
        from repro.image.pnm import write_pnm

        img = watch_face_image(512, 512, channels=1)
        src = tmp_path / "in.pgm"
        out = tmp_path / "out.j2c"
        write_pnm(str(src), img)
        # A 512x512 image at ~8 B/sample needs 2 MiB, over the 1 MiB
        # budget, so the CLI must auto-pick a tile size.
        assert main(["encode", str(src), str(out), "--mem-budget", "1"]) == 0
        info = parse_codestream(out.read_bytes())
        assert info.num_tiles > 1
        assert np.array_equal(decode(out.read_bytes()), img)
