"""Unit + property tests for the MSB-first bit I/O with JPEG2000 stuffing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_single_byte(self):
        bw = BitWriter()
        for b in (1, 0, 1, 0, 1, 0, 1, 0):
            bw.write_bit(b)
        assert bw.getvalue() == b"\xaa"

    def test_partial_byte_not_emitted(self):
        bw = BitWriter()
        bw.write_bit(1)
        assert bw.getvalue() == b""

    def test_align_pads_with_zeros(self):
        bw = BitWriter()
        bw.write_bit(1)
        bw.align()
        assert bw.getvalue() == b"\x80"

    def test_write_bits_msb_first(self):
        bw = BitWriter()
        bw.write_bits(0xAB, 8)
        assert bw.getvalue() == b"\xab"

    def test_write_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(4, 2)

    def test_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_stuffing_after_ff(self):
        bw = BitWriter(stuffing=True)
        bw.write_bits(0xFF, 8)
        # next byte only takes 7 bits; MSB is the stuffed 0
        bw.write_bits(0x7F, 7)
        assert bw.getvalue() == b"\xff\x7f"

    def test_terminate_stuffed_appends_zero_after_ff(self):
        bw = BitWriter(stuffing=True)
        bw.write_bits(0xFF, 8)
        bw.terminate_stuffed()
        assert bw.getvalue() == b"\xff\x00"

    def test_terminate_stuffed_no_extra_byte(self):
        bw = BitWriter(stuffing=True)
        bw.write_bits(0x12, 8)
        bw.terminate_stuffed()
        assert bw.getvalue() == b"\x12"


class TestBitReader:
    def test_reads_msb_first(self):
        br = BitReader(b"\xaa")
        assert [br.read_bit() for _ in range(8)] == [1, 0, 1, 0, 1, 0, 1, 0]

    def test_read_bits(self):
        assert BitReader(b"\xab").read_bits(8) == 0xAB

    def test_eof_raises(self):
        br = BitReader(b"")
        with pytest.raises(EOFError):
            br.read_bit()

    def test_align_skips_to_boundary(self):
        br = BitReader(b"\x80\xff")
        br.read_bit()
        br.align()
        assert br.read_bits(8) == 0xFF

    def test_stuffed_byte_after_ff(self):
        br = BitReader(b"\xff\x7f", stuffing=True)
        assert br.read_bits(8) == 0xFF
        assert br.read_bits(7) == 0x7F
        assert br.exhausted

    def test_finish_stuffed_skips_pad(self):
        br = BitReader(b"\xff\x00\x55", stuffing=True)
        assert br.read_bits(8) == 0xFF
        br.finish_stuffed()
        # The 0x00 stuffing byte was consumed; body starts at offset 2.
        assert br.byte_position == 2

    def test_finish_stuffed_noop_without_ff(self):
        br = BitReader(b"\x12\x34", stuffing=True)
        assert br.read_bits(8) == 0x12
        br.finish_stuffed()
        assert br.byte_position == 1

    def test_finish_stuffed_missing_pad_raises(self):
        br = BitReader(b"\xff", stuffing=True)
        assert br.read_bits(8) == 0xFF
        with pytest.raises(EOFError):
            br.finish_stuffed()


@given(st.lists(st.integers(0, 1), max_size=200), st.booleans())
@settings(max_examples=200, deadline=None)
def test_roundtrip_property(bits, stuffing):
    bw = BitWriter(stuffing=stuffing)
    for b in bits:
        bw.write_bit(b)
    bw.align()
    br = BitReader(bw.getvalue(), stuffing=stuffing)
    got = [br.read_bit() for _ in range(len(bits))]
    assert got == bits


@given(st.lists(st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 20)), max_size=40))
@settings(max_examples=100, deadline=None)
def test_multibit_roundtrip(pairs):
    bw = BitWriter()
    for value, width in pairs:
        bw.write_bits(value & ((1 << width) - 1), width)
    bw.align()
    br = BitReader(bw.getvalue())
    for value, width in pairs:
        assert br.read_bits(width) == value & ((1 << width) - 1)
