"""DWT tests: perfect reconstruction, boundary handling, gain analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.jpeg2000.dwt import (
    BAND_HH,
    BAND_HL,
    BAND_LH,
    BAND_LL,
    Decomposition,
    forward_53_1d,
    forward_97_1d,
    forward_dwt2d,
    inverse_53_1d,
    inverse_97_1d,
    inverse_dwt2d,
    sym_indices,
    synthesis_gain_sq,
)


class TestSymIndices:
    def test_small_example(self):
        assert sym_indices(4, 2, 2).tolist() == [2, 1, 0, 1, 2, 3, 2, 1]

    def test_length_one_signal(self):
        assert sym_indices(1, 3, 3).tolist() == [0] * 7

    def test_period_two(self):
        idx = sym_indices(2, 4, 4)
        assert idx.tolist() == [0, 1, 0, 1, 0, 1, 0, 1, 0, 1]

    def test_all_indices_valid(self):
        for n in range(1, 20):
            idx = sym_indices(n, 8, 9)
            assert idx.min() >= 0 and idx.max() < n

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sym_indices(0, 1, 1)


class Test53:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 17, 63, 64, 100])
    def test_perfect_reconstruction(self, n):
        rng = np.random.default_rng(n)
        x = rng.integers(-(2**15), 2**15, size=(n, 2)).astype(np.int32)
        lo, hi = forward_53_1d(x)
        assert lo.shape[0] == (n + 1) // 2 and hi.shape[0] == n // 2
        assert np.array_equal(inverse_53_1d(lo, hi, n), x)

    def test_constant_signal_high_band_zero(self):
        x = np.full((16, 1), 100, dtype=np.int32)
        lo, hi = forward_53_1d(x)
        assert not hi.any()
        assert np.all(lo == 100)

    def test_ramp_high_band_zero_in_interior(self):
        # linear ramps are in the 5/3 lowpass space (2 vanishing moments);
        # the boundary coefficient is nonzero because symmetric extension
        # folds the ramp back on itself.
        x = (np.arange(32, dtype=np.int32) * 4).reshape(-1, 1)
        _, hi = forward_53_1d(x)
        assert np.abs(hi[:-1]).max() <= 1  # floors allow off-by-one
        assert hi[-1, 0] != 0

    def test_inverse_rejects_wrong_sizes(self):
        with pytest.raises(ValueError):
            inverse_53_1d(np.zeros(3, np.int32), np.zeros(3, np.int32), 5)

    @given(st.integers(2, 40).flatmap(
        lambda n: hnp.arrays(np.int32, (n,), elements=st.integers(-10000, 10000))
    ))
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property(self, x):
        x = x.reshape(-1, 1)
        lo, hi = forward_53_1d(x)
        assert np.array_equal(inverse_53_1d(lo, hi, x.shape[0]), x)


class Test97:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 16, 33, 100])
    def test_reconstruction_close(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal((n, 2)) * 1000
        lo, hi = forward_97_1d(x)
        assert np.allclose(inverse_97_1d(lo, hi, n), x, atol=1e-8)

    def test_unit_dc_gain(self):
        x = np.full((32, 1), 3.0)
        lo, hi = forward_97_1d(x)
        assert np.allclose(lo, 3.0)
        assert np.allclose(hi, 0.0, atol=1e-12)

    def test_energy_roughly_preserved(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((256, 1))
        lo, hi = forward_97_1d(x)
        e_in = np.sum(x**2)
        e_out = np.sum(lo**2) + np.sum(hi**2)
        assert 0.5 * e_in < e_out < 2.0 * e_in  # near-orthogonal filter bank


class Test2D:
    @pytest.mark.parametrize(
        "shape", [(1, 1), (1, 7), (7, 1), (5, 5), (8, 8), (33, 47), (64, 64)]
    )
    @pytest.mark.parametrize("levels", [0, 1, 3, 5])
    def test_lossless_roundtrip(self, shape, levels):
        rng = np.random.default_rng(hash(shape) % 2**32)
        img = rng.integers(-255, 256, size=shape).astype(np.int32)
        d = forward_dwt2d(img, levels, reversible=True)
        assert np.array_equal(inverse_dwt2d(d), img)

    def test_lossy_roundtrip(self):
        rng = np.random.default_rng(9)
        img = rng.standard_normal((37, 29)) * 128
        d = forward_dwt2d(img, 4, reversible=False)
        assert np.allclose(inverse_dwt2d(d), img, atol=1e-7)

    def test_subband_count_and_order(self):
        d = forward_dwt2d(np.zeros((32, 32), np.int32), 3, reversible=True)
        bands = d.subbands()
        assert [b.band for b in bands[:4]] == [BAND_LL, BAND_HL, BAND_LH, BAND_HH]
        assert len(bands) == 1 + 3 * 3
        assert bands[0].dlevel == 3
        assert bands[-1].dlevel == 1  # finest detail last

    def test_subband_shapes_odd_image(self):
        d = forward_dwt2d(np.zeros((33, 47), np.int32), 1, reversible=True)
        hl, lh, hh = d.details[0]
        assert d.ll.shape == (17, 24)
        assert hl.shape == (17, 23)   # horizontally high
        assert lh.shape == (16, 24)
        assert hh.shape == (16, 23)

    def test_levels_clamped_for_tiny_images(self):
        d = forward_dwt2d(np.zeros((1, 1), np.int32), 5, reversible=True)
        assert d.levels == 0

    def test_smooth_image_energy_concentrates_in_ll(self):
        y, x = np.mgrid[0:64, 0:64]
        img = (y + x).astype(np.int32)
        d = forward_dwt2d(img, 3, reversible=True)
        ll_energy = float(np.sum(d.ll.astype(np.float64) ** 2))
        detail_energy = sum(
            float(np.sum(b.astype(np.float64) ** 2))
            for lvl in d.details for b in lvl
        )
        assert ll_energy > 50 * max(detail_energy, 1.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            forward_dwt2d(np.zeros((2, 2, 2)), 1, reversible=True)

    def test_rejects_negative_levels(self):
        with pytest.raises(ValueError):
            forward_dwt2d(np.zeros((4, 4)), -1, reversible=True)


class TestSynthesisGain:
    def test_matches_known_97_l2_norms(self):
        # Published level-1 9/7 synthesis L2 norms: LL 1.9659, HL/LH 1.0113,
        # HH 0.5202 (squared: 3.865, 1.023, 0.271).
        assert synthesis_gain_sq(BAND_LL, 1, False) == pytest.approx(3.865, rel=0.01)
        assert synthesis_gain_sq(BAND_HL, 1, False) == pytest.approx(1.023, rel=0.01)
        assert synthesis_gain_sq(BAND_HH, 1, False) == pytest.approx(0.271, rel=0.02)

    def test_hl_equals_lh(self):
        assert synthesis_gain_sq(BAND_HL, 2, False) == pytest.approx(
            synthesis_gain_sq(BAND_LH, 2, False), rel=1e-6
        )

    def test_ll_gain_grows_with_level(self):
        g = [synthesis_gain_sq(BAND_LL, lvl, False) for lvl in (1, 2, 3)]
        assert g[0] < g[1] < g[2]

    def test_reversible_gains_differ_from_irreversible(self):
        assert synthesis_gain_sq(BAND_HH, 1, True) != pytest.approx(
            synthesis_gain_sq(BAND_HH, 1, False), rel=1e-3
        )

    def test_rejects_unknown_band(self):
        with pytest.raises(ValueError):
            synthesis_gain_sq("XX", 1, False)

    def test_rejects_level_zero(self):
        with pytest.raises(ValueError):
            synthesis_gain_sq(BAND_LL, 0, False)


class TestSymIndicesCache:
    """PR 3 satellite: extension index arrays are cached and immutable."""

    def test_repeated_calls_share_one_array(self):
        a = sym_indices(37, 4, 4)
        b = sym_indices(37, 4, 4)
        assert a is b

    def test_cached_arrays_are_read_only(self):
        idx = sym_indices(12, 4, 4)
        assert not idx.flags.writeable
        with pytest.raises(ValueError):
            idx[0] = 99

    def test_distinct_keys_distinct_arrays(self):
        assert sym_indices(12, 4, 4) is not sym_indices(12, 4, 5)


class TestLiftDtypeFastPath:
    """PR 3 satellite: int32 lifting when headroom allows, int64 fallback."""

    def test_int32_inputs_stay_int32(self):
        x = np.arange(-100, 100, dtype=np.int32)
        low, high = forward_53_1d(x)
        assert low.dtype == np.int32 and high.dtype == np.int32
        assert np.array_equal(inverse_53_1d(low, high, x.size), x)

    def test_large_magnitudes_fall_back_to_int64(self):
        # Values at the safety threshold must take the int64 path and
        # still reconstruct exactly (the whole point of the fallback).
        from repro.jpeg2000.dwt import I32_SAFE_MAX, _lift_dtype

        big = np.array([I32_SAFE_MAX, -I32_SAFE_MAX, 0, 1], dtype=np.int32)
        assert _lift_dtype(big) == np.int64
        low, high = forward_53_1d(big)
        assert np.array_equal(inverse_53_1d(low, high, big.size), big)

    def test_small_magnitudes_use_int32(self):
        from repro.jpeg2000.dwt import _lift_dtype

        small = np.array([1 << 26, -(1 << 26)], dtype=np.int32)
        assert _lift_dtype(small) == np.int32

    def test_paths_bit_exact(self):
        # The int32 fast path must produce the same coefficients as the
        # int64 fallback on identical data.
        rng = np.random.default_rng(53)
        x = rng.integers(-(1 << 20), 1 << 20, size=301).astype(np.int32)
        lo32, hi32 = forward_53_1d(x)
        lo64, hi64 = forward_53_1d(x.astype(np.int64) + (1 << 28) - (1 << 28))
        assert np.array_equal(lo32, lo64) and np.array_equal(hi32, hi64)


class TestEffectiveLevels:
    def test_matches_forward_dwt2d_clamp(self):
        from repro.jpeg2000.dwt import effective_levels

        for shape in [(1, 1), (1, 9), (64, 48), (3, 200)]:
            for levels in range(0, 8):
                x = np.zeros(shape, dtype=np.int32)
                assert (effective_levels(shape, levels)
                        == forward_dwt2d(x, levels, True).levels)

    def test_rejects_negative(self):
        from repro.jpeg2000.dwt import effective_levels

        with pytest.raises(ValueError):
            effective_levels((4, 4), -1)
