"""Unit tests for alignment arithmetic."""

import pytest

from repro.utils.alignment import (
    CACHE_LINE_BYTES,
    QUADWORD_BYTES,
    is_aligned,
    padded_width,
    round_down,
    round_up,
)


class TestRoundUp:
    def test_exact_multiple_unchanged(self):
        assert round_up(256, 128) == 256

    def test_rounds_to_next_multiple(self):
        assert round_up(129, 128) == 256

    def test_zero(self):
        assert round_up(0, 128) == 0

    def test_one(self):
        assert round_up(1, 128) == 128

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            round_up(-1, 128)

    def test_rejects_nonpositive_multiple(self):
        with pytest.raises(ValueError):
            round_up(100, 0)


class TestRoundDown:
    def test_exact_multiple_unchanged(self):
        assert round_down(256, 128) == 256

    def test_truncates(self):
        assert round_down(255, 128) == 128

    def test_below_multiple_is_zero(self):
        assert round_down(100, 128) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            round_down(-5, 16)


class TestIsAligned:
    def test_aligned(self):
        assert is_aligned(1024, 128)

    def test_unaligned(self):
        assert not is_aligned(1025, 128)

    def test_zero_is_aligned(self):
        assert is_aligned(0, 16)

    def test_rejects_bad_multiple(self):
        with pytest.raises(ValueError):
            is_aligned(4, -1)


class TestPaddedWidth:
    def test_int32_row_padding(self):
        # 1000 int32 = 4000 B -> 4096 B -> 1024 elements
        assert padded_width(1000, 4) == 1024

    def test_already_padded(self):
        assert padded_width(1024, 4) == 1024

    def test_single_element(self):
        assert padded_width(1, 4) == CACHE_LINE_BYTES // 4

    def test_byte_elements(self):
        assert padded_width(130, 1) == 256

    def test_rejects_incompatible_elem_size(self):
        with pytest.raises(ValueError):
            padded_width(10, 3)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            padded_width(0, 4)

    def test_padded_rows_are_line_multiples(self):
        for w in range(1, 200):
            assert (padded_width(w, 4) * 4) % CACHE_LINE_BYTES == 0


def test_constants_consistent():
    assert CACHE_LINE_BYTES % QUADWORD_BYTES == 0
