"""Sharded serving tier: cache bus, micro-batching, shedding, cluster.

The unit half exercises each sharding component in-process (bus protocol,
lease single-flight, batcher, shedder, histogram merging).  The
integration half forks real shard clusters and talks to them over HTTP —
byte identity across shard counts, cluster-wide single-flight, crash
respawn, and orphan-free graceful shutdown are the load-bearing
guarantees.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.service import EncodeService, ServiceConfig
from repro.service.admission import LoadShedder, ShedError
from repro.service.metrics import Histogram, MetricsRegistry, merge_metric_states
from repro.service.sharding import ShardCluster, ShardClusterConfig
from repro.service.sharding.batching import (
    MicroBatcher,
    estimate_code_blocks,
    is_micro_request,
)
from repro.service.sharding.cachebus import CacheBusClient, CacheBusServer


def _pgm(image: np.ndarray) -> bytes:
    h, w = image.shape
    return b"P5\n%d %d\n255\n" % (w, h) + image.tobytes()


def _small_image(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(2008 + seed)
    return rng.integers(0, 256, size=(48, 48), dtype=np.uint8)


# -- cache bus ----------------------------------------------------------------


@pytest.fixture()
def bus(tmp_path):
    server = CacheBusServer(str(tmp_path / "bus.sock"), max_bytes=1 << 20)
    server.start()
    yield server
    server.stop()


class TestCacheBus:
    def test_get_miss_then_put_then_hit(self, bus):
        client = CacheBusClient(bus.path)
        assert client.ping()
        assert client.get("k") is None
        assert client.put("k", b"payload")
        assert client.get("k") == b"payload"
        stats = client.fetch_stats()["cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["puts"] == 1

    def test_values_survive_shm_and_inline_transports(self, tmp_path):
        for use_shm in (True, False):
            server = CacheBusServer(
                str(tmp_path / f"bus-{use_shm}.sock"), use_shm=use_shm
            ).start()
            try:
                client = CacheBusClient(server.path)
                blob = bytes(range(256)) * 13
                assert client.put("k", blob)
                assert client.get("k") == blob
            finally:
                server.stop()

    def test_lru_eviction_bounded_by_budget(self, tmp_path):
        server = CacheBusServer(
            str(tmp_path / "bus.sock"), max_bytes=600
        ).start()
        try:
            client = CacheBusClient(server.path)
            client.put("a", b"x" * 200)
            client.put("b", b"y" * 200)
            client.put("c", b"z" * 200)  # evicts "a" (oldest)
            assert client.get("a") is None
            assert client.get("c") == b"z" * 200
            assert client.fetch_stats()["cache"]["evictions"] >= 1
        finally:
            server.stop()

    def test_lease_single_flight_across_clients(self, bus):
        leader = CacheBusClient(bus.path)
        waiter = CacheBusClient(bus.path)
        status, value = leader.lease("k")
        assert (status, value) == ("lead", None)

        got = {}

        def wait_for_value():
            got["result"] = waiter.lease("k", wait_timeout=10.0)

        t = threading.Thread(target=wait_for_value)
        t.start()
        time.sleep(0.1)  # let the waiter park server-side
        assert leader.put("k", b"bytes")
        t.join(timeout=10.0)
        assert got["result"] == ("hit", b"bytes")
        stats = bus.stats
        assert stats["leases_granted"] == 1
        assert stats["lease_waits"] >= 1

    def test_lease_release_promotes_next_caller(self, bus):
        a, b = CacheBusClient(bus.path), CacheBusClient(bus.path)
        assert a.lease("k")[0] == "lead"
        a.release("k")
        assert b.lease("k")[0] == "lead"

    def test_lease_wait_timeout_is_a_miss(self, bus):
        a, b = CacheBusClient(bus.path), CacheBusClient(bus.path)
        assert a.lease("k")[0] == "lead"
        assert b.lease("k", wait_timeout=0.2) == ("miss", None)

    def test_stale_lease_is_stolen(self, tmp_path):
        server = CacheBusServer(
            str(tmp_path / "bus.sock"), lease_ttl_s=0.1
        ).start()
        try:
            a, b = CacheBusClient(server.path), CacheBusClient(server.path)
            assert a.lease("k")[0] == "lead"
            time.sleep(0.15)  # leader "crashed"; its lease expires
            assert b.lease("k")[0] == "lead"
            assert server.stats["lease_steals"] == 1
        finally:
            server.stop()

    def test_lease_age_ignores_wall_clock_steps(self, tmp_path, monkeypatch):
        """Regression: lease holders were stamped with ``time.time()``, so
        an NTP step (or any wall-clock jump) instantly aged every lease
        past its TTL and let waiters steal in-flight work.  Ages must be
        measured on the same monotonic clock as the wait deadlines."""
        from repro.service.sharding import cachebus as cachebus_mod

        real_time = time

        class _SteppableClock:
            wall_offset = 0.0
            mono_offset = 0.0

            def time(self):
                return real_time.time() + self.wall_offset

            def monotonic(self):
                return real_time.monotonic() + self.mono_offset

        clock = _SteppableClock()
        monkeypatch.setattr(cachebus_mod, "time", clock)
        server = CacheBusServer(
            str(tmp_path / "bus.sock"), lease_ttl_s=30.0
        ).start()
        try:
            a, b = CacheBusClient(server.path), CacheBusClient(server.path)
            assert a.lease("k")[0] == "lead"
            # A wall-clock jump far past the TTL must NOT expire the lease.
            clock.wall_offset = 3600.0
            assert b.lease("k", wait_timeout=0.2) == ("miss", None)
            assert server.stats["lease_steals"] == 0
            # Genuine elapsed (monotonic) time past the TTL must.
            clock.mono_offset = 31.0
            assert b.lease("k")[0] == "lead"
            assert server.stats["lease_steals"] == 1
        finally:
            server.stop()

    def test_client_fails_open_without_server(self, tmp_path):
        client = CacheBusClient(str(tmp_path / "nobody-home.sock"))
        assert not client.ping()
        assert client.get("k") is None
        assert client.lease("k") == ("miss", None)
        assert not client.put("k", b"v")
        assert client.snapshot()["errors"] >= 4

    def test_publish_and_fetch_shard_blobs(self, bus):
        client = CacheBusClient(bus.path)
        assert client.publish_stats(3, {"requests": 7})
        blobs = client.fetch_stats()["shards"]
        assert blobs["3"]["payload"] == {"requests": 7}


# -- micro-batching -----------------------------------------------------------


class TestBatching:
    def test_estimate_matches_full_decomposition_shape(self):
        # 64x64, 5 levels, cb=64: each detail band and the final LL fit in
        # one block -> 3 bands/level * 5 levels + 1 = 16.
        assert estimate_code_blocks((64, 64), 5, 64) == 16
        # Three components triple the count.
        assert estimate_code_blocks((64, 64, 3), 5, 64) == 48

    def test_micro_predicate_splits_small_from_large(self):
        params = EncoderParams.lossless_default()
        assert is_micro_request((48, 48), params)
        assert not is_micro_request((2048, 2048, 3), params)

    def test_batched_encode_is_byte_identical(self):
        params = EncoderParams.lossless_default()
        image = _small_image()
        batcher = MicroBatcher(pool=None, window_s=0.01)
        try:
            item = batcher.submit(image, params)
        finally:
            batcher.close()
        assert item.codestream == encode(image, params).codestream

    def test_window_collects_concurrent_requests_into_one_flush(self):
        params = EncoderParams.lossless_default()
        images = [_small_image(i) for i in range(4)]
        batcher = MicroBatcher(pool=None, window_s=0.25, max_batch=8)
        results = [None] * len(images)

        def submit(i):
            results[i] = batcher.submit(images[i], params).codestream

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(len(images))
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        finally:
            batcher.close()
        assert batcher.flushes == 1
        assert batcher.batched == len(images)
        for image, codestream in zip(images, results):
            assert codestream == encode(image, params).codestream

    def test_max_batch_flushes_early(self):
        params = EncoderParams.lossless_default()
        batcher = MicroBatcher(pool=None, window_s=30.0, max_batch=1)
        try:
            item = batcher.submit(_small_image(), params, timeout=60.0)
        finally:
            batcher.close()
        assert item.codestream is not None
        assert batcher.flushes == 1

    def test_bad_item_fails_alone(self):
        batcher = MicroBatcher(pool=None, window_s=0.01)
        bad = np.zeros((0, 0), dtype=np.uint8)  # nothing to encode
        try:
            with pytest.raises(Exception):
                batcher.submit(bad, EncoderParams.lossless_default())
            good = batcher.submit(
                _small_image(), EncoderParams.lossless_default()
            )
        finally:
            batcher.close()
        assert good.codestream is not None

    def test_closed_batcher_rejects_submissions(self):
        batcher = MicroBatcher(pool=None, window_s=0.01)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(_small_image(), EncoderParams.lossless_default())

    def test_adaptive_window_clamped(self):
        for suggested, expected in ((1e-6, 0.002), (5.0, 0.05), (0.01, 0.01)):
            batcher = MicroBatcher(
                pool=None, window_provider=lambda s=suggested: s
            )
            try:
                assert batcher.window() == pytest.approx(expected)
            finally:
                batcher.close()


# -- load shedding ------------------------------------------------------------


class TestLoadShedder:
    def _histogram(self, values):
        hist = Histogram("request_seconds")
        for v in values:
            hist.observe(v)
        return hist

    def test_open_below_min_samples(self):
        shedder = LoadShedder(self._histogram([9.9] * 5), target_p95_s=0.1)
        assert shedder.shed_probability() == 0.0
        shedder.admit()  # no raise

    def test_open_when_p95_meets_target(self):
        shedder = LoadShedder(
            self._histogram([0.01] * 64), target_p95_s=0.1, min_samples=32
        )
        for _ in range(100):
            shedder.admit()
        assert shedder.shed == 0

    def test_sheds_deterministic_fraction_when_over_target(self):
        # p95 = 0.3 vs target 0.1 -> overshoot 2.0 -> capped at 0.95.
        shedder = LoadShedder(
            self._histogram([0.3] * 64), target_p95_s=0.1, min_samples=32
        )
        outcomes = []
        for _ in range(100):
            try:
                shedder.admit()
                outcomes.append("ok")
            except ShedError as exc:
                outcomes.append("shed")
                assert exc.retry_after_s >= 1.0
                assert exc.max_queue == 0  # QueueFullError-compatible
        # floor(0.95 * 100) up to one ulp of accumulated float error.
        assert outcomes.count("shed") in (94, 95)
        snap = shedder.snapshot()
        assert snap["checked"] == 100 and snap["shed"] == outcomes.count("shed")

    def test_partial_overshoot_sheds_partially(self):
        # p95 = 0.15 vs 0.1 -> shed fraction ~0.5 (exact up to float error).
        shedder = LoadShedder(
            self._histogram([0.15] * 64), target_p95_s=0.1, min_samples=32
        )
        shed = 0
        for _ in range(100):
            try:
                shedder.admit()
            except ShedError:
                shed += 1
        assert shed in (49, 50)


# -- histogram merging --------------------------------------------------------


class TestMetricsMerge:
    def test_merge_combines_samples_not_quantiles(self):
        a, b = Histogram("h"), Histogram("h")
        for v in (0.1, 0.2, 0.3):
            a.observe(v)
        for v in (10.0, 20.0, 30.0):
            b.observe(v)
        a.merge(b)
        state = a.state()
        assert state["count"] == 6
        assert state["sum"] == pytest.approx(60.6)
        # A true merge sees b's tail; averaged quantiles never could.
        assert a.quantile(0.99) == pytest.approx(30.0)
        assert state["min"] == pytest.approx(0.1)
        assert state["max"] == pytest.approx(30.0)

    def test_merge_rejects_mismatched_buckets(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_metric_states_across_registries(self):
        regs = [MetricsRegistry() for _ in range(3)]
        for i, reg in enumerate(regs):
            reg.counter("requests_total", "").inc(i + 1)
            reg.gauge("inflight", "").set(i)
            hist = reg.histogram("request_seconds", "")
            hist.observe(float(i + 1))
        merged = merge_metric_states([r.state() for r in regs])
        assert merged["requests_total"]["value"] == 6
        assert merged["inflight"]["value"] == 3  # gauges sum
        assert merged["request_seconds"]["count"] == 3
        assert merged["request_seconds"]["max"] == pytest.approx(3.0)


# -- service integration (single process) -------------------------------------


class TestServiceShardingFeatures:
    def test_micro_batched_service_encode_is_byte_identical(self):
        params = EncoderParams.lossless_default()
        image = _small_image()
        with EncodeService(
            ServiceConfig(workers=1, batch_window=0.005)
        ) as service:
            response = service.encode_image(image, params)
            assert response.batched
            assert response.codestream == encode(image, params).codestream
            assert service.metrics.snapshot()["batched_total"]["value"] == 1

    def test_cache_hit_ratio_gauge_tracks_hits(self):
        image = _small_image()
        with EncodeService(ServiceConfig(workers=1)) as service:
            service.encode_image(image)
            service.encode_image(image)
            snapshot = service.metrics.snapshot()
            assert snapshot["cache_hit_ratio"]["value"] == pytest.approx(0.5)

    def test_service_leads_and_publishes_through_bus(self, bus):
        image = _small_image()
        config = ServiceConfig(workers=1, bus_path=bus.path)
        with EncodeService(config) as first:
            response = first.encode_image(image)
            assert not response.cache_hit
        # A different service (fresh local cache) hits via the bus.
        with EncodeService(config) as second:
            response = second.encode_image(image)
            assert response.cache_hit
            assert response.cache_source == "remote"
            m = second.metrics.snapshot()
            assert m["remote_cache_hits_total"]["value"] == 1
            assert m["cache_hit_ratio"]["value"] == pytest.approx(1.0)


# -- cluster integration ------------------------------------------------------


def _wait_healthy(url: str, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=5) as resp:
                if resp.status == 200:
                    return
        except Exception:
            time.sleep(0.1)
    raise TimeoutError(f"cluster at {url} never became healthy")


def _post(url: str, body: bytes):
    req = urllib.request.Request(url, data=body, method="POST")
    return urllib.request.urlopen(req, timeout=120)


def _cluster(shards: int, **overrides) -> ShardCluster:
    service = overrides.pop(
        "service", ServiceConfig(workers=1, batch_window="auto")
    )
    config = ShardClusterConfig(
        shards=shards, service=service, quiet=True, heartbeat_s=0.2,
        **overrides,
    )
    return ShardCluster(config)


@pytest.mark.slow
class TestShardCluster:
    def test_codestreams_identical_across_shard_counts(self):
        image = watch_face_image(48, 48, channels=1)
        body = _pgm(image)
        expected = encode(image, EncoderParams.lossless_default()).codestream
        for shards in (1, 2, 4):
            with _cluster(shards) as cluster:
                url = f"http://127.0.0.1:{cluster.port}"
                _wait_healthy(url)
                with _post(url + "/encode?verify=1", body) as resp:
                    assert resp.status == 200
                    assert resp.headers["X-Verified"] == "roundtrip"
                    served = resp.read()
                assert served == expected, f"{shards}-shard bytes differ"

    def test_concurrent_burst_encodes_once_cluster_wide(self):
        body = _pgm(watch_face_image(48, 48, channels=1))
        with _cluster(2) as cluster:
            url = f"http://127.0.0.1:{cluster.port}"
            _wait_healthy(url)
            statuses, codestreams = [], []
            lock = threading.Lock()

            def hit():
                with _post(url + "/encode", body) as resp:
                    data = resp.read()
                with lock:
                    statuses.append(resp.status)
                    codestreams.append(data)

            threads = [threading.Thread(target=hit) for _ in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert statuses == [200] * 16
            assert len(set(codestreams)) == 1
            time.sleep(0.6)  # let the final heartbeats land on the bus
            metrics = json.load(
                urllib.request.urlopen(url + "/metrics", timeout=10)
            )
            aggregate = metrics["aggregate"]
            assert aggregate["requests_total"]["value"] == 16
            # The load-bearing claim: 16 identical requests across two
            # shards cost exactly one encode — local single-flight plus
            # the bus lease deduplicated everything else.
            assert aggregate["images_encoded_total"]["value"] == 1
            # A ratio must survive aggregation as a ratio: the merge sums
            # gauges, so the provider recomputes this one from counters.
            assert 0.0 <= aggregate["cache_hit_ratio"]["value"] <= 1.0

    def test_inherited_fd_strategy_serves(self):
        body = _pgm(watch_face_image(48, 48, channels=1))
        with _cluster(2, listener="inherit") as cluster:
            assert cluster.strategy == "inherit"
            url = f"http://127.0.0.1:{cluster.port}"
            _wait_healthy(url)
            with _post(url + "/encode", body) as resp:
                assert resp.status == 200
                assert resp.headers["X-Shard"] in ("0", "1")

    def test_crashed_shard_is_respawned(self):
        with _cluster(2) as cluster:
            url = f"http://127.0.0.1:{cluster.port}"
            _wait_healthy(url)
            victim = cluster.alive_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                alive = cluster.alive_pids()
                if cluster.respawns >= 1 and len(alive) == 2 \
                        and alive[0] != victim:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("shard 0 was not respawned")
            _wait_healthy(url)

    def test_graceful_stop_leaves_no_orphans(self):
        cluster = _cluster(2).start()
        url = f"http://127.0.0.1:{cluster.port}"
        _wait_healthy(url)
        pids = list(cluster.alive_pids().values())
        assert len(pids) == 2
        cluster.stop(graceful=True)
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        # The port is free again: a new cluster can bind it.
        with _cluster(1, port=cluster.port) as again:
            _wait_healthy(f"http://127.0.0.1:{again.port}")
