"""Encode service: concurrent determinism, scheduler fairness, pool health.

The service's contract is the repo's central invariant lifted to serving:
whatever mix of concurrent requests, worker counts, priorities, and cache
states, every response is byte-identical to the offline ``encode()``.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.service import EncodeService, ServiceConfig
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.pool import PersistentWorkerPool
from repro.service.scheduler import EncodeScheduler, SchedulerClosed

PARAMS = EncoderParams(levels=3)


@pytest.fixture(scope="module")
def gray48():
    return watch_face_image(48, 48, channels=1)


@pytest.fixture(scope="module")
def rgb48():
    return watch_face_image(48, 48, channels=3)


@pytest.fixture(scope="module")
def offline_gray48(gray48):
    return encode(gray48, PARAMS).codestream


@pytest.fixture(scope="module")
def offline_rgb48(rgb48):
    return encode(rgb48, PARAMS).codestream


def _no_cache(workers, **kw):
    return ServiceConfig(workers=workers, cache_bytes=0, **kw)


class TestConcurrentDeterminism:
    """Issue acceptance: N concurrent submitters, byte-identical output."""

    @pytest.mark.parametrize("workers", [1, 2, None], ids=["w1", "w2", "auto"])
    def test_same_image_from_8_threads(self, workers, gray48, offline_gray48):
        with EncodeService(_no_cache(workers)) as service:
            outputs = [None] * 8
            errors = []

            def submit(i):
                try:
                    outputs[i] = service.encode_image(gray48, PARAMS)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for out in outputs:
                assert out.codestream == offline_gray48
                assert out.cache_hit is False  # cache disabled

    def test_mixed_images_and_priorities(
        self, gray48, rgb48, offline_gray48, offline_rgb48
    ):
        with EncodeService(_no_cache(2)) as service:
            outputs = {}

            def submit(i):
                if i % 2:
                    r = service.encode_image(rgb48, PARAMS, priority=i)
                    outputs[i] = (r.codestream, offline_rgb48)
                else:
                    r = service.encode_image(gray48, PARAMS, priority=-i)
                    outputs[i] = (r.codestream, offline_gray48)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(outputs) == 8
            for got, want in outputs.values():
                assert got == want

    def test_sequential_requests_reuse_one_pool(self, gray48, rgb48):
        with EncodeService(_no_cache(2)) as service:
            service.encode_image(gray48, PARAMS)
            service.encode_image(rgb48, PARAMS)
            snap = service.pool.snapshot()
            # Same worker pids across both images: the pool survived.
            assert snap["images_served"] == 0  # scheduler path, not imap
            assert snap["tasks_done"] > 0
            assert service.pool.stats.respawns == 0

    def test_lossy_rate_through_service(self, rgb48):
        params = EncoderParams.lossy_rate(0.2)
        offline = encode(rgb48, params).codestream
        with EncodeService(_no_cache(2)) as service:
            assert service.encode_image(rgb48, params).codestream == offline


class TestPersistentPool:
    def test_warm_up_reports_workers(self):
        with PersistentWorkerPool(workers=2) as pool:
            pids = pool.warm_up()
            assert 1 <= len(pids) <= 2
            assert all(pid != os.getpid() for pid in pids)

    def test_imap_interface_matches_one_shot_queue(self):
        from repro.core.workpool import CodeBlockTask, CodeBlockWorkQueue

        rng = np.random.default_rng(7)
        tasks = [
            CodeBlockTask(i, rng.integers(-99, 99, size=(8, 8)).astype(np.int32),
                          "HL")
            for i in range(6)
        ]
        one_shot = CodeBlockWorkQueue(workers=2).encode_all(tasks)
        with PersistentWorkerPool(workers=2) as pool:
            injected = CodeBlockWorkQueue(pool=pool).encode_all(tasks)
            again = CodeBlockWorkQueue(pool=pool).encode_all(tasks)
        assert injected == one_shot
        assert again == one_shot  # pool reused across encode_all calls

    def test_ping_and_respawn(self):
        pool = PersistentWorkerPool(workers=1)
        try:
            assert pool.ping()
            assert pool.ensure_healthy() is False  # healthy: no respawn
            # Wedge the pool by terminating its workers behind its back.
            pool._pool.terminate()
            pool._pool.join()
            assert not pool.ping(timeout=0.5)
            assert pool.ensure_healthy() is True  # dead: respawned
            assert pool.stats.respawns == 1
            assert pool.ping()
        finally:
            pool.terminate()

    def test_recovers_from_killed_worker(self):
        # SIGKILLing a worker can poison the pool's shared task queue (an
        # idle worker holds the queue lock while blocked reading), so the
        # recovery contract is health-check + respawn, not tacit survival.
        pool = PersistentWorkerPool(workers=2)
        try:
            victim = pool.warm_up()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 10
            while time.time() < deadline and not pool.ping(timeout=1.0):
                pool.ensure_healthy(timeout=1.0)
            assert pool.ping()
        finally:
            pool.terminate()

    def test_closed_pool_refuses_work(self):
        pool = PersistentWorkerPool(workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(pool.imap_unordered([(0, np.ones((2, 2), np.int32), "LL",
                                       "reference")]))
        assert not pool.ping()

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            PersistentWorkerPool(workers=0)


class TestScheduler:
    def test_interleaves_two_jobs(self, gray48, rgb48):
        """Two jobs running concurrently both finish and stay correct."""
        with PersistentWorkerPool(workers=2) as pool:
            scheduler = EncodeScheduler(pool, max_inflight=2)
            try:
                results = {}

                def run(name, img):
                    with scheduler.job() as job:
                        results[name] = encode(img, PARAMS, pool=job)

                t1 = threading.Thread(target=run, args=("a", gray48))
                t2 = threading.Thread(target=run, args=("b", rgb48))
                t1.start(); t2.start(); t1.join(); t2.join()
                assert results["a"].codestream == encode(gray48, PARAMS).codestream
                assert results["b"].codestream == encode(rgb48, PARAMS).codestream
                snap = scheduler.snapshot()
                assert snap["blocks_dispatched"] > 0
                assert snap["inflight_blocks"] == 0
                assert snap["open_lanes"] == 0
            finally:
                scheduler.close()

    def test_priority_prefers_higher(self):
        """With a saturated single worker, high-priority blocks dispatch
        ahead of queued low-priority ones."""
        with PersistentWorkerPool(workers=1) as pool:
            scheduler = EncodeScheduler(pool, max_inflight=1)
            try:
                lo = scheduler.job(priority=0)
                hi = scheduler.job(priority=5)
                assert hi.priority > lo.priority
                # Both lanes race; completion of both proves the dispatcher
                # serves multiple lanes.  (Strict ordering is not observable
                # from outside without hooking the pool.)
                rng = np.random.default_rng(0)
                payloads = [
                    (i, rng.integers(-50, 50, (8, 8)).astype(np.int32), "LL",
                     "reference")
                    for i in range(4)
                ]
                out_lo = []
                out_hi = []
                t1 = threading.Thread(
                    target=lambda: out_lo.extend(lo.imap_unordered(payloads)))
                t2 = threading.Thread(
                    target=lambda: out_hi.extend(hi.imap_unordered(payloads)))
                t1.start(); t2.start(); t1.join(); t2.join()
                assert len(out_lo) == len(out_hi) == 4
                lo.close(); hi.close()
            finally:
                scheduler.close()

    def test_closed_scheduler_rejects_jobs(self):
        with PersistentWorkerPool(workers=1) as pool:
            scheduler = EncodeScheduler(pool)
            scheduler.close()
            with pytest.raises(SchedulerClosed):
                scheduler.job()
            scheduler.close()  # idempotent

    def test_invalid_max_inflight(self):
        with PersistentWorkerPool(workers=1) as pool:
            with pytest.raises(ValueError, match="max_inflight"):
                EncodeScheduler(pool, max_inflight=0)


class TestServiceLifecycle:
    def test_closed_service_rejects_submissions(self, gray48):
        service = EncodeService(_no_cache(1))
        service.close()
        with pytest.raises(SchedulerClosed):
            service.encode_image(gray48, PARAMS)
        service.close()  # idempotent

    def test_healthy_and_stats(self, gray48):
        with EncodeService(ServiceConfig(workers=1)) as service:
            assert service.healthy()
            service.encode_image(gray48, PARAMS)
            stats = service.stats()
            assert stats["pool"]["workers"] == 1
            assert stats["admission"]["admitted"] == 1
            assert stats["cache"]["misses"] == 1
            assert stats["uptime_s"] >= 0
        assert not service.healthy()


class TestMetrics:
    def test_counter_and_gauge(self):
        c = Counter("c")
        c.inc(); c.inc(2)
        assert c.value == 3
        with pytest.raises(ValueError):
            c.inc(-1)
        g = Gauge("g")
        g.set(5.0); g.dec(1.5)
        assert g.value == 3.5

    def test_histogram_quantiles_and_buckets(self):
        h = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 2.0, 20.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0.05 and snap["max"] == 20.0
        by_le = {b["le"]: b["count"] for b in snap["buckets"]}
        assert by_le[0.1] == 1
        assert by_le[1.0] == 3
        assert by_le[10.0] == 4
        assert by_le["inf"] == 5
        assert h.quantile(0.5) == 0.5
        assert h.quantile(1.0) == 20.0
        assert Histogram("empty").quantile(0.95) == 0.0

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_registry_reuse_and_conflict(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        assert reg.counter("x") is a
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        reg.histogram("lat").observe(0.2)
        snap = reg.snapshot()
        assert snap["x"]["type"] == "counter"
        assert snap["lat"]["count"] == 1


class TestStageHistograms:
    """PR 3: every full encode feeds per-stage wall-time histograms."""

    def test_stage_histograms_observed(self, gray48):
        with EncodeService(_no_cache(1)) as service:
            service.encode_image(gray48, PARAMS)
            snap = service.metrics.snapshot()
        for stage in ("levelshift_mct", "dwt", "quantize", "tier1", "tier2"):
            hist = snap[f"stage_{stage}_seconds"]
            assert hist["count"] == 1
            assert "p50" in hist and "p95" in hist and "p99" in hist

    def test_cache_hit_does_not_observe_stages(self, gray48):
        with EncodeService(ServiceConfig(workers=1)) as service:
            service.encode_image(gray48, PARAMS)
            service.encode_image(gray48, PARAMS)  # cache hit
            snap = service.metrics.snapshot()
        assert snap["stage_tier1_seconds"]["count"] == 1
