"""PCRD-opt rate control tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg2000.rate import BlockRateInfo, choose_truncations


def block(lengths, dists) -> BlockRateInfo:
    return BlockRateInfo(lengths=lengths, dist_reductions=dists)


class TestHull:
    def test_concave_curve_keeps_all_points(self):
        b = block([10, 20, 30], [100, 50, 10])
        assert b.hull_passes == [1, 2, 3]
        assert b.hull_slopes[0] > b.hull_slopes[1] > b.hull_slopes[2]

    def test_non_hull_pass_removed(self):
        # pass 2 gains almost nothing, pass 3 a lot: 2 is below the hull
        b = block([10, 20, 30], [100, 1, 99])
        assert 2 not in b.hull_passes
        assert 3 in b.hull_passes

    def test_zero_gain_passes_never_candidates(self):
        b = block([10, 20], [50, 0])
        assert b.hull_passes == [1]

    def test_slopes_strictly_decreasing(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = rng.integers(1, 15)
            lengths = np.cumsum(rng.integers(1, 50, n)).tolist()
            dists = rng.uniform(0, 100, n).tolist()
            b = block(lengths, dists)
            slopes = b.hull_slopes
            assert all(s1 > s2 for s1, s2 in zip(slopes, slopes[1:]))

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            block([1, 2], [3])


class TestTruncationForSlope:
    def test_zero_lambda_keeps_everything_on_hull(self):
        b = block([10, 20, 30], [100, 50, 10])
        assert b.truncation_for_slope(0.0) == 3

    def test_huge_lambda_drops_block(self):
        b = block([10, 20], [100, 50])
        assert b.truncation_for_slope(1e12) == 0

    def test_intermediate_lambda(self):
        b = block([10, 20, 30], [100, 50, 10])  # slopes 10, 5, 1
        assert b.truncation_for_slope(6.0) == 1
        assert b.truncation_for_slope(4.0) == 2
        assert b.truncation_for_slope(1.0) == 3


class TestChooseTruncations:
    def test_generous_budget_keeps_all(self):
        blocks = [block([10, 20], [50, 20]), block([5, 15], [40, 30])]
        trunc = choose_truncations(blocks, 1000)
        assert trunc == [2, 2]

    def test_zero_budget_drops_all(self):
        blocks = [block([10], [50])]
        assert choose_truncations(blocks, 0.0) == [0]

    def test_budget_respected(self):
        rng = np.random.default_rng(1)
        blocks = []
        for _ in range(30):
            n = int(rng.integers(1, 12))
            lengths = np.cumsum(rng.integers(5, 60, n)).tolist()
            dists = sorted(rng.uniform(0, 1000, n), reverse=True)
            blocks.append(block(lengths, [float(d) for d in dists]))
        for budget in (100, 300, 700):
            trunc = choose_truncations(blocks, budget)
            total = sum(b.length_at(t) for b, t in zip(blocks, trunc))
            assert total <= budget

    def test_prefers_high_slope_blocks(self):
        cheap_good = block([10], [1000.0])   # slope 100
        dear_bad = block([10], [10.0])       # slope 1
        trunc = choose_truncations([cheap_good, dear_bad], 10)
        assert trunc == [1, 0]

    def test_monotone_in_budget(self):
        rng = np.random.default_rng(2)
        blocks = []
        for _ in range(10):
            n = int(rng.integers(1, 8))
            lengths = np.cumsum(rng.integers(5, 40, n)).tolist()
            dists = sorted(rng.uniform(1, 500, n), reverse=True)
            blocks.append(block(lengths, [float(d) for d in dists]))
        prev_total = -1.0
        for budget in (50, 150, 400, 1000):
            trunc = choose_truncations(blocks, budget)
            total = sum(b.length_at(t) for b, t in zip(blocks, trunc))
            assert total >= prev_total
            prev_total = total

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            choose_truncations([block([1], [1.0])], -1)

    @given(st.integers(0, 2**31), st.integers(10, 2000))
    @settings(max_examples=60, deadline=None)
    def test_budget_property(self, seed, budget):
        rng = np.random.default_rng(seed)
        blocks = []
        for _ in range(int(rng.integers(1, 15))):
            n = int(rng.integers(1, 10))
            lengths = np.cumsum(rng.integers(1, 80, n)).tolist()
            dists = rng.uniform(0, 100, n).tolist()
            blocks.append(block(lengths, dists))
        trunc = choose_truncations(blocks, float(budget))
        total = sum(b.length_at(t) for b, t in zip(blocks, trunc))
        assert total <= budget
        for b, t in zip(blocks, trunc):
            assert 0 <= t <= len(b.lengths)


# ---------------------------------------------------------------------------
# Vectorized PCRD-opt (PR 4): differential against the scalar oracle,
# golden-codestream regression, and end-to-end byte identity.
# ---------------------------------------------------------------------------

import hashlib

from repro.core.workpool import shared_memory_available
from repro.image.synthetic import watch_face_image
from repro.jpeg2000 import encoder as encoder_mod
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.rate import RateModel, choose_truncations_reference


def _random_blocks(rng, max_blocks=20):
    blocks = []
    for _ in range(int(rng.integers(1, max_blocks))):
        n = int(rng.integers(1, 14))
        lengths = np.cumsum(rng.integers(1, 90, n)).tolist()
        dists = rng.uniform(0, 120, n)
        dists[rng.uniform(size=n) < 0.15] = 0.0  # dead passes
        blocks.append(block(lengths, [float(d) for d in dists]))
    return blocks


class TestVectorizedMatchesReference:
    """choose_truncations must replicate the scalar oracle bit for bit."""

    @given(st.integers(0, 2**31), st.floats(0.0, 5000.0))
    @settings(max_examples=80, deadline=None)
    def test_differential_property(self, seed, budget):
        rng = np.random.default_rng(seed)
        blocks = _random_blocks(rng)
        ref = choose_truncations_reference(
            [block(b.lengths, b.dist_reductions) for b in blocks], budget
        )
        vec = choose_truncations(blocks, budget)
        assert vec == ref

    def test_empty_block_list(self):
        assert choose_truncations([], 100.0) == []
        assert choose_truncations_reference([], 100.0) == []

    def test_model_choose_matches_per_call(self):
        # One RateModel reused across shrinking budgets (the encoder's
        # convergence loop) must equal fresh scalar runs at each budget.
        rng = np.random.default_rng(7)
        blocks = _random_blocks(rng, max_blocks=30)
        model = RateModel(
            [b.lengths for b in blocks],
            [b.dist_reductions for b in blocks],
        )
        for budget in (0.0, 37.0, 150.0, 600.0, 1e9):
            ref = choose_truncations_reference(
                [block(b.lengths, b.dist_reductions) for b in blocks], budget
            )
            assert list(model.choose(budget)) == ref

    def test_single_pass_blocks(self):
        blocks = [block([5], [10.0]), block([7], [0.0]), block([3], [50.0])]
        for budget in (0.0, 3.0, 8.0, 100.0):
            ref = choose_truncations_reference(
                [block(b.lengths, b.dist_reductions) for b in blocks], budget
            )
            assert choose_truncations(blocks, budget) == ref


#: sha256 of lossy codestreams captured at the pre-PR encoder (PR 3 HEAD).
#: Any drift here is a byte-compatibility break, not a tuning change.
GOLDEN_LOSSY_SHA256 = {
    (64, 64, 3, 0.05, 3): "63007c2d4678d3010b936b4826211c39e1d1abbb8705e9ff7a1fbf60244656da",
    (64, 64, 3, 0.1, 3): "9f5ccd0bbdca81d76d6f5a392b205f814a7bfb065019267e0d926d28ca411562",
    (64, 64, 3, 0.3, 3): "3c8c6b5e46e764809ef4481fbe769e7952b64a04154261f5b82e06bc93a641be",
    (96, 96, 1, 0.05, 3): "18188e68f9e93b9be102fb94a8f687af33cad0dce8a225f8b9fdaae5fbfa21de",
    (96, 96, 1, 0.1, 3): "bd40deca7d31f4af976bc8f8f6b39afa9e24b877d81a6d6f1407ed36636d626d",
    (96, 96, 1, 0.3, 3): "ddcce9f3154bcd78e1669403e83c370c207355264023a3251f9091a04e1e5e35",
    (96, 96, 3, 0.05, 3): "617e7240d740ccf06ffb74c27fb916df8b852ce7935320023bb470657a7f7839",
    (96, 96, 3, 0.1, 3): "c670a3c3b05a7a8486e57558f8f87eeb15be6b8c42881b92d80f6b7b4b651ac8",
    (96, 96, 3, 0.3, 3): "2c8ce6c2b8c5c00997a1196e932dc1ddf10c5a1fd9dafb28f97579e59dabf013",
    (70, 50, 1, 0.2, 5): "4075a005d83ab031a181dca99f6de3695d5c901012e99fc8cafb4338032111d3",
    (81, 33, 3, 0.15, 2): "03566df226992a23b20dbf4d46d5ce483430dae392e0b12132c43c16eb030b87",
    (64, 64, 1, 1.0, 3): "e86b96d14d4beb29ffbf8bdd7460a4eae296a5ec6f598a776491c27834368310",
}


class TestGoldenCodestreams:
    """Byte-identity with the pre-PR encoder, single Tier-2 assembly."""

    @pytest.mark.parametrize("key", sorted(GOLDEN_LOSSY_SHA256))
    def test_codestream_sha256(self, key):
        h, w, channels, rate, levels = key
        img = watch_face_image(h, w, channels=channels)
        before = encoder_mod._assemble_packets.calls
        res = encode(img, EncoderParams(lossless=False, rate=rate, levels=levels))
        after = encoder_mod._assemble_packets.calls
        digest = hashlib.sha256(res.codestream).hexdigest()
        assert digest == GOLDEN_LOSSY_SHA256[key], key
        assert after - before == 1, "Tier-2 packets must assemble exactly once"


class TestByteIdentityAcrossDispatch:
    """Same codestream for every worker count x Tier-1 backend x rate."""

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    @pytest.mark.parametrize("rate", [0.1, 0.3])
    def test_workers_and_backends(self, backend, rate, monkeypatch):
        # Disable the low-core auto-serial clamp so the pool path actually
        # runs even on single-core CI machines.
        monkeypatch.setenv("REPRO_TIER1_AUTO_SERIAL", "0")
        img = watch_face_image(64, 64, channels=3)
        streams = {}
        for workers in (1, 2, 4):
            params = EncoderParams(
                lossless=False, rate=rate, levels=3,
                workers=workers, tier1_backend=backend,
            )
            res = encode(img, params)
            streams[workers] = res.codestream
            if workers == 1:
                assert res.stats.tier1_dispatch == "serial"
            elif shared_memory_available():
                assert res.stats.tier1_dispatch == "shared_memory"
        assert streams[2] == streams[1]
        assert streams[4] == streams[1]

    def test_auto_serial_clamp_stays_serial_below_threshold(self, monkeypatch):
        # Default clamp: a 30-block encode under the env-raised threshold
        # stays in-process (no pool) yet remains byte-identical.
        monkeypatch.setenv("REPRO_TIER1_AUTO_SERIAL", "1000")
        img = watch_face_image(64, 64, channels=3)
        serial = encode(img, EncoderParams(lossless=False, rate=0.2, levels=3))
        pooled = encode(
            img, EncoderParams(lossless=False, rate=0.2, levels=3, workers=2)
        )
        assert pooled.codestream == serial.codestream
        assert pooled.stats.tier1_dispatch == "batched"

    def test_pickle_fallback_is_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISPATCH", "0")
        monkeypatch.setenv("REPRO_TIER1_AUTO_SERIAL", "0")
        img = watch_face_image(64, 64, channels=3)
        serial = encode(img, EncoderParams(lossless=False, rate=0.2, levels=3))
        pooled = encode(
            img, EncoderParams(lossless=False, rate=0.2, levels=3, workers=2)
        )
        assert pooled.codestream == serial.codestream
        # Default backend is auto -> whole-image batched; without shared
        # memory the geometry groups ship pickled.
        assert pooled.stats.tier1_dispatch == "batched_pickle"


class TestTruncatedStreamsDecode:
    """Rate-controlled codestreams must still parse and reconstruct."""

    @pytest.mark.parametrize("rate", [0.05, 0.15, 0.5])
    def test_round_trip(self, rate):
        img = watch_face_image(96, 96, channels=3)
        res = encode(img, EncoderParams(lossless=False, rate=rate, levels=3))
        out = decode(res.codestream)
        assert out.shape == img.shape
        assert out.dtype == img.dtype
        # Truncation loses detail, not the picture: demand a sane PSNR.
        mse = np.mean((out.astype(np.float64) - img.astype(np.float64)) ** 2)
        psnr = float("inf") if mse == 0 else 10 * np.log10(255.0**2 / mse)
        assert psnr > 20.0

    def test_rate_budget_respected_end_to_end(self):
        img = watch_face_image(96, 96, channels=3)
        rate = 0.1
        res = encode(img, EncoderParams(lossless=False, rate=rate, levels=3))
        budget = rate * img.size  # bytes: rate is per source byte at 8 bpp
        assert len(res.codestream) <= budget * 1.02  # header slack only
