"""PCRD-opt rate control tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg2000.rate import BlockRateInfo, choose_truncations


def block(lengths, dists) -> BlockRateInfo:
    return BlockRateInfo(lengths=lengths, dist_reductions=dists)


class TestHull:
    def test_concave_curve_keeps_all_points(self):
        b = block([10, 20, 30], [100, 50, 10])
        assert b.hull_passes == [1, 2, 3]
        assert b.hull_slopes[0] > b.hull_slopes[1] > b.hull_slopes[2]

    def test_non_hull_pass_removed(self):
        # pass 2 gains almost nothing, pass 3 a lot: 2 is below the hull
        b = block([10, 20, 30], [100, 1, 99])
        assert 2 not in b.hull_passes
        assert 3 in b.hull_passes

    def test_zero_gain_passes_never_candidates(self):
        b = block([10, 20], [50, 0])
        assert b.hull_passes == [1]

    def test_slopes_strictly_decreasing(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = rng.integers(1, 15)
            lengths = np.cumsum(rng.integers(1, 50, n)).tolist()
            dists = rng.uniform(0, 100, n).tolist()
            b = block(lengths, dists)
            slopes = b.hull_slopes
            assert all(s1 > s2 for s1, s2 in zip(slopes, slopes[1:]))

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            block([1, 2], [3])


class TestTruncationForSlope:
    def test_zero_lambda_keeps_everything_on_hull(self):
        b = block([10, 20, 30], [100, 50, 10])
        assert b.truncation_for_slope(0.0) == 3

    def test_huge_lambda_drops_block(self):
        b = block([10, 20], [100, 50])
        assert b.truncation_for_slope(1e12) == 0

    def test_intermediate_lambda(self):
        b = block([10, 20, 30], [100, 50, 10])  # slopes 10, 5, 1
        assert b.truncation_for_slope(6.0) == 1
        assert b.truncation_for_slope(4.0) == 2
        assert b.truncation_for_slope(1.0) == 3


class TestChooseTruncations:
    def test_generous_budget_keeps_all(self):
        blocks = [block([10, 20], [50, 20]), block([5, 15], [40, 30])]
        trunc = choose_truncations(blocks, 1000)
        assert trunc == [2, 2]

    def test_zero_budget_drops_all(self):
        blocks = [block([10], [50])]
        assert choose_truncations(blocks, 0.0) == [0]

    def test_budget_respected(self):
        rng = np.random.default_rng(1)
        blocks = []
        for _ in range(30):
            n = int(rng.integers(1, 12))
            lengths = np.cumsum(rng.integers(5, 60, n)).tolist()
            dists = sorted(rng.uniform(0, 1000, n), reverse=True)
            blocks.append(block(lengths, [float(d) for d in dists]))
        for budget in (100, 300, 700):
            trunc = choose_truncations(blocks, budget)
            total = sum(b.length_at(t) for b, t in zip(blocks, trunc))
            assert total <= budget

    def test_prefers_high_slope_blocks(self):
        cheap_good = block([10], [1000.0])   # slope 100
        dear_bad = block([10], [10.0])       # slope 1
        trunc = choose_truncations([cheap_good, dear_bad], 10)
        assert trunc == [1, 0]

    def test_monotone_in_budget(self):
        rng = np.random.default_rng(2)
        blocks = []
        for _ in range(10):
            n = int(rng.integers(1, 8))
            lengths = np.cumsum(rng.integers(5, 40, n)).tolist()
            dists = sorted(rng.uniform(1, 500, n), reverse=True)
            blocks.append(block(lengths, [float(d) for d in dists]))
        prev_total = -1.0
        for budget in (50, 150, 400, 1000):
            trunc = choose_truncations(blocks, budget)
            total = sum(b.length_at(t) for b, t in zip(blocks, trunc))
            assert total >= prev_total
            prev_total = total

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            choose_truncations([block([1], [1.0])], -1)

    @given(st.integers(0, 2**31), st.integers(10, 2000))
    @settings(max_examples=60, deadline=None)
    def test_budget_property(self, seed, budget):
        rng = np.random.default_rng(seed)
        blocks = []
        for _ in range(int(rng.integers(1, 15))):
            n = int(rng.integers(1, 10))
            lengths = np.cumsum(rng.integers(1, 80, n)).tolist()
            dists = rng.uniform(0, 100, n).tolist()
            blocks.append(block(lengths, dists))
        trunc = choose_truncations(blocks, float(budget))
        total = sum(b.length_at(t) for b, t in zip(blocks, trunc))
        assert total <= budget
        for b, t in zip(blocks, trunc):
            assert 0 <= t <= len(b.lengths)
