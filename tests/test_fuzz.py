"""Fuzzer contract: typed errors only, deterministic cases, working reducer."""

import pytest

from repro.jpeg2000.decoder import decode
from repro.jpeg2000.errors import CodestreamError, LimitExceededError
from repro.verify import base_codestreams, minimize, mutate, run_fuzz
from repro.verify.fuzz import FUZZ_LIMITS, case_rng


@pytest.fixture(scope="module")
def bases():
    return base_codestreams()


class TestDeterminism:
    def test_same_seed_same_mutation(self, bases):
        _, base = bases[0]
        a = mutate(base, case_rng(2008, 17))
        b = mutate(base, case_rng(2008, 17))
        assert a == b

    def test_different_cases_differ(self, bases):
        _, base = bases[0]
        outs = {mutate(base, case_rng(2008, c))[0] for c in range(8)}
        assert len(outs) > 1

    def test_same_run_same_report(self):
        a = run_fuzz(cases=40, seed=123)
        b = run_fuzz(cases=40, seed=123)
        assert a.outcomes == b.outcomes
        assert a.summary() == b.summary()


class TestTypedErrorContract:
    def test_small_run_has_zero_crashes(self):
        report = run_fuzz(cases=400, seed=2008)
        assert report.ok, report.summary()
        assert report.crashes == []
        # The mutation mix must actually exercise both sides of the
        # contract: some inputs still decode, some are rejected typed.
        assert report.outcomes.get("decoded", 0) > 0
        typed = sum(v for k, v in report.outcomes.items() if k != "decoded")
        assert typed > 0

    def test_report_summary_mentions_crash_count(self):
        report = run_fuzz(cases=20, seed=7)
        assert "crashes=" in report.summary()
        assert f"{report.cases} cases" in report.summary()

    def test_bases_are_diverse(self, bases):
        assert len(bases) >= 5
        assert len({cs for _, cs in bases}) == len(bases)


class TestAllocationCaps:
    """Corrupt headers must be rejected *before* they size an allocation."""

    def _valid(self, bases):
        return bases[0][1]

    def test_huge_declared_dimensions(self, bases):
        cs = bytearray(self._valid(bases))
        # SIZ payload starts at byte 6 (SOC + marker + length); Rsiz is
        # payload bytes 0..1, Xsiz is payload bytes 2..5.
        cs[8:12] = (1 << 30).to_bytes(4, "big")
        with pytest.raises(LimitExceededError):
            decode(bytes(cs))

    def test_huge_declared_samples(self, bases):
        cs = bytearray(self._valid(bases))
        big = FUZZ_LIMITS.max_dimension  # per-axis legal, product is not
        cs[8:12] = big.to_bytes(4, "big")    # Xsiz
        cs[12:16] = big.to_bytes(4, "big")   # Ysiz
        with pytest.raises(LimitExceededError):
            decode(bytes(cs), limits=FUZZ_LIMITS)

    def test_excessive_levels(self, bases):
        cs = bytearray(self._valid(bases))
        cod = bytes(cs).find(b"\xff\x52")
        assert cod > 0
        cs[cod + 9] = 200  # COD payload byte 5: decomposition levels
        with pytest.raises(LimitExceededError):
            decode(bytes(cs))

    def test_all_prefixes_are_typed(self, bases):
        """Every truncation point decodes or raises CodestreamError."""
        cs = self._valid(bases)
        for n in range(len(cs)):
            try:
                decode(cs[:n], limits=FUZZ_LIMITS)
            except CodestreamError:
                pass

    def test_length_field_sweep_is_typed(self, bases):
        cs = self._valid(bases)
        for marker in (b"\xff\x51", b"\xff\x52", b"\xff\x5c", b"\xff\x90"):
            i = cs.find(marker)
            assert i >= 0
            for value in (0, 1, 2, 3, 0xFFFF):
                m = bytearray(cs)
                m[i + 2 : i + 4] = value.to_bytes(2, "big")
                try:
                    decode(bytes(m), limits=FUZZ_LIMITS)
                except CodestreamError as exc:
                    assert isinstance(exc, ValueError)  # taxonomy root

    def test_errors_carry_offsets(self, bases):
        cs = self._valid(bases)
        with pytest.raises(CodestreamError) as err:
            decode(cs[:5])
        assert err.value.offset is not None
        assert "byte offset" in str(err.value)


class TestMinimize:
    def test_reduces_to_the_essential_byte(self):
        data = b"A" * 100 + b"X" + b"B" * 100
        small = minimize(data, lambda d: b"X" in d)
        assert small == b"X"

    def test_predicate_false_returns_input(self):
        data = b"hello"
        assert minimize(data, lambda d: False) == data

    def test_minimized_crash_is_deterministic(self):
        data = bytes(range(256))
        a = minimize(data, lambda d: len(d) >= 3 and d[0] < d[-1])
        b = minimize(data, lambda d: len(d) >= 3 and d[0] < d[-1])
        assert a == b
