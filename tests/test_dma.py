"""DMA engine rule and cost tests (paper Section 2 alignment rules)."""

import pytest

from repro.cell.dma import DmaEngine, DmaError, DmaTransfer, row_transfer_plan


class TestAlignmentRules:
    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_small_sizes_need_natural_alignment(self, size):
        DmaTransfer(size=size, local_addr=size, main_addr=size).validate()
        with pytest.raises(DmaError):
            DmaTransfer(size=size, local_addr=size, main_addr=size + 1).validate()

    def test_small_dma_low_bits_must_match(self):
        with pytest.raises(DmaError):
            DmaTransfer(size=4, local_addr=4, main_addr=8).validate()

    def test_multiple_of_16_needs_quadword_alignment(self):
        DmaTransfer(size=48, local_addr=16, main_addr=32).validate()
        with pytest.raises(DmaError):
            DmaTransfer(size=48, local_addr=8, main_addr=32).validate()
        with pytest.raises(DmaError):
            DmaTransfer(size=48, local_addr=16, main_addr=40).validate()

    def test_odd_sizes_rejected(self):
        with pytest.raises(DmaError):
            DmaTransfer(size=12, local_addr=0, main_addr=0).validate()
        with pytest.raises(DmaError):
            DmaTransfer(size=3, local_addr=0, main_addr=0).validate()

    def test_max_16k(self):
        DmaTransfer(size=16 * 1024, local_addr=0, main_addr=0).validate()
        with pytest.raises(DmaError):
            DmaTransfer(size=16 * 1024 + 16, local_addr=0, main_addr=0).validate()

    def test_rejects_zero_size(self):
        with pytest.raises(DmaError):
            DmaTransfer(size=0, local_addr=0, main_addr=0).validate()


class TestBusCost:
    def test_aligned_line_multiple_is_exact(self):
        tr = DmaTransfer(size=512, local_addr=0, main_addr=1024)
        assert tr.fully_aligned
        assert tr.bus_bytes == 512

    def test_misaligned_touches_extra_line(self):
        tr = DmaTransfer(size=512, local_addr=0, main_addr=1024 + 16)
        assert not tr.fully_aligned
        assert tr.bus_bytes == 512 + 128

    def test_non_line_multiple_rounds_up(self):
        tr = DmaTransfer(size=64, local_addr=0, main_addr=0)
        assert tr.bus_bytes == 128

    def test_local_misalignment_breaks_full_alignment(self):
        tr = DmaTransfer(size=256, local_addr=16, main_addr=0)
        assert not tr.fully_aligned


class TestEngine:
    def test_stats_accumulate(self):
        eng = DmaEngine()
        eng.submit(DmaTransfer(size=256, local_addr=0, main_addr=0))
        eng.submit(DmaTransfer(size=256, local_addr=0, main_addr=16))
        assert eng.stats.transfers == 2
        assert eng.stats.payload_bytes == 512
        assert eng.stats.unaligned_transfers == 1
        assert eng.stats.bus_bytes > 512

    def test_efficiency_perfect_when_aligned(self):
        eng = DmaEngine()
        for row in range(10):
            eng.submit(DmaTransfer(size=1024, local_addr=0, main_addr=row * 1024))
        assert eng.efficiency == 1.0

    def test_efficiency_degrades_misaligned(self):
        eng = DmaEngine()
        for row in range(10):
            eng.submit(DmaTransfer(size=1024, local_addr=0, main_addr=row * 1024 + 4 * 16))
        assert eng.efficiency < 1.0

    def test_invalid_transfer_not_counted(self):
        eng = DmaEngine()
        with pytest.raises(DmaError):
            eng.submit(DmaTransfer(size=5, local_addr=0, main_addr=0))
        assert eng.stats.transfers == 0


class TestRowPlan:
    def test_single_command_row(self):
        plan = row_transfer_plan(4096, main_addr=0, local_addr=0)
        assert len(plan) == 1 and plan[0].size == 4096

    def test_long_row_split_at_16k(self):
        plan = row_transfer_plan(40 * 1024, main_addr=0, local_addr=0)
        assert sum(t.size for t in plan) == 40 * 1024
        assert all(t.size <= 16 * 1024 for t in plan)
        for t in plan:
            t.validate()

    def test_offsets_are_contiguous(self):
        plan = row_transfer_plan(33 * 1024, main_addr=128, local_addr=0)
        pos = 128
        for t in plan:
            assert t.main_addr == pos
            pos += t.size

    def test_rejects_inexpressible_tail(self):
        with pytest.raises(DmaError):
            row_transfer_plan(3, main_addr=0, local_addr=0)  # 3 B tail only

    def test_rejects_empty(self):
        with pytest.raises(DmaError):
            row_transfer_plan(0, main_addr=0, local_addr=0)
