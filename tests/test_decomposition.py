"""Data decomposition scheme tests (the paper's Section 2 contribution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import (
    PPE_OWNER,
    apply_rowwise,
    dma_row_alignment_report,
    plan_decomposition,
    plan_naive_decomposition,
)
from repro.utils.alignment import CACHE_LINE_BYTES


class TestAlignedPlan:
    def test_spe_chunks_are_line_multiples(self):
        plan = plan_decomposition(100, 1000, 4, 8)
        for c in plan.chunks:
            if c.owner != PPE_OWNER:
                assert (c.width * 4) % CACHE_LINE_BYTES == 0

    def test_remainder_goes_to_ppe(self):
        """'The remainder chunk with an arbitrary width is processed by the
        PPE to enhance the overall chip utilization.'"""
        plan = plan_decomposition(10, 1000, 4, 8)
        ppe = plan.chunks_for(PPE_OWNER)
        assert len(ppe) == 1
        assert ppe[0].width == 1000 % (CACHE_LINE_BYTES // 4)

    def test_no_ppe_chunk_when_width_divides(self):
        plan = plan_decomposition(10, 1024, 4, 8)
        assert plan.chunks_for(PPE_OWNER) == []

    def test_rows_padded_to_lines(self):
        plan = plan_decomposition(10, 1000, 4, 8)
        assert (plan.padded_cols * 4) % CACHE_LINE_BYTES == 0
        assert plan.padded_cols >= 1000

    def test_zero_spes_all_to_ppe(self):
        plan = plan_decomposition(5, 100, 4, 0)
        assert [c.owner for c in plan.chunks] == [PPE_OWNER]

    def test_chunks_balanced(self):
        plan = plan_decomposition(10, 4096, 4, 8)
        widths = [c.width for c in plan.chunks if c.owner != PPE_OWNER]
        assert max(widths) - min(widths) <= CACHE_LINE_BYTES // 4

    def test_narrow_image_fewer_owners(self):
        # 40 int32 elements: one 32-element line chunk + 8-element remainder
        plan = plan_decomposition(4, 40, 4, 8)
        assert len(plan.spe_owners()) == 1
        assert plan.chunks_for(PPE_OWNER)[0].width == 8

    def test_all_row_transfers_mfc_legal_and_aligned(self):
        """Every DMA the scheme generates is legal and fully aligned."""
        plan = plan_decomposition(20, 777, 4, 6)
        for chunk in plan.chunks:
            if chunk.owner == PPE_OWNER:
                continue
            for row in (0, 7, 19):
                tr = plan.row_transfer(chunk, row)
                tr.validate()
                assert tr.fully_aligned

    def test_report_perfect_efficiency(self):
        plan = plan_decomposition(16, 640, 4, 4)
        rep = dma_row_alignment_report(plan)
        assert rep["aligned_fraction"] == 1.0
        assert rep["bus_efficiency"] == 1.0

    @given(st.integers(1, 64), st.integers(1, 3000), st.integers(0, 16))
    @settings(max_examples=200, deadline=None)
    def test_coverage_property(self, h, w, spes):
        plan = plan_decomposition(h, w, 4, spes)
        plan.validate()  # exact disjoint tiling
        assert sum(c.width for c in plan.chunks) == w

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            plan_decomposition(0, 10, 4, 2)
        with pytest.raises(ValueError):
            plan_decomposition(10, 10, 4, -1)


class TestNaivePlan:
    def test_covers_exactly(self):
        plan = plan_naive_decomposition(10, 1001, 4, 8)
        plan.validate()

    def test_transfers_legal_but_misaligned(self):
        plan = plan_naive_decomposition(10, 1001, 4, 8)
        rep = dma_row_alignment_report(plan)
        assert rep["aligned_fraction"] < 1.0
        assert rep["bus_efficiency"] < 1.0

    def test_aligned_beats_naive_on_bus_efficiency(self):
        """The ablation A1 claim, at plan level."""
        a = dma_row_alignment_report(plan_decomposition(32, 999, 4, 8))
        n = dma_row_alignment_report(plan_naive_decomposition(32, 999, 4, 8))
        assert a["bus_efficiency"] > n["bus_efficiency"]


class TestFunctionalTransparency:
    def test_apply_rowwise_matches_direct(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(-100, 100, (13, 531)).astype(np.int32)
        plan = plan_decomposition(13, 531, 4, 5)
        out = apply_rowwise(plan, arr, lambda seg: seg * 2 + 1)
        assert np.array_equal(out, arr * 2 + 1)

    def test_naive_plan_also_transparent(self):
        rng = np.random.default_rng(1)
        arr = rng.integers(0, 50, (7, 101)).astype(np.int32)
        plan = plan_naive_decomposition(7, 101, 4, 3)
        out = apply_rowwise(plan, arr, lambda seg: seg + 5)
        assert np.array_equal(out, arr + 5)

    def test_shape_mismatch_rejected(self):
        plan = plan_decomposition(4, 4, 4, 1)
        with pytest.raises(ValueError):
            apply_rowwise(plan, np.zeros((5, 4), np.int32), lambda s: s)

    def test_fn_must_preserve_length(self):
        plan = plan_decomposition(2, 64, 4, 1)
        with pytest.raises(ValueError):
            apply_rowwise(plan, np.zeros((2, 64), np.int32), lambda s: s[:-1])
