"""Local Store allocator tests."""

import pytest

from repro.cell.localstore import (
    LOCAL_STORE_BYTES,
    LocalStore,
    LocalStoreError,
    max_buffer_depth,
)


class TestLocalStore:
    def test_capacity_is_256k(self):
        assert LOCAL_STORE_BYTES == 256 * 1024

    def test_alloc_returns_aligned_offsets(self):
        ls = LocalStore()
        off = ls.alloc("buf", 100)
        assert off % 16 == 0
        off2 = ls.alloc("buf2", 100, align=128)
        assert off2 % 128 == 0 and off2 >= off + 100

    def test_overflow_raises(self):
        ls = LocalStore()
        ls.alloc("big", ls.free - 16)
        with pytest.raises(LocalStoreError):
            ls.alloc("more", 4096)

    def test_exact_fill(self):
        ls = LocalStore()
        ls.alloc("all", ls.free)
        assert ls.free == 0

    def test_reset_keeps_code(self):
        ls = LocalStore()
        before = ls.free
        ls.alloc("x", 1024)
        ls.reset()
        assert ls.free == before
        assert ls.report() == []

    def test_fits(self):
        ls = LocalStore()
        assert ls.fits(ls.free)
        assert not ls.fits(ls.free + 16)

    def test_code_reserved(self):
        ls = LocalStore(code_bytes=64 * 1024)
        assert ls.free <= 192 * 1024

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            LocalStore().alloc("z", 0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LocalStore(capacity=512 * 1024)

    def test_report_lists_allocations(self):
        ls = LocalStore()
        ls.alloc("a", 256)
        ls.alloc("b", 512)
        names = [n for n, _, _ in ls.report()]
        assert names == ["a", "b"]


class TestMaxBufferDepth:
    def test_constant_row_gives_many_buffers(self):
        """Paper Section 2: constant per-row footprint lets buffering depth
        grow until the Local Store is full."""
        depth = max_buffer_depth(row_bytes=2048)
        assert depth > 50

    def test_depth_shrinks_with_row_size(self):
        assert max_buffer_depth(1024) > max_buffer_depth(8192)

    def test_huge_row_gives_zero(self):
        assert max_buffer_depth(LOCAL_STORE_BYTES) == 0

    def test_at_least_double_buffering_for_typical_chunk(self):
        # a 512-element int32 chunk row = 2 KiB: double buffering trivially fits
        assert max_buffer_depth(512 * 4) >= 2

    def test_rejects_bad_row(self):
        with pytest.raises(ValueError):
            max_buffer_depth(0)
