"""The paper's headline numbers, asserted as reproduction bands.

Each test pins one quantitative claim from the abstract / Section 5 and
checks our simulated reproduction lands in a band around it.  Absolute
match is not expected (our substrate is a model, not the authors' QS20);
these bands encode "who wins, by roughly what factor".
"""

import pytest

from repro.baselines.pentium4 import P4PipelineModel
from repro.cell.machine import CellMachine
from repro.core.pipeline import PipelineModel
from repro.jpeg2000.encoder import scale_workload


@pytest.fixture(scope="module")
def big_ll(headline_lossless):
    # 192x192 crop scaled x16 -> 3072x3072x3 = the paper's 28.3 MB image
    return scale_workload(headline_lossless.stats, 16)


@pytest.fixture(scope="module")
def big_lossy(headline_lossy):
    return scale_workload(headline_lossy.stats, 16)


def cell_time(stats, spes, ppes=1):
    chips = 2 if (spes > 8 or ppes > 1) else 1
    m = CellMachine(chips=chips, num_spes=spes, num_ppe_threads=ppes)
    return PipelineModel(m, stats).simulate()


class TestLosslessHeadlines:
    def test_speedup_8spe_vs_1spe_near_6_6(self, big_ll):
        """Abstract: 'an overall speedup of 6.6 ... for lossless encoding
        with 8 SPEs compared to the single SPE performance'."""
        s = cell_time(big_ll, 1).total_s / cell_time(big_ll, 8).total_s
        assert 5.5 <= s <= 7.8

    def test_vs_ppe_only_near_6_9(self, big_ll):
        ppe_only = PipelineModel(
            CellMachine(num_spes=0, num_ppe_threads=1), big_ll
        ).simulate().total_s
        r = ppe_only / cell_time(big_ll, 8).total_s
        assert 5.0 <= r <= 8.5

    def test_vs_pentium4_near_3_2(self, big_ll):
        """Abstract: '3.2 times higher performance for lossless encoding'."""
        p4 = P4PipelineModel(big_ll).simulate().total_s
        r = p4 / cell_time(big_ll, 8).total_s
        assert 2.4 <= r <= 4.2

    def test_dwt_vs_pentium4_near_9_1(self, big_ll):
        """Abstract: 'the Cell/B.E. outperforms the Pentium IV processor by
        9.1 times' for the lossless DWT."""
        p4 = P4PipelineModel(big_ll).simulate().stage("dwt").wall_s
        cell = cell_time(big_ll, 8).stage("dwt").wall_s
        assert 6.5 <= p4 / cell <= 12.0

    def test_scales_to_16_spes(self, big_ll):
        """Section 5.1: 'The performance scales up to 16 SPEs'."""
        t8 = cell_time(big_ll, 8, 1).total_s
        t16 = cell_time(big_ll, 16, 2).total_s
        assert t16 < 0.7 * t8


class TestLossyHeadlines:
    def test_speedup_8spe_vs_1spe_flattened(self, big_lossy):
        """Abstract: lossy speedup 3.1 with 8 SPEs — well below lossless."""
        s = cell_time(big_lossy, 1).total_s / cell_time(big_lossy, 8).total_s
        assert 2.5 <= s <= 4.5

    def test_vs_pentium4_near_2_7(self, big_lossy):
        p4 = P4PipelineModel(big_lossy).simulate().total_s
        r = p4 / cell_time(big_lossy, 8).total_s
        assert 2.0 <= r <= 3.6

    def test_dwt_vs_pentium4_near_15(self, big_lossy):
        """Abstract: '15 times for the lossy case' — bigger than lossless
        because the P4 runs Jasper's fixed-point 9/7."""
        p4 = P4PipelineModel(big_lossy).simulate().stage("dwt").wall_s
        cell = cell_time(big_lossy, 8).stage("dwt").wall_s
        assert 11.0 <= p4 / cell <= 19.0

    def test_lossy_dwt_ratio_exceeds_lossless(self, big_ll, big_lossy):
        def ratio(stats):
            p4 = P4PipelineModel(stats).simulate().stage("dwt").wall_s
            return p4 / cell_time(stats, 8).stage("dwt").wall_s
        assert ratio(big_lossy) > ratio(big_ll)

    def test_rate_control_near_60pct_at_16spe_2ppe(self, big_lossy):
        """Section 5.1: 'the sequential rate allocation stage ... takes
        around 60% of the total execution time in 16 SPE + 2 PPE case'."""
        frac = cell_time(big_lossy, 16, 2).fraction("rate_control")
        assert 0.45 <= frac <= 0.75

    def test_lossy_flattens_while_lossless_scales(self, big_ll, big_lossy):
        """Figure 4 vs Figure 5 shape."""
        def speedup_16(stats):
            return cell_time(stats, 1).total_s / cell_time(stats, 16, 2).total_s
        assert speedup_16(big_ll) > 1.8 * speedup_16(big_lossy)
