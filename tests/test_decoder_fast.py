"""The fast decoder backends against the scalar reference.

The contract under test: every backend x workers combination of
:func:`repro.jpeg2000.decoder.decode` reconstructs samples identical to
:func:`decode_reference`, enforces the same :class:`DecodeLimits`, and
rejects the same malformed inputs with the same typed error — the fast
path buys speed only, never behaviour.
"""

import os

import numpy as np
import pytest

from repro.image.synthetic import gradient_image, watch_face_image
from repro.jpeg2000.decoder import (
    DEC_BACKEND_ENV_VAR,
    DEC_BACKENDS,
    decode,
    decode_reference,
    resolve_dec_backend,
)
from repro.jpeg2000.dwt_fast import DecodeStageTimings, run_inverse_frontend
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.errors import CodestreamError, DecodeLimits
from repro.jpeg2000.params import EncoderParams

FAST_BACKENDS = ("vectorized", "batched")


def _roundtrip_stream(shape, lossless=True, levels=2, codeblock=64, seed=0):
    rng = np.random.default_rng(seed)
    img = rng.integers(0, 256, size=shape, dtype=np.uint8)
    params = EncoderParams(lossless=lossless, levels=levels,
                           codeblock_size=codeblock)
    return img, encode(img, params).codestream


class TestBackendResolution:
    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv(DEC_BACKEND_ENV_VAR, raising=False)
        assert resolve_dec_backend(None) == "batched"
        assert resolve_dec_backend("auto") == "batched"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(DEC_BACKEND_ENV_VAR, "reference")
        assert resolve_dec_backend(None) == "reference"
        # An explicit backend beats the environment.
        assert resolve_dec_backend("batched") == "batched"

    def test_invalid_names_raise(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown decode backend"):
            resolve_dec_backend("turbo")
        monkeypatch.setenv(DEC_BACKEND_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match=DEC_BACKEND_ENV_VAR):
            resolve_dec_backend("auto")

    def test_backends_constant(self):
        assert set(FAST_BACKENDS) < set(DEC_BACKENDS)


class TestDifferential:
    """Fast backends vs the scalar oracle, across the geometry space."""

    @pytest.mark.parametrize("shape", [
        (16, 16), (61, 47), (64, 64, 3), (40, 72, 3),
    ])
    @pytest.mark.parametrize("lossless", [True, False])
    def test_shapes_and_filters(self, shape, lossless):
        img, cs = _roundtrip_stream(shape, lossless=lossless)
        ref = decode_reference(cs)
        for backend in FAST_BACKENDS:
            out = decode(cs, backend=backend)
            assert out.dtype == ref.dtype and out.shape == ref.shape
            assert np.array_equal(out, ref), (shape, lossless, backend)
        if lossless:
            assert np.array_equal(ref, img)

    @pytest.mark.parametrize("levels", [0, 1, 5])
    def test_levels(self, levels):
        img, cs = _roundtrip_stream((96, 80, 3), levels=levels)
        ref = decode_reference(cs)
        for backend in FAST_BACKENDS:
            assert np.array_equal(decode(cs, backend=backend), ref)

    def test_ragged_small_codeblocks(self):
        img, cs = _roundtrip_stream((53, 37), codeblock=16, levels=3)
        ref = decode_reference(cs)
        for backend in FAST_BACKENDS:
            assert np.array_equal(decode(cs, backend=backend), ref)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_identical(self, workers):
        img, cs = _roundtrip_stream((64, 96, 3), levels=2)
        ref = decode_reference(cs)
        for backend in FAST_BACKENDS:
            out = decode(cs, backend=backend, workers=workers)
            assert np.array_equal(out, ref), (backend, workers)

    def test_workers_through_real_pool(self, monkeypatch):
        # Small images auto-clamp to serial; force the process pool so the
        # pickle round trip and seq reassembly actually run.
        monkeypatch.setenv("REPRO_TIER1_AUTO_SERIAL", "0")
        img, cs = _roundtrip_stream((64, 96, 3), levels=2)
        ref = decode_reference(cs)
        out = decode(cs, backend="batched", workers=2)
        assert np.array_equal(out, ref)

    def test_timings_populated(self):
        _, cs = _roundtrip_stream((64, 64, 3))
        t = DecodeStageTimings()
        decode(cs, backend="batched", timings=t)
        assert t.total > 0
        assert t.tier1 > 0 and t.idwt_mct > 0
        assert set(t.as_dict()) == set(DecodeStageTimings.STAGES) | {"total"}


class TestGoldenCorpus:
    """Every verification-corpus entry, every backend, one oracle."""

    def test_corpus_roundtrips(self):
        from repro.verify.corpus import base_corpus

        for entry in base_corpus():
            cs = encode(entry.image, entry.params).codestream
            ref = decode_reference(cs)
            if entry.params.lossless:
                assert np.array_equal(ref, entry.image), entry.name
            for backend in FAST_BACKENDS:
                for workers in (1, 2):
                    out = decode(cs, backend=backend, workers=workers)
                    assert np.array_equal(out, ref), (
                        entry.name, backend, workers,
                    )


class TestInverseFrontend:
    """The fused inverse front end against the unfused oracle pipeline."""

    @pytest.mark.parametrize("lossless", [True, False])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_matches_inverse_dwt_plus_mct(self, lossless, workers):
        from repro.jpeg2000 import mct
        from repro.jpeg2000.dwt import forward_dwt2d, inverse_dwt2d

        rng = np.random.default_rng(42)
        planes = [
            rng.integers(-255, 256, size=(75, 101)).astype(np.int32)
            for _ in range(3)
        ]
        decomps = [forward_dwt2d(p, levels=3, reversible=lossless)
                   for p in planes]
        expected = mct.inverse_mct(
            [inverse_dwt2d(d) for d in decomps], 8, lossless
        )
        got = run_inverse_frontend(decomps, 8, lossless, workers=workers,
                                   chunk_cols=32)
        for e, g in zip(expected, got):
            assert e.dtype == g.dtype
            assert np.array_equal(e, g)


class TestLimitsAndErrorParity:
    """Same limits, same typed rejections, on every backend."""

    def test_limits_enforced_identically(self):
        _, cs = _roundtrip_stream((64, 64))
        limits = DecodeLimits(max_dimension=16)
        outcomes = []
        for backend in ("reference",) + FAST_BACKENDS:
            with pytest.raises(CodestreamError) as err:
                decode(cs, limits=limits, backend=backend)
            outcomes.append(type(err.value).__name__)
        assert len(set(outcomes)) == 1

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_truncation_parity(self, backend):
        _, cs = _roundtrip_stream((48, 48, 3))
        for cut in (10, 30, len(cs) * 2 // 3, len(cs) - 3):
            ref_outcome = _outcome(cs[:cut], "reference")
            assert _outcome(cs[:cut], backend) == ref_outcome, cut

    def test_fuzz_parity_seeded(self):
        """Mutated codestreams classify identically on every backend."""
        from repro.verify.corpus import base_codestreams
        from repro.verify.fuzz import FUZZ_LIMITS, case_rng, classify, mutate

        bases = base_codestreams()
        mismatches = []
        for case in range(150):
            rng = case_rng(2008, case)
            _, base = bases[case % len(bases)]
            data, mutators = mutate(base, rng)
            ref_name, ref_exc = classify(data, FUZZ_LIMITS, "reference")
            assert ref_exc is None, (case, mutators, ref_exc)
            for backend in FAST_BACKENDS:
                name, exc = classify(data, FUZZ_LIMITS, backend)
                assert exc is None, (case, mutators, backend, exc)
                if name != ref_name:
                    mismatches.append((case, mutators, backend,
                                       ref_name, name))
        assert not mismatches, mismatches[:5]


def _outcome(data, backend):
    try:
        out = decode(data, backend=backend)
        return ("decoded", out.tobytes())
    except CodestreamError as exc:
        return (type(exc).__name__,)


class TestWorkpoolDecodeAll:
    def test_injected_pool_rejected(self):
        from repro.core.workpool import CodeBlockWorkQueue

        class FakePool:
            workers = 2

        queue = CodeBlockWorkQueue(pool=FakePool())
        with pytest.raises(ValueError, match="one-shot pool"):
            queue.decode_all([])

    def test_serial_and_parallel_agree(self, monkeypatch):
        from repro.core.workpool import CodeBlockWorkQueue
        from repro.jpeg2000.tier1 import encode_codeblock

        monkeypatch.setenv("REPRO_TIER1_AUTO_SERIAL", "0")
        rng = np.random.default_rng(3)
        blocks = []
        for i in range(6):
            vals = rng.integers(-80, 81, size=(32, 24)).astype(np.int32)
            enc = encode_codeblock(vals, "LL")
            blocks.append((enc.data, 32, 24, "LL", enc.msbs, enc.num_passes))
        serial = CodeBlockWorkQueue(workers=1).decode_all(blocks)
        parallel = CodeBlockWorkQueue(workers=3).decode_all(blocks)
        assert len(serial) == len(parallel) == len(blocks)
        for s, p in zip(serial, parallel):
            assert np.array_equal(s, p)


class TestMQDecodeRunParity:
    def test_decode_run_matches_scalar_decode(self):
        from repro.jpeg2000.mq import MQDecoder, MQEncoder

        rng = np.random.default_rng(11)
        bits = rng.integers(0, 2, size=400).tolist()
        ctxs = rng.integers(0, 14, size=400).tolist()
        enc = MQEncoder(19)
        for bit, ctx in zip(bits, ctxs):
            enc.encode(bit, ctx)
        data = enc.flush()
        cseq = bytes(ctxs)

        scalar = MQDecoder(data, 19)
        expected = bytes(scalar.decode(c) for c in ctxs)
        run_dec = MQDecoder(data, 19)
        assert run_dec.decode_run(cseq) == expected
        py_dec = MQDecoder(data, 19)
        assert py_dec._decode_run_py(cseq) == expected
        assert expected == bytes(bits)
