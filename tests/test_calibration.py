"""Calibration object validation and cross-model consistency."""

import dataclasses

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION, Calibration


class TestValidation:
    def test_default_valid(self):
        Calibration()

    def test_fractions_bounded(self):
        with pytest.raises(ValueError):
            Calibration(dwt_simd_efficiency=1.5)
        with pytest.raises(ValueError):
            Calibration(tier1_branch_miss_rate=-0.1)
        with pytest.raises(ValueError):
            Calibration(readconv_sequential_fraction=2.0)

    def test_positive_constants(self):
        with pytest.raises(ValueError):
            Calibration(tier1_ops_per_symbol=0)
        with pytest.raises(ValueError):
            Calibration(p4_ipc=-1)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CALIBRATION.p4_ipc = 2.0  # type: ignore[misc]


class TestConsistency:
    """One calibration set drives every model — sanity relations."""

    def test_queue_cheaper_than_muta_dispatch(self):
        """Our decentralized dequeue must be far cheaper than Muta's
        centralized PPE dispatch, or Figure 7's story collapses."""
        c = DEFAULT_CALIBRATION
        assert c.queue_dequeue_s * 5 < c.muta_dispatch_s

    def test_block_overhead_smaller_than_typical_block(self):
        # a typical 64x64 natural-image block codes >> 10k symbols at tens
        # of ns each; the fixed overhead must not dominate
        c = DEFAULT_CALIBRATION
        assert c.tier1_block_overhead_s < 50e-6

    def test_custom_calibration_threads_through(self):
        from repro.cell.spe import SPECore
        from repro.kernels.tier1_kernel import tier1_symbol_mix

        cheap = Calibration(tier1_ops_per_symbol=10.0)
        spe = SPECore()
        assert spe.seconds_per_element(tier1_symbol_mix(cheap)) < \
            spe.seconds_per_element(tier1_symbol_mix(DEFAULT_CALIBRATION))
