"""Fixed-point (Q13) arithmetic and fixed-point 9/7 DWT tests."""

import numpy as np
import pytest

from repro.jpeg2000.fixmath import (
    FRAC_BITS,
    ONE,
    fix_add,
    fix_mul,
    forward_97_fixed_1d,
    max_fixed_error_vs_float,
    to_fixed,
    to_float,
)


class TestConversion:
    def test_one(self):
        assert to_fixed(1.0) == ONE

    def test_roundtrip_grid(self):
        vals = np.linspace(-100, 100, 201)
        back = to_float(to_fixed(vals))
        assert np.abs(back - vals).max() <= 0.5 / ONE + 1e-12

    def test_overflow_raises(self):
        with pytest.raises(OverflowError):
            to_fixed(1e9)

    def test_frac_bits_is_jasper_default(self):
        assert FRAC_BITS == 13


class TestFixOps:
    def test_mul_identity(self):
        x = to_fixed(np.array([2.5, -3.25]))
        assert np.array_equal(fix_mul(x, to_fixed(1.0)), x)

    def test_mul_matches_float(self):
        a, b = 3.14159, -2.5
        got = to_float(fix_mul(to_fixed(a), to_fixed(b)))
        assert got == pytest.approx(a * b, abs=2e-3)

    def test_mul_truncates_toward_minus_inf(self):
        # (1/ONE) * (1/ONE) underflows to 0
        tiny = np.int32(1)
        assert fix_mul(tiny, tiny) == 0

    def test_add(self):
        assert to_float(fix_add(to_fixed(1.5), to_fixed(2.25))) == 3.75


class TestFixedDwt:
    def test_close_to_float_dwt(self):
        rng = np.random.default_rng(0)
        x = rng.integers(-128, 128, size=(64, 1)).astype(np.int32)
        err = max_fixed_error_vs_float(x)
        assert err < 0.1  # Q13 rounding noise only

    def test_error_is_nonzero(self):
        # fixed point is an approximation: some rounding must appear
        rng = np.random.default_rng(3)
        x = rng.integers(-128, 128, size=(256, 1)).astype(np.int32)
        assert max_fixed_error_vs_float(x) > 0.0

    def test_constant_signal(self):
        x = np.full((16, 1), 7, dtype=np.int32)
        lo, hi = forward_97_fixed_1d(x)
        assert np.allclose(to_float(lo), 7.0, atol=0.01)
        assert np.abs(to_float(hi)).max() < 0.01

    def test_single_sample(self):
        lo, hi = forward_97_fixed_1d(np.array([[5]], dtype=np.int32))
        assert to_float(lo)[0, 0] == 5.0
        assert hi.size == 0

    def test_band_sizes(self):
        lo, hi = forward_97_fixed_1d(np.zeros((9, 2), dtype=np.int32))
        assert lo.shape[0] == 5 and hi.shape[0] == 4
