"""Baseline model tests: Pentium IV, Muta et al., Meerwald, convolution DWT."""

import numpy as np
import pytest

from repro.baselines.convolution_dwt import (
    conv_forward_53_1d,
    conv_forward_97_1d,
    convolution_dwt_mix,
)
from repro.baselines.meerwald import meerwald_speedup, meerwald_time
from repro.baselines.muta import MutaConfig, MutaPipelineModel, split_blocks_to_32
from repro.baselines.pentium4 import P4Core, P4PipelineModel
from repro.cell.machine import CellMachine
from repro.cell.spe import SPECore
from repro.core.pipeline import PipelineModel
from repro.jpeg2000.dwt import forward_53_1d, forward_97_1d
from repro.jpeg2000.encoder import scale_workload
from repro.kernels.dwt_kernels import dwt_mix


@pytest.fixture(scope="module")
def stats_ll(encoded_lossless_rgb):
    return scale_workload(encoded_lossless_rgb.stats, 8)


class TestConvolutionDwt:
    def test_97_matches_lifting_exactly(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((41, 3)) * 100
        lo_l, hi_l = forward_97_1d(x)
        lo_c, hi_c = conv_forward_97_1d(x)
        assert np.allclose(lo_l, lo_c, atol=1e-9)
        assert np.allclose(hi_l, hi_c, atol=1e-9)

    def test_53_matches_lifting_within_rounding(self):
        rng = np.random.default_rng(1)
        x = rng.integers(-1000, 1000, (50, 2)).astype(np.int32)
        lo_l, hi_l = forward_53_1d(x)
        lo_c, hi_c = conv_forward_53_1d(x)
        # lifting floors; linear convolution doesn't: diff < 1
        assert np.abs(lo_l - lo_c).max() < 1.0
        assert np.abs(hi_l - hi_c).max() < 1.0

    def test_single_sample(self):
        lo, hi = conv_forward_97_1d(np.array([[7.0]]))
        assert lo[0, 0] == 7.0 and hi.size == 0

    def test_convolution_costs_more_than_lifting(self):
        """Sweldens' point, which the paper exploits: lifting halves the
        arithmetic of the filter bank."""
        spe = SPECore()
        for lossless in (True, False):
            conv = spe.seconds_per_element(convolution_dwt_mix(lossless))
            lift = spe.seconds_per_element(dwt_mix(lossless))
            assert conv > 1.3 * lift


class TestPentium4:
    def test_core_cycles_positive(self):
        core = P4Core()
        assert core.cycles_per_element(dwt_mix(True)) > 0

    def test_l2_resident_stage_has_no_memory_term(self):
        core = P4Core()
        mix = dwt_mix(True)
        small = core.stage_time(mix, 10000, 8.0, working_set_bytes=1 << 20)
        big = core.stage_time(mix, 10000, 8.0, working_set_bytes=1 << 25)
        assert big > small

    def test_pipeline_stages(self, stats_ll):
        tl = P4PipelineModel(stats_ll).simulate()
        names = [s.name for s in tl.stages]
        assert "tier1" in names and "dwt" in names
        assert tl.total_s > 0

    def test_tier1_dominates(self, stats_ll):
        tl = P4PipelineModel(stats_ll).simulate()
        assert tl.fraction("tier1") > 0.5

    def test_lossy_includes_rate_control(self, encoded_lossy_rate):
        stats = scale_workload(encoded_lossy_rate.stats, 8)
        tl = P4PipelineModel(stats).simulate()
        assert tl.stage("rate_control").wall_s > 0


class TestMuta:
    def test_rejects_lossy(self, encoded_lossy_rate):
        with pytest.raises(ValueError):
            MutaPipelineModel(encoded_lossy_rate.stats)

    def test_split_blocks_quarters_symbols(self, stats_ll):
        small = split_blocks_to_32(stats_ll.blocks)
        assert len(small) > len(stats_ll.blocks)
        assert sum(b.total_symbols for b in small) <= \
            sum(b.total_symbols for b in stats_ll.blocks)
        assert all(b.height <= 32 and b.width <= 32 for b in small)

    def test_muta0_reports_half_latency(self, stats_ll):
        m = MutaPipelineModel(stats_ll, MutaConfig.MUTA0)
        assert m.reported_frame_time() == pytest.approx(m.simulate().total_s / 2)

    def test_muta1_no_ebcot_scaling_beyond_one_chip(self, stats_ll):
        """'does not scale above a single Cell/B.E. processor': the PPE
        dispatcher caps EBCOT, so 16 SPEs don't beat 8."""
        m0 = MutaPipelineModel(stats_ll, MutaConfig.MUTA0)
        m1 = MutaPipelineModel(stats_ll, MutaConfig.MUTA1)
        assert m1.simulate().total_s >= 0.9 * m0.simulate().total_s

    def test_ours_beats_muta_with_one_chip(self, stats_ll):
        """Figure 6's headline: one of our chips beats their two."""
        ours = PipelineModel(
            CellMachine(chips=1, num_spes=8, num_ppe_threads=1), stats_ll
        ).simulate()
        muta0 = MutaPipelineModel(stats_ll, MutaConfig.MUTA0)
        assert ours.total_s < muta0.reported_frame_time()

    def test_our_dwt_beats_muta_by_a_lot(self, stats_ll):
        """Figure 8: lifting + aligned decomposition vs convolution tiles."""
        ours = PipelineModel(
            CellMachine(chips=1, num_spes=8, num_ppe_threads=1), stats_ll
        ).simulate().stage("dwt").wall_s
        muta0 = MutaPipelineModel(stats_ll, MutaConfig.MUTA0).dwt_reported_time()
        assert muta0 / ours > 2.0

    def test_muta_clock_is_24(self, stats_ll):
        assert MutaPipelineModel(stats_ll).clock_hz == 2.4e9


class TestMeerwald:
    def test_only_dwt_and_tier1_scale(self, stats_ll):
        seq = P4PipelineModel(stats_ll).simulate()
        par = meerwald_time(seq, 4)
        assert par.stage("dwt").wall_s == pytest.approx(seq.stage("dwt").wall_s / 4)
        assert par.stage("tier1").wall_s == pytest.approx(seq.stage("tier1").wall_s / 4)
        assert par.stage("tier2").wall_s == seq.stage("tier2").wall_s

    def test_amdahl_ceiling(self, stats_ll):
        """Loop-level speedup saturates: the paper's motivation for whole-
        pipeline parallelization."""
        seq = P4PipelineModel(stats_ll).simulate()
        s8 = meerwald_speedup(seq, 8)
        s64 = meerwald_speedup(seq, 64)
        s1e6 = meerwald_speedup(seq, 10**6)
        ceiling = 1.0 / (1.0 - seq.fraction("dwt") - seq.fraction("tier1"))
        assert s8 < 8
        assert s8 < s64 < s1e6 < ceiling + 0.01
        assert s1e6 > 0.95 * ceiling  # saturated at the Amdahl ceiling

    def test_one_thread_identity(self, stats_ll):
        seq = P4PipelineModel(stats_ll).simulate()
        assert meerwald_speedup(seq, 1) == pytest.approx(1.0)

    def test_rejects_zero_threads(self, stats_ll):
        seq = P4PipelineModel(stats_ll).simulate()
        with pytest.raises(ValueError):
            meerwald_time(seq, 0)
