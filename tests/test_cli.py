"""CLI tests: encode / decode / simulate subcommands."""

import numpy as np
import pytest

from repro.cli import main
from repro.image.bmp import read_bmp, write_bmp
from repro.image.synthetic import watch_face_image


@pytest.fixture()
def bmp_path(tmp_path):
    path = str(tmp_path / "in.bmp")
    write_bmp(path, watch_face_image(32, 32, channels=1))
    return path


class TestEncodeDecode:
    def test_roundtrip_via_cli(self, bmp_path, tmp_path, capsys):
        j2c = str(tmp_path / "out.j2c")
        out = str(tmp_path / "out.bmp")
        assert main(["encode", bmp_path, j2c, "--levels", "3"]) == 0
        assert main(["decode", j2c, out]) == 0
        assert np.array_equal(read_bmp(out), read_bmp(bmp_path))
        text = capsys.readouterr().out
        assert "bytes" in text

    def test_lossy_rate(self, bmp_path, tmp_path):
        j2c = str(tmp_path / "out.j2c")
        assert main(["encode", bmp_path, j2c, "--rate", "0.3",
                     "--levels", "3"]) == 0
        raw = 32 * 32
        import os
        assert os.path.getsize(j2c) <= raw * 0.3 * 1.05 + 8

    def test_pnm_output(self, bmp_path, tmp_path):
        j2c = str(tmp_path / "o.j2c")
        pgm = str(tmp_path / "o.pgm")
        main(["encode", bmp_path, j2c, "--levels", "2"])
        assert main(["decode", j2c, pgm]) == 0

    def test_unsupported_format_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["encode", str(tmp_path / "x.png"), str(tmp_path / "y.j2c")])


class TestSimulate:
    def test_exact_path(self, bmp_path, capsys):
        assert main(["simulate", bmp_path, "--levels", "2", "--spes", "4"]) == 0
        out = capsys.readouterr().out
        assert "tier1" in out and "4 SPE" in out

    def test_estimate_path(self, bmp_path, capsys):
        assert main(["simulate", bmp_path, "--levels", "2", "--estimate",
                     "--spes", "8", "--chips", "1"]) == 0
        assert "Timeline" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestVersionAndSummary:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_encode_summary_line(self, bmp_path, tmp_path, capsys):
        assert main(["encode", bmp_path, str(tmp_path / "o.j2c"),
                     "--levels", "3"]) == 0
        line = capsys.readouterr().out.strip()
        assert "bytes" in line
        assert "blocks" in line
        assert "worker(s)" in line
        assert line.endswith("s")  # wall time

    def test_serve_in_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2", "--cache-mb", "8",
             "--max-queue", "4", "--admission", "block"]
        )
        assert args.port == 0 and args.workers == 2
        assert args.cache_mb == 8 and args.max_queue == 4
        assert args.admission == "block"


class TestErrorExits:
    """Operational failures: exit 1, one ``error:`` line, no traceback."""

    def test_malformed_codestream_decode(self, tmp_path, capsys):
        bad = tmp_path / "bad.j2c"
        bad.write_bytes(b"\x00" * 64)
        assert main(["decode", str(bad), str(tmp_path / "o.bmp")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_truncated_codestream_decode(self, bmp_path, tmp_path, capsys):
        j2c = tmp_path / "t.j2c"
        assert main(["encode", bmp_path, str(j2c), "--levels", "2"]) == 0
        j2c.write_bytes(j2c.read_bytes()[:40])
        assert main(["decode", str(j2c), str(tmp_path / "o.bmp")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "byte offset" in err

    def test_malformed_bmp_encode(self, tmp_path, capsys):
        bad = tmp_path / "bad.bmp"
        bad.write_bytes(b"BMnot really a bitmap")
        assert main(["encode", str(bad), str(tmp_path / "o.j2c")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_missing_input_still_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["encode", str(tmp_path / "none.bmp"),
                  str(tmp_path / "o.j2c")])


class TestSelfCheckFlag:
    def test_self_check_encode_passes(self, bmp_path, tmp_path):
        assert main(["encode", bmp_path, str(tmp_path / "o.j2c"),
                     "--levels", "2", "--self-check"]) == 0

    def test_self_check_failure_exits_one(self, bmp_path, tmp_path,
                                          capsys, monkeypatch):
        from repro.verify.roundtrip import VerificationError

        def boom(image, result):
            raise VerificationError("forced self-check failure")

        monkeypatch.setattr("repro.verify.roundtrip.verify_encode", boom)
        assert main(["encode", bmp_path, str(tmp_path / "o.j2c"),
                     "--levels", "2", "--self-check"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: forced self-check failure")


class TestVerifyAndFuzzCommands:
    def test_verify_quick(self, capsys):
        assert main(["verify", "--quick", "--rates", "0.25",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "round-trip checks: OK" in out

    def test_fuzz_small_run(self, capsys):
        assert main(["fuzz", "--cases", "30", "--seed", "11",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "30 cases (seed 11)" in out
        assert "crashes=0" in out

    def test_fuzz_writes_artifacts_on_crash(self, tmp_path, capsys,
                                            monkeypatch):
        # Force a contract violation to exercise the failure path
        # end-to-end: nonzero exit, artifact files, index.json.
        import repro.verify.fuzz as fuzz_mod

        def bad_classify(data, limits=None):
            return "RuntimeError", RuntimeError("forced crash")

        monkeypatch.setattr(fuzz_mod, "classify", bad_classify)
        art = tmp_path / "crashes"
        assert main(["fuzz", "--cases", "2", "--seed", "3", "--quiet",
                     "--artifacts", str(art)]) == 1
        err = capsys.readouterr().err
        assert "CRASH case 0" in err
        import json
        index = json.loads((art / "index.json").read_text())
        assert len(index["crashes"]) == 2
        assert index["crashes"][0]["exception"] == "RuntimeError"


class TestDwtBackendFlag:
    def test_stage_timings_line(self, bmp_path, tmp_path, capsys):
        assert main(["encode", bmp_path, str(tmp_path / "o.j2c"),
                     "--levels", "2"]) == 0
        out = capsys.readouterr().out
        stages = [ln for ln in out.splitlines() if ln.strip().startswith("stages:")]
        assert len(stages) == 1
        for label in ("mct", "dwt", "quant", "tier1", "tier2"):
            assert label in stages[0]

    def test_dwt_backend_flag_bytes_identical(self, bmp_path, tmp_path):
        ref, fused = str(tmp_path / "r.j2c"), str(tmp_path / "f.j2c")
        assert main(["encode", bmp_path, ref, "--levels", "2",
                     "--dwt-backend", "reference"]) == 0
        assert main(["encode", bmp_path, fused, "--levels", "2",
                     "--dwt-backend", "fused", "--dwt-chunk", "8"]) == 0
        with open(ref, "rb") as fr, open(fused, "rb") as ff:
            assert fr.read() == ff.read()

    def test_rejects_unknown_dwt_backend(self, bmp_path, tmp_path):
        with pytest.raises(SystemExit):
            main(["encode", bmp_path, str(tmp_path / "o.j2c"),
                  "--dwt-backend", "simd"])
