"""Tag tree coder tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg2000.tagtree import TagTreeDecoder, TagTreeEncoder
from repro.utils.bitio import BitReader, BitWriter


def roundtrip_values(values: np.ndarray) -> None:
    rows, cols = values.shape
    enc = TagTreeEncoder(rows, cols)
    for r in range(rows):
        for c in range(cols):
            enc.set_value(r, c, int(values[r, c]))
    bw = BitWriter()
    for r in range(rows):
        for c in range(cols):
            enc.encode(r, c, int(values[r, c]) + 1, bw)
    bw.align()
    dec = TagTreeDecoder(rows, cols)
    br = BitReader(bw.getvalue())
    for r in range(rows):
        for c in range(cols):
            t = 1
            while not dec.decode(r, c, t, br):
                t += 1
            assert dec.value(r, c) == values[r, c], (r, c)


class TestRoundTrip:
    def test_single_leaf(self):
        roundtrip_values(np.array([[5]]))

    def test_uniform(self):
        roundtrip_values(np.full((4, 4), 3))

    def test_raster_values(self):
        roundtrip_values(np.arange(12).reshape(3, 4))

    def test_non_power_of_two_grid(self):
        rng = np.random.default_rng(0)
        roundtrip_values(rng.integers(0, 10, size=(5, 7)))

    def test_tall_and_wide(self):
        rng = np.random.default_rng(1)
        roundtrip_values(rng.integers(0, 6, size=(1, 9)))
        roundtrip_values(rng.integers(0, 6, size=(9, 1)))

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        roundtrip_values(rng.integers(0, 20, size=(rows, cols)))


class TestThresholdSemantics:
    def test_below_threshold_reports_true(self):
        enc = TagTreeEncoder(1, 1)
        enc.set_value(0, 0, 2)
        bw = BitWriter()
        enc.encode(0, 0, 4, bw)
        bw.align()
        dec = TagTreeDecoder(1, 1)
        br = BitReader(bw.getvalue())
        assert dec.decode(0, 0, 4, br) is True
        assert dec.value(0, 0) == 2

    def test_at_threshold_reports_false(self):
        enc = TagTreeEncoder(1, 1)
        enc.set_value(0, 0, 5)
        bw = BitWriter()
        enc.encode(0, 0, 5, bw)
        bw.align()
        dec = TagTreeDecoder(1, 1)
        br = BitReader(bw.getvalue())
        assert dec.decode(0, 0, 5, br) is False

    def test_incremental_thresholds_share_state(self):
        # coding to threshold 3 then 6 must equal coding straight to 6
        enc1 = TagTreeEncoder(2, 2)
        enc2 = TagTreeEncoder(2, 2)
        for e in (enc1, enc2):
            for r in range(2):
                for c in range(2):
                    e.set_value(r, c, 4)
        bw1 = BitWriter()
        enc1.encode(0, 0, 3, bw1)
        enc1.encode(0, 0, 6, bw1)
        bw1.align()
        bw2 = BitWriter()
        enc2.encode(0, 0, 6, bw2)
        bw2.align()
        assert bw1.getvalue() == bw2.getvalue()

    def test_shared_parent_not_recoded(self):
        # after coding one leaf, a sibling reuses parent information: fewer
        # bits than a fresh tree would need
        vals = np.array([[3, 3], [3, 3]])
        enc = TagTreeEncoder(2, 2)
        for r in range(2):
            for c in range(2):
                enc.set_value(r, c, int(vals[r, c]))
        bw = BitWriter()
        enc.encode(0, 0, 4, bw)
        first = bw.bit_length
        enc.encode(0, 1, 4, bw)
        second = bw.bit_length - first
        assert second < first


class TestValidation:
    def test_rejects_empty_tree(self):
        with pytest.raises(ValueError):
            TagTreeEncoder(0, 3)

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            TagTreeEncoder(2, 2).set_value(0, 0, -1)

    def test_rejects_out_of_range_leaf(self):
        enc = TagTreeEncoder(2, 2)
        with pytest.raises(IndexError):
            enc.encode(2, 0, 1, BitWriter())

    def test_rejects_bad_threshold(self):
        enc = TagTreeEncoder(1, 1)
        enc.set_value(0, 0, 0)
        with pytest.raises(ValueError):
            enc.encode(0, 0, 0, BitWriter())

    def test_set_after_encode_raises(self):
        enc = TagTreeEncoder(2, 2)
        enc.encode(0, 0, 1, BitWriter())
        with pytest.raises(RuntimeError):
            enc.set_value(0, 0, 1)

    def test_value_before_determined_raises(self):
        dec = TagTreeDecoder(2, 2)
        with pytest.raises(RuntimeError):
            dec.value(0, 0)
